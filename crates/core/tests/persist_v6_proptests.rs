//! Property tests for the v6 mappable index format: save → map → query
//! must be bit-identical to the v5 streamed heap path on arbitrary
//! graphs, and on the structural corner cases the section decoder has
//! to get right (empty H11 blocks, deadend-only graphs, a single hub).

use bepi_core::{persist, BePi, BePiConfig, RwrSolver};
use bepi_graph::{generators, Graph};
use proptest::prelude::*;
use std::path::PathBuf;

/// A unique temp path per test case (proptest runs cases sequentially
/// within one test, so the case label keeps shrink iterations apart).
fn tmp(label: &str) -> PathBuf {
    std::env::temp_dir().join(format!("bepi-v6-prop-{}-{label}.bepi", std::process::id()))
}

/// Round-trips `bepi` through both persistence paths and asserts the
/// mapped index answers every seed bit-identically to the v5 heap load.
fn assert_v6_matches_v5(bepi: &BePi, graph: &Graph, label: &str) {
    let v5_path = tmp(&format!("{label}-v5"));
    let v6_path = tmp(&format!("{label}-v6"));
    persist::save_file_with_graph(bepi, graph, &v5_path).unwrap();
    persist::save_file_v6(bepi, Some(graph), &v6_path).unwrap();

    let (heap, heap_graph) = persist::load_file_with_graph(&v5_path).unwrap();
    let (mapped, mapped_graph) = persist::load_mapped_file(&v6_path).unwrap();
    assert!(mapped.is_mapped(), "v6 load must borrow from the file");
    assert!(!heap.is_mapped());
    assert_eq!(
        heap_graph.unwrap().adjacency().to_dense(),
        mapped_graph.unwrap().adjacency().to_dense()
    );

    for seed in 0..graph.n() {
        let h = heap.query(seed).unwrap().scores;
        let m = mapped.query(seed).unwrap().scores;
        // Bitwise equality, not approximate: both paths must run the
        // same kernels over the same numbers.
        assert_eq!(h, m, "seed {seed} diverged");
    }

    std::fs::remove_file(&v5_path).ok();
    std::fs::remove_file(&v6_path).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn v6_mapped_queries_match_v5_heap_queries(
        n in 4usize..40,
        pairs in proptest::collection::vec((0usize..40, 0usize..40), 1..120),
        hub_frac in 0.1f64..0.5,
    ) {
        let edges: Vec<(usize, usize)> = pairs.into_iter().map(|(u, v)| (u % n, v % n)).collect();
        let graph = Graph::from_edges(n, &edges).unwrap();
        let cfg = BePiConfig { hub_ratio: Some(hub_frac), ..BePiConfig::default() };
        let bepi = BePi::preprocess(&graph, &cfg).unwrap();
        assert_v6_matches_v5(&bepi, &graph, "rand");
    }
}

#[test]
fn v6_roundtrip_deadend_only_graph() {
    // Every node is a deadend: n1 = n2 = 0, all CSR sections empty.
    let graph = Graph::from_edges(5, &[]).unwrap();
    let bepi = BePi::preprocess(&graph, &BePiConfig::default()).unwrap();
    assert_v6_matches_v5(&bepi, &graph, "deadend");
}

#[test]
fn v6_roundtrip_single_hub_star() {
    // A star: removing the center disconnects everything, so SlashBurn
    // selects a single hub and the spokes become 1-node blocks.
    let n = 12;
    let mut edges = Vec::new();
    for v in 1..n {
        edges.push((0, v));
        edges.push((v, 0));
    }
    let graph = Graph::from_edges(n, &edges).unwrap();
    let cfg = BePiConfig {
        hub_ratio: Some(0.1),
        ..BePiConfig::default()
    };
    let bepi = BePi::preprocess(&graph, &cfg).unwrap();
    assert_v6_matches_v5(&bepi, &graph, "star");
}

#[test]
fn v6_roundtrip_empty_block_structure() {
    // Two disjoint cycles plus isolated deadends: multiple small H11
    // blocks, a nonempty deadend tail, and (with a high hub ratio) a
    // hub part — exercises every section kind at once.
    let mut edges = Vec::new();
    for v in 0..4 {
        edges.push((v, (v + 1) % 4));
    }
    for v in 0..5 {
        edges.push((4 + v, 4 + (v + 1) % 5));
    }
    // Nodes 9..12 are isolated (deadends).
    let graph = Graph::from_edges(12, &edges).unwrap();
    let cfg = BePiConfig {
        hub_ratio: Some(0.3),
        ..BePiConfig::default()
    };
    let bepi = BePi::preprocess(&graph, &cfg).unwrap();
    assert_v6_matches_v5(&bepi, &graph, "blocks");
}

#[test]
fn v6_roundtrip_example_graph_without_embedded_graph() {
    // The paper's Figure 2 graph, saved without the adjacency: the
    // GRAPH sections are absent and the loader must report None.
    let graph = generators::example_graph();
    let bepi = BePi::preprocess(&graph, &BePiConfig::default()).unwrap();
    let path = tmp("nograph");
    persist::save_file_v6(&bepi, None, &path).unwrap();
    let (mapped, none) = persist::load_mapped_file(&path).unwrap();
    assert!(none.is_none());
    assert_eq!(
        mapped.query(0).unwrap().scores,
        bepi.query(0).unwrap().scores
    );
    std::fs::remove_file(&path).ok();
}
