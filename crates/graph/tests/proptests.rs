//! Property-based tests for graph construction, generators and stats.

use bepi_graph::{generators, stats, Graph};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn from_edges_preserves_counts(n in 2usize..60, pairs in proptest::collection::vec((0usize..60, 0usize..60), 0..150)) {
        let edges: Vec<(usize, usize)> = pairs
            .into_iter()
            .map(|(u, v)| (u % n, v % n))
            .collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        prop_assert_eq!(g.n(), n);
        // Merged edges never exceed inserted edges.
        prop_assert!(g.m() <= edges.len());
        // Degree sums are consistent.
        prop_assert_eq!(g.out_degrees().iter().sum::<usize>(), g.m());
        prop_assert_eq!(g.in_degrees().iter().sum::<usize>(), g.m());
    }

    #[test]
    fn row_normalized_rows_sum_to_one_or_zero(n in 2usize..40, pairs in proptest::collection::vec((0usize..40, 0usize..40), 0..120)) {
        let edges: Vec<(usize, usize)> = pairs.into_iter().map(|(u, v)| (u % n, v % n)).collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        let a = g.row_normalized();
        for u in 0..n {
            let sum: f64 = a.row(u).1.iter().sum();
            if g.out_degree(u) == 0 {
                prop_assert_eq!(sum, 0.0);
            } else {
                prop_assert!((sum - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn erdos_renyi_respects_parameters(n in 3usize..50, m_frac in 0.0f64..0.8, seed in 0u64..500) {
        let max_m = n * (n - 1);
        let m = ((max_m as f64) * m_frac) as usize;
        let g = generators::erdos_renyi(n, m, seed).unwrap();
        prop_assert_eq!(g.m(), m.min(max_m));
        for u in 0..n {
            prop_assert_eq!(g.adjacency().get(u, u), 0.0);
        }
    }

    #[test]
    fn inject_deadends_monotone(frac in 0.0f64..0.9, seed in 0u64..100) {
        let g = generators::erdos_renyi(60, 400, 11).unwrap();
        let d = generators::inject_deadends(&g, frac, seed).unwrap();
        prop_assert!(d.deadend_count() >= g.deadend_count());
        prop_assert!(d.m() <= g.m());
        prop_assert_eq!(d.n(), g.n());
    }

    #[test]
    fn wcc_partition_is_exhaustive(n in 2usize..50, pairs in proptest::collection::vec((0usize..50, 0usize..50), 0..100)) {
        let edges: Vec<(usize, usize)> = pairs.into_iter().map(|(u, v)| (u % n, v % n)).collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        let (ids, sizes) = stats::weakly_connected_components(&g);
        prop_assert_eq!(ids.len(), n);
        prop_assert_eq!(sizes.iter().sum::<usize>(), n);
        // Every edge endpoint shares a component.
        for u in 0..n {
            for v in g.out_neighbors(u) {
                prop_assert_eq!(ids[u], ids[v]);
            }
        }
    }

    #[test]
    fn principal_subgraph_is_consistent(k_frac in 0.1f64..1.0) {
        let g = generators::rmat(7, 300, generators::RmatParams::default(), 9).unwrap();
        let k = ((g.n() as f64) * k_frac) as usize;
        let s = g.principal_subgraph(k).unwrap();
        prop_assert_eq!(s.n(), k);
        for (r, c, v) in s.adjacency().iter() {
            prop_assert_eq!(g.adjacency().get(r, c), v);
        }
    }
}
