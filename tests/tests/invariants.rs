//! Structural invariants of the BePI pipeline, checked end to end:
//! permutation validity, block structure, Schur identities, the
//! Theorem 4 accuracy bound, and RWR score semantics.

use bepi_core::accuracy::{l2_error, theorem4_bound};
use bepi_core::hmatrix::HPartition;
use bepi_core::prelude::*;
use bepi_reorder::blocks::is_block_diagonal;
use bepi_solver::BlockLu;
use bepi_tests::{fixture_zoo, reference_scores};

#[test]
fn partition_is_exhaustive_and_blocks_tile() {
    for fx in fixture_zoo() {
        let p = HPartition::build(&fx.graph, 0.05, 0.2).unwrap();
        assert_eq!(p.n(), fx.graph.n(), "{}", fx.name);
        assert_eq!(p.n3, fx.graph.deadend_count(), "{}", fx.name);
        assert_eq!(
            p.block_sizes.iter().sum::<usize>(),
            p.n1,
            "{}: blocks must tile the spokes",
            fx.name
        );
        assert!(
            is_block_diagonal(&p.h11, &p.block_sizes),
            "{}: H11 not block diagonal",
            fx.name
        );
    }
}

#[test]
fn h_blocks_are_diagonally_dominant_where_square() {
    for fx in fixture_zoo() {
        let p = HPartition::build(&fx.graph, 0.05, 0.25).unwrap();
        if p.n1 > 0 {
            assert!(
                p.h11.is_column_diagonally_dominant(),
                "{}: H11 must be diagonally dominant",
                fx.name
            );
        }
    }
}

#[test]
fn schur_solve_equals_direct_solve() {
    // Solving through the Schur complement must equal solving H directly.
    for fx in fixture_zoo().into_iter().take(4) {
        let g = &fx.graph;
        let bepi = BePi::preprocess(g, &BePiConfig::default()).unwrap();
        let gmres = GmresSolver::with_defaults(g).unwrap();
        let seed = g.n() / 2;
        let a = bepi.query(seed).unwrap();
        let b = gmres.query(seed).unwrap();
        assert!(
            l2_error(&a.scores, &b.scores) < 1e-6,
            "{}: block elimination diverges from direct solve",
            fx.name
        );
    }
}

#[test]
fn residual_of_returned_scores_is_small() {
    // H r ≈ c q for the returned scores, verified in the original order.
    for fx in fixture_zoo() {
        let g = &fx.graph;
        let solver = BePi::preprocess(g, &BePiConfig::default()).unwrap();
        let seed = 0;
        let r = solver.query(seed).unwrap();
        let h = bepi_core::rwr::build_h(g, 0.05).unwrap();
        let hr = h.mul_vec(&r.scores).unwrap();
        for (i, v) in hr.iter().enumerate() {
            let want = if i == seed { 0.05 } else { 0.0 };
            assert!(
                (v - want).abs() < 1e-7,
                "{}: residual at node {i} = {}",
                fx.name,
                (v - want).abs()
            );
        }
    }
}

#[test]
fn scores_behave_like_probabilities() {
    for fx in fixture_zoo() {
        let g = &fx.graph;
        let solver = BePi::preprocess(g, &BePiConfig::default()).unwrap();
        let r = solver.query(0).unwrap();
        assert!(
            r.scores.iter().all(|&v| v >= -1e-10),
            "{}: negative score",
            fx.name
        );
        let sum: f64 = r.scores.iter().sum();
        assert!(sum <= 1.0 + 1e-9, "{}: scores sum {sum} exceeds 1", fx.name);
        if g.deadend_count() == 0 {
            assert!(
                (sum - 1.0).abs() < 1e-6,
                "{}: deadend-free scores must sum to 1, got {sum}",
                fx.name
            );
        }
    }
}

#[test]
fn theorem4_bound_holds_empirically() {
    let fx = &fixture_zoo()[3]; // erdos-renyi
    let g = &fx.graph;
    for eps in [1e-4, 1e-7] {
        let cfg = BePiConfig {
            tol: eps,
            ..BePiConfig::default()
        };
        let solver = BePi::preprocess(g, &cfg).unwrap();
        let bound = theorem4_bound(&solver).unwrap();
        let exact = DenseExact::with_defaults(g).unwrap();
        for seed in [0usize, 77] {
            let approx = solver.query(seed).unwrap();
            let truth = exact.query(seed).unwrap();
            let err = l2_error(&approx.scores, &truth.scores);
            // ‖q̂2‖₂ ≤ 1 for an indicator seed with our H (safe envelope).
            let theory = bound.error_bound(1.0, eps);
            assert!(
                err <= theory,
                "eps {eps} seed {seed}: err {err} > bound {theory}"
            );
        }
    }
}

#[test]
fn block_lu_inverse_is_exact_on_h11() {
    for fx in fixture_zoo().into_iter().take(5) {
        let p = HPartition::build(&fx.graph, 0.05, 0.2).unwrap();
        if p.n1 == 0 {
            continue;
        }
        let blu = BlockLu::factor(&p.h11, &p.block_sizes).unwrap();
        let x: Vec<f64> = (0..p.n1).map(|i| ((i % 7) as f64 - 3.0) * 0.1).collect();
        let b = p.h11.mul_vec(&x).unwrap();
        let got = blu.solve_vec(&b).unwrap();
        for (g_, w) in got.iter().zip(&x) {
            assert!((g_ - w).abs() < 1e-9, "{}", fx.name);
        }
    }
}

#[test]
fn permutation_roundtrip_through_query() {
    // Scores must be reported in original ids: on a vertex-transitive
    // graph (cycle) the seed carries the maximal score, so a permutation
    // mix-up would move the argmax off the seed.
    let fx = &fixture_zoo()[7]; // cycle
    let solver = BePi::preprocess(&fx.graph, &BePiConfig::default()).unwrap();
    for seed in [0usize, 5, 24] {
        let r = solver.query(seed).unwrap();
        let max_idx = r
            .scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(max_idx, seed);
    }
}

#[test]
fn reference_is_consistent_with_itself() {
    // The shared fixture reference must be deterministic.
    let fx = &fixture_zoo()[1];
    let a = reference_scores(&fx.graph, 0.05, 3);
    let b = reference_scores(&fx.graph, 0.05, 3);
    assert_eq!(a, b);
}
