//! A seqlock ring buffer of fixed-width records.
//!
//! Writers claim a slot by CAS-ing its sequence number from even (stable) to
//! odd (being written), publish the fields, then bump the sequence back to
//! even. Readers snapshot a slot by reading the sequence before and after the
//! fields and retrying on a torn read. Neither side ever blocks: a writer
//! that loses the claim race simply drops its record (capacity is sized so
//! this needs `capacity` concurrent slow-path pushes to happen), and a reader
//! that keeps colliding gives up on that slot.
//!
//! Used for the server's slow-query log and the trace rings behind
//! `GET /debug/trace`, where writes happen on the query hot path and
//! must not take locks.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of `u64` payload fields per record. Sized for the widest
/// consumer: a slow-query record carrying a 128-bit request id (two
/// fields) and a shard id alongside the original eight query fields.
pub const RECORD_FIELDS: usize = 12;

#[derive(Debug)]
struct Slot {
    /// Even = stable, odd = mid-write, 0 = never written.
    seq: AtomicU64,
    /// Monotone push index, for ordering snapshots.
    idx: AtomicU64,
    fields: [AtomicU64; RECORD_FIELDS],
}

/// Lock-free ring of the most recent `capacity` records.
#[derive(Debug)]
pub struct SeqRing {
    slots: Box<[Slot]>,
    cursor: AtomicU64,
}

impl SeqRing {
    /// Creates a ring holding the `capacity` most recent records.
    ///
    /// # Panics
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> SeqRing {
        assert!(capacity > 0, "ring capacity must be positive");
        let slots = (0..capacity)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                idx: AtomicU64::new(0),
                fields: std::array::from_fn(|_| AtomicU64::new(0)),
            })
            .collect();
        SeqRing {
            slots,
            cursor: AtomicU64::new(0),
        }
    }

    /// Number of records the ring retains.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total number of records ever pushed (including dropped-on-contention).
    pub fn pushed(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Appends a record, overwriting the oldest once full.
    pub fn push(&self, fields: [u64; RECORD_FIELDS]) {
        let idx = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(idx % self.slots.len() as u64) as usize];
        let seq = slot.seq.load(Ordering::Relaxed);
        if seq % 2 != 0 {
            // Another writer is mid-write on this slot; records are
            // diagnostics, dropping one beats blocking.
            return;
        }
        if slot
            .seq
            .compare_exchange(seq, seq + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        // Field stores must not become visible before the odd sequence.
        std::sync::atomic::fence(Ordering::SeqCst);
        slot.idx.store(idx + 1, Ordering::Relaxed);
        for (dst, src) in slot.fields.iter().zip(fields.iter()) {
            dst.store(*src, Ordering::Relaxed);
        }
        slot.seq.store(seq + 2, Ordering::Release);
    }

    /// Returns the retained records, newest first. Torn slots (a writer was
    /// mid-update throughout the read) are skipped.
    pub fn snapshot(&self) -> Vec<[u64; RECORD_FIELDS]> {
        let mut records: Vec<(u64, [u64; RECORD_FIELDS])> = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            for _attempt in 0..8 {
                let seq_before = slot.seq.load(Ordering::Acquire);
                if seq_before == 0 {
                    break; // never written
                }
                if seq_before % 2 != 0 {
                    std::hint::spin_loop();
                    continue; // mid-write, retry
                }
                let idx = slot.idx.load(Ordering::Relaxed);
                let mut fields = [0u64; RECORD_FIELDS];
                for (dst, src) in fields.iter_mut().zip(slot.fields.iter()) {
                    *dst = src.load(Ordering::Relaxed);
                }
                // Field loads must complete before the sequence re-check.
                std::sync::atomic::fence(Ordering::Acquire);
                if slot.seq.load(Ordering::Relaxed) == seq_before {
                    records.push((idx, fields));
                    break;
                }
            }
        }
        records.sort_by_key(|r| std::cmp::Reverse(r.0));
        records.into_iter().map(|(_, f)| f).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(v: u64) -> [u64; RECORD_FIELDS] {
        let mut f = [0u64; RECORD_FIELDS];
        f[0] = v;
        f[1] = v * 10;
        f
    }

    #[test]
    fn retains_last_capacity_records_newest_first() {
        let ring = SeqRing::new(4);
        for i in 1..=10u64 {
            ring.push(rec(i));
        }
        let snap = ring.snapshot();
        let firsts: Vec<u64> = snap.iter().map(|r| r[0]).collect();
        assert_eq!(firsts, vec![10, 9, 8, 7], "oldest evicted, newest first");
        assert_eq!(snap[0][1], 100);
        assert_eq!(ring.pushed(), 10);
    }

    #[test]
    fn partially_filled_ring_returns_only_written_slots() {
        let ring = SeqRing::new(8);
        ring.push(rec(1));
        ring.push(rec(2));
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0][0], 2);
        assert_eq!(snap[1][0], 1);
    }

    #[test]
    fn concurrent_pushes_and_snapshots_stay_coherent() {
        use std::sync::Arc;
        let ring = Arc::new(SeqRing::new(16));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        let v = t * 1000 + i;
                        ring.push(rec(v));
                    }
                })
            })
            .collect();
        let reader = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for _ in 0..200 {
                    for r in ring.snapshot() {
                        // Field invariant: f[1] == 10 * f[0]; a torn record
                        // would break it.
                        assert_eq!(r[1], r[0] * 10, "torn record surfaced");
                    }
                }
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        reader.join().unwrap();
        assert!(ring.snapshot().len() <= 16);
        assert!(!ring.snapshot().is_empty());
    }
}
