//! Coordinate (triplet) format — the assembly format.
//!
//! Graphs and intermediate matrices are assembled as `(row, col, value)`
//! triplets and then compressed into [`Csr`](crate::Csr) /
//! [`Csc`](crate::Csc) for computation.

use crate::error::SparseError;
use crate::mem::MemBytes;
use crate::Result;

/// A sparse matrix in coordinate format.
///
/// Duplicate entries are allowed during assembly; conversion to compressed
/// formats sums them (the usual finite-element / graph-multigraph
/// convention, and what a multi-edge in an adjacency list means).
#[derive(Debug, Clone, PartialEq)]
pub struct Coo {
    nrows: usize,
    ncols: usize,
    rows: Vec<u32>,
    cols: Vec<u32>,
    values: Vec<f64>,
}

impl Coo {
    /// Creates an empty matrix of the given shape.
    ///
    /// # Errors
    /// [`SparseError::DimensionTooLarge`] if either dimension exceeds the
    /// `u32` index space.
    pub fn new(nrows: usize, ncols: usize) -> Result<Self> {
        check_dims(nrows, ncols)?;
        Ok(Self {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            values: Vec::new(),
        })
    }

    /// Creates an empty matrix with capacity for `nnz` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, nnz: usize) -> Result<Self> {
        check_dims(nrows, ncols)?;
        Ok(Self {
            nrows,
            ncols,
            rows: Vec::with_capacity(nnz),
            cols: Vec::with_capacity(nnz),
            values: Vec::with_capacity(nnz),
        })
    }

    /// Builds a COO matrix from parallel triplet arrays.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        rows: Vec<u32>,
        cols: Vec<u32>,
        values: Vec<f64>,
    ) -> Result<Self> {
        check_dims(nrows, ncols)?;
        if rows.len() != cols.len() || rows.len() != values.len() {
            return Err(SparseError::VectorLength {
                expected: rows.len(),
                actual: cols.len().min(values.len()),
            });
        }
        for (&r, &c) in rows.iter().zip(&cols) {
            if r as usize >= nrows || c as usize >= ncols {
                return Err(SparseError::IndexOutOfBounds {
                    index: (r as usize, c as usize),
                    shape: (nrows, ncols),
                });
            }
        }
        Ok(Self {
            nrows,
            ncols,
            rows,
            cols,
            values,
        })
    }

    /// Appends one entry.
    ///
    /// # Errors
    /// [`SparseError::IndexOutOfBounds`] if `(row, col)` lies outside the
    /// declared shape.
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> Result<()> {
        if row >= self.nrows || col >= self.ncols {
            return Err(SparseError::IndexOutOfBounds {
                index: (row, col),
                shape: (self.nrows, self.ncols),
            });
        }
        self.rows.push(row as u32);
        self.cols.push(col as u32);
        self.values.push(value);
        Ok(())
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries (duplicates counted separately).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates over `(row, col, value)` triplets in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.rows
            .iter()
            .zip(&self.cols)
            .zip(&self.values)
            .map(|((&r, &c), &v)| (r as usize, c as usize, v))
    }

    /// Consumes the matrix and returns the triplet arrays
    /// `(nrows, ncols, rows, cols, values)`.
    pub fn into_triplets(self) -> (usize, usize, Vec<u32>, Vec<u32>, Vec<f64>) {
        (self.nrows, self.ncols, self.rows, self.cols, self.values)
    }

    /// Returns the transpose (rows and columns swapped).
    pub fn transpose(mut self) -> Self {
        std::mem::swap(&mut self.rows, &mut self.cols);
        std::mem::swap(&mut self.nrows, &mut self.ncols);
        self
    }

    /// Compresses to CSR, summing duplicate entries and dropping exact zeros
    /// that result from cancellation.
    pub fn to_csr(&self) -> crate::Csr {
        crate::Csr::from_coo(self)
    }

    /// Compresses to CSC, summing duplicate entries.
    pub fn to_csc(&self) -> crate::Csc {
        crate::Csc::from_coo(self)
    }
}

impl MemBytes for Coo {
    fn mem_bytes(&self) -> usize {
        self.rows.mem_bytes() + self.cols.mem_bytes() + self.values.mem_bytes()
    }
}

pub(crate) fn check_dims(nrows: usize, ncols: usize) -> Result<()> {
    // Reserve u32::MAX itself as a sentinel-free bound.
    if nrows >= u32::MAX as usize {
        return Err(SparseError::DimensionTooLarge { dim: nrows });
    }
    if ncols >= u32::MAX as usize {
        return Err(SparseError::DimensionTooLarge { dim: ncols });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iter_roundtrip() {
        let mut m = Coo::new(3, 4).unwrap();
        m.push(0, 1, 2.0).unwrap();
        m.push(2, 3, -1.5).unwrap();
        let entries: Vec<_> = m.iter().collect();
        assert_eq!(entries, vec![(0, 1, 2.0), (2, 3, -1.5)]);
        assert_eq!(m.nnz(), 2);
        assert_eq!((m.nrows(), m.ncols()), (3, 4));
    }

    #[test]
    fn out_of_bounds_push_rejected() {
        let mut m = Coo::new(2, 2).unwrap();
        let err = m.push(2, 0, 1.0).unwrap_err();
        assert!(matches!(err, SparseError::IndexOutOfBounds { .. }));
        let err = m.push(0, 5, 1.0).unwrap_err();
        assert!(matches!(err, SparseError::IndexOutOfBounds { .. }));
    }

    #[test]
    fn from_triplets_validates() {
        let ok = Coo::from_triplets(2, 2, vec![0, 1], vec![1, 0], vec![1.0, 2.0]);
        assert!(ok.is_ok());
        let bad_len = Coo::from_triplets(2, 2, vec![0], vec![1, 0], vec![1.0, 2.0]);
        assert!(bad_len.is_err());
        let bad_idx = Coo::from_triplets(2, 2, vec![0, 3], vec![1, 0], vec![1.0, 2.0]);
        assert!(matches!(
            bad_idx.unwrap_err(),
            SparseError::IndexOutOfBounds { .. }
        ));
    }

    #[test]
    fn transpose_swaps_shape_and_indices() {
        let mut m = Coo::new(2, 3).unwrap();
        m.push(0, 2, 7.0).unwrap();
        let t = m.transpose();
        assert_eq!((t.nrows(), t.ncols()), (3, 2));
        assert_eq!(t.iter().next(), Some((2, 0, 7.0)));
    }

    #[test]
    fn huge_dimension_rejected() {
        assert!(matches!(
            Coo::new(u32::MAX as usize, 1),
            Err(SparseError::DimensionTooLarge { .. })
        ));
    }

    #[test]
    fn mem_bytes_counts_all_arrays() {
        let mut m = Coo::new(4, 4).unwrap();
        m.push(1, 1, 1.0).unwrap();
        m.push(2, 2, 2.0).unwrap();
        // two entries: 2*(4 + 4 + 8) bytes
        assert_eq!(m.mem_bytes(), 32);
    }

    #[test]
    fn empty_matrix_is_valid() {
        let m = Coo::new(0, 0).unwrap();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.iter().count(), 0);
    }
}
