//! Figure 11 / Table 5 (Appendix J) — head-to-head with Bear on the four
//! appendix datasets small enough for Bear to finish: preprocessing time,
//! preprocessed memory, and query time.

use crate::harness::{query_seeds, run_method, seed_count, Budget, Method, Metric};
use crate::table::Table;
use bepi_core::prelude::BePiVariant;
use bepi_graph::datasets::appendix_suite;
use std::fmt::Write as _;

/// Runs the BePI-vs-Bear comparison.
pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 11 — BePI vs Bear on the appendix suite (Table 5 datasets)\n"
    );
    let budget = Budget {
        bear_max_hubs: usize::MAX, // Bear must finish here, as in the paper
        ..Budget::default()
    };
    let mut tables = [
        Table::new(vec!["dataset", "BePI", "Bear"]),
        Table::new(vec!["dataset", "BePI", "Bear"]),
        Table::new(vec!["dataset", "BePI", "Bear"]),
    ];
    for spec in appendix_suite() {
        let g = spec.generate();
        eprintln!("[fig11] {} (n={}, m={})", spec.name, g.n(), g.m());
        let seeds = query_seeds(&g, seed_count(), 0xF1611 ^ spec.seed);
        let bepi = run_method(
            Method::BePi(BePiVariant::Full),
            &g,
            spec.hub_ratio,
            &seeds,
            &budget,
        );
        let bear = run_method(Method::Bear, &g, spec.hub_ratio, &seeds, &budget);
        for (ti, metric) in [
            (0usize, Metric::Preprocess),
            (1, Metric::Memory),
            (2, Metric::Query),
        ] {
            tables[ti].row(vec![
                spec.name.to_string(),
                bepi.cell(metric),
                bear.cell(metric),
            ]);
        }
    }
    for (title, t) in [
        ("(a) Preprocessing time", &tables[0]),
        ("(b) Memory for preprocessed data", &tables[1]),
        ("(c) Query time", &tables[2]),
    ] {
        let _ = writeln!(out, "{title}");
        let _ = writeln!(out, "{}", t.render());
    }
    let _ = writeln!(
        out,
        "Expected shape: BePI preprocesses orders of magnitude faster and smaller; query times are comparable."
    );
    out
}
