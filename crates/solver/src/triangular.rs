//! Sparse triangular solves (forward and backward substitution).
//!
//! Appendix B of the paper: "forward and backward substitutions
//! efficiently compute z without matrix inversion, i.e.
//! `z = U₂\_B (L₂\_F w)`", with the same complexity as matrix-vector
//! multiplication. These kernels back the ILU(0) preconditioner, the
//! sparse-LU solves, and sparse-RHS variants drive triangular-factor
//! inversion.

use bepi_sparse::{Csc, Csr, Result, SparseError};

/// Solves `L x = b` in place for a lower-triangular CSR matrix `L`
/// (diagonal entries must be present and non-zero unless `unit_diag`).
pub fn solve_lower_csr(l: &Csr, b: &mut [f64], unit_diag: bool) -> Result<()> {
    let n = l.nrows();
    if b.len() != n {
        return Err(SparseError::VectorLength {
            expected: n,
            actual: b.len(),
        });
    }
    for i in 0..n {
        let (cols, vals) = l.row(i);
        let mut acc = b[i];
        let mut diag = if unit_diag { 1.0 } else { 0.0 };
        for (&c, &v) in cols.iter().zip(vals) {
            let c = c as usize;
            match c.cmp(&i) {
                std::cmp::Ordering::Less => acc -= v * b[c],
                std::cmp::Ordering::Equal => diag = if unit_diag { 1.0 } else { v },
                std::cmp::Ordering::Greater => {
                    return Err(SparseError::Parse(format!(
                        "matrix not lower triangular: entry ({i}, {c})"
                    )))
                }
            }
        }
        if diag == 0.0 {
            return Err(SparseError::ZeroDiagonal { row: i });
        }
        b[i] = acc / diag;
    }
    Ok(())
}

/// Solves `U x = b` in place for an upper-triangular CSR matrix `U`
/// (diagonal entries must be present and non-zero).
pub fn solve_upper_csr(u: &Csr, b: &mut [f64]) -> Result<()> {
    let n = u.nrows();
    if b.len() != n {
        return Err(SparseError::VectorLength {
            expected: n,
            actual: b.len(),
        });
    }
    for i in (0..n).rev() {
        let (cols, vals) = u.row(i);
        let mut acc = b[i];
        let mut diag = 0.0;
        for (&c, &v) in cols.iter().zip(vals) {
            let c = c as usize;
            match c.cmp(&i) {
                std::cmp::Ordering::Greater => acc -= v * b[c],
                std::cmp::Ordering::Equal => diag = v,
                std::cmp::Ordering::Less => {
                    return Err(SparseError::Parse(format!(
                        "matrix not upper triangular: entry ({i}, {c})"
                    )))
                }
            }
        }
        if diag == 0.0 {
            return Err(SparseError::ZeroDiagonal { row: i });
        }
        b[i] = acc / diag;
    }
    Ok(())
}

/// Solves `L x = b` for column-stored `L` (lower triangular CSC, sorted
/// row indices so the diagonal is the first entry of each column).
pub fn solve_lower_csc(l: &Csc, b: &mut [f64], unit_diag: bool) -> Result<()> {
    let n = l.ncols();
    if b.len() != n {
        return Err(SparseError::VectorLength {
            expected: n,
            actual: b.len(),
        });
    }
    for j in 0..n {
        let (rows, vals) = l.col(j);
        let mut iter = rows.iter().zip(vals).peekable();
        // Diagonal first (row indices sorted ascending, all ≥ j).
        let diag = if unit_diag {
            if let Some(&(&r, _)) = iter.peek() {
                if r as usize == j {
                    iter.next();
                }
            }
            1.0
        } else {
            match iter.next() {
                Some((&r, &v)) if r as usize == j => v,
                _ => return Err(SparseError::ZeroDiagonal { row: j }),
            }
        };
        if diag == 0.0 {
            return Err(SparseError::ZeroDiagonal { row: j });
        }
        let xj = b[j] / diag;
        b[j] = xj;
        if xj != 0.0 {
            for (&r, &v) in iter {
                b[r as usize] -= v * xj;
            }
        }
    }
    Ok(())
}

/// Solves `U x = b` for column-stored `U` (upper triangular CSC, sorted
/// row indices so the diagonal is the last entry of each column).
pub fn solve_upper_csc(u: &Csc, b: &mut [f64]) -> Result<()> {
    let n = u.ncols();
    if b.len() != n {
        return Err(SparseError::VectorLength {
            expected: n,
            actual: b.len(),
        });
    }
    for j in (0..n).rev() {
        let (rows, vals) = u.col(j);
        let diag = match rows.last() {
            Some(&r) if r as usize == j => vals[vals.len() - 1],
            _ => return Err(SparseError::ZeroDiagonal { row: j }),
        };
        if diag == 0.0 {
            return Err(SparseError::ZeroDiagonal { row: j });
        }
        let xj = b[j] / diag;
        b[j] = xj;
        if xj != 0.0 {
            for (&r, &v) in rows[..rows.len() - 1].iter().zip(vals) {
                b[r as usize] -= v * xj;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bepi_sparse::{Coo, Csc};

    fn lower() -> Csr {
        // L = [[2, 0, 0], [1, 3, 0], [0, -1, 4]]
        let mut coo = Coo::new(3, 3).unwrap();
        coo.push(0, 0, 2.0).unwrap();
        coo.push(1, 0, 1.0).unwrap();
        coo.push(1, 1, 3.0).unwrap();
        coo.push(2, 1, -1.0).unwrap();
        coo.push(2, 2, 4.0).unwrap();
        coo.to_csr()
    }

    fn upper() -> Csr {
        lower().transpose()
    }

    #[test]
    fn lower_csr_solve() {
        let l = lower();
        let x_true = vec![1.0, -2.0, 0.5];
        let mut b = l.mul_vec(&x_true).unwrap();
        solve_lower_csr(&l, &mut b, false).unwrap();
        for (a, e) in b.iter().zip(&x_true) {
            assert!((a - e).abs() < 1e-12);
        }
    }

    #[test]
    fn upper_csr_solve() {
        let u = upper();
        let x_true = vec![3.0, 0.0, -1.0];
        let mut b = u.mul_vec(&x_true).unwrap();
        solve_upper_csr(&u, &mut b).unwrap();
        for (a, e) in b.iter().zip(&x_true) {
            assert!((a - e).abs() < 1e-12);
        }
    }

    #[test]
    fn unit_diag_lower_ignores_missing_diag() {
        // L = [[1, 0], [5, 1]] with implicit unit diagonal.
        let mut coo = Coo::new(2, 2).unwrap();
        coo.push(1, 0, 5.0).unwrap();
        let l = coo.to_csr();
        let mut b = vec![2.0, 11.0];
        solve_lower_csr(&l, &mut b, true).unwrap();
        assert_eq!(b, vec![2.0, 1.0]);
    }

    #[test]
    fn csc_solves_match_csr() {
        let l = lower();
        let u = upper();
        let lc = Csc::from_csr(&l);
        let uc = Csc::from_csr(&u);
        let x_true = vec![0.3, 1.7, -0.9];

        let mut b1 = l.mul_vec(&x_true).unwrap();
        let mut b2 = b1.clone();
        solve_lower_csr(&l, &mut b1, false).unwrap();
        solve_lower_csc(&lc, &mut b2, false).unwrap();
        for (a, b) in b1.iter().zip(&b2) {
            assert!((a - b).abs() < 1e-13);
        }

        let mut b1 = u.mul_vec(&x_true).unwrap();
        let mut b2 = b1.clone();
        solve_upper_csr(&u, &mut b1).unwrap();
        solve_upper_csc(&uc, &mut b2).unwrap();
        for (a, b) in b1.iter().zip(&b2) {
            assert!((a - b).abs() < 1e-13);
        }
    }

    #[test]
    fn zero_diagonal_rejected() {
        let mut coo = Coo::new(2, 2).unwrap();
        coo.push(1, 0, 1.0).unwrap(); // missing both diagonals
        let l = coo.to_csr();
        let mut b = vec![1.0, 1.0];
        assert!(matches!(
            solve_lower_csr(&l, &mut b, false),
            Err(SparseError::ZeroDiagonal { .. })
        ));
    }

    #[test]
    fn non_triangular_rejected() {
        let mut coo = Coo::new(2, 2).unwrap();
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 1, 1.0).unwrap(); // upper entry in "lower" matrix
        coo.push(1, 1, 1.0).unwrap();
        let l = coo.to_csr();
        let mut b = vec![1.0, 1.0];
        assert!(solve_lower_csr(&l, &mut b, false).is_err());
    }

    #[test]
    fn wrong_length_rejected() {
        let l = lower();
        let mut b = vec![1.0; 2];
        assert!(solve_lower_csr(&l, &mut b, false).is_err());
    }
}
