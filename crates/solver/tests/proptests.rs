//! Property-based tests for the numerical substrate: all solvers agree
//! with the dense reference on random strictly diagonally dominant
//! systems (the class every BePI matrix belongs to).

use bepi_solver::dense_lu::DenseLu;
use bepi_solver::jacobi::{jacobi, JacobiConfig};
use bepi_solver::{gmres, GmresConfig, Ilu0, Preconditioner, SparseLu};
use bepi_sparse::{Coo, Csc, Csr};
use proptest::prelude::*;

/// Strategy: a random strictly column-diagonally-dominant sparse matrix
/// and a random RHS.
fn dd_system() -> impl Strategy<Value = (Csr, Vec<f64>)> {
    (3usize..40).prop_flat_map(|n| {
        let entries = proptest::collection::vec((0..n, 0..n, 0.1f64..1.0), n..(n * 3));
        let rhs = proptest::collection::vec(-2.0f64..2.0, n..=n);
        (entries, rhs).prop_map(move |(ents, b)| {
            let mut coo = Coo::new(n, n).unwrap();
            let mut col_sums = vec![0.0f64; n];
            for (r, c, v) in ents {
                if r != c {
                    coo.push(r, c, -v).unwrap();
                    col_sums[c] += v;
                }
            }
            for (i, s) in col_sums.iter().enumerate() {
                coo.push(i, i, s + 0.5).unwrap();
            }
            (coo.to_csr(), b)
        })
    })
}

fn dense_solve(a: &Csr, b: &[f64]) -> Vec<f64> {
    DenseLu::factor(&a.to_dense()).unwrap().solve(b).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn gmres_matches_dense_lu((a, b) in dd_system()) {
        let want = dense_solve(&a, &b);
        let got = gmres(&a, &b, None, None, &GmresConfig::default()).unwrap();
        prop_assert!(got.converged);
        for (x, y) in got.x.iter().zip(&want) {
            prop_assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
    }

    #[test]
    fn preconditioned_gmres_matches_and_is_no_slower((a, b) in dd_system()) {
        let want = dense_solve(&a, &b);
        let ilu = Ilu0::factor(&a).unwrap();
        let got = gmres(&a, &b, None, Some(&ilu as &dyn Preconditioner), &GmresConfig::default()).unwrap();
        prop_assert!(got.converged);
        for (x, y) in got.x.iter().zip(&want) {
            prop_assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn sparse_lu_matches_dense_lu((a, b) in dd_system()) {
        let want = dense_solve(&a, &b);
        let lu = SparseLu::factor(&Csc::from_csr(&a)).unwrap();
        let got = lu.solve(&b).unwrap();
        for (x, y) in got.iter().zip(&want) {
            prop_assert!((x - y).abs() < 1e-8, "{x} vs {y}");
        }
    }

    #[test]
    fn inverted_factors_match_solve((a, b) in dd_system()) {
        let lu = SparseLu::factor(&Csc::from_csr(&a)).unwrap();
        let direct = lu.solve(&b).unwrap();
        let (linv, uinv) = lu.invert_factors();
        let via_inv = uinv.mul_vec(&linv.mul_vec(&b).unwrap()).unwrap();
        for (x, y) in via_inv.iter().zip(&direct) {
            prop_assert!((x - y).abs() < 1e-8);
        }
    }

    #[test]
    fn jacobi_matches_dense_lu((a, b) in dd_system()) {
        let want = dense_solve(&a, &b);
        let got = jacobi(&a, &b, &JacobiConfig { tol: 1e-12, max_iters: 100_000 }).unwrap();
        prop_assert!(got.converged);
        for (x, y) in got.x.iter().zip(&want) {
            prop_assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn eigenvalue_trace_invariant((a, _b) in dd_system()) {
        let eigs = bepi_solver::eig::dense_eigenvalues(&a.to_dense());
        let trace: f64 = a.diagonal().iter().sum();
        let eig_sum: f64 = eigs.iter().map(|e| e.0).sum();
        prop_assert!((trace - eig_sum).abs() < 1e-6 * trace.abs().max(1.0),
            "trace {trace} vs eig sum {eig_sum}");
        // Imaginary parts pair up.
        let imag: f64 = eigs.iter().map(|e| e.1).sum();
        prop_assert!(imag.abs() < 1e-7);
    }

    #[test]
    fn ilu0_exact_when_no_fill_dropped((a, b) in dd_system()) {
        // ILU(0) is a contraction-quality preconditioner: one application
        // must reduce the residual of the correction equation.
        let ilu = Ilu0::factor(&a).unwrap();
        let mut z = vec![0.0; b.len()];
        ilu.solve_into(&b, &mut z);
        let az = a.mul_vec(&z).unwrap();
        let res: f64 = az.iter().zip(&b).map(|(x, y)| (x - y).powi(2)).sum::<f64>().sqrt();
        let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
        prop_assert!(res <= nb * 0.9 + 1e-12, "residual {res} vs rhs norm {nb}");
    }
}
