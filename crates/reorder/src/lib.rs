//! # bepi-reorder
//!
//! Node reordering methods for the BePI reproduction (Jung et al., SIGMOD
//! 2017, Section 3.2).
//!
//! BePI's preprocessing applies two reorderings in sequence (Figure 3):
//!
//! 1. **Deadend reordering** ([`deadend`]) — nodes with no out-edges are
//!    moved to the end, splitting `H` into `[[Hnn, 0], [Hdn, I]]`.
//! 2. **Hub-and-spoke reordering** ([`mod@slashburn`]) — SlashBurn (Kang &
//!    Faloutsos, ICDM 2011) orders the non-deadend nodes so that *spokes*
//!    (nodes in small components left after removing high-degree *hubs*)
//!    come first, grouped by connected component, and hubs come last. The
//!    resulting `H11` is block diagonal with small blocks.
//!
//! The LU-decomposition baseline instead uses a degree ordering
//! ([`degree`]), following Fujiwara et al.
//!
//! All reorderings return [`bepi_sparse::Permutation`]s composable via
//! `Permutation::then`.
//!
//! ```
//! use bepi_graph::generators;
//! use bepi_reorder::{slashburn, SlashBurnConfig};
//!
//! let g = generators::rmat(8, 1200, generators::RmatParams::default(), 7)?;
//! let result = slashburn(&g.undirected_structure(), &SlashBurnConfig::with_ratio(0.2));
//! assert_eq!(result.n_spokes + result.n_hubs, g.n());
//! // Spoke blocks tile the spoke region — these are H11's diagonal blocks.
//! assert_eq!(result.block_sizes.iter().sum::<usize>(), result.n_spokes);
//! # Ok::<(), bepi_sparse::SparseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Index-based loops over multiple parallel arrays are the clearest (and
// often fastest) idiom in the numerical kernels here; the iterator
// rewrites clippy suggests obscure the subscript structure of the math.
#![allow(clippy::needless_range_loop)]

pub mod blocks;
pub mod deadend;
pub mod degree;
pub mod rcm;
pub mod slashburn;

pub use blocks::diagonal_blocks;
pub use deadend::{reorder_deadends, DeadendReorder};
pub use degree::{degree_order, DegreeOrder};
pub use rcm::{bandwidth, rcm_order};
pub use slashburn::{slashburn, SlashBurnConfig, SlashBurnResult};
