//! Audits the CLI usage text against the argument parsers.
//!
//! Every `--flag` literal that appears in `src/main.rs` (i.e. every flag
//! some parser accepts) must also appear in the output of `bepi help`,
//! so the usage text cannot silently drift from the parsers when a flag
//! is added.

use std::collections::BTreeSet;
use std::process::Command;

/// Extract every distinct `--flag-name` token from `text`.
fn extract_flags(text: &str) -> BTreeSet<String> {
    let bytes = text.as_bytes();
    let mut flags = BTreeSet::new();
    let mut i = 0;
    while i + 1 < bytes.len() {
        if bytes[i] == b'-' && bytes[i + 1] == b'-' {
            let start = i;
            i += 2;
            while i < bytes.len() && (bytes[i].is_ascii_lowercase() || bytes[i] == b'-') {
                i += 1;
            }
            // Require at least one letter after the dashes, and skip
            // doc-comment dashes like `// --- section ---`.
            let tok = &text[start..i];
            if tok.len() > 2 && tok[2..].bytes().any(|b| b.is_ascii_lowercase()) {
                flags.insert(tok.trim_end_matches('-').to_string());
            }
        } else {
            i += 1;
        }
    }
    flags
}

#[test]
fn every_parsed_flag_is_documented_in_help() {
    let src_path = concat!(env!("CARGO_MANIFEST_DIR"), "/src/main.rs");
    let src = std::fs::read_to_string(src_path).expect("read src/main.rs");

    // Only lines that mention a flag in code (match arms, comparisons,
    // starts_with checks) count as "the parser accepts this" — the USAGE
    // string itself is what we're auditing, so exclude it by extracting
    // flags from string literals in code lines that are not part of the
    // USAGE const. Simplest robust split: USAGE is a single raw string
    // const; everything after its closing delimiter is parser code.
    let after_usage = src.split_once("\";").map(|(_, rest)| rest).unwrap_or(&src);
    let parsed = extract_flags(after_usage);
    assert!(
        parsed.contains("--threads") && parsed.contains("--quick"),
        "flag extraction looks broken: {parsed:?}"
    );

    let out = Command::new(env!("CARGO_BIN_EXE_bepi"))
        .arg("help")
        .output()
        .expect("run bepi help");
    assert!(out.status.success(), "bepi help exited nonzero");
    let help = String::from_utf8(out.stdout).expect("utf8 help text");
    let documented = extract_flags(&help);

    let missing: Vec<&String> = parsed.difference(&documented).collect();
    assert!(
        missing.is_empty(),
        "flags accepted by a parser but absent from `bepi help`: {missing:?}"
    );
}

#[test]
fn help_documents_every_query_method_and_serving_mode() {
    let out = Command::new(env!("CARGO_BIN_EXE_bepi"))
        .arg("help")
        .output()
        .expect("run bepi help");
    let help = String::from_utf8(out.stdout).expect("utf8 help text");
    // `--method` must be documented with all four engines, and the
    // daemon's mode parameter with all three values — these are the
    // user-facing names of the approximate-serving surface.
    assert!(help.contains("--method"), "missing --method");
    for method in ["bepi", "push", "walk", "tpa"] {
        assert!(
            help.contains(method),
            "query method `{method}` missing from help output"
        );
    }
    assert!(
        help.contains("mode=exact|approx|auto") || help.contains("mode=M"),
        "daemon mode parameter missing from help output"
    );
    assert!(help.contains("--pressure"), "missing --pressure");
    assert!(help.contains("--approx-engine"), "missing --approx-engine");
}

#[test]
fn help_lists_every_subcommand_dispatched() {
    let out = Command::new(env!("CARGO_BIN_EXE_bepi"))
        .arg("help")
        .output()
        .expect("run bepi help");
    let help = String::from_utf8(out.stdout).expect("utf8 help text");
    for sub in [
        "query",
        "ppr",
        "community",
        "stats",
        "select-k",
        "preprocess",
        "convert",
        "serve",
        "bench",
        "help",
    ] {
        assert!(
            help.contains(&format!("bepi {sub}")),
            "subcommand `{sub}` missing from help output"
        );
    }
}
