//! Batch query execution, serial and multi-threaded.
//!
//! The paper's target workload is many queries against one preprocessed
//! instance ("especially when they should serve many query nodes",
//! Section 1). BePI's query phase is read-only over the preprocessed
//! matrices, so queries parallelize embarrassingly across threads; this
//! module provides the fan-out on top of `crossbeam`'s scoped threads.

use crate::bepi::BePi;
use crate::rwr::RwrScores;
use bepi_sparse::{Result, SparseError};

impl BePi {
    /// Answers a batch of queries serially, in input order.
    pub fn query_batch(&self, seeds: &[usize]) -> Result<Vec<RwrScores>> {
        seeds.iter().map(|&s| self.query_with_stats(s)).collect()
    }

    /// Answers a batch of queries on `threads` worker threads, preserving
    /// input order. Results are identical to [`BePi::query_batch`] —
    /// every query runs the same deterministic solve on shared read-only
    /// data.
    pub fn query_batch_parallel(
        &self,
        seeds: &[usize],
        threads: usize,
    ) -> Result<Vec<RwrScores>> {
        if threads <= 1 || seeds.len() <= 1 {
            return self.query_batch(seeds);
        }
        let threads = threads.min(seeds.len());
        let mut results: Vec<Option<Result<RwrScores>>> = Vec::new();
        results.resize_with(seeds.len(), || None);
        let chunk = seeds.len().div_ceil(threads);
        crossbeam::thread::scope(|scope| {
            for (seed_chunk, result_chunk) in
                seeds.chunks(chunk).zip(results.chunks_mut(chunk))
            {
                scope.spawn(move |_| {
                    for (s, slot) in seed_chunk.iter().zip(result_chunk.iter_mut()) {
                        *slot = Some(self.query_with_stats(*s));
                    }
                });
            }
        })
        .map_err(|_| SparseError::Numerical("query worker thread panicked".into()))?;
        results
            .into_iter()
            .map(|r| r.expect("every slot filled by its worker"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bepi::BePiConfig;
    use crate::rwr::RwrSolver;
    use bepi_graph::generators;

    #[test]
    fn serial_batch_matches_individual_queries() {
        let g = generators::erdos_renyi(150, 700, 3).unwrap();
        let solver = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        let seeds = [0usize, 5, 149, 5]; // duplicates allowed
        let batch = solver.query_batch(&seeds).unwrap();
        assert_eq!(batch.len(), 4);
        for (i, &s) in seeds.iter().enumerate() {
            assert_eq!(batch[i].scores, solver.query(s).unwrap().scores);
        }
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let g = generators::rmat(8, 900, generators::RmatParams::default(), 71).unwrap();
        let solver = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        let seeds: Vec<usize> = (0..24).map(|i| (i * 17) % g.n()).collect();
        let serial = solver.query_batch(&seeds).unwrap();
        for threads in [2usize, 4, 7] {
            let parallel = solver.query_batch_parallel(&seeds, threads).unwrap();
            assert_eq!(parallel.len(), serial.len());
            for (a, b) in parallel.iter().zip(&serial) {
                assert_eq!(a.scores, b.scores, "threads = {threads}");
                assert_eq!(a.iterations, b.iterations);
            }
        }
    }

    #[test]
    fn parallel_with_one_thread_or_one_seed_degenerates() {
        let g = generators::cycle(20);
        let solver = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        let one = solver.query_batch_parallel(&[3], 8).unwrap();
        assert_eq!(one.len(), 1);
        let single_thread = solver.query_batch_parallel(&[1, 2, 3], 1).unwrap();
        assert_eq!(single_thread.len(), 3);
    }

    #[test]
    fn bad_seed_in_batch_is_an_error() {
        let g = generators::cycle(10);
        let solver = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        assert!(solver.query_batch(&[1, 99]).is_err());
        assert!(solver.query_batch_parallel(&[1, 99, 2, 3], 2).is_err());
    }

    #[test]
    fn empty_batch() {
        let g = generators::cycle(5);
        let solver = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        assert!(solver.query_batch(&[]).unwrap().is_empty());
        assert!(solver.query_batch_parallel(&[], 4).unwrap().is_empty());
    }
}
