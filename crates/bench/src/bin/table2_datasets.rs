//! Regenerates the paper artifact; see `bepi_bench::experiments::table2`.

fn main() {
    print!("{}", bepi_bench::experiments::table2::run());
}
