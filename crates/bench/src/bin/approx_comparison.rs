//! Regenerates the exact-vs-approximate comparison; see
//! `bepi_bench::experiments::approx_comparison`.

fn main() {
    print!("{}", bepi_bench::experiments::approx_comparison::run());
}
