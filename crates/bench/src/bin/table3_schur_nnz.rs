//! Regenerates the paper artifact; see `bepi_bench::experiments::table34`.

fn main() {
    print!("{}", bepi_bench::experiments::table34::run_table3());
}
