//! Deadend reordering (Section 3.2.1 of the paper).
//!
//! Deadends — nodes with no out-edges — are moved to the highest labels so
//! the adjacency matrix takes the form `[[Ann, And], [0, 0]]` and `H`
//! becomes `[[Hnn, 0], [Hdn, I]]` (Figure 3(b)). The identity block means
//! the deadend part of an RWR query reduces to one SpMV (Equation 4).

use bepi_graph::Graph;
use bepi_sparse::Permutation;

/// Result of the deadend reordering.
#[derive(Debug, Clone)]
pub struct DeadendReorder {
    /// Relabeling: non-deadends keep relative order in `0..n_non_deadend`,
    /// deadends keep relative order in `n_non_deadend..n`.
    pub perm: Permutation,
    /// Number of non-deadend nodes (paper's `n1 + n2` before hub-and-spoke).
    pub n_non_deadend: usize,
    /// Number of deadend nodes (paper's `n3`).
    pub n_deadend: usize,
}

/// Computes the deadend reordering of a graph.
///
/// The ordering is *stable*: ties preserve the original node order, which
/// keeps downstream experiments deterministic.
pub fn reorder_deadends(g: &Graph) -> DeadendReorder {
    let n = g.n();
    let mut new_of_old = vec![0u32; n];
    let mut next_live = 0u32;
    let n_deadend = g.deadend_count();
    let n_non_deadend = n - n_deadend;
    let mut next_dead = n_non_deadend as u32;
    for u in 0..n {
        if g.out_degree(u) == 0 {
            new_of_old[u] = next_dead;
            next_dead += 1;
        } else {
            new_of_old[u] = next_live;
            next_live += 1;
        }
    }
    let perm = Permutation::from_new_of_old(new_of_old)
        .expect("constructed mapping is a bijection by construction");
    DeadendReorder {
        perm,
        n_non_deadend,
        n_deadend,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_counts() {
        // 0→1, 2→0; nodes 1 and 3 are deadends.
        let g = Graph::from_edges(4, &[(0, 1), (2, 0)]).unwrap();
        let r = reorder_deadends(&g);
        assert_eq!(r.n_non_deadend, 2);
        assert_eq!(r.n_deadend, 2);
        // Non-deadends 0, 2 → labels 0, 1 (stable); deadends 1, 3 → 2, 3.
        assert_eq!(r.perm.apply(0), 0);
        assert_eq!(r.perm.apply(2), 1);
        assert_eq!(r.perm.apply(1), 2);
        assert_eq!(r.perm.apply(3), 3);
    }

    #[test]
    fn reordered_adjacency_has_zero_deadend_rows() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 4), (2, 0), (2, 3)]).unwrap();
        let r = reorder_deadends(&g);
        let a = r.perm.permute_symmetric(g.adjacency()).unwrap();
        // All rows >= n_non_deadend must be empty.
        for row in r.n_non_deadend..g.n() {
            assert_eq!(a.row_nnz(row), 0, "deadend row {row} not empty");
        }
        // Edge count preserved.
        assert_eq!(a.nnz(), g.m());
    }

    #[test]
    fn no_deadends_is_identity() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let r = reorder_deadends(&g);
        assert_eq!(r.n_deadend, 0);
        for u in 0..3 {
            assert_eq!(r.perm.apply(u), u);
        }
    }

    #[test]
    fn all_deadends() {
        let g = Graph::from_edges(3, &[]).unwrap();
        let r = reorder_deadends(&g);
        assert_eq!(r.n_non_deadend, 0);
        assert_eq!(r.n_deadend, 3);
    }
}
