//! Regenerates the paper artifact; see `bepi_bench::experiments::fig5`.

fn main() {
    print!("{}", bepi_bench::experiments::fig5::run());
}
