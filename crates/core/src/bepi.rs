//! BePI — the paper's proposed method, in its three variants
//! (Section 3, Algorithms 1–4).
//!
//! * **BePI-B** — node reordering + block elimination, with GMRES solving
//!   the Schur system at query time (no `S^{-1}`). SlashBurn runs with a
//!   small hub ratio (`k = 0.001`, as Bear uses) to make `n2` small.
//! * **BePI-S** — same pipeline, but the hub ratio is chosen to minimize
//!   `|S|` (Section 3.4; `k ≈ 0.2–0.3` in Table 2), shrinking both the
//!   preprocessing cost and the per-iteration cost of GMRES.
//! * **BePI** — additionally precomputes ILU(0) factors of `S` and runs
//!   *preconditioned* GMRES (Section 3.5), cutting iteration counts
//!   several-fold (Table 4).

use crate::hmatrix::HPartition;
use crate::rwr::{check_restart_prob, check_seed, RwrScores, RwrSolver};
use crate::schur::schur_complement;
use crate::{DEFAULT_RESTART_PROB, DEFAULT_TOLERANCE};
use bepi_graph::Graph;
use bepi_incr::{DirtySet, SymbolicPlan};
use bepi_solver::{
    bicgstab, gmres, BiCgStabConfig, BlockLu, GmresConfig, Ilu0, JacobiPrecond, NeumannPrecond,
    Preconditioner,
};
use bepi_sparse::{Csr, MemBytes, Permutation, Result};
use std::time::{Duration, Instant};

/// Which of the three BePI variants to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BePiVariant {
    /// BePI-B: block elimination + iterative Schur solve.
    Basic,
    /// BePI-S: + Schur-complement sparsification via the hub ratio.
    Sparse,
    /// BePI: + ILU(0) preconditioning of the Schur system.
    Full,
}

impl BePiVariant {
    /// Name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            BePiVariant::Basic => "BePI-B",
            BePiVariant::Sparse => "BePI-S",
            BePiVariant::Full => "BePI",
        }
    }
}

/// Which Krylov method solves the Schur system at query time.
///
/// The paper uses GMRES but notes (Section 2.2) that any Krylov method
/// for non-symmetric systems applies; BiCGSTAB is the short-recurrence
/// alternative, compared in the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InnerSolver {
    /// Restarted GMRES (the paper's choice).
    #[default]
    Gmres,
    /// BiCGSTAB.
    BiCgStab,
}

/// Which preconditioner the full BePI variant builds for the Schur system
/// (Section 3.5 discusses ILU vs SPAI-style alternatives).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PrecondKind {
    /// ILU(0) — the paper's choice.
    #[default]
    Ilu0,
    /// Diagonal (Jacobi) scaling.
    Jacobi,
    /// Truncated Neumann series of the given order (SPAI-style explicit
    /// approximate inverse; applications are pure SpMVs).
    Neumann(usize),
}

/// Configuration of a BePI preprocessing run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BePiConfig {
    /// Variant to run.
    pub variant: BePiVariant,
    /// Restart probability `c` (paper default 0.05).
    pub c: f64,
    /// Error tolerance ε for the iterative Schur solve (paper: 1e-9).
    pub tol: f64,
    /// SlashBurn hub selection ratio; `None` picks the variant default
    /// (0.001 for BePI-B as in Bear, 0.2 for BePI-S/BePI).
    pub hub_ratio: Option<f64>,
    /// GMRES restart length.
    pub gmres_restart: usize,
    /// Iterative-solver total-iteration cap.
    pub max_iters: usize,
    /// Krylov method for the Schur solve.
    pub inner: InnerSolver,
    /// Preconditioner built by the full variant (ignored by BePI-B/-S,
    /// which run unpreconditioned as in the paper).
    pub precond: PrecondKind,
}

impl Default for BePiConfig {
    fn default() -> Self {
        Self {
            variant: BePiVariant::Full,
            c: DEFAULT_RESTART_PROB,
            tol: DEFAULT_TOLERANCE,
            hub_ratio: None,
            gmres_restart: 100,
            max_iters: 10_000,
            inner: InnerSolver::Gmres,
            precond: PrecondKind::Ilu0,
        }
    }
}

impl BePiConfig {
    /// Config for a given variant with the other fields defaulted.
    pub fn for_variant(variant: BePiVariant) -> Self {
        Self {
            variant,
            ..Self::default()
        }
    }

    /// The effective hub ratio.
    pub fn effective_hub_ratio(&self) -> f64 {
        self.hub_ratio.unwrap_or(match self.variant {
            BePiVariant::Basic => 0.001,
            BePiVariant::Sparse | BePiVariant::Full => 0.2,
        })
    }
}

/// Wall time of one named preprocessing phase (Table 3's time breakdown).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTiming {
    /// Phase name (`deadend`, `slashburn`, `assemble`, `block_lu`,
    /// `schur`, `precond`).
    pub name: String,
    /// Wall time of the phase in seconds.
    pub seconds: f64,
}

/// Statistics recorded during preprocessing (Algorithm 1 / 3).
#[derive(Debug, Clone)]
pub struct PreprocessStats {
    /// Wall-clock preprocessing time.
    pub elapsed: Duration,
    /// Spoke count `n1`.
    pub n1: usize,
    /// Hub count `n2`.
    pub n2: usize,
    /// Deadend count `n3`.
    pub n3: usize,
    /// SlashBurn iterations.
    pub slashburn_iterations: usize,
    /// Number of diagonal blocks `b` in `H11`.
    pub num_blocks: usize,
    /// Non-zeros of the Schur complement `|S|`.
    pub s_nnz: usize,
    /// Non-zeros of the inverted block factors `|L1^{-1}| + |U1^{-1}|`.
    pub h11_inv_nnz: usize,
    /// Per-phase wall-time breakdown, in pipeline order (empty when the
    /// instance was loaded from a pre-v4 index file).
    pub phases: Vec<PhaseTiming>,
}

/// A preprocessed BePI instance, ready to answer RWR queries
/// (Algorithm 2 / 4).
/// The preconditioner actually built at preprocessing time.
#[derive(Debug, Clone)]
enum BuiltPrecond {
    None,
    Ilu(Ilu0),
    Jacobi(JacobiPrecond),
    Neumann(NeumannPrecond),
}

impl BuiltPrecond {
    fn as_dyn(&self) -> Option<&dyn Preconditioner> {
        match self {
            BuiltPrecond::None => None,
            BuiltPrecond::Ilu(m) => Some(m),
            BuiltPrecond::Jacobi(m) => Some(m),
            BuiltPrecond::Neumann(m) => Some(m),
        }
    }
}

impl BuiltPrecond {
    fn heap_bytes(&self) -> usize {
        match self {
            BuiltPrecond::None => 0,
            BuiltPrecond::Ilu(m) => m.heap_bytes(),
            // Jacobi / Neumann are always recomputed on load, never mapped.
            BuiltPrecond::Jacobi(m) => m.mem_bytes(),
            BuiltPrecond::Neumann(m) => m.mem_bytes(),
        }
    }

    fn mapped_bytes(&self) -> usize {
        match self {
            BuiltPrecond::Ilu(m) => m.mapped_bytes(),
            _ => 0,
        }
    }
}

impl MemBytes for BuiltPrecond {
    fn mem_bytes(&self) -> usize {
        match self {
            BuiltPrecond::None => 0,
            BuiltPrecond::Ilu(m) => m.mem_bytes(),
            BuiltPrecond::Jacobi(m) => m.mem_bytes(),
            BuiltPrecond::Neumann(m) => m.mem_bytes(),
        }
    }
}

/// One component of an index's physical memory split
/// (see [`BePi::memory_report`]).
#[derive(Debug, Clone)]
pub struct MemorySection {
    /// Component name (`perm`, `l1_inv`, `schur`, …).
    pub name: &'static str,
    /// Bytes held on the process heap.
    pub heap_bytes: usize,
    /// Bytes served zero-copy from a memory-mapped index file (counted
    /// against the shared page cache, not private anonymous memory).
    pub mapped_bytes: usize,
}

/// Everything needed to assemble a [`BePi`] from persisted components —
/// the hand-off type between [`crate::persist`] decoders and the private
/// fields here.
pub(crate) struct RawParts {
    pub config: BePiConfig,
    pub perm: Permutation,
    pub n1: usize,
    pub n2: usize,
    pub n3: usize,
    pub h11_lu: BlockLu,
    pub s: Csr,
    /// Pre-built ILU(0) factors, when the index persisted them (format
    /// v6). `None` means: rebuild whatever preconditioner the config
    /// calls for from `S`.
    pub ilu: Option<Ilu0>,
    pub h12: Csr,
    pub h21: Csr,
    pub h31: Csr,
    pub h32: Csr,
    pub slashburn_iterations: usize,
    pub elapsed: Duration,
    pub phases: Vec<PhaseTiming>,
}

/// A preprocessed BePI instance, ready to answer RWR queries
/// (Algorithm 2 / 4).
#[derive(Debug, Clone)]
pub struct BePi {
    config: BePiConfig,
    perm: Permutation,
    n1: usize,
    n2: usize,
    n3: usize,
    h11_lu: BlockLu,
    s: Csr,
    precond: BuiltPrecond,
    h12: Csr,
    h21: Csr,
    h31: Csr,
    h32: Csr,
    stats: PreprocessStats,
}

impl BePi {
    /// Runs the preprocessing phase (Algorithm 1 for BePI-B/-S,
    /// Algorithm 3 for full BePI).
    pub fn preprocess(g: &Graph, config: &BePiConfig) -> Result<Self> {
        check_restart_prob(config.c)?;
        let start = Instant::now();
        let k = config.effective_hub_ratio();
        let part = HPartition::build(g, config.c, k)?;
        Self::factor_partition(part, config, start)
    }

    /// Runs only the *numeric* half of preprocessing under a frozen
    /// [`SymbolicPlan`]: assemble `H` in the plan's order, factor `H11`,
    /// form `S`, build the preconditioner. Skips deadend reordering and
    /// SlashBurn entirely, so the result is bit-identical to
    /// [`BePi::preprocess`] whenever the plan came from a preprocess of a
    /// graph with the same structure (and [`bepi_incr::assemble`] rejects
    /// graphs that violate the plan). This is the reference against which
    /// [`BePi::refactor`] is bit-exact.
    pub fn preprocess_with_plan(
        g: &Graph,
        config: &BePiConfig,
        plan: &SymbolicPlan,
    ) -> Result<Self> {
        check_restart_prob(config.c)?;
        let start = Instant::now();
        let part = HPartition::from_plan(g, config.c, plan)?;
        Self::factor_partition(part, config, start)
    }

    /// The symbolic plan captured by this instance's preprocessing run —
    /// everything the incremental refactor path needs to rebuild the
    /// numeric factors without re-running the reordering pipeline. Every
    /// field is persisted by format v4+, so a plan survives a save/load
    /// round-trip (including mapped loads) for free.
    pub fn symbolic_plan(&self) -> SymbolicPlan {
        SymbolicPlan {
            perm: self.perm.clone(),
            n1: self.n1,
            n2: self.n2,
            n3: self.n3,
            block_sizes: self.h11_lu.block_sizes.clone(),
            slashburn_iterations: self.stats.slashburn_iterations,
        }
    }

    /// KLU-style numeric refactorization: rebuilds this instance against
    /// `g_new` under the frozen symbolic plan, re-factoring only the
    /// `H11` diagonal blocks in `dirty` and recomputing only the Schur
    /// rows whose inputs changed. The caller must have classified the
    /// update as numeric-only (see [`bepi_incr::classify`]) with `dirty`
    /// being that classification's dirty set; the result is then
    /// bit-identical to [`BePi::preprocess_with_plan`] on `g_new`.
    pub fn refactor(&self, g_new: &Graph, dirty: &DirtySet) -> Result<Self> {
        let start = Instant::now();
        let config = self.config;
        let plan = self.symbolic_plan();
        let blocks = {
            let _span = bepi_obs::Span::enter("refactor.assemble");
            bepi_incr::assemble(g_new, config.c, &plan)?
        };
        let t_lu = Instant::now();
        let h11_lu = {
            let _span = bepi_obs::Span::enter("refactor.block_lu");
            self.h11_lu.refactor_blocks(&blocks.h11, &dirty.blocks)?
        };
        let block_lu_time = t_lu.elapsed();
        let t_schur = Instant::now();
        let s = {
            let _span = bepi_obs::Span::enter("refactor.schur");
            bepi_incr::refactor_schur(&self.s, &blocks, &self.h21, &h11_lu, &plan, dirty)?
        };
        let schur_time = t_schur.elapsed();
        let t_precond = Instant::now();
        // Refresh ILU(0) values on the old pattern when it still matches;
        // fall back to a fresh factorization otherwise (both paths are
        // bit-identical to `Ilu0::factor(&s)`). Jacobi/Neumann are cheap
        // and deterministic, so `from_raw_parts` recomputes them.
        let ilu = match (config.variant, config.precond) {
            (BePiVariant::Full, PrecondKind::Ilu0) => {
                let _span = bepi_obs::Span::enter("refactor.precond");
                Some(match self.ilu_parts() {
                    Some(old) => old.refresh_values(&s).or_else(|_| Ilu0::factor(&s))?,
                    None => Ilu0::factor(&s)?,
                })
            }
            _ => None,
        };
        let precond_time = t_precond.elapsed();
        let phases = [
            ("assemble", blocks.assemble_time),
            ("block_lu", block_lu_time),
            ("schur", schur_time),
            ("precond", precond_time),
        ]
        .iter()
        .map(|(name, d)| PhaseTiming {
            name: (*name).to_string(),
            seconds: d.as_secs_f64(),
        })
        .collect();
        let bepi_incr::HBlocks {
            h12, h21, h31, h32, ..
        } = blocks;
        let SymbolicPlan {
            perm,
            n1,
            n2,
            n3,
            slashburn_iterations,
            ..
        } = plan;
        Self::from_raw_parts(RawParts {
            config,
            perm,
            n1,
            n2,
            n3,
            h11_lu,
            s,
            ilu,
            h12,
            h21,
            h31,
            h32,
            slashburn_iterations,
            elapsed: start.elapsed(),
            phases,
        })
    }

    fn factor_partition(part: HPartition, config: &BePiConfig, start: Instant) -> Result<Self> {
        let t_lu = Instant::now();
        let h11_lu = {
            let _span = bepi_obs::Span::enter("preprocess.block_lu");
            // The diagonal blocks are independent; factor them across the
            // kernel threads (bit-identical to the serial path).
            BlockLu::factor_parallel(&part.h11, &part.block_sizes, bepi_par::get_threads())?
        };
        let block_lu_time = t_lu.elapsed();
        let t_schur = Instant::now();
        let s = {
            let _span = bepi_obs::Span::enter("preprocess.schur");
            schur_complement(&part, &h11_lu)?
        };
        let schur_time = t_schur.elapsed();
        let t_precond = Instant::now();
        let precond = {
            let _span = bepi_obs::Span::enter("preprocess.precond");
            match config.variant {
                BePiVariant::Full => match config.precond {
                    PrecondKind::Ilu0 => BuiltPrecond::Ilu(Ilu0::factor(&s)?),
                    PrecondKind::Jacobi => BuiltPrecond::Jacobi(JacobiPrecond::new(&s)?),
                    PrecondKind::Neumann(order) => {
                        BuiltPrecond::Neumann(NeumannPrecond::new(&s, order)?)
                    }
                },
                _ => BuiltPrecond::None,
            }
        };
        let precond_time = t_precond.elapsed();
        let phases = [
            ("deadend", part.deadend_time),
            ("slashburn", part.slashburn_time),
            ("assemble", part.assemble_time),
            ("block_lu", block_lu_time),
            ("schur", schur_time),
            ("precond", precond_time),
        ]
        .iter()
        .map(|(name, d)| PhaseTiming {
            name: (*name).to_string(),
            seconds: d.as_secs_f64(),
        })
        .collect();
        let stats = PreprocessStats {
            elapsed: start.elapsed(),
            n1: part.n1,
            n2: part.n2,
            n3: part.n3,
            slashburn_iterations: part.slashburn_iterations,
            num_blocks: part.block_sizes.len(),
            s_nnz: s.nnz(),
            h11_inv_nnz: h11_lu.l_inv.nnz() + h11_lu.u_inv.nnz(),
            phases,
        };
        let HPartition {
            perm,
            n1,
            n2,
            n3,
            h12,
            h21,
            h31,
            h32,
            ..
        } = part;
        Ok(Self {
            config: *config,
            perm,
            n1,
            n2,
            n3,
            h11_lu,
            s,
            precond,
            h12,
            h21,
            h31,
            h32,
            stats,
        })
    }

    /// Preprocessing statistics.
    pub fn stats(&self) -> &PreprocessStats {
        &self.stats
    }

    /// The configuration used at preprocessing time.
    pub fn config(&self) -> &BePiConfig {
        &self.config
    }

    /// The Schur complement (exposed for the eigenvalue and accuracy
    /// experiments of Figures 7 and 10).
    pub fn schur(&self) -> &Csr {
        &self.s
    }

    /// The ILU(0) preconditioner, when the variant computed one (used by
    /// the eigenvalue experiment of Figure 7).
    pub fn preconditioner(&self) -> Option<&Ilu0> {
        match &self.precond {
            BuiltPrecond::Ilu(m) => Some(m),
            _ => None,
        }
    }

    /// The preconditioner of whatever kind was configured, as a trait
    /// object (None for BePI-B/-S).
    pub fn preconditioner_dyn(&self) -> Option<&dyn Preconditioner> {
        self.precond.as_dyn()
    }

    /// The composite node permutation (original → reordered).
    pub fn permutation(&self) -> &Permutation {
        &self.perm
    }

    /// Solves `H11^{-1} x` through the inverted block factors.
    pub fn solve_h11(&self, x: &[f64]) -> Result<Vec<f64>> {
        self.h11_lu.solve_vec(x)
    }

    /// The inverted block factors of `H11`.
    pub fn h11_factors(&self) -> &BlockLu {
        &self.h11_lu
    }

    /// The coupling blocks `(H12, H21, H31, H32)` — used by the accuracy
    /// bound of Theorem 4.
    pub fn coupling_blocks(&self) -> (&Csr, &Csr, &Csr, &Csr) {
        (&self.h12, &self.h21, &self.h31, &self.h32)
    }

    /// Serializes everything needed to reconstruct the instance
    /// (persistence support; see [`crate::persist`]).
    pub(crate) fn write_parts<W: std::io::Write>(
        &self,
        w: &mut W,
        with_phases: bool,
    ) -> Result<()> {
        use crate::persist as p;
        p::write_config(w, &self.config)?;
        p::write_permutation(w, &self.perm)?;
        p::write_u64(w, self.n1 as u64)?;
        p::write_u64(w, self.n2 as u64)?;
        p::write_u64(w, self.n3 as u64)?;
        p::write_usize_slice(w, &self.h11_lu.block_sizes)?;
        p::write_csr(w, &self.h11_lu.l_inv)?;
        p::write_csr(w, &self.h11_lu.u_inv)?;
        p::write_csr(w, &self.s)?;
        p::write_csr(w, &self.h12)?;
        p::write_csr(w, &self.h21)?;
        p::write_csr(w, &self.h31)?;
        p::write_csr(w, &self.h32)?;
        // Stats worth persisting (elapsed is a fresh-run property).
        p::write_u64(w, self.stats.slashburn_iterations as u64)?;
        if with_phases {
            // Format v4+: the per-phase preprocessing time breakdown.
            p::write_f64(w, self.stats.elapsed.as_secs_f64())?;
            p::write_u64(w, self.stats.phases.len() as u64)?;
            for phase in &self.stats.phases {
                let name = phase.name.as_bytes();
                p::write_u64(w, name.len() as u64)?;
                w.write_all(name).map_err(bepi_sparse::SparseError::from)?;
                p::write_f64(w, phase.seconds)?;
            }
        }
        Ok(())
    }

    /// Reconstructs an instance from [`BePi::write_parts`] output. The
    /// preconditioner is recomputed from `S` (deterministic, cheap).
    pub(crate) fn read_parts<R: std::io::Read>(r: &mut R, with_phases: bool) -> Result<Self> {
        use crate::persist as p;
        let config = p::read_config(r)?;
        let perm = p::read_permutation(r)?;
        let n1 = p::read_u64(r)? as usize;
        let n2 = p::read_u64(r)? as usize;
        let n3 = p::read_u64(r)? as usize;
        let block_sizes = p::read_usize_vec(r)?;
        let l_inv = p::read_csr(r)?;
        let u_inv = p::read_csr(r)?;
        let h11_lu = BlockLu::from_inverse_factors(l_inv, u_inv, block_sizes)?;
        let s = p::read_csr(r)?;
        let h12 = p::read_csr(r)?;
        let h21 = p::read_csr(r)?;
        let h31 = p::read_csr(r)?;
        let h32 = p::read_csr(r)?;
        let slashburn_iterations = p::read_u64(r)? as usize;
        let (elapsed, phases) = if with_phases {
            p::read_phases(r)?
        } else {
            (Duration::ZERO, Vec::new())
        };
        Self::from_raw_parts(RawParts {
            config,
            perm,
            n1,
            n2,
            n3,
            h11_lu,
            s,
            ilu: None,
            h12,
            h21,
            h31,
            h32,
            slashburn_iterations,
            elapsed,
            phases,
        })
    }

    /// Assembles an instance from persisted components. The
    /// preconditioner comes from `parts.ilu` when the index carried the
    /// factors (format v6); otherwise it is recomputed from `S`
    /// (deterministic, so both paths yield bit-identical queries).
    pub(crate) fn from_raw_parts(parts: RawParts) -> Result<Self> {
        let RawParts {
            config,
            perm,
            n1,
            n2,
            n3,
            h11_lu,
            s,
            ilu,
            h12,
            h21,
            h31,
            h32,
            slashburn_iterations,
            elapsed,
            phases,
        } = parts;
        let precond = match config.variant {
            BePiVariant::Full => match (config.precond, ilu) {
                (PrecondKind::Ilu0, Some(ilu)) => BuiltPrecond::Ilu(ilu),
                (PrecondKind::Ilu0, None) => BuiltPrecond::Ilu(Ilu0::factor(&s)?),
                (PrecondKind::Jacobi, _) => BuiltPrecond::Jacobi(JacobiPrecond::new(&s)?),
                (PrecondKind::Neumann(order), _) => {
                    BuiltPrecond::Neumann(NeumannPrecond::new(&s, order)?)
                }
            },
            _ => BuiltPrecond::None,
        };
        let stats = PreprocessStats {
            elapsed,
            n1,
            n2,
            n3,
            slashburn_iterations,
            num_blocks: h11_lu.block_sizes.len(),
            s_nnz: s.nnz(),
            h11_inv_nnz: h11_lu.l_inv.nnz() + h11_lu.u_inv.nnz(),
            phases,
        };
        Ok(Self {
            config,
            perm,
            n1,
            n2,
            n3,
            h11_lu,
            s,
            precond,
            h12,
            h21,
            h31,
            h32,
            stats,
        })
    }

    /// The persisted ILU(0) factors and diagonal offsets, when the full
    /// variant built an ILU preconditioner (persistence support: format
    /// v6 stores the factors so loads never re-run the elimination).
    pub(crate) fn ilu_parts(&self) -> Option<&Ilu0> {
        match &self.precond {
            BuiltPrecond::Ilu(m) => Some(m),
            _ => None,
        }
    }

    /// True when any component is served zero-copy from a mapped index.
    pub fn is_mapped(&self) -> bool {
        self.mapped_bytes() > 0
    }

    /// Total bytes of index data held on the process heap.
    pub fn heap_bytes(&self) -> usize {
        self.memory_report().iter().map(|c| c.heap_bytes).sum()
    }

    /// Total bytes of index data served zero-copy from a mapped file.
    pub fn mapped_bytes(&self) -> usize {
        self.memory_report().iter().map(|c| c.mapped_bytes).sum()
    }

    /// Physical memory split of every index component: how many bytes
    /// live on the heap versus borrowed from a memory-mapped v6 file.
    /// Mapped bytes are backed by the kernel page cache and shared
    /// across every process serving the same index file, which is the
    /// point of `--mmap` serving (paper §Memory Efficiency: the
    /// preprocessed data is the dominant cost at scale).
    pub fn memory_report(&self) -> Vec<MemorySection> {
        let csr = |name, m: &Csr| MemorySection {
            name,
            heap_bytes: m.heap_bytes(),
            mapped_bytes: m.mapped_bytes(),
        };
        vec![
            MemorySection {
                name: "perm",
                heap_bytes: self.perm.heap_bytes(),
                mapped_bytes: self.perm.mapped_bytes(),
            },
            csr("l1_inv", &self.h11_lu.l_inv),
            csr("u1_inv", &self.h11_lu.u_inv),
            csr("schur", &self.s),
            MemorySection {
                name: "precond",
                heap_bytes: self.precond.heap_bytes(),
                mapped_bytes: self.precond.mapped_bytes(),
            },
            csr("h12", &self.h12),
            csr("h21", &self.h21),
            csr("h31", &self.h31),
            csr("h32", &self.h32),
        ]
    }

    /// The query phase (Algorithm 2 / 4) with full statistics.
    pub fn query_with_stats(&self, seed: usize) -> Result<RwrScores> {
        let n = self.node_count();
        check_seed(seed, n)?;
        let mut q = vec![0.0; n];
        q[seed] = 1.0;
        self.query_vector(&q)
    }

    /// Personalized PageRank: solves `H r = c q` for an arbitrary
    /// preference vector `q` in original node order (RWR is the special
    /// case of an indicator `q`; the paper notes PPR "sets multiple seed
    /// nodes in the starting vector", Section 2.1).
    pub fn query_vector(&self, q: &[f64]) -> Result<RwrScores> {
        let n = self.node_count();
        if q.len() != n {
            return Err(bepi_sparse::SparseError::VectorLength {
                expected: n,
                actual: q.len(),
            });
        }
        let c = self.config.c;
        let l = self.n1 + self.n2;

        // Partitioned starting vector in the reordered space (lines 1–2).
        let qr = self.perm.permute_vec(q)?;
        let q1 = &qr[..self.n1];
        let q2 = &qr[self.n1..l];
        let q3 = &qr[l..];

        // Line 3: q̂2 = c q2 − H21 (U1^{-1}(L1^{-1}(c q1))).
        let cq1: Vec<f64> = q1.iter().map(|v| c * v).collect();
        let t = self.h11_lu.solve_vec(&cq1)?;
        let h21t = self.h21.mul_vec(&t)?;
        let q2_hat: Vec<f64> = q2.iter().zip(&h21t).map(|(qv, hv)| c * qv - hv).collect();

        // Line 4: solve S r2 = q̂2 (preconditioned for the full variant).
        let (r2, inner_iterations, inner_residual) = match self.config.inner {
            InnerSolver::Gmres => {
                let cfg = GmresConfig {
                    tol: self.config.tol,
                    restart: self.config.gmres_restart,
                    max_iters: self.config.max_iters,
                };
                let gm = gmres(&self.s, &q2_hat, None, self.precond.as_dyn(), &cfg)?;
                (gm.x, gm.iterations, gm.residual)
            }
            InnerSolver::BiCgStab => {
                let cfg = BiCgStabConfig {
                    tol: self.config.tol,
                    max_iters: self.config.max_iters,
                };
                let bi = bicgstab(&self.s, &q2_hat, self.precond.as_dyn(), &cfg)?;
                (bi.x, bi.iterations, bi.residual)
            }
        };
        // Per-query solver telemetry: every solve is accounted here, so the
        // serve path, batch queries, and the CLI share one registry.
        bepi_obs::telemetry::record_solve(inner_iterations, inner_residual);

        // Line 5: r1 = U1^{-1}(L1^{-1}(c q1 − H12 r2)).
        let h12r2 = self.h12.mul_vec(&r2)?;
        let rhs1: Vec<f64> = cq1.iter().zip(&h12r2).map(|(a, b)| a - b).collect();
        let r1 = self.h11_lu.solve_vec(&rhs1)?;

        // Line 6: r3 = c q3 − H31 r1 − H32 r2.
        let h31r1 = self.h31.mul_vec(&r1)?;
        let h32r2 = self.h32.mul_vec(&r2)?;
        let r3: Vec<f64> = q3
            .iter()
            .zip(h31r1.iter().zip(&h32r2))
            .map(|(qv, (a, b))| c * qv - a - b)
            .collect();

        // Line 7: concatenate and map back to original node ids.
        let mut r = Vec::with_capacity(n);
        r.extend_from_slice(&r1);
        r.extend_from_slice(&r2);
        r.extend_from_slice(&r3);
        let scores = self.perm.unpermute_vec(&r)?;
        Ok(RwrScores {
            scores,
            iterations: inner_iterations,
            residual: inner_residual,
        })
    }
}

impl RwrSolver for BePi {
    fn name(&self) -> &'static str {
        self.config.variant.name()
    }

    fn node_count(&self) -> usize {
        self.n1 + self.n2 + self.n3
    }

    fn query(&self, seed: usize) -> Result<RwrScores> {
        self.query_with_stats(seed)
    }

    fn preprocessed_bytes(&self) -> usize {
        // Everything Algorithm 3 returns: L1^{-1}, U1^{-1}, S, (L̂2, Û2),
        // H12, H21, H31, H32 — plus the node relabeling.
        self.h11_lu.mem_bytes()
            + self.s.mem_bytes()
            + self.precond.mem_bytes()
            + self.h12.mem_bytes()
            + self.h21.mem_bytes()
            + self.h31.mem_bytes()
            + self.h32.mem_bytes()
            + self.perm.mem_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bepi_graph::generators;
    use bepi_solver::power::{power_iteration, PowerConfig};

    fn power_reference(g: &Graph, c: f64, seed: usize) -> Vec<f64> {
        let a = g.row_normalized();
        let q = crate::rwr::seed_vector(g.n(), seed).unwrap();
        power_iteration(
            &a,
            c,
            &q,
            &PowerConfig {
                tol: 1e-13,
                max_iters: 100_000,
            },
            false,
        )
        .unwrap()
        .r
    }

    fn assert_matches_power(g: &Graph, cfg: &BePiConfig, seeds: &[usize]) {
        let solver = BePi::preprocess(g, cfg).unwrap();
        for &s in seeds {
            let got = solver.query(s).unwrap();
            let want = power_reference(g, cfg.c, s);
            for (i, (a, b)) in got.scores.iter().zip(&want).enumerate() {
                assert!(
                    (a - b).abs() < 1e-6,
                    "{} seed {s} node {i}: {a} vs {b}",
                    cfg.variant.name()
                );
            }
        }
    }

    #[test]
    fn full_variant_matches_power_iteration() {
        let g = generators::rmat(8, 900, generators::RmatParams::default(), 3).unwrap();
        let g = generators::inject_deadends(&g, 0.2, 1).unwrap();
        assert_matches_power(&g, &BePiConfig::default(), &[0, 7, 100, 255]);
    }

    #[test]
    fn basic_variant_matches_power_iteration() {
        let g = generators::rmat(7, 500, generators::RmatParams::default(), 9).unwrap();
        assert_matches_power(
            &g,
            &BePiConfig::for_variant(BePiVariant::Basic),
            &[3, 64, 127],
        );
    }

    #[test]
    fn sparse_variant_matches_power_iteration() {
        let g = generators::erdos_renyi(200, 1000, 17).unwrap();
        assert_matches_power(
            &g,
            &BePiConfig::for_variant(BePiVariant::Sparse),
            &[0, 42, 199],
        );
    }

    #[test]
    fn seed_on_each_partition_kind() {
        // Pick seeds guaranteed to land in spoke / hub / deadend regions.
        let g = generators::rmat(8, 700, generators::RmatParams::default(), 5).unwrap();
        let g = generators::inject_deadends(&g, 0.3, 2).unwrap();
        let solver = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        let inv = solver.permutation().inverse();
        let n1 = solver.stats().n1;
        let n2 = solver.stats().n2;
        let seeds = [
            inv.apply(0),       // a spoke
            inv.apply(n1),      // a hub (if any)
            inv.apply(n1 + n2), // a deadend (if any)
        ];
        for s in seeds {
            let got = solver.query(s).unwrap();
            let want = power_reference(&g, 0.05, s);
            for (a, b) in got.scores.iter().zip(&want) {
                assert!((a - b).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn preconditioner_reduces_iterations() {
        let g = generators::rmat(10, 6_000, generators::RmatParams::default(), 21).unwrap();
        let plain = BePi::preprocess(&g, &BePiConfig::for_variant(BePiVariant::Sparse)).unwrap();
        let precond = BePi::preprocess(&g, &BePiConfig::for_variant(BePiVariant::Full)).unwrap();
        let a = plain.query(5).unwrap();
        let b = precond.query(5).unwrap();
        assert!(
            b.iterations <= a.iterations,
            "precond {} vs plain {}",
            b.iterations,
            a.iterations
        );
        for (x, y) in a.scores.iter().zip(&b.scores) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn memory_accounting_is_positive_and_ordered() {
        let g = generators::rmat(9, 2_000, generators::RmatParams::default(), 31).unwrap();
        let b = BePi::preprocess(&g, &BePiConfig::for_variant(BePiVariant::Basic)).unwrap();
        let s = BePi::preprocess(&g, &BePiConfig::for_variant(BePiVariant::Sparse)).unwrap();
        let f = BePi::preprocess(&g, &BePiConfig::for_variant(BePiVariant::Full)).unwrap();
        assert!(b.preprocessed_bytes() > 0);
        // Sparsification shrinks S (Table 3) → BePI-S stores less than BePI-B.
        assert!(
            s.preprocessed_bytes() <= b.preprocessed_bytes(),
            "S: {} B: {}",
            s.preprocessed_bytes(),
            b.preprocessed_bytes()
        );
        // Full adds the ILU factors (≈ |S| more).
        assert!(f.preprocessed_bytes() > s.preprocessed_bytes());
        assert_eq!(f.stats().s_nnz, s.stats().s_nnz);
    }

    #[test]
    fn bicgstab_inner_solver_matches_gmres() {
        let g = generators::rmat(8, 800, generators::RmatParams::default(), 51).unwrap();
        let gm = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        let bi = BePi::preprocess(
            &g,
            &BePiConfig {
                inner: InnerSolver::BiCgStab,
                ..BePiConfig::default()
            },
        )
        .unwrap();
        for seed in [0usize, 99, 201] {
            let a = gm.query(seed).unwrap();
            let b = bi.query(seed).unwrap();
            for (x, y) in a.scores.iter().zip(&b.scores) {
                assert!((x - y).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn alternative_preconditioners_match_ilu() {
        let g = generators::erdos_renyi(250, 1500, 33).unwrap();
        let reference = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        let want = reference.query(7).unwrap();
        for precond in [PrecondKind::Jacobi, PrecondKind::Neumann(3)] {
            let solver = BePi::preprocess(
                &g,
                &BePiConfig {
                    precond,
                    ..BePiConfig::default()
                },
            )
            .unwrap();
            let got = solver.query(7).unwrap();
            for (x, y) in got.scores.iter().zip(&want.scores) {
                assert!((x - y).abs() < 1e-6, "{precond:?}");
            }
        }
    }

    #[test]
    fn preconditioner_accessors_reflect_config() {
        let g = generators::erdos_renyi(100, 400, 3).unwrap();
        let ilu = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        assert!(ilu.preconditioner().is_some());
        assert!(ilu.preconditioner_dyn().is_some());
        let jac = BePi::preprocess(
            &g,
            &BePiConfig {
                precond: PrecondKind::Jacobi,
                ..BePiConfig::default()
            },
        )
        .unwrap();
        assert!(jac.preconditioner().is_none()); // ILU accessor is ILU-only
        assert!(jac.preconditioner_dyn().is_some());
        let plain = BePi::preprocess(&g, &BePiConfig::for_variant(BePiVariant::Sparse)).unwrap();
        assert!(plain.preconditioner_dyn().is_none());
    }

    #[test]
    fn multi_seed_ppr_matches_power_iteration() {
        let g = generators::rmat(8, 700, generators::RmatParams::default(), 13).unwrap();
        let solver = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        // Preference vector over three seeds.
        let mut q = vec![0.0; g.n()];
        q[3] = 0.5;
        q[100] = 0.3;
        q[200] = 0.2;
        let got = solver.query_vector(&q).unwrap();
        let a = g.row_normalized();
        let want = bepi_solver::power::power_iteration(
            &a,
            0.05,
            &q,
            &bepi_solver::power::PowerConfig {
                tol: 1e-13,
                max_iters: 100_000,
            },
            false,
        )
        .unwrap()
        .r;
        for (x, y) in got.scores.iter().zip(&want) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn ppr_is_linear_in_the_preference_vector() {
        let g = generators::erdos_renyi(120, 600, 21).unwrap();
        let solver = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        let a = solver.query(5).unwrap().scores;
        let b = solver.query(80).unwrap().scores;
        let mut q = vec![0.0; g.n()];
        q[5] = 0.4;
        q[80] = 0.6;
        let mix = solver.query_vector(&q).unwrap().scores;
        for i in 0..g.n() {
            let expect = 0.4 * a[i] + 0.6 * b[i];
            assert!((mix[i] - expect).abs() < 1e-7, "node {i}");
        }
    }

    #[test]
    fn query_vector_rejects_wrong_length() {
        let g = generators::cycle(10);
        let solver = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        assert!(solver.query_vector(&[1.0; 9]).is_err());
    }

    #[test]
    fn invalid_seed_rejected() {
        let g = generators::cycle(10);
        let solver = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        assert!(solver.query(10).is_err());
    }

    #[test]
    fn scores_are_nonnegative_and_seed_maximal() {
        let g = generators::erdos_renyi(150, 900, 7).unwrap();
        let solver = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        let res = solver.query(42).unwrap();
        assert!(res.scores.iter().all(|&v| v >= -1e-12));
        let max = res.scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!((res.scores[42] - max).abs() < 1e-12, "seed not maximal");
    }

    #[test]
    fn deadend_heavy_graph() {
        let g = generators::path(30); // extreme: chain ending in deadend
        let solver = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        let got = solver.query(0).unwrap();
        let want = power_reference(&g, 0.05, 0);
        for (a, b) in got.scores.iter().zip(&want) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    /// The graph with one adjacency entry removed (same node count).
    fn without_edge(g: &Graph, u: usize, v: usize) -> Graph {
        let mut coo = bepi_sparse::Coo::new(g.n(), g.n()).unwrap();
        for (r, c, w) in g.adjacency().iter() {
            if !(r == u && c == v) {
                coo.push(r, c, w).unwrap();
            }
        }
        Graph::from_adjacency(coo.to_csr()).unwrap()
    }

    /// An edge whose removal is numeric-only: the source keeps at least
    /// one other out-edge, so no deadend flip and no block crossing.
    fn removable_edge(g: &Graph) -> (usize, usize) {
        let u = (0..g.n()).find(|&u| g.out_degree(u) >= 2).unwrap();
        (u, g.out_neighbors(u).next().unwrap())
    }

    #[test]
    fn preprocess_with_plan_is_bit_identical_to_preprocess() {
        let g = generators::rmat(8, 900, generators::RmatParams::default(), 3).unwrap();
        let g = generators::inject_deadends(&g, 0.2, 1).unwrap();
        let cfg = BePiConfig::default();
        let full = BePi::preprocess(&g, &cfg).unwrap();
        let frozen = BePi::preprocess_with_plan(&g, &cfg, &full.symbolic_plan()).unwrap();
        for seed in [0usize, 7, 100, 255] {
            assert_eq!(
                full.query(seed).unwrap().scores,
                frozen.query(seed).unwrap().scores,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn refactor_is_bit_identical_to_plan_frozen_preprocess() {
        let g = generators::rmat(8, 900, generators::RmatParams::default(), 3).unwrap();
        let cfg = BePiConfig::default();
        let solver = BePi::preprocess(&g, &cfg).unwrap();
        let plan = solver.symbolic_plan();
        let (u, v) = removable_edge(&g);
        let g_new = without_edge(&g, u, v);
        let dirty = match bepi_incr::classify(&plan, &g, &g_new, &[u]) {
            bepi_incr::Classification::NumericOnly(d) => d,
            bepi_incr::Classification::Structural(why) => panic!("expected numeric: {why}"),
        };
        // The refactor must be bit-exact at every kernel thread count,
        // including against a differently-threaded from-scratch factor.
        for threads in [1usize, 2, 8] {
            let refac =
                bepi_par::with_kernel_threads(threads, || solver.refactor(&g_new, &dirty).unwrap());
            let frozen = BePi::preprocess_with_plan(&g_new, &cfg, &plan).unwrap();
            for seed in [0usize, 50, 200] {
                assert_eq!(
                    refac.query(seed).unwrap().scores,
                    frozen.query(seed).unwrap().scores,
                    "threads {threads} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn refactor_over_mapped_storage_matches_owned() {
        let g = generators::rmat(7, 400, generators::RmatParams::default(), 11).unwrap();
        let cfg = BePiConfig::default();
        let owned = BePi::preprocess(&g, &cfg).unwrap();
        let dir = std::env::temp_dir().join(format!("bepi-refactor-mmap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.bepi");
        crate::persist::save_file_v6(&owned, Some(&g), &path).unwrap();
        let (mapped, _) = crate::persist::load_mapped_file(&path).unwrap();
        assert!(mapped.is_mapped());
        let (u, v) = removable_edge(&g);
        let g_new = without_edge(&g, u, v);
        let plan = owned.symbolic_plan();
        assert_eq!(mapped.symbolic_plan().n1, plan.n1);
        let dirty = match bepi_incr::classify(&plan, &g, &g_new, &[u]) {
            bepi_incr::Classification::NumericOnly(d) => d,
            bepi_incr::Classification::Structural(why) => panic!("expected numeric: {why}"),
        };
        let from_owned = owned.refactor(&g_new, &dirty).unwrap();
        let from_mapped = mapped.refactor(&g_new, &dirty).unwrap();
        for seed in [0usize, 17, 99] {
            assert_eq!(
                from_owned.query(seed).unwrap().scores,
                from_mapped.query(seed).unwrap().scores,
                "seed {seed}"
            );
        }
        drop(mapped);
        std::fs::remove_dir_all(&dir).ok();
    }
}
