//! The v6 container layout: constants, the streaming writer, and the
//! eager layout validator shared by the mapped and heap load paths.

use crate::{sections, Crc32, MapError};
use std::io::{self, Write};

/// Leading magic bytes, shared with every earlier persist format.
pub const MAGIC: &[u8; 4] = b"BEPI";
/// The container format version this crate reads and writes.
pub const VERSION: u32 = 6;
/// Alignment of every payload section, in bytes. 64 covers every element
/// type stored (max 8) with headroom for cache-line- and SIMD-friendly
/// access to the mapped arrays.
pub const ALIGN: u64 = 64;
/// Header length: magic + version + flags + zero padding to [`ALIGN`].
pub const HEADER_LEN: u64 = 64;
/// Bytes per section-table entry: id u32, crc u32, offset u64, len u64.
pub const TABLE_ENTRY_LEN: u64 = 24;
/// Footer length: table_offset u64, section_count u64, table crc u32,
/// footer magic u32.
pub const FOOTER_LEN: u64 = 24;
/// Trailing footer magic (`BPI6`, little-endian).
const FOOTER_MAGIC: u32 = u32::from_le_bytes(*b"BPI6");
/// Sanity cap on the section count: the format defines a few dozen ids,
/// so a table claiming more than this is corrupt, not big.
const MAX_SECTIONS: u64 = 4096;

/// One entry of the section table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionEntry {
    /// Section id (see [`crate::sections`]).
    pub id: u32,
    /// CRC-32 of the payload bytes.
    pub crc: u32,
    /// Payload offset from the start of the file (64-byte aligned).
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
}

fn rd_u32(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(b[at..at + 4].try_into().unwrap())
}

fn rd_u64(b: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(b[at..at + 8].try_into().unwrap())
}

/// Validates a v6 container's header, footer, and section table, and
/// returns the parsed table. This is the *eager* validation run on every
/// open: `O(#sections)` work — it never touches payload bytes, so open
/// cost is independent of index size. Payload CRCs are checked lazily by
/// [`crate::MappedIndex::verify`] or by heap loaders as they copy.
pub fn parse_layout(bytes: &[u8]) -> Result<Vec<SectionEntry>, MapError> {
    let file_len = bytes.len() as u64;
    if file_len < HEADER_LEN + FOOTER_LEN {
        return Err(MapError::TooSmall { len: file_len });
    }
    if &bytes[..4] != MAGIC {
        return Err(MapError::BadMagic);
    }
    let version = rd_u32(bytes, 4);
    if version != VERSION {
        return Err(MapError::BadVersion { found: version });
    }
    let foot = (file_len - FOOTER_LEN) as usize;
    if rd_u32(bytes, foot + 20) != FOOTER_MAGIC {
        return Err(MapError::BadFooter);
    }
    let table_offset = rd_u64(bytes, foot);
    let section_count = rd_u64(bytes, foot + 8);
    let stored_table_crc = rd_u32(bytes, foot + 16);
    // The table must sit exactly between the payload region and the
    // footer; anything else is an inconsistent (corrupt) layout.
    let bounds_ok = section_count <= MAX_SECTIONS
        && table_offset >= HEADER_LEN
        && table_offset
            .checked_add(section_count * TABLE_ENTRY_LEN)
            .map(|end| end + FOOTER_LEN == file_len)
            .unwrap_or(false);
    if !bounds_ok {
        return Err(MapError::BadTableBounds {
            table_offset,
            section_count,
            file_len,
        });
    }
    let table = &bytes[table_offset as usize..foot];
    let computed_table_crc = crate::crc32(table);
    if computed_table_crc != stored_table_crc {
        return Err(MapError::TableCrc {
            stored: stored_table_crc,
            computed: computed_table_crc,
        });
    }
    let mut entries = Vec::with_capacity(section_count as usize);
    for i in 0..section_count as usize {
        let at = i * TABLE_ENTRY_LEN as usize;
        let entry = SectionEntry {
            id: rd_u32(table, at),
            crc: rd_u32(table, at + 4),
            offset: rd_u64(table, at + 8),
            len: rd_u64(table, at + 16),
        };
        if entry.offset < HEADER_LEN
            || entry
                .offset
                .checked_add(entry.len)
                .map(|end| end > table_offset)
                .unwrap_or(true)
        {
            return Err(MapError::SectionOutOfRange {
                id: entry.id,
                section: sections::name(entry.id),
                offset: entry.offset,
                len: entry.len,
                limit: table_offset,
            });
        }
        if entry.offset % ALIGN != 0 {
            return Err(MapError::SectionMisaligned {
                id: entry.id,
                section: sections::name(entry.id),
                offset: entry.offset,
            });
        }
        if entries.iter().any(|e: &SectionEntry| e.id == entry.id) {
            return Err(MapError::DuplicateSection {
                id: entry.id,
                section: sections::name(entry.id),
            });
        }
        entries.push(entry);
    }
    // Overlap check over the offset-sorted view (ranges are end-exclusive;
    // zero-length sections cannot overlap anything).
    let mut by_offset: Vec<&SectionEntry> = entries.iter().filter(|e| e.len > 0).collect();
    by_offset.sort_by_key(|e| e.offset);
    for pair in by_offset.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        if a.offset + a.len > b.offset {
            return Err(MapError::SectionOverlap {
                id_a: a.id,
                section_a: sections::name(a.id),
                id_b: b.id,
                section_b: sections::name(b.id),
            });
        }
    }
    Ok(entries)
}

/// Streaming v6 writer: call [`ContainerWriter::begin_section`], write
/// the payload through the `Write` impl, repeat, then
/// [`ContainerWriter::finish`]. Works over any `W: Write` (no `Seek`
/// needed — the section table lands at the end of the file), so indexes
/// stream straight to disk in one pass.
pub struct ContainerWriter<W: Write> {
    w: W,
    pos: u64,
    entries: Vec<SectionEntry>,
    open: Option<OpenSection>,
}

struct OpenSection {
    id: u32,
    crc: Crc32,
    start: u64,
}

impl<W: Write> ContainerWriter<W> {
    /// Wraps `w` and writes the 64-byte header.
    pub fn new(mut w: W) -> io::Result<Self> {
        let mut header = [0u8; HEADER_LEN as usize];
        header[..4].copy_from_slice(MAGIC);
        header[4..8].copy_from_slice(&VERSION.to_le_bytes());
        // Bytes 8..12 are a flags word (currently always zero), the rest
        // reserved padding.
        w.write_all(&header)?;
        Ok(Self {
            w,
            pos: HEADER_LEN,
            entries: Vec::new(),
            open: None,
        })
    }

    /// Starts a new section: pads to the next 64-byte boundary and makes
    /// subsequent `write` calls feed this section's payload and CRC.
    pub fn begin_section(&mut self, id: u32) -> io::Result<()> {
        self.end_section()?;
        if self.entries.iter().any(|e| e.id == id) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("duplicate section id {id:#x} ({})", sections::name(id)),
            ));
        }
        let pad = (ALIGN - self.pos % ALIGN) % ALIGN;
        if pad > 0 {
            const ZERO: [u8; ALIGN as usize] = [0; ALIGN as usize];
            self.w.write_all(&ZERO[..pad as usize])?;
            self.pos += pad;
        }
        self.open = Some(OpenSection {
            id,
            crc: Crc32::new(),
            start: self.pos,
        });
        Ok(())
    }

    /// Closes the currently open section, if any, recording its table
    /// entry. Called implicitly by [`ContainerWriter::begin_section`] and
    /// [`ContainerWriter::finish`].
    pub fn end_section(&mut self) -> io::Result<()> {
        if let Some(open) = self.open.take() {
            self.entries.push(SectionEntry {
                id: open.id,
                crc: open.crc.finalize(),
                offset: open.start,
                len: self.pos - open.start,
            });
        }
        Ok(())
    }

    /// Convenience: writes a whole section from a byte slice.
    pub fn section_bytes(&mut self, id: u32, payload: &[u8]) -> io::Result<()> {
        self.begin_section(id)?;
        self.write_all(payload)?;
        self.end_section()
    }

    /// Writes the section table and footer, flushes, and returns the
    /// inner writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.end_section()?;
        let table_offset = self.pos;
        let mut table = Vec::with_capacity(self.entries.len() * TABLE_ENTRY_LEN as usize);
        for e in &self.entries {
            table.extend_from_slice(&e.id.to_le_bytes());
            table.extend_from_slice(&e.crc.to_le_bytes());
            table.extend_from_slice(&e.offset.to_le_bytes());
            table.extend_from_slice(&e.len.to_le_bytes());
        }
        self.w.write_all(&table)?;
        self.w.write_all(&table_offset.to_le_bytes())?;
        self.w
            .write_all(&(self.entries.len() as u64).to_le_bytes())?;
        self.w.write_all(&crate::crc32(&table).to_le_bytes())?;
        self.w.write_all(&FOOTER_MAGIC.to_le_bytes())?;
        self.w.flush()?;
        Ok(self.w)
    }
}

impl<W: Write> Write for ContainerWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let open = self.open.as_mut().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                "payload bytes written outside any section",
            )
        })?;
        let n = self.w.write(buf)?;
        open.crc.update(&buf[..n]);
        self.pos += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a small two-section container in memory.
    pub(crate) fn sample_container() -> Vec<u8> {
        let mut w = ContainerWriter::new(Vec::new()).unwrap();
        w.section_bytes(sections::META, b"hello meta").unwrap();
        let nums: Vec<u8> = (0u64..10).flat_map(|v| v.to_le_bytes()).collect();
        w.section_bytes(sections::BLOCK_SIZES, &nums).unwrap();
        w.section_bytes(sections::S_VALUES, &[]).unwrap();
        w.finish().unwrap()
    }

    fn footer_range(buf: &[u8]) -> usize {
        buf.len() - FOOTER_LEN as usize
    }

    /// Patches the table entry for `id` and re-stamps the table CRC so
    /// the corruption reaches the structural checks.
    fn patch_entry(buf: &mut [u8], id: u32, f: impl Fn(&mut SectionEntry)) {
        let foot = footer_range(buf);
        let table_offset = u64::from_le_bytes(buf[foot..foot + 8].try_into().unwrap()) as usize;
        let count = u64::from_le_bytes(buf[foot + 8..foot + 16].try_into().unwrap()) as usize;
        for i in 0..count {
            let at = table_offset + i * TABLE_ENTRY_LEN as usize;
            let mut e = SectionEntry {
                id: u32::from_le_bytes(buf[at..at + 4].try_into().unwrap()),
                crc: u32::from_le_bytes(buf[at + 4..at + 8].try_into().unwrap()),
                offset: u64::from_le_bytes(buf[at + 8..at + 16].try_into().unwrap()),
                len: u64::from_le_bytes(buf[at + 16..at + 24].try_into().unwrap()),
            };
            if e.id == id {
                f(&mut e);
                buf[at..at + 4].copy_from_slice(&e.id.to_le_bytes());
                buf[at + 4..at + 8].copy_from_slice(&e.crc.to_le_bytes());
                buf[at + 8..at + 16].copy_from_slice(&e.offset.to_le_bytes());
                buf[at + 16..at + 24].copy_from_slice(&e.len.to_le_bytes());
            }
        }
        let crc = crate::crc32(&buf[table_offset..foot]);
        buf[foot + 16..foot + 20].copy_from_slice(&crc.to_le_bytes());
    }

    #[test]
    fn roundtrip_layout_parses() {
        let buf = sample_container();
        let entries = parse_layout(&buf).unwrap();
        assert_eq!(entries.len(), 3);
        let meta = entries.iter().find(|e| e.id == sections::META).unwrap();
        assert_eq!(meta.offset, HEADER_LEN);
        assert_eq!(meta.len, 10);
        assert_eq!(
            crate::crc32(&buf[meta.offset as usize..(meta.offset + meta.len) as usize]),
            meta.crc
        );
        let empty = entries.iter().find(|e| e.id == sections::S_VALUES).unwrap();
        assert_eq!(empty.len, 0);
        assert_eq!(empty.crc, crate::crc32(b""));
    }

    #[test]
    fn sections_are_aligned() {
        let buf = sample_container();
        for e in parse_layout(&buf).unwrap() {
            assert_eq!(e.offset % ALIGN, 0, "section {:#x}", e.id);
        }
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut buf = sample_container();
        buf[0] = b'X';
        assert_eq!(parse_layout(&buf), Err(MapError::BadMagic));
        let mut buf = sample_container();
        buf[4] = 9;
        assert!(matches!(
            parse_layout(&buf),
            Err(MapError::BadVersion { found: 9 })
        ));
    }

    #[test]
    fn rejects_truncation() {
        let buf = sample_container();
        assert!(matches!(
            parse_layout(&buf[..10]),
            Err(MapError::TooSmall { .. })
        ));
        // Cutting the tail destroys the footer magic.
        assert!(parse_layout(&buf[..buf.len() - 3]).is_err());
    }

    #[test]
    fn rejects_table_crc_corruption() {
        let mut buf = sample_container();
        let foot = footer_range(&buf);
        let table_offset = u64::from_le_bytes(buf[foot..foot + 8].try_into().unwrap()) as usize;
        buf[table_offset] ^= 0x01; // flip a bit inside the table itself
        assert!(matches!(parse_layout(&buf), Err(MapError::TableCrc { .. })));
    }

    #[test]
    fn rejects_out_of_range_section_naming_it() {
        let mut buf = sample_container();
        patch_entry(&mut buf, sections::BLOCK_SIZES, |e| e.len = 1 << 40);
        match parse_layout(&buf) {
            Err(MapError::SectionOutOfRange { id, section, .. }) => {
                assert_eq!(id, sections::BLOCK_SIZES);
                assert_eq!(section, "block_sizes");
            }
            other => panic!("expected SectionOutOfRange, got {other:?}"),
        }
        // An offset+len that wraps u64 must also be caught, not wrapped.
        let mut buf = sample_container();
        patch_entry(&mut buf, sections::BLOCK_SIZES, |e| {
            e.offset = u64::MAX - 63;
            e.len = 128;
        });
        assert!(matches!(
            parse_layout(&buf),
            Err(MapError::SectionOutOfRange { .. })
        ));
    }

    #[test]
    fn rejects_misaligned_section_naming_it() {
        let mut buf = sample_container();
        patch_entry(&mut buf, sections::META, |e| e.offset += 4);
        match parse_layout(&buf) {
            Err(MapError::SectionMisaligned { section, .. }) => assert_eq!(section, "meta"),
            other => panic!("expected SectionMisaligned, got {other:?}"),
        }
    }

    #[test]
    fn rejects_overlapping_sections_naming_both() {
        let mut buf = sample_container();
        // Slide block_sizes back onto meta (keeping 64-byte alignment).
        patch_entry(&mut buf, sections::BLOCK_SIZES, |e| e.offset = HEADER_LEN);
        match parse_layout(&buf) {
            Err(MapError::SectionOverlap {
                section_a,
                section_b,
                ..
            }) => {
                let pair = [section_a, section_b];
                assert!(pair.contains(&"meta") && pair.contains(&"block_sizes"));
            }
            other => panic!("expected SectionOverlap, got {other:?}"),
        }
    }

    #[test]
    fn rejects_duplicate_section_id() {
        let mut buf = sample_container();
        patch_entry(&mut buf, sections::BLOCK_SIZES, |e| e.id = sections::META);
        assert!(matches!(
            parse_layout(&buf),
            Err(MapError::DuplicateSection { .. })
        ));
    }

    #[test]
    fn rejects_bogus_table_bounds() {
        let mut buf = sample_container();
        let foot = footer_range(&buf);
        // A section count far beyond what the file can hold.
        buf[foot + 8..foot + 16].copy_from_slice(&(1u64 << 50).to_le_bytes());
        assert!(matches!(
            parse_layout(&buf),
            Err(MapError::BadTableBounds { .. })
        ));
    }

    #[test]
    fn writer_rejects_duplicate_ids_and_stray_writes() {
        let mut w = ContainerWriter::new(Vec::new()).unwrap();
        w.section_bytes(sections::META, b"x").unwrap();
        assert!(w.begin_section(sections::META).is_err());
        let mut w = ContainerWriter::new(Vec::new()).unwrap();
        assert!(w.write_all(b"stray").is_err());
    }
}
