//! Runs every experiment in sequence and writes each report to
//! `experiments/<id>.txt` (plus stdout). This regenerates the data behind
//! every table and figure of the paper; `EXPERIMENTS.md` records the
//! paper-vs-measured comparison.

use bepi_bench::experiments as ex;
use std::fs;
use std::path::Path;
use std::time::Instant;

type Job = (&'static str, fn() -> String);

fn main() -> std::io::Result<()> {
    let out_dir = Path::new("experiments");
    fs::create_dir_all(out_dir)?;
    let jobs: Vec<Job> = vec![
        ("table2_datasets", ex::table2::run),
        ("fig3_reorder_structure", ex::fig3::run),
        ("fig4_schur_tradeoff", ex::fig4::run),
        ("fig10_accuracy", ex::fig10::run),
        ("fig7_eigenvalues", ex::fig7::run),
        ("table3_table4", ex::table34::run),
        ("fig11_bear_comparison", ex::fig11::run),
        ("fig8_hub_ratio", ex::fig8::run),
        ("fig6_optimizations", ex::fig6::run),
        ("fig5_scalability", ex::fig5::run),
        ("fig1_overall", ex::fig1::run),
        ("fig12_total_time", ex::fig12::run),
        ("ablation_solvers", ex::ablation::run),
        ("approx_comparison", ex::approx_comparison::run),
    ];
    let total = Instant::now();
    for (name, f) in jobs {
        eprintln!("=== running {name} ===");
        let t = Instant::now();
        let report = f();
        let elapsed = t.elapsed();
        println!("{report}");
        println!("[{name} completed in {elapsed:?}]\n");
        fs::write(out_dir.join(format!("{name}.txt")), &report)?;
    }
    eprintln!("all experiments completed in {:?}", total.elapsed());
    Ok(())
}
