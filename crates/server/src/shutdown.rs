//! Cooperative shutdown signalling.
//!
//! std's blocking `TcpListener::accept` has no cancellation, so graceful
//! shutdown uses the classic self-connect trick: set a flag, then open a
//! throwaway connection to the listener's own address to wake the
//! acceptor, which observes the flag and stops accepting. In-flight and
//! queued requests keep draining — only admission stops. This is the
//! SIGTERM-equivalent for an offline, std-only build (no signal crates).

use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Shared shutdown flag plus the listener address used to wake `accept`.
#[derive(Debug)]
pub struct Shutdown {
    requested: AtomicBool,
    addr: SocketAddr,
}

impl Shutdown {
    /// Creates a signal for a listener bound at `addr`.
    pub fn new(addr: SocketAddr) -> Arc<Self> {
        Arc::new(Self {
            requested: AtomicBool::new(false),
            addr,
        })
    }

    /// Whether shutdown has been requested.
    pub fn is_requested(&self) -> bool {
        self.requested.load(Ordering::SeqCst)
    }

    /// Requests shutdown and wakes the (possibly blocked) acceptor.
    /// Idempotent: repeated calls are harmless.
    pub fn request(&self) {
        self.requested.store(true, Ordering::SeqCst);
        // Wake the acceptor out of accept(). The connection is dropped
        // immediately; the acceptor sees the flag and exits before
        // enqueueing it. Failure is fine — it means the listener is
        // already gone.
        if let Ok(stream) = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1)) {
            drop(stream);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn request_is_idempotent_and_wakes_accept() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = Shutdown::new(addr);
        assert!(!shutdown.is_requested());
        let s2 = Arc::clone(&shutdown);
        let acceptor = std::thread::spawn(move || {
            // Blocks until the wake connection arrives.
            let _ = listener.accept();
            s2.is_requested()
        });
        shutdown.request();
        shutdown.request();
        assert!(acceptor.join().unwrap(), "flag visible after wake");
    }
}
