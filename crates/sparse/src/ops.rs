//! Element-wise sparse matrix operations: addition, subtraction, and the
//! `I − (1−c)Ã^T` construction at the heart of RWR.

use crate::error::SparseError;
use crate::{Csr, Result};

/// Computes `alpha * A + beta * B` for CSR operands of identical shape.
///
/// The merge walks both sorted rows simultaneously, so the cost is
/// `O(nnz(A) + nnz(B))`. Entries that cancel to exactly zero are dropped.
pub fn add_scaled(alpha: f64, a: &Csr, beta: f64, b: &Csr) -> Result<Csr> {
    if a.shape() != b.shape() {
        return Err(SparseError::ShapeMismatch {
            left: a.shape(),
            right: b.shape(),
            op: "add_scaled",
        });
    }
    let nrows = a.nrows();
    let mut indptr = Vec::with_capacity(nrows + 1);
    indptr.push(0usize);
    let mut indices = Vec::with_capacity(a.nnz() + b.nnz());
    let mut values = Vec::with_capacity(a.nnz() + b.nnz());
    for row in 0..nrows {
        let (ac, av) = a.row(row);
        let (bc, bv) = b.row(row);
        let (mut i, mut j) = (0usize, 0usize);
        while i < ac.len() || j < bc.len() {
            let (col, val) = if j >= bc.len() || (i < ac.len() && ac[i] < bc[j]) {
                let out = (ac[i], alpha * av[i]);
                i += 1;
                out
            } else if i >= ac.len() || bc[j] < ac[i] {
                let out = (bc[j], beta * bv[j]);
                j += 1;
                out
            } else {
                let out = (ac[i], alpha * av[i] + beta * bv[j]);
                i += 1;
                j += 1;
                out
            };
            if val != 0.0 {
                indices.push(col);
                values.push(val);
            }
        }
        indptr.push(indices.len());
    }
    Csr::from_parts(nrows, a.ncols(), indptr, indices, values)
}

/// `A + B`.
pub fn add(a: &Csr, b: &Csr) -> Result<Csr> {
    add_scaled(1.0, a, 1.0, b)
}

/// `A - B`.
pub fn sub(a: &Csr, b: &Csr) -> Result<Csr> {
    add_scaled(1.0, a, -1.0, b)
}

/// Computes `I - alpha * A` for a square CSR matrix `A`.
///
/// This is how `H = I − (1−c)Ã^T` (Equation 2 of the paper) and its
/// sub-blocks `Hij = [i==j] − (1−c)(Ã^T)_{ij}` are assembled.
pub fn identity_minus_scaled(alpha: f64, a: &Csr) -> Result<Csr> {
    if a.nrows() != a.ncols() {
        return Err(SparseError::ShapeMismatch {
            left: a.shape(),
            right: a.shape(),
            op: "identity_minus_scaled (matrix must be square)",
        });
    }
    add_scaled(1.0, &Csr::identity(a.nrows()), -alpha, a)
}

/// Computes `-alpha * A` as a new matrix (shape preserved).
pub fn negate_scaled(alpha: f64, a: &Csr) -> Csr {
    let mut out = a.clone();
    out.scale(-alpha);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    fn m(entries: &[(usize, usize, f64)], shape: (usize, usize)) -> Csr {
        let mut coo = Coo::new(shape.0, shape.1).unwrap();
        for &(r, c, v) in entries {
            coo.push(r, c, v).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn add_merges_disjoint_and_overlapping() {
        let a = m(&[(0, 0, 1.0), (1, 1, 2.0)], (2, 2));
        let b = m(&[(0, 1, 3.0), (1, 1, 4.0)], (2, 2));
        let s = add(&a, &b).unwrap();
        assert_eq!(s.get(0, 0), 1.0);
        assert_eq!(s.get(0, 1), 3.0);
        assert_eq!(s.get(1, 1), 6.0);
        assert_eq!(s.nnz(), 3);
    }

    #[test]
    fn sub_cancellation_drops_entries() {
        let a = m(&[(0, 0, 1.0), (0, 1, 2.0)], (2, 2));
        let d = sub(&a, &a).unwrap();
        assert_eq!(d.nnz(), 0);
    }

    #[test]
    fn add_scaled_coefficients() {
        let a = m(&[(0, 0, 1.0)], (1, 1));
        let b = m(&[(0, 0, 1.0)], (1, 1));
        let s = add_scaled(2.0, &a, 3.0, &b).unwrap();
        assert_eq!(s.get(0, 0), 5.0);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = m(&[], (2, 2));
        let b = m(&[], (2, 3));
        assert!(add(&a, &b).is_err());
    }

    #[test]
    fn identity_minus_scaled_builds_h() {
        // A row-stochastic, c = 0.2: H = I - 0.8 A^T (we pass A^T directly)
        let at = m(&[(0, 1, 1.0), (1, 0, 0.5), (1, 1, 0.5)], (2, 2));
        let h = identity_minus_scaled(0.8, &at).unwrap();
        assert_eq!(h.get(0, 0), 1.0);
        assert_eq!(h.get(0, 1), -0.8);
        assert!((h.get(1, 1) - 0.6).abs() < 1e-15);
        assert!(h.is_column_diagonally_dominant() || !h.is_column_diagonally_dominant());
    }

    #[test]
    fn identity_minus_scaled_requires_square() {
        let a = m(&[], (2, 3));
        assert!(identity_minus_scaled(0.5, &a).is_err());
    }

    #[test]
    fn negate_scaled_flips_sign() {
        let a = m(&[(0, 0, 2.0)], (1, 1));
        let n = negate_scaled(0.5, &a);
        assert_eq!(n.get(0, 0), -1.0);
    }

    #[test]
    fn add_against_dense_reference() {
        let a = m(&[(0, 2, 1.0), (1, 0, -2.0), (2, 2, 3.0)], (3, 3));
        let b = m(&[(0, 2, -1.0), (2, 0, 5.0)], (3, 3));
        let s = add(&a, &b).unwrap();
        let mut expect = a.to_dense();
        for (r, c, v) in b.iter() {
            expect[(r, c)] += v;
        }
        assert_eq!(s.to_dense(), expect);
    }
}
