//! Criterion microbenchmarks for the query phase (backs Figures 1(c),
//! 5(c), 6(c), 12): one query per method on a mid-size suite member.

use bepi_core::bear::{Bear, BearConfig};
use bepi_core::lu_method::{LuDecomp, LuDecompConfig};
use bepi_core::prelude::*;
use bepi_graph::Dataset;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_query(c: &mut Criterion) {
    let ds = Dataset::Wikipedia;
    let g = ds.generate();
    let k = ds.spec().hub_ratio;
    let seed = 1234 % g.n();

    let bepi_b = BePi::preprocess(&g, &BePiConfig::for_variant(BePiVariant::Basic)).unwrap();
    let bepi_s = BePi::preprocess(
        &g,
        &BePiConfig {
            variant: BePiVariant::Sparse,
            hub_ratio: Some(k),
            ..BePiConfig::default()
        },
    )
    .unwrap();
    let bepi = BePi::preprocess(
        &g,
        &BePiConfig {
            hub_ratio: Some(k),
            ..BePiConfig::default()
        },
    )
    .unwrap();
    let bear = Bear::preprocess(&g, &BearConfig::default()).unwrap();
    let lu = LuDecomp::preprocess(&g, &LuDecompConfig::default()).unwrap();
    let power = PowerSolver::with_defaults(&g).unwrap();
    let gm = GmresSolver::with_defaults(&g).unwrap();

    let mut group = c.benchmark_group("query/wikipedia-like");
    group.sample_size(20);
    let solvers: [(&str, &dyn RwrSolver); 7] = [
        ("BePI-B", &bepi_b),
        ("BePI-S", &bepi_s),
        ("BePI", &bepi),
        ("Bear", &bear),
        ("LU", &lu),
        ("Power", &power),
        ("GMRES", &gm),
    ];
    for (name, solver) in solvers {
        group.bench_function(name, |b| {
            b.iter(|| black_box(solver.query(black_box(seed)).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
