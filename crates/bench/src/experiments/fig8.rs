//! Figure 8 — sensitivity to the hub selection ratio `k`: preprocessing
//! time, preprocessed memory, and query time of full BePI as `k` sweeps,
//! on the four datasets of the paper's figure (Slashdot, Baidu, Flickr,
//! LiveJournal stand-ins).

use crate::harness::{query_seeds, run_method, Budget, Method, Metric};
use crate::table::Table;
use bepi_core::prelude::BePiVariant;
use bepi_graph::Dataset;
use std::fmt::Write as _;

/// The swept hub ratios (the paper sweeps 0.001 then 0.1–0.7).
pub const K_GRID: [f64; 7] = [0.001, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6];

/// Runs the hub-ratio sweep.
pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 8 — effect of the hub selection ratio k on BePI\n"
    );
    let budget = Budget::default();
    for ds in [
        Dataset::Slashdot,
        Dataset::Baidu,
        Dataset::Flickr,
        Dataset::LiveJournal,
    ] {
        let spec = ds.spec();
        let g = ds.generate();
        let seeds = query_seeds(&g, 10, 0xF168 ^ spec.seed);
        let _ = writeln!(out, "{} (n = {}, m = {}):", spec.name, g.n(), g.m());
        let mut t = Table::new(vec!["k", "preprocess", "memory", "query"]);
        for &k in &K_GRID {
            eprintln!("[fig8] {} k={}", spec.name, k);
            let status = run_method(Method::BePi(BePiVariant::Full), &g, k, &seeds, &budget);
            // run_method maps BePI-Full's hub_ratio from the argument.
            t.row(vec![
                format!("{k:.3}"),
                status.cell(Metric::Preprocess),
                status.cell(Metric::Memory),
                status.cell(Metric::Query),
            ]);
        }
        let _ = writeln!(out, "{}", t.render());
    }
    let _ = writeln!(
        out,
        "Expected shape: tiny k (0.001) is expensive in time and memory; k ≈ 0.2–0.3 is the sweet spot for query time."
    );
    out
}
