//! # bepi-map
//!
//! Zero-copy memory-mapped index container for the BePI library — the
//! on-disk **format v6** and the safe `mmap` wrapper that serves it.
//!
//! The BePI paper's headline claim is *memory* efficiency at billion
//! scale (Table 5: ~130× less memory than Bear). A heap deserializer
//! re-parses the whole index on every process start, doubles transient
//! memory while doing so, and gives every co-located process its own
//! copy. Mapping the index instead makes startup time independent of
//! index size, shares one page-cache copy across processes, and shrinks
//! steady-state RSS to the pages actually touched.
//!
//! ## The v6 container
//!
//! A v6 file is a little-endian container of 64-byte-aligned payload
//! sections, indexed by a section table at the end of the file so the
//! writer can stream in one pass:
//!
//! ```text
//! offset 0     "BEPI", version u32 = 6, flags u32, zero padding .. 64
//! offset 64    payload sections, each starting on a 64-byte boundary
//! table_offset section table: per section { id u32, crc u32,
//!              offset u64, len u64 } (24 bytes each)
//! file end-24  footer: table_offset u64, section_count u64,
//!              table_crc u32, footer magic "BPI6"
//! ```
//!
//! [`MappedIndex::open`] validates the magic, version, footer, and the
//! section *table* (its CRC plus structural checks: in-bounds,
//! non-overlapping, 64-byte-aligned sections) eagerly — all `O(#sections)`
//! work, so open time does not grow with index size. Per-section payload
//! CRCs are verified on demand ([`MappedIndex::verify`] /
//! [`MappedIndex::verify_all`]); heap loaders that copy the payload out
//! verify every section they read.
//!
//! Because payload offsets are 64-byte aligned and the payload is stored
//! little-endian, `u32`/`u64`/`f64` arrays are borrowable in place on
//! little-endian hosts: [`MappedIndex::section`] hands out a typed
//! [`Section<T>`] that derefs to `&[T]` and keeps the mapping alive via
//! an internal [`std::sync::Arc`].
//!
//! All `unsafe` in the workspace's mapping path lives in this crate
//! (`mmap`/`munmap`/`madvise` via `extern "C"` declarations — no
//! crates.io dependencies, consistent with the `shims/` policy); the
//! numeric crates stay `#![forbid(unsafe_code)]` and consume only the
//! safe [`Section`] handles.

#![deny(missing_docs)]

mod format;
mod map;

pub use format::{
    parse_layout, ContainerWriter, SectionEntry, ALIGN, FOOTER_LEN, HEADER_LEN, MAGIC,
    TABLE_ENTRY_LEN, VERSION,
};
pub use map::{MappedIndex, Mapping, Pod, Section};

/// Section identifiers and display names for the BePI v6 container.
///
/// The numeric ids are part of the on-disk format; the names are what
/// error messages and memory reports print.
pub mod sections {
    /// Config scalars, partition sizes, and phase timings (opaque blob).
    pub const META: u32 = 0x01;
    /// Permutation forward map `new_of_old` (`u32`).
    pub const PERM_NEW_OF_OLD: u32 = 0x02;
    /// Permutation inverse map `old_of_new` (`u32`).
    pub const PERM_OLD_OF_NEW: u32 = 0x03;
    /// Diagonal block sizes of `H11` (`u64`).
    pub const BLOCK_SIZES: u32 = 0x04;
    /// `L1^{-1}` row pointers (`u64`).
    pub const L_INV_INDPTR: u32 = 0x10;
    /// `L1^{-1}` column indices (`u32`).
    pub const L_INV_INDICES: u32 = 0x11;
    /// `L1^{-1}` values (`f64`).
    pub const L_INV_VALUES: u32 = 0x12;
    /// `U1^{-1}` row pointers (`u64`).
    pub const U_INV_INDPTR: u32 = 0x20;
    /// `U1^{-1}` column indices (`u32`).
    pub const U_INV_INDICES: u32 = 0x21;
    /// `U1^{-1}` values (`f64`).
    pub const U_INV_VALUES: u32 = 0x22;
    /// Schur complement `S` row pointers (`u64`).
    pub const S_INDPTR: u32 = 0x30;
    /// Schur complement `S` column indices (`u32`).
    pub const S_INDICES: u32 = 0x31;
    /// Schur complement `S` values (`f64`).
    pub const S_VALUES: u32 = 0x32;
    /// `H12` row pointers (`u64`).
    pub const H12_INDPTR: u32 = 0x40;
    /// `H12` column indices (`u32`).
    pub const H12_INDICES: u32 = 0x41;
    /// `H12` values (`f64`).
    pub const H12_VALUES: u32 = 0x42;
    /// `H21` row pointers (`u64`).
    pub const H21_INDPTR: u32 = 0x50;
    /// `H21` column indices (`u32`).
    pub const H21_INDICES: u32 = 0x51;
    /// `H21` values (`f64`).
    pub const H21_VALUES: u32 = 0x52;
    /// `H31` row pointers (`u64`).
    pub const H31_INDPTR: u32 = 0x60;
    /// `H31` column indices (`u32`).
    pub const H31_INDICES: u32 = 0x61;
    /// `H31` values (`f64`).
    pub const H31_VALUES: u32 = 0x62;
    /// `H32` row pointers (`u64`).
    pub const H32_INDPTR: u32 = 0x70;
    /// `H32` column indices (`u32`).
    pub const H32_INDICES: u32 = 0x71;
    /// `H32` values (`f64`).
    pub const H32_VALUES: u32 = 0x72;
    /// ILU(0) factor row pointers (`u64`).
    pub const ILU_INDPTR: u32 = 0x80;
    /// ILU(0) factor column indices (`u32`).
    pub const ILU_INDICES: u32 = 0x81;
    /// ILU(0) factor values (`f64`).
    pub const ILU_VALUES: u32 = 0x82;
    /// ILU(0) per-row diagonal positions (`u64`).
    pub const ILU_DIAG: u32 = 0x83;
    /// Embedded adjacency row pointers (`u64`, live-capable indexes).
    pub const GRAPH_INDPTR: u32 = 0x90;
    /// Embedded adjacency column indices (`u32`).
    pub const GRAPH_INDICES: u32 = 0x91;
    /// Embedded adjacency values (`f64`).
    pub const GRAPH_VALUES: u32 = 0x92;

    /// Human-readable name of a section id, for error messages and the
    /// `bepi stats` memory report.
    pub fn name(id: u32) -> &'static str {
        match id {
            META => "meta",
            PERM_NEW_OF_OLD => "perm.new_of_old",
            PERM_OLD_OF_NEW => "perm.old_of_new",
            BLOCK_SIZES => "block_sizes",
            L_INV_INDPTR => "l_inv.indptr",
            L_INV_INDICES => "l_inv.indices",
            L_INV_VALUES => "l_inv.values",
            U_INV_INDPTR => "u_inv.indptr",
            U_INV_INDICES => "u_inv.indices",
            U_INV_VALUES => "u_inv.values",
            S_INDPTR => "s.indptr",
            S_INDICES => "s.indices",
            S_VALUES => "s.values",
            H12_INDPTR => "h12.indptr",
            H12_INDICES => "h12.indices",
            H12_VALUES => "h12.values",
            H21_INDPTR => "h21.indptr",
            H21_INDICES => "h21.indices",
            H21_VALUES => "h21.values",
            H31_INDPTR => "h31.indptr",
            H31_INDICES => "h31.indices",
            H31_VALUES => "h31.values",
            H32_INDPTR => "h32.indptr",
            H32_INDICES => "h32.indices",
            H32_VALUES => "h32.values",
            ILU_INDPTR => "ilu.indptr",
            ILU_INDICES => "ilu.indices",
            ILU_VALUES => "ilu.values",
            ILU_DIAG => "ilu.diag_pos",
            GRAPH_INDPTR => "graph.indptr",
            GRAPH_INDICES => "graph.indices",
            GRAPH_VALUES => "graph.values",
            _ => "unknown",
        }
    }
}

/// Errors produced while opening, validating, or slicing a v6 container.
///
/// Corruption errors name the offending section (id + human name) so a
/// failed open is attributable to one region of the file, never a panic
/// or a silently wrapped offset.
#[derive(Debug, Clone, PartialEq)]
pub enum MapError {
    /// The underlying IO operation failed (message-only, stays `Clone`).
    Io(String),
    /// The file is too small to hold a header and footer.
    TooSmall {
        /// Actual file length in bytes.
        len: u64,
    },
    /// The leading magic bytes are not `BEPI`.
    BadMagic,
    /// The header version field is not 6.
    BadVersion {
        /// The version found in the header.
        found: u32,
    },
    /// The trailing footer magic is missing (truncated or foreign file).
    BadFooter,
    /// The footer's table location does not tile the file exactly.
    BadTableBounds {
        /// Claimed table offset.
        table_offset: u64,
        /// Claimed section count.
        section_count: u64,
        /// Actual file length.
        file_len: u64,
    },
    /// The section table bytes fail their CRC-32.
    TableCrc {
        /// Checksum stored in the footer.
        stored: u32,
        /// Checksum computed over the table bytes.
        computed: u32,
    },
    /// The same section id appears twice in the table.
    DuplicateSection {
        /// Offending section id.
        id: u32,
        /// Human name of the section.
        section: &'static str,
    },
    /// A section's payload lies outside `header .. table_offset`.
    SectionOutOfRange {
        /// Offending section id.
        id: u32,
        /// Human name of the section.
        section: &'static str,
        /// Claimed payload offset.
        offset: u64,
        /// Claimed payload length.
        len: u64,
        /// First out-of-bounds byte (the table offset).
        limit: u64,
    },
    /// A section's payload offset is not 64-byte aligned.
    SectionMisaligned {
        /// Offending section id.
        id: u32,
        /// Human name of the section.
        section: &'static str,
        /// Claimed payload offset.
        offset: u64,
    },
    /// Two sections' payload ranges overlap.
    SectionOverlap {
        /// First section id (lower offset).
        id_a: u32,
        /// Human name of the first section.
        section_a: &'static str,
        /// Second section id.
        id_b: u32,
        /// Human name of the second section.
        section_b: &'static str,
    },
    /// A required section is absent from the table.
    MissingSection {
        /// Requested section id.
        id: u32,
        /// Human name of the section.
        section: &'static str,
    },
    /// A section's payload bytes fail their CRC-32.
    SectionCrc {
        /// Offending section id.
        id: u32,
        /// Human name of the section.
        section: &'static str,
        /// Checksum stored in the table.
        stored: u32,
        /// Checksum computed over the payload.
        computed: u32,
    },
    /// A section's byte length is not a multiple of the element size.
    BadElementSize {
        /// Offending section id.
        id: u32,
        /// Human name of the section.
        section: &'static str,
        /// Section byte length.
        len: u64,
        /// Requested element size.
        elem: usize,
    },
    /// The host cannot serve mapped sections (non-unix, big-endian, or
    /// a pointer width the `u64`-backed sections cannot alias).
    Unsupported(&'static str),
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::Io(msg) => write!(f, "io error: {msg}"),
            MapError::TooSmall { len } => {
                write!(f, "file too small for a v6 container ({len} bytes)")
            }
            MapError::BadMagic => write!(f, "not a BePI file (bad magic)"),
            MapError::BadVersion { found } => {
                write!(f, "not a v6 container (header version {found})")
            }
            MapError::BadFooter => write!(f, "missing v6 footer (truncated or foreign file)"),
            MapError::BadTableBounds {
                table_offset,
                section_count,
                file_len,
            } => write!(
                f,
                "section table (offset {table_offset}, {section_count} entries) does not \
                 tile the {file_len}-byte file"
            ),
            MapError::TableCrc { stored, computed } => write!(
                f,
                "section table checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            MapError::DuplicateSection { id, section } => {
                write!(f, "section {section} (id {id:#x}) appears twice")
            }
            MapError::SectionOutOfRange {
                id,
                section,
                offset,
                len,
                limit,
            } => write!(
                f,
                "section {section} (id {id:#x}) at offset {offset} + {len} bytes exceeds \
                 the payload region (limit {limit})"
            ),
            MapError::SectionMisaligned {
                id,
                section,
                offset,
            } => write!(
                f,
                "section {section} (id {id:#x}) offset {offset} is not 64-byte aligned"
            ),
            MapError::SectionOverlap {
                id_a,
                section_a,
                id_b,
                section_b,
            } => write!(
                f,
                "sections {section_a} (id {id_a:#x}) and {section_b} (id {id_b:#x}) overlap"
            ),
            MapError::MissingSection { id, section } => {
                write!(f, "required section {section} (id {id:#x}) is missing")
            }
            MapError::SectionCrc {
                id,
                section,
                stored,
                computed,
            } => write!(
                f,
                "section {section} (id {id:#x}) checksum mismatch: stored {stored:#010x}, \
                 computed {computed:#010x}"
            ),
            MapError::BadElementSize {
                id,
                section,
                len,
                elem,
            } => write!(
                f,
                "section {section} (id {id:#x}) length {len} is not a multiple of the \
                 {elem}-byte element size"
            ),
            MapError::Unsupported(what) => write!(f, "mapped indexes unsupported here: {what}"),
        }
    }
}

impl std::error::Error for MapError {}

impl From<std::io::Error> for MapError {
    fn from(e: std::io::Error) -> Self {
        MapError::Io(e.to_string())
    }
}

// --- CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) ---

const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// Incremental CRC-32 state (IEEE 802.3). This is the workspace's one
/// canonical implementation: the v1–v5 persist envelope and the
/// `bepi-live` WAL re-export it from `bepi_core::persist`.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh checksum state.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let idx = ((self.state ^ b as u32) & 0xFF) as usize;
            self.state = CRC32_TABLE[idx] ^ (self.state >> 8);
        }
    }

    /// Final checksum value.
    pub fn finalize(self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// Computes the CRC-32 of a byte slice in one call.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        let mut c = Crc32::new();
        c.update(b"1234");
        c.update(b"56789");
        assert_eq!(c.finalize(), 0xCBF4_3926);
    }

    #[test]
    fn section_names_cover_known_ids() {
        assert_eq!(sections::name(sections::META), "meta");
        assert_eq!(sections::name(sections::ILU_DIAG), "ilu.diag_pos");
        assert_eq!(sections::name(0xdead), "unknown");
    }

    #[test]
    fn errors_display_section_names() {
        let e = MapError::SectionOutOfRange {
            id: sections::S_VALUES,
            section: sections::name(sections::S_VALUES),
            offset: 128,
            len: 1 << 40,
            limit: 4096,
        };
        let s = e.to_string();
        assert!(s.contains("s.values"), "{s}");
        let e = MapError::SectionOverlap {
            id_a: sections::META,
            section_a: sections::name(sections::META),
            id_b: sections::BLOCK_SIZES,
            section_b: sections::name(sections::BLOCK_SIZES),
        };
        assert!(e.to_string().contains("block_sizes"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MapError>();
    }
}
