//! Tables 3 and 4 — the two mechanisms behind Figure 6:
//!
//! * Table 3: `|S|` under BePI-B vs BePI-S (Schur sparsification).
//! * Table 4: average GMRES iterations for `r2` under BePI-S vs BePI
//!   (ILU(0) preconditioning).

use crate::harness::{query_seeds, seed_count, suite};
use crate::table::Table;
use bepi_core::prelude::*;
use std::fmt::Write as _;

/// Table 3: Schur-complement non-zeros, BePI-B vs BePI-S.
pub fn run_table3() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 3 — |S| with and without sparsification\n");
    let mut t = Table::new(vec!["dataset", "|S| BePI-B", "|S| BePI-S", "ratio"]);
    for ds in suite() {
        let spec = ds.spec();
        let g = ds.generate();
        eprintln!("[table3] {}", spec.name);
        let b = BePi::preprocess(&g, &BePiConfig::for_variant(BePiVariant::Basic))
            .expect("BePI-B preprocess");
        let s = BePi::preprocess(
            &g,
            &BePiConfig {
                variant: BePiVariant::Sparse,
                hub_ratio: Some(spec.hub_ratio),
                ..BePiConfig::default()
            },
        )
        .expect("BePI-S preprocess");
        let (bn, sn) = (b.stats().s_nnz, s.stats().s_nnz);
        t.row(vec![
            spec.name.to_string(),
            bn.to_string(),
            sn.to_string(),
            format!("{:.1}x", bn as f64 / sn.max(1) as f64),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    out
}

/// Table 4: average iterations to compute `r2`, BePI-S vs BePI.
pub fn run_table4() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 4 — average GMRES iterations for r2 ({} seeds)\n",
        seed_count()
    );
    let mut t = Table::new(vec!["dataset", "iters BePI-S", "iters BePI", "ratio"]);
    for ds in suite() {
        let spec = ds.spec();
        let g = ds.generate();
        eprintln!("[table4] {}", spec.name);
        let seeds = query_seeds(&g, seed_count(), 0x7AB4 ^ spec.seed);
        let avg = |variant: BePiVariant| -> f64 {
            let solver = BePi::preprocess(
                &g,
                &BePiConfig {
                    variant,
                    hub_ratio: Some(spec.hub_ratio),
                    ..BePiConfig::default()
                },
            )
            .expect("preprocess");
            let total: usize = seeds
                .iter()
                .map(|&s| solver.query(s).expect("query").iterations)
                .sum();
            total as f64 / seeds.len() as f64
        };
        let plain = avg(BePiVariant::Sparse);
        let pre = avg(BePiVariant::Full);
        t.row(vec![
            spec.name.to_string(),
            format!("{plain:.1}"),
            format!("{pre:.1}"),
            format!("{:.1}x", plain / pre.max(1e-9)),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    out
}

/// Runs both tables.
pub fn run() -> String {
    format!("{}\n{}", run_table3(), run_table4())
}
