//! Regenerates the paper artifact; see `bepi_bench::experiments::fig12`.

fn main() {
    print!("{}", bepi_bench::experiments::fig12::run());
}
