//! Regenerates the paper artifact; see `bepi_bench::experiments::fig10`.

fn main() {
    print!("{}", bepi_bench::experiments::fig10::run());
}
