//! Minimal HTTP/1.1 request parsing and response writing.
//!
//! The daemon speaks just enough HTTP for its endpoints: request line +
//! headers are read (bounded), a `Content-Length`-delimited body is read
//! (bounded — the live-update `POST`s need one), and every response
//! closes the connection (`Connection: close`). This keeps the server
//! std-only — no protocol crates — while remaining compatible with
//! `curl`, browsers, and Prometheus scrapers.

use std::collections::HashMap;
use std::io::{BufRead, Write};

/// Upper bound on the request head (request line + headers) in bytes.
/// Anything larger is rejected with `431`.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Upper bound on the request body in bytes. Anything larger is rejected
/// with `413` — batch more than this through multiple `POST /edges`.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, upper-case as received (`GET`, `POST`, ...).
    pub method: String,
    /// Path component of the request target, before any `?`.
    pub path: String,
    /// Decoded query parameters, last occurrence wins.
    pub params: HashMap<String, String>,
    /// Request body (empty unless the client sent `Content-Length`).
    pub body: String,
    /// Whether the client *explicitly* asked to keep the connection open
    /// (`Connection: keep-alive`). HTTP/1.1 defaults to persistent
    /// connections, but this daemon historically answered every request
    /// with `Connection: close`; persistence is therefore opt-in via the
    /// explicit header, which ordinary clients (curl, browsers,
    /// Prometheus) do not send — only the `bepi route` shard client does.
    pub keep_alive: bool,
    /// The `X-Request-Id` header, if the client sent one. The serving
    /// tier adopts a well-formed id (the router mints one at ingress and
    /// propagates it on every shard attempt) and mints its own
    /// otherwise, so every response carries a correlation id.
    pub request_id: Option<String>,
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum ParseError {
    /// Client closed or timed out before a full request arrived.
    Io(std::io::Error),
    /// The head exceeded [`MAX_HEAD_BYTES`].
    TooLarge,
    /// The declared body length exceeded [`MAX_BODY_BYTES`].
    BodyTooLarge,
    /// The request line / headers / body were not valid HTTP.
    Malformed(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o while reading request: {e}"),
            ParseError::TooLarge => write!(f, "request head exceeds {MAX_HEAD_BYTES} bytes"),
            ParseError::BodyTooLarge => {
                write!(f, "request body exceeds {MAX_BODY_BYTES} bytes")
            }
            ParseError::Malformed(m) => write!(f, "malformed request: {m}"),
        }
    }
}

/// Reads one request from `reader` (a buffered stream).
///
/// Headers are scanned only for `Content-Length`, `Connection`, and
/// `X-Request-Id`; everything else is
/// discarded, but the head must still terminate with an empty line within
/// [`MAX_HEAD_BYTES`]. When a length is declared the body is read in full
/// (bounded by [`MAX_BODY_BYTES`]) and must be valid UTF-8 — every body
/// the daemon accepts is JSON text.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Request, ParseError> {
    let mut line = String::new();
    let mut total = 0usize;
    read_line_bounded(reader, &mut line, &mut total)?;
    let mut request = parse_request_line(line.trim_end())?;
    // Drain headers until the blank line, keeping only Content-Length,
    // Connection, and X-Request-Id.
    let mut content_length = 0usize;
    loop {
        line.clear();
        read_line_bounded(reader, &mut line, &mut total)?;
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            return Err(ParseError::Malformed(format!(
                "header line without ':': {trimmed:?}"
            )));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value.trim().parse().map_err(|_| {
                ParseError::Malformed(format!("bad Content-Length: {:?}", value.trim()))
            })?;
        } else if name.trim().eq_ignore_ascii_case("connection") {
            request.keep_alive = value.trim().eq_ignore_ascii_case("keep-alive");
        } else if name.trim().eq_ignore_ascii_case("x-request-id") {
            request.request_id = Some(value.trim().to_string());
        }
    }
    if content_length > 0 {
        if content_length > MAX_BODY_BYTES {
            return Err(ParseError::BodyTooLarge);
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).map_err(ParseError::Io)?;
        request.body = String::from_utf8(body)
            .map_err(|_| ParseError::Malformed("request body is not valid UTF-8".into()))?;
    }
    Ok(request)
}

fn read_line_bounded<R: BufRead>(
    reader: &mut R,
    line: &mut String,
    total: &mut usize,
) -> Result<(), ParseError> {
    // read_line is safe against non-UTF8 garbage: it errors instead of
    // panicking, which we surface as a malformed request.
    match reader.read_line(line) {
        Ok(0) => Err(ParseError::Malformed("empty request".into())),
        Ok(n) => {
            *total += n;
            if *total > MAX_HEAD_BYTES {
                Err(ParseError::TooLarge)
            } else {
                Ok(())
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
            Err(ParseError::Malformed("request is not valid UTF-8".into()))
        }
        Err(e) => Err(ParseError::Io(e)),
    }
}

fn parse_request_line(line: &str) -> Result<Request, ParseError> {
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m, t, v),
        _ => return Err(ParseError::Malformed(format!("bad request line: {line:?}"))),
    };
    if parts.next().is_some() {
        return Err(ParseError::Malformed(format!("bad request line: {line:?}")));
    }
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Malformed(format!(
            "unsupported protocol: {version}"
        )));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    Ok(Request {
        method: method.to_string(),
        path: percent_decode(path),
        params: parse_query(query),
        body: String::new(),
        keep_alive: false,
        request_id: None,
    })
}

fn parse_query(query: &str) -> HashMap<String, String> {
    let mut params = HashMap::new();
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        params.insert(percent_decode(k), percent_decode(v));
    }
    params
}

/// Decodes `%XX` escapes and `+` (as space). Invalid escapes pass through
/// verbatim — the numeric parsers downstream reject them anyway.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                if i + 2 < bytes.len() {
                    if let Some(hex) = s.get(i + 1..i + 3) {
                        if let Ok(v) = u8::from_str_radix(hex, 16) {
                            out.push(v);
                            i += 3;
                            continue;
                        }
                    }
                }
                out.push(b'%');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Human-readable reason phrases for the statuses the daemon emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes a complete HTTP/1.1 response and flushes. Every response
/// carries `Connection: close`; the caller drops the stream afterwards.
pub fn write_response<W: Write>(
    w: &mut W,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> std::io::Result<()> {
    write_response_conn(w, status, content_type, extra_headers, body, false)
}

/// [`write_response`] with an explicit connection disposition:
/// `keep_alive = true` emits `Connection: keep-alive` and leaves the
/// stream open for the next request on the same connection.
pub fn write_response_conn<W: Write>(
    w: &mut W,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        status,
        reason(status),
        content_type,
        body.len(),
        if keep_alive { "keep-alive" } else { "close" }
    );
    for (k, v) in extra_headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    // One write for head + body: two small writes on a Nagle-enabled
    // socket stall the second behind the peer's delayed ACK (~40 ms)
    // once a keep-alive connection leaves TCP quickack mode — fatal for
    // the router's pooled shard connections.
    head.push_str(body);
    w.write_all(head.as_bytes())?;
    w.flush()
}

/// Convenience for JSON error bodies: `{"error":"..."}` with escaping.
pub fn json_error_body(message: &str) -> String {
    format!("{{\"error\":{}}}", json_string(message))
}

/// Escapes a string into a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, ParseError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_query_request() {
        let r = parse("GET /query?seed=5&top=3 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/query");
        assert_eq!(r.params.get("seed").unwrap(), "5");
        assert_eq!(r.params.get("top").unwrap(), "3");
        assert!(r.body.is_empty());
    }

    #[test]
    fn reads_content_length_body() {
        let r = parse(
            "POST /edges HTTP/1.1\r\nHost: x\r\ncontent-LENGTH: 5\r\n\r\nhello trailing garbage",
        )
        .unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, "hello", "reads exactly Content-Length bytes");
    }

    #[test]
    fn body_limits_and_validation() {
        let oversized = format!(
            "POST /edges HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(parse(&oversized), Err(ParseError::BodyTooLarge)));
        assert!(matches!(
            parse("POST /edges HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        // Declared length longer than the stream: client hung up early.
        assert!(matches!(
            parse("POST /edges HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort"),
            Err(ParseError::Io(_))
        ));
        let mut raw = b"POST /e HTTP/1.1\r\nContent-Length: 2\r\n\r\n".to_vec();
        raw.extend_from_slice(&[0xff, 0xfe]);
        assert!(matches!(
            read_request(&mut BufReader::new(&raw[..])),
            Err(ParseError::Malformed(_))
        ));
    }

    #[test]
    fn parses_bare_path_and_empty_query() {
        let r = parse("GET /healthz HTTP/1.0\r\n\r\n").unwrap();
        assert_eq!(r.path, "/healthz");
        assert!(r.params.is_empty());
        let r = parse("GET /metrics? HTTP/1.1\r\n\r\n").unwrap();
        assert!(r.params.is_empty());
    }

    #[test]
    fn percent_decoding() {
        let r = parse("GET /query?seed=%35&x=a+b HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.params.get("seed").unwrap(), "5");
        assert_eq!(r.params.get("x").unwrap(), "a b");
        // Invalid escape passes through.
        assert_eq!(percent_decode("%zz"), "%zz");
        assert_eq!(percent_decode("%4"), "%4");
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            parse("NOT HTTP\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(parse(""), Err(ParseError::Malformed(_))));
        assert!(matches!(
            parse("GET /x SPDY/9\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        let bad_utf8 = [0x47u8, 0x45, 0x54, 0x20, 0xff, 0xfe, 0x0d, 0x0a];
        let r = read_request(&mut BufReader::new(&bad_utf8[..]));
        assert!(matches!(r, Err(ParseError::Malformed(_))));
    }

    #[test]
    fn rejects_oversized_head() {
        let raw = format!(
            "GET /query HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "a".repeat(MAX_HEAD_BYTES)
        );
        assert!(matches!(parse(&raw), Err(ParseError::TooLarge)));
    }

    #[test]
    fn response_format() {
        let mut buf = Vec::new();
        write_response(&mut buf, 200, "application/json", &[("X-A", "1")], "{}").unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("X-A: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn keep_alive_is_explicit_opt_in() {
        // No Connection header: HTTP/1.1 would default to persistent, but
        // the daemon treats persistence as opt-in.
        let r = parse("GET /query?seed=1 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert!(!r.keep_alive);
        let r = parse("GET /query?seed=1 HTTP/1.1\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(r.keep_alive);
        // Case-insensitive header name and value.
        let r = parse("GET /q HTTP/1.1\r\nCONNECTION: Keep-Alive\r\n\r\n").unwrap();
        assert!(r.keep_alive);
        let r = parse("GET /q HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!r.keep_alive);
    }

    #[test]
    fn keep_alive_response_header() {
        let mut buf = Vec::new();
        write_response_conn(&mut buf, 200, "application/json", &[], "{}", true).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(!text.contains("Connection: close\r\n"));
    }

    #[test]
    fn request_id_header_is_captured() {
        let r = parse("GET /query?seed=1 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.request_id, None);
        let r = parse("GET /query?seed=1 HTTP/1.1\r\nX-REQUEST-ID: abc123 \r\n\r\n").unwrap();
        assert_eq!(r.request_id.as_deref(), Some("abc123"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_error_body("x"), "{\"error\":\"x\"}");
    }
}
