//! SlashBurn hub-and-spoke reordering (Kang & Faloutsos, ICDM 2011;
//! paper Appendix A).
//!
//! SlashBurn repeatedly removes the `⌈k·n⌉` highest-degree nodes (*hubs*)
//! from the current giant connected component (GCC). The removal shatters
//! the graph; nodes in the non-giant components (*spokes*) receive the
//! lowest free labels grouped by component, hubs receive the highest free
//! labels, and the procedure recurses on the GCC until it is small enough
//! to become a spoke block itself.
//!
//! Applied to the non-deadend block `Ann`, the reordered matrix has a large
//! block-diagonal upper-left part (`H11`'s diagonal blocks = the spoke
//! components) — Figure 3(c)/(d) of the paper. The block sizes `n1i` drive
//! the complexity results of Theorems 1–3.

use bepi_sparse::{Csr, Permutation};

/// Configuration of a SlashBurn run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlashBurnConfig {
    /// Hub selection ratio `k ∈ (0, 1)`: `⌈k·n⌉` hubs are removed per
    /// iteration. The paper uses 0.001 for Bear/BePI-B and 0.2–0.3 for
    /// BePI-S/BePI (chosen to minimize `|S|`, Section 3.4).
    pub k: f64,
    /// Safety cap on iterations (the algorithm always terminates, but a
    /// cap keeps adversarial inputs bounded).
    pub max_iterations: usize,
}

impl SlashBurnConfig {
    /// Config with the given hub ratio and a generous iteration cap.
    pub fn with_ratio(k: f64) -> Self {
        assert!(k > 0.0 && k < 1.0, "hub ratio must be in (0,1), got {k}");
        Self {
            k,
            max_iterations: usize::MAX,
        }
    }
}

impl Default for SlashBurnConfig {
    fn default() -> Self {
        Self::with_ratio(0.2)
    }
}

/// Result of a SlashBurn reordering.
#[derive(Debug, Clone)]
pub struct SlashBurnResult {
    /// Relabeling of `0..n`: spokes get `0..n_spokes` grouped by component
    /// block, hubs get `n_spokes..n` (earliest-removed hubs highest).
    pub perm: Permutation,
    /// Number of spoke nodes (paper's `n1`).
    pub n_spokes: usize,
    /// Number of hub nodes (paper's `n2`).
    pub n_hubs: usize,
    /// Number of iterations performed (the `⌈n2/(k·l)⌉` of Theorem 1).
    pub iterations: usize,
    /// Sizes of the spoke diagonal blocks in label order (paper's `n1i`,
    /// `b = block_sizes.len()`).
    pub block_sizes: Vec<usize>,
}

/// Runs SlashBurn on a symmetric adjacency *structure* (use
/// [`bepi_graph::Graph::undirected_structure`] for directed graphs).
///
/// Determinism: degree ties break toward the lower node id; components are
/// discovered in ascending order of their lowest node id.
///
/// # Panics
/// Panics if `adj` is not square.
pub fn slashburn(adj: &Csr, cfg: &SlashBurnConfig) -> SlashBurnResult {
    assert_eq!(adj.nrows(), adj.ncols(), "SlashBurn needs a square matrix");
    let n = adj.nrows();
    if n == 0 {
        return SlashBurnResult {
            perm: Permutation::identity(0),
            n_spokes: 0,
            n_hubs: 0,
            iterations: 0,
            block_sizes: Vec::new(),
        };
    }
    let hubs_per_iter = ((cfg.k * n as f64).ceil() as usize).max(1);

    // Active set = current GCC candidates; degrees maintained incrementally
    // (only hub removal changes the degree of a surviving node, because
    // spokes are never adjacent to the GCC they were split from).
    let mut active = vec![true; n];
    let mut degree: Vec<i64> = (0..n).map(|u| adj.row_nnz(u) as i64).collect();
    let mut active_nodes: Vec<u32> = (0..n as u32).collect();

    let mut spoke_order: Vec<u32> = Vec::with_capacity(n);
    let mut block_sizes: Vec<usize> = Vec::new();
    let mut hub_order: Vec<u32> = Vec::new();
    let mut iterations = 0usize;

    // BFS scratch.
    let mut visited = vec![false; n];
    let mut queue: Vec<u32> = Vec::new();

    loop {
        if active_nodes.is_empty() {
            break;
        }
        if active_nodes.len() <= hubs_per_iter || iterations >= cfg.max_iterations {
            // Final GCC becomes one spoke block (ascending ids for
            // determinism; it is connected so it is a valid block).
            let mut rest = active_nodes.clone();
            rest.sort_unstable();
            block_sizes.push(rest.len());
            spoke_order.extend_from_slice(&rest);
            break;
        }
        iterations += 1;

        // Select top-degree hubs (degree desc, id asc).
        let mut order = active_nodes.clone();
        let h = hubs_per_iter.min(order.len());
        order.select_nth_unstable_by(h - 1, |&a, &b| {
            degree[b as usize].cmp(&degree[a as usize]).then(a.cmp(&b))
        });
        let mut hubs: Vec<u32> = order[..h].to_vec();
        hubs.sort_unstable_by(|&a, &b| degree[b as usize].cmp(&degree[a as usize]).then(a.cmp(&b)));
        for &hub in &hubs {
            active[hub as usize] = false;
            for (v, _) in adj.row_iter(hub as usize) {
                if active[v] {
                    degree[v] -= 1;
                }
            }
        }
        hub_order.extend_from_slice(&hubs);

        // Connected components of the surviving active nodes.
        let survivors: Vec<u32> = active_nodes
            .iter()
            .copied()
            .filter(|&u| active[u as usize])
            .collect();
        for &u in &survivors {
            visited[u as usize] = false;
        }
        let mut components: Vec<Vec<u32>> = Vec::new();
        for &start in &survivors {
            if visited[start as usize] {
                continue;
            }
            visited[start as usize] = true;
            queue.clear();
            queue.push(start);
            let mut comp = Vec::new();
            let mut head = 0usize;
            while head < queue.len() {
                let u = queue[head];
                head += 1;
                comp.push(u);
                for (v, _) in adj.row_iter(u as usize) {
                    if active[v] && !visited[v] {
                        visited[v] = true;
                        queue.push(v as u32);
                    }
                }
            }
            components.push(comp);
        }

        // Largest component stays active; ties break toward the earlier-
        // discovered (lowest min-id) component.
        let gcc_idx = components
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.len().cmp(&b.len()).then(ib.cmp(ia)))
            .map(|(i, _)| i);
        let Some(gcc_idx) = gcc_idx else {
            break; // every active node became a hub; nothing left
        };
        for (i, comp) in components.iter().enumerate() {
            if i == gcc_idx {
                continue;
            }
            let mut comp = comp.clone();
            comp.sort_unstable();
            block_sizes.push(comp.len());
            spoke_order.extend_from_slice(&comp);
            for &u in &comp {
                active[u as usize] = false;
            }
        }
        active_nodes = components.swap_remove(gcc_idx);
        active_nodes.sort_unstable();
    }

    let n_spokes = spoke_order.len();
    let n_hubs = hub_order.len();
    debug_assert_eq!(n_spokes + n_hubs, n);

    // Labels: spokes 0..n_spokes in block order; hubs fill n_spokes..n with
    // the earliest-removed (highest-degree) hubs at the very top.
    let mut new_of_old = vec![0u32; n];
    for (label, &u) in spoke_order.iter().enumerate() {
        new_of_old[u as usize] = label as u32;
    }
    for (i, &u) in hub_order.iter().enumerate() {
        new_of_old[u as usize] = (n - 1 - i) as u32;
    }
    let perm = Permutation::from_new_of_old(new_of_old)
        .expect("spoke/hub assignment is a bijection by construction");

    SlashBurnResult {
        perm,
        n_spokes,
        n_hubs,
        iterations,
        block_sizes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bepi_graph::{generators, Graph};

    fn run(g: &Graph, k: f64) -> SlashBurnResult {
        slashburn(&g.undirected_structure(), &SlashBurnConfig::with_ratio(k))
    }

    /// Checks the defining property: in the reordered matrix, no edge
    /// connects two different spoke blocks.
    fn assert_block_diagonal(adj: &Csr, r: &SlashBurnResult) {
        let b = r.perm.permute_symmetric(adj).unwrap();
        let mut block_of = vec![usize::MAX; r.n_spokes];
        let mut start = 0;
        for (bi, &size) in r.block_sizes.iter().enumerate() {
            for lbl in start..start + size {
                block_of[lbl] = bi;
            }
            start += size;
        }
        assert_eq!(start, r.n_spokes, "block sizes must tile the spokes");
        for (row, col, _) in b.iter() {
            if row < r.n_spokes && col < r.n_spokes {
                assert_eq!(
                    block_of[row], block_of[col],
                    "edge ({row},{col}) crosses spoke blocks"
                );
            }
        }
    }

    #[test]
    fn star_hub_is_detected() {
        let g = generators::star(11);
        let r = run(&g, 0.1); // 2 hubs/iter on 11 nodes
                              // Node 0 (the hub) must be among the hubs.
        assert!(r.perm.apply(0) >= r.n_spokes);
        assert_eq!(r.n_spokes + r.n_hubs, 11);
        assert_block_diagonal(&g.undirected_structure(), &r);
        // After removing the hub, all leaves are singleton blocks.
        assert!(r.block_sizes.iter().all(|&s| s == 1));
    }

    #[test]
    fn permutation_is_complete_bijection() {
        let g = generators::rmat(9, 3000, generators::RmatParams::default(), 17).unwrap();
        let r = run(&g, 0.2);
        assert_eq!(r.perm.len(), g.n());
        assert_eq!(r.n_spokes + r.n_hubs, g.n());
        assert_eq!(r.block_sizes.iter().sum::<usize>(), r.n_spokes);
    }

    #[test]
    fn block_diagonality_on_rmat() {
        let g = generators::rmat(9, 2500, generators::RmatParams::default(), 5).unwrap();
        let r = run(&g, 0.15);
        assert_block_diagonal(&g.undirected_structure(), &r);
    }

    #[test]
    fn block_diagonality_on_erdos_renyi() {
        let g = generators::erdos_renyi(300, 900, 23).unwrap();
        let r = run(&g, 0.1);
        assert_block_diagonal(&g.undirected_structure(), &r);
    }

    #[test]
    fn larger_k_means_fewer_iterations() {
        let g = generators::rmat(10, 6000, generators::RmatParams::default(), 9).unwrap();
        let small_k = run(&g, 0.01);
        let large_k = run(&g, 0.3);
        assert!(
            small_k.iterations >= large_k.iterations,
            "{} < {}",
            small_k.iterations,
            large_k.iterations
        );
    }

    #[test]
    fn deterministic() {
        let g = generators::rmat(8, 1500, generators::RmatParams::default(), 31).unwrap();
        let a = run(&g, 0.2);
        let b = run(&g, 0.2);
        assert_eq!(a.perm, b.perm);
        assert_eq!(a.block_sizes, b.block_sizes);
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let e = slashburn(&Csr::zeros(0, 0), &SlashBurnConfig::default());
        assert_eq!(e.n_spokes + e.n_hubs, 0);

        let g = Graph::from_edges(1, &[]).unwrap();
        let r = run(&g, 0.5);
        assert_eq!(r.n_spokes + r.n_hubs, 1);
        assert_eq!(r.perm.len(), 1);
    }

    #[test]
    fn disconnected_graph_components_become_blocks() {
        // Two triangles, no connection.
        let g = Graph::from_undirected_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
            .unwrap();
        let r = run(&g, 0.2);
        assert_block_diagonal(&g.undirected_structure(), &r);
        assert_eq!(r.n_spokes + r.n_hubs, 6);
    }

    #[test]
    fn hubs_get_highest_labels_in_removal_order() {
        let g = generators::star(9);
        let r = run(&g, 0.12); // ⌈0.12*9⌉ = 2 hubs in iteration 1
                               // The star hub has the highest degree → removed first → label n-1.
        assert_eq!(r.perm.apply(0), 8);
    }

    #[test]
    #[should_panic(expected = "hub ratio")]
    fn rejects_bad_ratio() {
        let _ = SlashBurnConfig::with_ratio(1.5);
    }
}
