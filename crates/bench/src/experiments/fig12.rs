//! Figure 12 (Appendix K) — total running time: preprocessing plus 30
//! queries for the preprocessing methods, 30 queries alone for the
//! iterative methods.

use crate::harness::{query_seeds, run_method, seed_count, suite, Budget, Method, Status};
use crate::table::Table;
use bepi_core::prelude::BePiVariant;
use std::fmt::Write as _;

/// Runs the total-time comparison.
pub fn run() -> String {
    let mut out = String::new();
    let nq = seed_count();
    let _ = writeln!(
        out,
        "Figure 12 — total running time (preprocessing + {nq} queries)\n"
    );
    let methods = [
        Method::BePi(BePiVariant::Full),
        Method::Gmres,
        Method::Power,
        Method::Bear,
        Method::Lu,
    ];
    let budget = Budget::default();
    let mut t = Table::new(vec!["dataset", "BePI", "GMRES", "Power", "Bear", "LU"]);
    for ds in suite() {
        let spec = ds.spec();
        let g = ds.generate();
        eprintln!("[fig12] {}", spec.name);
        let seeds = query_seeds(&g, nq, 0xF1612 ^ spec.seed);
        let mut cells = vec![spec.name.to_string()];
        for &m in &methods {
            let status = run_method(m, &g, spec.hub_ratio, &seeds, &budget);
            cells.push(match status {
                Status::Done {
                    preprocess, query, ..
                } => crate::table::fmt_secs(
                    preprocess.as_secs_f64() + query.as_secs_f64() * nq as f64,
                ),
                Status::Oom(_) => "o.o.m.".to_string(),
                Status::Oot => "o.o.t.".to_string(),
            });
        }
        t.row(cells);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "Expected shape: BePI has the smallest total time once preprocessing amortizes over the query batch."
    );
    out
}
