//! End-to-end agreement: every RWR method must produce the same scores on
//! every fixture graph, for seeds of every structural kind.

use bepi_core::bear::{Bear, BearConfig};
use bepi_core::lu_method::{LuDecomp, LuDecompConfig};
use bepi_core::prelude::*;
use bepi_tests::{assert_scores_close, fixture_zoo, reference_scores};

const C: f64 = 0.05;
const TOL: f64 = 1e-6;

fn seeds_for(n: usize) -> Vec<usize> {
    vec![0, n / 3, n - 1]
}

#[test]
fn bepi_full_matches_reference_on_zoo() {
    for fx in fixture_zoo() {
        let solver = BePi::preprocess(&fx.graph, &BePiConfig::default()).unwrap();
        for seed in seeds_for(fx.graph.n()) {
            let got = solver.query(seed).unwrap();
            let want = reference_scores(&fx.graph, C, seed);
            assert_scores_close(fx.name, &got.scores, &want, TOL);
        }
    }
}

#[test]
fn bepi_basic_matches_reference_on_zoo() {
    for fx in fixture_zoo() {
        let cfg = BePiConfig::for_variant(BePiVariant::Basic);
        let solver = BePi::preprocess(&fx.graph, &cfg).unwrap();
        for seed in seeds_for(fx.graph.n()) {
            let got = solver.query(seed).unwrap();
            let want = reference_scores(&fx.graph, C, seed);
            assert_scores_close(fx.name, &got.scores, &want, TOL);
        }
    }
}

#[test]
fn bepi_sparse_matches_reference_on_zoo() {
    for fx in fixture_zoo() {
        let cfg = BePiConfig::for_variant(BePiVariant::Sparse);
        let solver = BePi::preprocess(&fx.graph, &cfg).unwrap();
        for seed in seeds_for(fx.graph.n()) {
            let got = solver.query(seed).unwrap();
            let want = reference_scores(&fx.graph, C, seed);
            assert_scores_close(fx.name, &got.scores, &want, TOL);
        }
    }
}

#[test]
fn bear_matches_reference_on_zoo() {
    for fx in fixture_zoo() {
        let solver = Bear::preprocess(&fx.graph, &BearConfig::default()).unwrap();
        for seed in seeds_for(fx.graph.n()) {
            let got = solver.query(seed).unwrap();
            let want = reference_scores(&fx.graph, C, seed);
            assert_scores_close(fx.name, &got.scores, &want, TOL);
        }
    }
}

#[test]
fn lu_decomp_matches_reference_on_zoo() {
    for fx in fixture_zoo() {
        let solver = LuDecomp::preprocess(&fx.graph, &LuDecompConfig::default()).unwrap();
        for seed in seeds_for(fx.graph.n()) {
            let got = solver.query(seed).unwrap();
            let want = reference_scores(&fx.graph, C, seed);
            assert_scores_close(fx.name, &got.scores, &want, 1e-7);
        }
    }
}

#[test]
fn gmres_matches_reference_on_zoo() {
    for fx in fixture_zoo() {
        let solver = GmresSolver::with_defaults(&fx.graph).unwrap();
        for seed in seeds_for(fx.graph.n()) {
            let got = solver.query(seed).unwrap();
            let want = reference_scores(&fx.graph, C, seed);
            assert_scores_close(fx.name, &got.scores, &want, TOL);
        }
    }
}

#[test]
fn exact_matches_reference_on_zoo() {
    for fx in fixture_zoo() {
        let solver = DenseExact::with_defaults(&fx.graph).unwrap();
        for seed in seeds_for(fx.graph.n()) {
            let got = solver.query(seed).unwrap();
            let want = reference_scores(&fx.graph, C, seed);
            assert_scores_close(fx.name, &got.scores, &want, 1e-7);
        }
    }
}

#[test]
fn all_methods_agree_pairwise_on_one_graph() {
    let fx = &fixture_zoo()[2]; // deadend-heavy R-MAT
    let g = &fx.graph;
    let solvers: Vec<Box<dyn RwrSolver>> = vec![
        Box::new(BePi::preprocess(g, &BePiConfig::default()).unwrap()),
        Box::new(Bear::preprocess(g, &BearConfig::default()).unwrap()),
        Box::new(LuDecomp::preprocess(g, &LuDecompConfig::default()).unwrap()),
        Box::new(PowerSolver::with_defaults(g).unwrap()),
        Box::new(GmresSolver::with_defaults(g).unwrap()),
        Box::new(DenseExact::with_defaults(g).unwrap()),
    ];
    let seed = 17 % g.n();
    let baseline = solvers[0].query(seed).unwrap();
    for s in &solvers[1..] {
        let r = s.query(seed).unwrap();
        assert_scores_close(s.name(), &r.scores, &baseline.scores, 1e-6);
    }
}

#[test]
fn rankings_are_stable_across_methods() {
    let fx = &fixture_zoo()[1]; // rmat-powerlaw
    let g = &fx.graph;
    let bepi = BePi::preprocess(g, &BePiConfig::default()).unwrap();
    let exact = DenseExact::with_defaults(g).unwrap();
    let seed = 3;
    let a = bepi.query(seed).unwrap().top_k(10);
    let b = exact.query(seed).unwrap().top_k(10);
    assert_eq!(a, b, "top-10 ranking must match the exact solver");
}
