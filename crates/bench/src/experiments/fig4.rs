//! Figure 4 — the Schur-sparsification trade-off: `|S|`, `|H22|`, and
//! `|H21 H11^{-1} H12|` as functions of the hub selection ratio `k`, on
//! the four sweep datasets (Slashdot, Wikipedia, Flickr, WikiLink
//! stand-ins).

use crate::table::Table;
use bepi_core::hmatrix::HPartition;
use bepi_core::schur::schur_nnz_breakdown;
use bepi_core::DEFAULT_RESTART_PROB;
use bepi_graph::Dataset;
use bepi_solver::BlockLu;
use std::fmt::Write as _;

/// The ratio grid swept (the paper plots 0.1–0.5 / 0.2–0.7 ranges).
pub const K_GRID: [f64; 7] = [0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6];

/// Sweeps `k` on the four sweep datasets and tabulates the non-zero
/// accounting of Section 3.4.
pub fn run() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 4 — |S| vs hub selection ratio k (trade-off of Section 3.4)\n"
    );
    for ds in Dataset::sweep() {
        let spec = ds.spec();
        let g = ds.generate();
        let _ = writeln!(out, "{} (n = {}, m = {}):", spec.name, g.n(), g.m());
        let mut t = Table::new(vec!["k", "|S|", "|H22|", "|H21 H11^-1 H12|", "n2"]);
        for &k in &K_GRID {
            eprintln!("[fig4] {} k={}", spec.name, k);
            let p = HPartition::build(&g, DEFAULT_RESTART_PROB, k).expect("partition");
            let lu = BlockLu::factor(&p.h11, &p.block_sizes).expect("block LU");
            let (s, h22, prod) = schur_nnz_breakdown(&p, &lu).expect("schur");
            t.row(vec![
                format!("{k:.2}"),
                s.to_string(),
                h22.to_string(),
                prod.to_string(),
                p.n2.to_string(),
            ]);
        }
        let _ = writeln!(out, "{}", t.render());
    }
    let _ = writeln!(
        out,
        "Expected shape: |H22| grows with k, |H21 H11^-1 H12| shrinks; |S| is minimized at a moderate k (≈0.2–0.3)."
    );
    out
}
