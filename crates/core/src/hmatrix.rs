//! Node-reordering pipeline and block partition of `H` (Section 3.2,
//! Figure 3 of the paper).
//!
//! The composite reordering = deadend reordering ∘ hub-and-spoke
//! (SlashBurn) reordering of the non-deadend block. In the resulting
//! order, with `n1` spokes, `n2` hubs, `n3` deadends:
//!
//! ```text
//!       ┌ H11  H12  0 ┐   n1 (block diagonal H11)
//!   H = │ H21  H22  0 │   n2
//!       └ H31  H32  I ┘   n3
//! ```
//!
//! Every BePI variant and the Bear baseline build on this partition.

use crate::rwr::check_restart_prob;
use bepi_graph::Graph;
use bepi_incr::SymbolicPlan;
use bepi_sparse::{Csr, MemBytes, Permutation, Result};
use std::time::Duration;

/// The reordered, partitioned `H` matrix.
#[derive(Debug, Clone)]
pub struct HPartition {
    /// Composite relabeling original → reordered.
    pub perm: Permutation,
    /// Number of spokes.
    pub n1: usize,
    /// Number of hubs.
    pub n2: usize,
    /// Number of deadends.
    pub n3: usize,
    /// Diagonal block sizes of `H11` (SlashBurn's spoke components).
    pub block_sizes: Vec<usize>,
    /// `(n1 × n1)` block-diagonal spoke block.
    pub h11: Csr,
    /// `(n1 × n2)` spoke→hub coupling.
    pub h12: Csr,
    /// `(n2 × n1)` hub→spoke coupling.
    pub h21: Csr,
    /// `(n2 × n2)` hub block.
    pub h22: Csr,
    /// `(n3 × n1)` deadend rows against spokes.
    pub h31: Csr,
    /// `(n3 × n2)` deadend rows against hubs.
    pub h32: Csr,
    /// SlashBurn iterations performed (Theorem 1 diagnostics).
    pub slashburn_iterations: usize,
    /// Restart probability used to build `H`.
    pub c: f64,
    /// Wall time of the deadend reordering step.
    pub deadend_time: Duration,
    /// Wall time of the SlashBurn reordering step.
    pub slashburn_time: Duration,
    /// Wall time spent assembling and partitioning `H` after reordering.
    pub assemble_time: Duration,
}

impl HPartition {
    /// Runs the full reordering pipeline and partitions `H`.
    ///
    /// `k` is the SlashBurn hub selection ratio (Table 2 column `k`).
    pub fn build(g: &Graph, c: f64, k: f64) -> Result<Self> {
        check_restart_prob(c)?;
        let analysis = bepi_incr::analyze(g, k)?;
        Self::assemble_under(
            g,
            c,
            analysis.plan,
            analysis.deadend_time,
            analysis.slashburn_time,
        )
    }

    /// Partitions `H` under a frozen [`SymbolicPlan`] — the numeric half
    /// of [`HPartition::build`]. The reordering phases report zero time
    /// because they are skipped entirely; this is what makes incremental
    /// refactorization cheap.
    pub fn from_plan(g: &Graph, c: f64, plan: &SymbolicPlan) -> Result<Self> {
        check_restart_prob(c)?;
        Self::assemble_under(g, c, plan.clone(), Duration::ZERO, Duration::ZERO)
    }

    fn assemble_under(
        g: &Graph,
        c: f64,
        plan: SymbolicPlan,
        deadend_time: Duration,
        slashburn_time: Duration,
    ) -> Result<Self> {
        let blocks = bepi_incr::assemble(g, c, &plan)?;
        let SymbolicPlan {
            perm,
            n1,
            n2,
            n3,
            block_sizes,
            slashburn_iterations,
        } = plan;
        Ok(Self {
            perm,
            n1,
            n2,
            n3,
            block_sizes,
            h11: blocks.h11,
            h12: blocks.h12,
            h21: blocks.h21,
            h22: blocks.h22,
            h31: blocks.h31,
            h32: blocks.h32,
            slashburn_iterations,
            c,
            deadend_time,
            slashburn_time,
            assemble_time: blocks.assemble_time,
        })
    }

    /// Total node count.
    pub fn n(&self) -> usize {
        self.n1 + self.n2 + self.n3
    }

    /// Splits a reordered full-length vector into `(v1, v2, v3)`.
    pub fn split_vec<'a>(&self, v: &'a [f64]) -> (&'a [f64], &'a [f64], &'a [f64]) {
        let l = self.n1 + self.n2;
        (&v[..self.n1], &v[self.n1..l], &v[l..])
    }

    /// Concatenates partitioned vectors back into a full-length vector.
    pub fn concat_vec(&self, r1: &[f64], r2: &[f64], r3: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n());
        out.extend_from_slice(r1);
        out.extend_from_slice(r2);
        out.extend_from_slice(r3);
        out
    }
}

impl MemBytes for HPartition {
    fn mem_bytes(&self) -> usize {
        self.perm.mem_bytes()
            + self.h11.mem_bytes()
            + self.h12.mem_bytes()
            + self.h21.mem_bytes()
            + self.h22.mem_bytes()
            + self.h31.mem_bytes()
            + self.h32.mem_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bepi_graph::generators;

    fn reassemble(p: &HPartition) -> bepi_sparse::Dense {
        // Rebuild full H from the six blocks plus the identity corner.
        let n = p.n();
        let l = p.n1 + p.n2;
        let mut h = bepi_sparse::Dense::zeros(n, n);
        for (r, c, v) in p.h11.iter() {
            h[(r, c)] = v;
        }
        for (r, c, v) in p.h12.iter() {
            h[(r, c + p.n1)] = v;
        }
        for (r, c, v) in p.h21.iter() {
            h[(r + p.n1, c)] = v;
        }
        for (r, c, v) in p.h22.iter() {
            h[(r + p.n1, c + p.n1)] = v;
        }
        for (r, c, v) in p.h31.iter() {
            h[(r + l, c)] = v;
        }
        for (r, c, v) in p.h32.iter() {
            h[(r + l, c + p.n1)] = v;
        }
        for i in l..n {
            h[(i, i)] = 1.0;
        }
        h
    }

    #[test]
    fn partition_reassembles_to_h() {
        let g = generators::rmat(8, 900, generators::RmatParams::default(), 3).unwrap();
        let p = HPartition::build(&g, 0.05, 0.2).unwrap();
        // Reference: permute graph, build H directly.
        let a = p.perm.permute_symmetric(g.adjacency()).unwrap();
        let g2 = Graph::from_adjacency(a).unwrap();
        let h_ref = crate::rwr::build_h(&g2, 0.05).unwrap().to_dense();
        let h_got = reassemble(&p);
        assert!(h_got.max_abs_diff(&h_ref).unwrap() < 1e-14);
    }

    #[test]
    fn from_plan_matches_build_bit_identically() {
        let g = generators::rmat(8, 900, generators::RmatParams::default(), 3).unwrap();
        let full = HPartition::build(&g, 0.05, 0.2).unwrap();
        let plan = SymbolicPlan {
            perm: full.perm.clone(),
            n1: full.n1,
            n2: full.n2,
            n3: full.n3,
            block_sizes: full.block_sizes.clone(),
            slashburn_iterations: full.slashburn_iterations,
        };
        let frozen = HPartition::from_plan(&g, 0.05, &plan).unwrap();
        assert_eq!(frozen.h11, full.h11);
        assert_eq!(frozen.h12, full.h12);
        assert_eq!(frozen.h21, full.h21);
        assert_eq!(frozen.h22, full.h22);
        assert_eq!(frozen.h31, full.h31);
        assert_eq!(frozen.h32, full.h32);
        assert_eq!(frozen.deadend_time, Duration::ZERO);
    }

    #[test]
    fn counts_match_graph() {
        let g = generators::rmat(9, 1500, generators::RmatParams::default(), 7).unwrap();
        let g = generators::inject_deadends(&g, 0.2, 5).unwrap();
        let p = HPartition::build(&g, 0.05, 0.25).unwrap();
        assert_eq!(p.n(), g.n());
        assert_eq!(p.n3, g.deadend_count());
        assert_eq!(p.block_sizes.iter().sum::<usize>(), p.n1);
    }

    #[test]
    fn h11_block_diagonal_and_dominant() {
        let g = generators::rmat(9, 1200, generators::RmatParams::default(), 11).unwrap();
        let p = HPartition::build(&g, 0.05, 0.2).unwrap();
        assert!(bepi_reorder::blocks::is_block_diagonal(
            &p.h11,
            &p.block_sizes
        ));
        assert!(p.h11.is_column_diagonally_dominant());
    }

    #[test]
    fn split_and_concat_roundtrip() {
        let g = generators::rmat(7, 300, generators::RmatParams::default(), 1).unwrap();
        let p = HPartition::build(&g, 0.1, 0.3).unwrap();
        let v: Vec<f64> = (0..p.n()).map(|i| i as f64).collect();
        let (v1, v2, v3) = p.split_vec(&v);
        assert_eq!(v1.len(), p.n1);
        assert_eq!(v2.len(), p.n2);
        assert_eq!(v3.len(), p.n3);
        assert_eq!(p.concat_vec(v1, v2, v3), v);
    }

    #[test]
    fn all_deadend_graph() {
        let g = Graph::from_edges(4, &[]).unwrap();
        let p = HPartition::build(&g, 0.05, 0.2).unwrap();
        assert_eq!(p.n1, 0);
        assert_eq!(p.n2, 0);
        assert_eq!(p.n3, 4);
        assert_eq!(p.h11.nnz(), 0);
    }

    #[test]
    fn deadend_free_graph() {
        let g = generators::cycle(20);
        let p = HPartition::build(&g, 0.05, 0.2).unwrap();
        assert_eq!(p.n3, 0);
        assert_eq!(p.n1 + p.n2, 20);
        assert_eq!(p.h31.nnz(), 0);
        assert_eq!(p.h32.nnz(), 0);
    }
}
