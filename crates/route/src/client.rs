//! Minimal HTTP/1.1 client with persistent-connection reuse.
//!
//! The router is the *only* client that sends `Connection: keep-alive`
//! to the shard daemons (persistence is explicit opt-in on the server
//! side), so each [`ShardClient`] keeps a small pool of idle sockets to
//! its shard and multiplexes sequential requests over them — connection
//! setup is paid once per socket, not once per query.
//!
//! Staleness is handled the way every pooled HTTP client handles it: a
//! request that fails on a *reused* socket (the daemon may have closed
//! it between requests) is retried once on a freshly connected one
//! before the error is surfaced. Errors on a fresh socket are real —
//! most importantly `ECONNREFUSED` from a SIGKILLed shard, which must
//! surface immediately so the router can fail the seed over.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Idle sockets kept per shard. The router's scatter width per shard is
/// small (one thread per shard group), so a short free-list suffices.
const MAX_IDLE: usize = 4;

/// A parsed HTTP response from a shard.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code, e.g. `200`.
    pub status: u16,
    /// Response headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body, exactly as the shard sent it.
    pub body: String,
}

impl HttpResponse {
    /// First header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The `X-Graph-Version` header parsed as an integer, when present.
    pub fn graph_version(&self) -> Option<u64> {
        self.header("x-graph-version")?.trim().parse().ok()
    }
}

/// Phase timings of one shard attempt, for per-attempt trace records.
/// All in microseconds; `connect_us` is zero when a pooled socket was
/// reused (there was nothing to connect).
#[derive(Debug, Clone, Copy, Default)]
pub struct AttemptTiming {
    /// TCP connect time (0 on a reused pooled socket).
    pub connect_us: u64,
    /// Writing the request onto the socket.
    pub send_us: u64,
    /// First byte of the status line through the end of the body.
    pub wait_us: u64,
}

/// A pooled keep-alive client for one shard address.
pub struct ShardClient {
    addr: String,
    timeout: Duration,
    idle: Mutex<Vec<TcpStream>>,
}

impl ShardClient {
    /// A client for `addr` (e.g. `127.0.0.1:7462`) with a per-request
    /// I/O timeout.
    pub fn new(addr: impl Into<String>, timeout: Duration) -> ShardClient {
        ShardClient {
            addr: addr.into(),
            timeout,
            idle: Mutex::new(Vec::new()),
        }
    }

    /// The shard address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Issues `GET {path_query}` and returns the parsed response. The
    /// socket is returned to the idle pool when the shard answered
    /// `Connection: keep-alive`.
    pub fn get(&self, path_query: &str) -> std::io::Result<HttpResponse> {
        self.get_with(path_query, &[]).map(|(resp, _)| resp)
    }

    /// Like [`ShardClient::get`] but with extra request headers (the
    /// router propagates `X-Request-Id` this way) and per-phase timings
    /// for the attempt record.
    pub fn get_with(
        &self,
        path_query: &str,
        headers: &[(&str, &str)],
    ) -> std::io::Result<(HttpResponse, AttemptTiming)> {
        // First try a pooled socket; it may have been closed by the
        // shard since its last use, so one failure there is retried on
        // a fresh connection rather than reported.
        if let Some(stream) = self.checkout() {
            match self.round_trip(stream, path_query, headers, 0) {
                Ok(got) => return Ok(got),
                Err(_) => { /* stale pooled socket: fall through */ }
            }
        }
        let connect_started = Instant::now();
        let stream = TcpStream::connect(&self.addr)?;
        let connect_us = connect_started.elapsed().as_micros() as u64;
        self.round_trip(stream, path_query, headers, connect_us)
    }

    /// Drops every pooled socket (used when the shard process is
    /// replaced: the old sockets point at a dead process).
    pub fn clear(&self) {
        self.idle.lock().unwrap_or_else(|p| p.into_inner()).clear();
    }

    fn checkout(&self) -> Option<TcpStream> {
        self.idle.lock().unwrap_or_else(|p| p.into_inner()).pop()
    }

    fn checkin(&self, stream: TcpStream) {
        let mut idle = self.idle.lock().unwrap_or_else(|p| p.into_inner());
        if idle.len() < MAX_IDLE {
            idle.push(stream);
        }
    }

    fn round_trip(
        &self,
        stream: TcpStream,
        path_query: &str,
        headers: &[(&str, &str)],
        connect_us: u64,
    ) -> std::io::Result<(HttpResponse, AttemptTiming)> {
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        stream.set_nodelay(true).ok();
        let mut head = format!(
            "GET {path_query} HTTP/1.1\r\nHost: {}\r\nConnection: keep-alive\r\n",
            self.addr
        );
        for (name, value) in headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        let send_started = Instant::now();
        let mut w = &stream;
        w.write_all(head.as_bytes())?;
        w.flush()?;
        let send_us = send_started.elapsed().as_micros() as u64;
        let wait_started = Instant::now();
        let mut reader = BufReader::new(&stream);
        let resp = read_response(&mut reader)?;
        let wait_us = wait_started.elapsed().as_micros() as u64;
        if resp
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("keep-alive"))
        {
            drop(reader);
            self.checkin(stream);
        }
        Ok((
            resp,
            AttemptTiming {
                connect_us,
                send_us,
                wait_us,
            },
        ))
    }
}

/// Reads one HTTP/1.1 response (status line, headers, `Content-Length`
/// body) off `reader`.
pub fn read_response<R: BufRead>(reader: &mut R) -> std::io::Result<HttpResponse> {
    let err = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed before status line",
        ));
    }
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err(&format!("bad status line: {line:?}")))?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut h = String::new();
        if reader.read_line(&mut h)? == 0 {
            return Err(err("connection closed inside headers"));
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        let (name, value) = h.split_once(':').ok_or_else(|| err("malformed header"))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| err(&format!("bad content-length: {value:?}")))?;
        }
        headers.push((name, value));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body).map_err(|_| err("body is not UTF-8"))?;
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response_with_headers_and_body() {
        let raw = "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n\
                   X-Graph-Version: 7\r\nConnection: keep-alive\r\n\
                   Content-Length: 4\r\n\r\nbody";
        let resp = read_response(&mut BufReader::new(raw.as_bytes())).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "body");
        assert_eq!(resp.header("content-type"), Some("application/json"));
        assert_eq!(resp.header("X-Graph-Version"), Some("7"));
        assert_eq!(resp.graph_version(), Some(7));
    }

    #[test]
    fn eof_before_status_line_is_unexpected_eof() {
        let e = read_response(&mut BufReader::new(&b""[..])).unwrap_err();
        assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn truncated_body_is_an_error() {
        let raw = "HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nshort";
        assert!(read_response(&mut BufReader::new(raw.as_bytes())).is_err());
    }

    #[test]
    fn pooled_round_trips_reuse_the_socket() {
        use std::io::Write as _;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            // One accepted connection serves two requests.
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut served = 0u32;
            for _ in 0..2 {
                let mut line = String::new();
                while reader.read_line(&mut line).unwrap() > 2 {
                    line.clear();
                }
                served += 1;
                let body = format!("hello {served}");
                let mut w = &stream;
                write!(
                    w,
                    "HTTP/1.1 200 OK\r\nConnection: keep-alive\r\n\
                     Content-Length: {}\r\n\r\n{body}",
                    body.len()
                )
                .unwrap();
                w.flush().unwrap();
            }
            served
        });
        let client = ShardClient::new(addr.to_string(), Duration::from_secs(5));
        assert_eq!(client.get("/a").unwrap().body, "hello 1");
        assert_eq!(client.get("/b").unwrap().body, "hello 2");
        assert_eq!(server.join().unwrap(), 2, "both requests on one accept");
    }

    #[test]
    fn get_with_sends_extra_headers_and_times_phases() {
        use std::io::Write as _;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut head = String::new();
            let mut line = String::new();
            while reader.read_line(&mut line).unwrap() > 2 {
                head.push_str(&line);
                line.clear();
            }
            let mut w = &stream;
            write!(w, "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok").unwrap();
            w.flush().unwrap();
            head
        });
        let client = ShardClient::new(addr.to_string(), Duration::from_secs(5));
        let (resp, timing) = client
            .get_with("/query?seed=1", &[("X-Request-Id", "00ff")])
            .unwrap();
        assert_eq!(resp.status, 200);
        let head = server.join().unwrap();
        assert!(head.contains("X-Request-Id: 00ff"), "{head}");
        // A fresh (non-pooled) socket must report its connect phase.
        assert!(timing.connect_us > 0);
    }

    #[test]
    fn connect_refused_surfaces_immediately() {
        // Bind-then-drop yields a port with (almost certainly) no
        // listener; the client must fail fast, not hang.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let client = ShardClient::new(addr.to_string(), Duration::from_millis(500));
        assert!(client.get("/query?seed=1").is_err());
    }
}
