//! Permutations of node/index sets.
//!
//! Every reordering method in the paper (deadend, hub-and-spoke/SlashBurn,
//! degree) produces a relabeling of the nodes; composing them and applying
//! them symmetrically to `H` (`P H P^T`) is what creates the block
//! structure of Figure 3.

use crate::error::SparseError;
use crate::mem::MemBytes;
use crate::storage::Storage;
use crate::{Csr, Result};

/// A bijection on `0..n`, stored in both directions for O(1) lookups.
#[derive(Debug, Clone, PartialEq)]
pub struct Permutation {
    /// `new_of_old[old] = new`
    new_of_old: Storage<u32>,
    /// `old_of_new[new] = old`
    old_of_new: Storage<u32>,
}

impl Permutation {
    /// The identity permutation on `0..n`.
    pub fn identity(n: usize) -> Self {
        let v: Vec<u32> = (0..n as u32).collect();
        Self {
            new_of_old: v.clone().into(),
            old_of_new: v.into(),
        }
    }

    /// Builds a permutation from both direction maps — the zero-copy
    /// constructor for mapped v6 indexes — with `O(1)` checks only
    /// (equal, in-range lengths). The bijection scan of
    /// [`Permutation::from_new_of_old`] is skipped: the maps were
    /// validated when the index was written and are covered by the
    /// container's section CRCs; a corrupt map surfaces as a panic on
    /// lookup, never undefined behavior. Debug builds still verify that
    /// the two maps are mutual inverses.
    pub fn from_maps_trusted(new_of_old: Storage<u32>, old_of_new: Storage<u32>) -> Result<Self> {
        if new_of_old.len() != old_of_new.len() {
            return Err(SparseError::InvalidPermutation(format!(
                "direction maps disagree on size: {} vs {}",
                new_of_old.len(),
                old_of_new.len()
            )));
        }
        if new_of_old.len() > u32::MAX as usize {
            return Err(SparseError::DimensionTooLarge {
                dim: new_of_old.len(),
            });
        }
        let p = Self {
            new_of_old,
            old_of_new,
        };
        debug_assert!(
            (0..p.len()).all(|old| p.apply_inverse(p.apply(old)) == old),
            "permutation maps are not mutual inverses"
        );
        Ok(p)
    }

    /// True when either direction map is served from a mapped index.
    pub fn is_mapped(&self) -> bool {
        self.new_of_old.is_mapped() || self.old_of_new.is_mapped()
    }

    /// Bytes of heap memory held by the two maps.
    pub fn heap_bytes(&self) -> usize {
        self.new_of_old.heap_bytes() + self.old_of_new.heap_bytes()
    }

    /// Bytes served zero-copy from a mapped index file.
    pub fn mapped_bytes(&self) -> usize {
        self.new_of_old.mapped_bytes() + self.old_of_new.mapped_bytes()
    }

    /// Builds a permutation from the forward map `new_of_old[old] = new`,
    /// verifying it is a bijection on `0..n`.
    pub fn from_new_of_old(new_of_old: Vec<u32>) -> Result<Self> {
        let n = new_of_old.len();
        let mut old_of_new = vec![u32::MAX; n];
        for (old, &new) in new_of_old.iter().enumerate() {
            let new_us = new as usize;
            if new_us >= n {
                return Err(SparseError::InvalidPermutation(format!(
                    "image {new} out of range 0..{n}"
                )));
            }
            if old_of_new[new_us] != u32::MAX {
                return Err(SparseError::InvalidPermutation(format!(
                    "image {new} hit twice (by {} and {old})",
                    old_of_new[new_us]
                )));
            }
            old_of_new[new_us] = old as u32;
        }
        Ok(Self {
            new_of_old: new_of_old.into(),
            old_of_new: old_of_new.into(),
        })
    }

    /// Builds a permutation from the inverse map `old_of_new[new] = old`.
    pub fn from_old_of_new(old_of_new: Vec<u32>) -> Result<Self> {
        // The inverse of a valid bijection is a valid bijection.
        let p = Self::from_new_of_old(old_of_new)?;
        Ok(p.inverse())
    }

    /// Size of the permuted set.
    #[inline]
    pub fn len(&self) -> usize {
        self.new_of_old.len()
    }

    /// True for the empty permutation.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.new_of_old.is_empty()
    }

    /// New label of `old`.
    #[inline]
    pub fn apply(&self, old: usize) -> usize {
        self.new_of_old[old] as usize
    }

    /// Old label of `new`.
    #[inline]
    pub fn apply_inverse(&self, new: usize) -> usize {
        self.old_of_new[new] as usize
    }

    /// The forward map slice (`new_of_old`).
    #[inline]
    pub fn new_of_old(&self) -> &[u32] {
        &self.new_of_old
    }

    /// The inverse map slice (`old_of_new`).
    #[inline]
    pub fn old_of_new(&self) -> &[u32] {
        &self.old_of_new
    }

    /// Returns the inverse permutation.
    pub fn inverse(&self) -> Self {
        Self {
            new_of_old: self.old_of_new.clone(),
            old_of_new: self.new_of_old.clone(),
        }
    }

    /// Composition `other ∘ self`: first relabel by `self`, then by `other`.
    ///
    /// BePI composes the deadend reordering with the hub-and-spoke
    /// reordering this way (Figure 3(d)).
    pub fn then(&self, other: &Permutation) -> Result<Self> {
        if self.len() != other.len() {
            return Err(SparseError::InvalidPermutation(format!(
                "composing permutations of sizes {} and {}",
                self.len(),
                other.len()
            )));
        }
        let new_of_old: Vec<u32> = self
            .new_of_old
            .iter()
            .map(|&mid| other.new_of_old[mid as usize])
            .collect();
        Self::from_new_of_old(new_of_old)
    }

    /// Applies the permutation to a dense vector: `out[new] = v[old]`.
    pub fn permute_vec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.len() {
            return Err(SparseError::VectorLength {
                expected: self.len(),
                actual: v.len(),
            });
        }
        let mut out = vec![0.0; v.len()];
        for (old, &x) in v.iter().enumerate() {
            out[self.new_of_old[old] as usize] = x;
        }
        Ok(out)
    }

    /// Inverse application to a dense vector: `out[old] = v[new]`.
    pub fn unpermute_vec(&self, v: &[f64]) -> Result<Vec<f64>> {
        self.inverse().permute_vec(v)
    }

    /// Symmetric application to a square CSR matrix:
    /// `B[p(i), p(j)] = A[i, j]`, i.e. `B = P A P^T`.
    pub fn permute_symmetric(&self, a: &Csr) -> Result<Csr> {
        if a.nrows() != a.ncols() || a.nrows() != self.len() {
            return Err(SparseError::ShapeMismatch {
                left: a.shape(),
                right: (self.len(), self.len()),
                op: "permute_symmetric",
            });
        }
        let n = a.nrows();
        // Build row counts of the output directly.
        let mut indptr = vec![0usize; n + 1];
        for new_row in 0..n {
            let old_row = self.old_of_new[new_row] as usize;
            indptr[new_row + 1] = indptr[new_row] + a.row_nnz(old_row);
        }
        let nnz = a.nnz();
        let mut indices = vec![0u32; nnz];
        let mut values = vec![0.0f64; nnz];
        for new_row in 0..n {
            let old_row = self.old_of_new[new_row] as usize;
            let (cols, vals) = a.row(old_row);
            let out_start = indptr[new_row];
            let slot = &mut indices[out_start..out_start + cols.len()];
            let vslot = &mut values[out_start..out_start + cols.len()];
            // Map columns, then sort the row by new column index.
            let mut pairs: Vec<(u32, f64)> = cols
                .iter()
                .zip(vals)
                .map(|(&c, &v)| (self.new_of_old[c as usize], v))
                .collect();
            pairs.sort_unstable_by_key(|&(c, _)| c);
            for (k, (c, v)) in pairs.into_iter().enumerate() {
                slot[k] = c;
                vslot[k] = v;
            }
        }
        Ok(Csr::from_parts_unchecked(n, n, indptr, indices, values))
    }
}

impl MemBytes for Permutation {
    fn mem_bytes(&self) -> usize {
        self.new_of_old.mem_bytes() + self.old_of_new.mem_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    #[test]
    fn identity_maps_to_self() {
        let p = Permutation::identity(4);
        for i in 0..4 {
            assert_eq!(p.apply(i), i);
            assert_eq!(p.apply_inverse(i), i);
        }
    }

    #[test]
    fn from_new_of_old_validates_bijection() {
        assert!(Permutation::from_new_of_old(vec![1, 0, 2]).is_ok());
        assert!(Permutation::from_new_of_old(vec![0, 0, 2]).is_err());
        assert!(Permutation::from_new_of_old(vec![0, 3, 1]).is_err());
    }

    #[test]
    fn inverse_roundtrip() {
        let p = Permutation::from_new_of_old(vec![2, 0, 1]).unwrap();
        let inv = p.inverse();
        for i in 0..3 {
            assert_eq!(inv.apply(p.apply(i)), i);
            assert_eq!(p.apply(inv.apply(i)), i);
        }
    }

    #[test]
    fn from_old_of_new_matches() {
        let p = Permutation::from_old_of_new(vec![2, 0, 1]).unwrap();
        // old_of_new[0] = 2 means new label 0 holds old node 2.
        assert_eq!(p.apply(2), 0);
        assert_eq!(p.apply_inverse(0), 2);
    }

    #[test]
    fn composition_order() {
        // p: 0->1->..., q applied after.
        let p = Permutation::from_new_of_old(vec![1, 2, 0]).unwrap();
        let q = Permutation::from_new_of_old(vec![0, 2, 1]).unwrap();
        let pq = p.then(&q).unwrap();
        for i in 0..3 {
            assert_eq!(pq.apply(i), q.apply(p.apply(i)));
        }
    }

    #[test]
    fn composition_size_mismatch() {
        let p = Permutation::identity(2);
        let q = Permutation::identity(3);
        assert!(p.then(&q).is_err());
    }

    #[test]
    fn vector_permutation_roundtrip() {
        let p = Permutation::from_new_of_old(vec![2, 0, 1]).unwrap();
        let v = vec![10.0, 20.0, 30.0];
        let pv = p.permute_vec(&v).unwrap();
        assert_eq!(pv, vec![20.0, 30.0, 10.0]);
        assert_eq!(p.unpermute_vec(&pv).unwrap(), v);
    }

    #[test]
    fn symmetric_matrix_permutation() {
        // A[0,1] = 5; p sends 0->2, 1->0 => B[2,0] = 5.
        let mut coo = Coo::new(3, 3).unwrap();
        coo.push(0, 1, 5.0).unwrap();
        coo.push(1, 2, 7.0).unwrap();
        let a = coo.to_csr();
        let p = Permutation::from_new_of_old(vec![2, 0, 1]).unwrap();
        let b = p.permute_symmetric(&a).unwrap();
        assert_eq!(b.get(2, 0), 5.0);
        assert_eq!(b.get(0, 1), 7.0);
        assert_eq!(b.nnz(), a.nnz());
        b.check_invariants().unwrap();
    }

    #[test]
    fn symmetric_permutation_preserves_spmv() {
        // (P A P^T)(P x) = P (A x)
        let mut coo = Coo::new(4, 4).unwrap();
        for &(r, c, v) in &[
            (0, 1, 1.0),
            (1, 2, 2.0),
            (2, 3, 3.0),
            (3, 0, 4.0),
            (1, 1, -1.0),
        ] {
            coo.push(r, c, v).unwrap();
        }
        let a = coo.to_csr();
        let p = Permutation::from_new_of_old(vec![3, 1, 0, 2]).unwrap();
        let b = p.permute_symmetric(&a).unwrap();
        let x = vec![1.0, -2.0, 0.5, 4.0];
        let lhs = b.mul_vec(&p.permute_vec(&x).unwrap()).unwrap();
        let rhs = p.permute_vec(&a.mul_vec(&x).unwrap()).unwrap();
        for (l, r) in lhs.iter().zip(&rhs) {
            assert!((l - r).abs() < 1e-14);
        }
    }

    #[test]
    fn permute_rejects_wrong_sizes() {
        let p = Permutation::identity(3);
        assert!(p.permute_vec(&[1.0, 2.0]).is_err());
        let a = Csr::zeros(2, 2);
        assert!(p.permute_symmetric(&a).is_err());
    }
}
