//! Saving and loading preprocessed BePI instances.
//!
//! The economics of a preprocessing method (Section 2.3: "preprocessed
//! matrices need to be computed just once, and then can be reused") only
//! materialize if the preprocessed data survives the process. This module
//! serializes a [`BePi`] instance to a compact little-endian binary format
//! and restores it bit-for-bit.
//!
//! Format: magic `BEPI`, a format version, the config scalars, then each
//! matrix as `(nrows, ncols, nnz, indptr, indices, values)`. No external
//! serialization crates — the arrays are written directly.

use crate::bepi::{BePi, BePiConfig};
use bepi_sparse::{Csr, Permutation, Result, SparseError};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"BEPI";
const VERSION: u32 = 1;

/// Writes a preprocessed instance to a stream.
pub fn save<W: Write>(bepi: &BePi, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    write_u32(&mut w, VERSION)?;
    bepi.write_parts(&mut w)?;
    w.flush()?;
    Ok(())
}

/// Reads a preprocessed instance from a stream.
pub fn load<R: Read>(reader: R) -> Result<BePi> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(SparseError::Parse(format!(
            "not a BePI file (magic {magic:?})"
        )));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(SparseError::Parse(format!(
            "unsupported BePI format version {version} (expected {VERSION})"
        )));
    }
    BePi::read_parts(&mut r)
}

/// Convenience: saves to a file path.
pub fn save_file<P: AsRef<Path>>(bepi: &BePi, path: P) -> Result<()> {
    save(bepi, std::fs::File::create(path)?)
}

/// Convenience: loads from a file path.
pub fn load_file<P: AsRef<Path>>(path: P) -> Result<BePi> {
    load(std::fs::File::open(path)?)
}

// --- primitive readers/writers (little endian) ---

pub(crate) fn write_u32<W: Write>(w: &mut W, v: u32) -> Result<()> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

pub(crate) fn read_u32<R: Read>(r: &mut R) -> Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

pub(crate) fn write_u64<W: Write>(w: &mut W, v: u64) -> Result<()> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

pub(crate) fn read_u64<R: Read>(r: &mut R) -> Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

pub(crate) fn write_f64<W: Write>(w: &mut W, v: f64) -> Result<()> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

pub(crate) fn read_f64<R: Read>(r: &mut R) -> Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

pub(crate) fn write_usize_slice<W: Write>(w: &mut W, s: &[usize]) -> Result<()> {
    write_u64(w, s.len() as u64)?;
    for &v in s {
        write_u64(w, v as u64)?;
    }
    Ok(())
}

pub(crate) fn read_usize_vec<R: Read>(r: &mut R) -> Result<Vec<usize>> {
    let len = read_u64(r)? as usize;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(read_u64(r)? as usize);
    }
    Ok(out)
}

pub(crate) fn write_u32_slice<W: Write>(w: &mut W, s: &[u32]) -> Result<()> {
    write_u64(w, s.len() as u64)?;
    for &v in s {
        write_u32(w, v)?;
    }
    Ok(())
}

pub(crate) fn read_u32_vec<R: Read>(r: &mut R) -> Result<Vec<u32>> {
    let len = read_u64(r)? as usize;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(read_u32(r)?);
    }
    Ok(out)
}

pub(crate) fn write_f64_slice<W: Write>(w: &mut W, s: &[f64]) -> Result<()> {
    write_u64(w, s.len() as u64)?;
    for &v in s {
        write_f64(w, v)?;
    }
    Ok(())
}

pub(crate) fn read_f64_vec<R: Read>(r: &mut R) -> Result<Vec<f64>> {
    let len = read_u64(r)? as usize;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(read_f64(r)?);
    }
    Ok(out)
}

pub(crate) fn write_csr<W: Write>(w: &mut W, m: &Csr) -> Result<()> {
    write_u64(w, m.nrows() as u64)?;
    write_u64(w, m.ncols() as u64)?;
    write_usize_slice(w, m.indptr())?;
    write_u32_slice(w, m.indices())?;
    write_f64_slice(w, m.values())
}

pub(crate) fn read_csr<R: Read>(r: &mut R) -> Result<Csr> {
    let nrows = read_u64(r)? as usize;
    let ncols = read_u64(r)? as usize;
    let indptr = read_usize_vec(r)?;
    let indices = read_u32_vec(r)?;
    let values = read_f64_vec(r)?;
    Csr::from_parts(nrows, ncols, indptr, indices, values)
}

pub(crate) fn write_permutation<W: Write>(w: &mut W, p: &Permutation) -> Result<()> {
    write_u32_slice(w, p.new_of_old())
}

pub(crate) fn read_permutation<R: Read>(r: &mut R) -> Result<Permutation> {
    Permutation::from_new_of_old(read_u32_vec(r)?)
}

pub(crate) fn write_config<W: Write>(w: &mut W, c: &BePiConfig) -> Result<()> {
    use crate::bepi::{BePiVariant, InnerSolver, PrecondKind};
    write_u32(
        w,
        match c.variant {
            BePiVariant::Basic => 0,
            BePiVariant::Sparse => 1,
            BePiVariant::Full => 2,
        },
    )?;
    write_f64(w, c.c)?;
    write_f64(w, c.tol)?;
    write_f64(w, c.hub_ratio.unwrap_or(f64::NAN))?;
    write_u64(w, c.gmres_restart as u64)?;
    write_u64(w, c.max_iters as u64)?;
    write_u32(
        w,
        match c.inner {
            InnerSolver::Gmres => 0,
            InnerSolver::BiCgStab => 1,
        },
    )?;
    let (pk, order) = match c.precond {
        PrecondKind::Ilu0 => (0u32, 0u64),
        PrecondKind::Jacobi => (1, 0),
        PrecondKind::Neumann(t) => (2, t as u64),
    };
    write_u32(w, pk)?;
    write_u64(w, order)
}

pub(crate) fn read_config<R: Read>(r: &mut R) -> Result<BePiConfig> {
    use crate::bepi::{BePiVariant, InnerSolver, PrecondKind};
    let variant = match read_u32(r)? {
        0 => BePiVariant::Basic,
        1 => BePiVariant::Sparse,
        2 => BePiVariant::Full,
        v => return Err(SparseError::Parse(format!("bad variant tag {v}"))),
    };
    let c = read_f64(r)?;
    let tol = read_f64(r)?;
    let hub = read_f64(r)?;
    let gmres_restart = read_u64(r)? as usize;
    let max_iters = read_u64(r)? as usize;
    let inner = match read_u32(r)? {
        0 => InnerSolver::Gmres,
        1 => InnerSolver::BiCgStab,
        v => return Err(SparseError::Parse(format!("bad inner-solver tag {v}"))),
    };
    let precond = match (read_u32(r)?, read_u64(r)?) {
        (0, _) => PrecondKind::Ilu0,
        (1, _) => PrecondKind::Jacobi,
        (2, t) => PrecondKind::Neumann(t as usize),
        (v, _) => return Err(SparseError::Parse(format!("bad precond tag {v}"))),
    };
    Ok(BePiConfig {
        variant,
        c,
        tol,
        hub_ratio: if hub.is_nan() { None } else { Some(hub) },
        gmres_restart,
        max_iters,
        inner,
        precond,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use bepi_graph::generators;

    fn roundtrip(cfg: &BePiConfig) {
        let g = generators::rmat(7, 500, generators::RmatParams::default(), 61).unwrap();
        let original = BePi::preprocess(&g, cfg).unwrap();
        let mut buf = Vec::new();
        save(&original, &mut buf).unwrap();
        let restored = load(&buf[..]).unwrap();
        assert_eq!(restored.preprocessed_bytes(), original.preprocessed_bytes());
        assert_eq!(restored.schur(), original.schur());
        for seed in [0usize, 31, 100] {
            let a = original.query(seed).unwrap();
            let b = restored.query(seed).unwrap();
            assert_eq!(a.scores, b.scores, "queries must be bit-identical");
            assert_eq!(a.iterations, b.iterations);
        }
    }

    #[test]
    fn roundtrip_full_variant() {
        roundtrip(&BePiConfig::default());
    }

    #[test]
    fn roundtrip_basic_variant() {
        roundtrip(&BePiConfig::for_variant(BePiVariant::Basic));
    }

    #[test]
    fn roundtrip_jacobi_and_neumann_preconds() {
        roundtrip(&BePiConfig {
            precond: PrecondKind::Jacobi,
            ..BePiConfig::default()
        });
        roundtrip(&BePiConfig {
            precond: PrecondKind::Neumann(3),
            inner: InnerSolver::BiCgStab,
            ..BePiConfig::default()
        });
    }

    #[test]
    fn roundtrip_through_file() {
        let g = generators::erdos_renyi(100, 400, 5).unwrap();
        let original = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        let path = std::env::temp_dir().join("bepi_persist_test.bin");
        save_file(&original, &path).unwrap();
        let restored = load_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(
            original.query(3).unwrap().scores,
            restored.query(3).unwrap().scores
        );
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        assert!(load(&b"NOPE"[..]).is_err());
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        assert!(load(&buf[..]).is_err());
    }

    #[test]
    fn rejects_truncated_stream() {
        let g = generators::cycle(10);
        let original = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        let mut buf = Vec::new();
        save(&original, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(load(&buf[..]).is_err());
    }
}
