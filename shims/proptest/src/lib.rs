//! Offline stand-in for the `proptest` crate.
//!
//! Implements the slice of proptest's API this workspace's property tests
//! use — the `proptest!` macro, range/tuple/`Just`/`collection::vec`
//! strategies, and the `prop_map` / `prop_flat_map` / `prop_perturb`
//! combinators — over a deterministic per-test RNG.
//!
//! Differences from upstream, deliberate for an offline shim:
//!
//! * **No shrinking.** A failing case reports the case number and seed;
//!   inputs are reproducible (the RNG is seeded from the test name), just
//!   not minimized.
//! * **No persistence files**, no fork, no timeout machinery.
//!
//! The generated values are honest random samples — every property still
//! runs `cases` times against fresh inputs, so the tests retain their
//! bug-finding power minus minimization convenience.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! The deterministic RNG handed to strategies and `prop_perturb`.

    /// xoshiro256++ generator, seeded per test from the test's name so
    //  each property gets an independent, reproducible stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// Seeds from an arbitrary byte string (the test name).
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name, then SplitMix64 expansion.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            Self::from_seed(h)
        }

        /// Seeds from a 64-bit value.
        pub fn from_seed(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            Self { s }
        }

        /// Next raw word.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Unbiased sample in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "cannot sample below 0");
            let zone = u64::MAX - (u64::MAX % bound);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % bound;
                }
            }
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// `rand`-style generic draw; `prop_perturb` closures call
        /// `rng.random::<u64>()`.
        pub fn random<T: FromRng>(&mut self) -> T {
            T::from_rng(self)
        }

        /// Derives an independent child stream (used to hand an owned
        /// RNG to `prop_perturb` without aliasing the parent stream).
        pub fn split(&mut self) -> TestRng {
            TestRng::from_seed(self.next_u64() ^ 0x9E37_79B9_7F4A_7C15)
        }
    }

    /// Types [`TestRng::random`] can produce.
    pub trait FromRng {
        /// Draws one value.
        fn from_rng(rng: &mut TestRng) -> Self;
    }

    impl FromRng for u64 {
        fn from_rng(rng: &mut TestRng) -> Self {
            rng.next_u64()
        }
    }

    impl FromRng for u32 {
        fn from_rng(rng: &mut TestRng) -> Self {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl FromRng for usize {
        fn from_rng(rng: &mut TestRng) -> Self {
            rng.next_u64() as usize
        }
    }

    impl FromRng for bool {
        fn from_rng(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl FromRng for f64 {
        fn from_rng(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }
}

use test_runner::TestRng;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the numerical properties
        // (each solves linear systems) fast while still sweeping inputs.
        Self { cases: 64 }
    }
}

/// A generator of random values (upstream's `Strategy`, minus shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples from the strategy `f` builds
    /// from it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Maps generated values through `f` with an owned RNG (upstream's
    /// escape hatch for imperative generation like shuffles).
    fn prop_perturb<U, F>(self, f: F) -> Perturb<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value, TestRng) -> U,
    {
        Perturb { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_perturb`].
pub struct Perturb<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value, TestRng) -> U> Strategy for Perturb<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        let v = self.inner.sample(rng);
        (self.f)(v, rng.split())
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_uint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_uint_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(i64, i32, i16, i8, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive length bounds for [`vec`], converted from `usize` ranges
    /// (mirrors upstream's `SizeRange`, which is what makes bare integer
    /// range literals like `0..150` infer as `usize`).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec length range");
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    /// A `Vec` whose length is drawn from `counts` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, counts: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            counts: counts.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        counts: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.counts.hi - self.counts.lo + 1;
            let n = self.counts.lo + rng.below(span as u64) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::TestRng;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Defines property tests: each `fn` becomes a `#[test]` that samples its
/// arguments `cases` times and runs the body on every sample.
///
/// ```ignore
/// use proptest::prelude::*;
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn addition_commutes(a in 0usize..100, b in 0usize..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $($(#[$meta:meta])+ fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..config.cases {
                    // Bind strategies once per case; runtime-constructed
                    // strategies (capturing earlier args) re-evaluate.
                    $(let $arg = {
                        let __s = $strat;
                        $crate::Strategy::sample(&__s, &mut rng)
                    };)+
                    let __run = || -> () { $body };
                    __run();
                }
            }
        )*
    };
}

/// `assert!` under a property (no shrinking in the shim, so this is a
/// plain assertion with case context from the panic location).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// `assert_eq!` under a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// `assert_ne!` under a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the rest of this case when the assumption fails. (The shim
/// cannot resample; it simply returns from the case closure.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_sample_within_bounds() {
        let mut rng = TestRng::deterministic("strategies_sample_within_bounds");
        for _ in 0..200 {
            let v = Strategy::sample(&(3usize..10), &mut rng);
            assert!((3..10).contains(&v));
            let f = Strategy::sample(&(-1.0f64..1.0), &mut rng);
            assert!((-1.0..1.0).contains(&f));
            let (a, b) = Strategy::sample(&(0u32..4, 10usize..=12), &mut rng);
            assert!(a < 4 && (10..=12).contains(&b));
        }
    }

    #[test]
    fn vec_strategy_respects_count_range() {
        let mut rng = TestRng::deterministic("vec_strategy");
        for _ in 0..100 {
            let v = Strategy::sample(&collection::vec(0usize..5, 2..7), &mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::deterministic("combinators");
        let s = (1usize..5)
            .prop_flat_map(|n| collection::vec(0usize..n, n..=n).prop_map(move |v| (n, v)));
        for _ in 0..100 {
            let (n, v) = Strategy::sample(&s, &mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x < n));
        }
        let p =
            Just(5usize).prop_perturb(|five, mut rng| five + (rng.random::<u64>() % 2) as usize);
        let x = Strategy::sample(&p, &mut rng);
        assert!(x == 5 || x == 6);
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("same-name");
        let mut b = TestRng::deterministic("same-name");
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    // The macro itself, exercised end-to-end.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_cases(a in 0usize..50, v in collection::vec(0u32..9, 0..20)) {
            prop_assert!(a < 50);
            prop_assert!(v.iter().all(|&x| x < 9));
            prop_assert_eq!(v.len(), v.len());
        }

        #[test]
        fn macro_without_trailing_comma(x in -4i64..4) {
            prop_assert!((-4..4).contains(&x));
        }
    }

    proptest! {
        #[test]
        fn macro_default_config(x in 0.0f64..1.0) {
            prop_assert!((0.0..1.0).contains(&x));
        }
    }
}
