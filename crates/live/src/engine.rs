//! The live engine: buffered updates, a background rebuild worker, and
//! an epoch-counted atomic snapshot swap.
//!
//! The serving path only ever touches [`LiveEngine::current`], which
//! hands out an `Arc` to an immutable [`VersionedIndex`] — in-flight
//! queries finish on the snapshot they started with, the swap is a
//! pointer exchange under a mutex held for nanoseconds, and there are no
//! torn reads by construction. Everything expensive (applying updates,
//! SlashBurn → Schur → ILU re-preprocessing, checkpointing) happens on
//! the rebuild worker thread, off the serving path — exactly the paper's
//! Section 5 batch-update strategy run as a subsystem instead of a cron
//! job.

use crate::wal::Wal;
use bepi_core::dynamic::{apply_updates, dedup_opposing, EdgeUpdate, RebuildKind};
use bepi_core::rwr::RwrSolver;
use bepi_core::{classify, persist, BePi, BePiConfig, Classification};
use bepi_graph::Graph;
use bepi_sparse::{Result, SparseError};
use bepi_walk::{ApproxConfig, ApproxEngine};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// One immutable served snapshot: the preprocessed index plus the epoch
/// counter that names it. Responses echo `version` so a client can tell
/// exactly which graph state produced its scores.
#[derive(Debug)]
pub struct VersionedIndex {
    /// Monotonically increasing snapshot epoch, starting at 1.
    pub version: u64,
    /// The preprocessed, read-only index for this epoch.
    pub bepi: Arc<BePi>,
    /// The approximate serving engine over this epoch's graph, rebuilt
    /// at every hot-swap so exact and approximate lanes always answer
    /// from the same graph state. `None` when the index was loaded
    /// without its graph — the approximate lane is then unavailable.
    pub approx: Option<Arc<ApproxEngine>>,
}

/// Tuning for [`LiveEngine::start`].
#[derive(Debug, Clone, Default)]
pub struct LiveConfig {
    /// Buffered updates that trigger an automatic background rebuild.
    /// `0` disables auto-rebuild (only `POST /rebuild` flushes).
    pub auto_flush_threshold: usize,
    /// Durable write-ahead log path. `None` keeps updates in memory only
    /// (they die with the process).
    pub wal_path: Option<PathBuf>,
    /// Where to checkpoint the index (graph embedded) after each
    /// successful rebuild; applied WAL segments are truncated once
    /// the checkpoint is durable. `None` disables checkpointing — the
    /// WAL then grows until restart and is never compacted.
    pub checkpoint_path: Option<PathBuf>,
    /// Write checkpoints in the memory-mappable v6 format and, once a
    /// checkpoint is durable, re-open it as a shared read-only mapping
    /// and hot-swap the mapped copy in place of the heap-built snapshot
    /// (the new file is mapped *before* the old snapshot is dropped, so
    /// serving never gaps). `false` keeps the streamed v5 checkpoint
    /// format and heap serving.
    pub mmap_checkpoints: bool,
    /// Tuning for the approximate serving engine built alongside every
    /// snapshot (estimator choice, walks per query, TPA term budget).
    pub approx: ApproxConfig,
}

/// What [`LiveEngine::submit`] did with a batch.
#[derive(Debug, Clone, Copy)]
pub struct SubmitOutcome {
    /// Updates accepted (all of them — validation is all-or-nothing).
    pub accepted: usize,
    /// Buffered updates not yet visible to queries, after this batch.
    pub pending: usize,
    /// Version currently being served (the batch is *not* in it yet).
    pub version: u64,
    /// Whether this batch pushed the buffer over the auto-flush
    /// threshold and scheduled a background rebuild.
    pub rebuild_triggered: bool,
}

/// What caused the most recent rebuild pass to be scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebuildTrigger {
    /// No rebuild has run yet (the served index is the initial one).
    None,
    /// A submit pushed the buffer over the auto-flush threshold.
    Threshold,
    /// An explicit `POST /rebuild` / [`LiveEngine::rebuild_and_wait`].
    Explicit,
}

impl RebuildTrigger {
    /// Stable lower-case name for logs and the version JSON.
    pub fn name(self) -> &'static str {
        match self {
            RebuildTrigger::None => "none",
            RebuildTrigger::Threshold => "threshold",
            RebuildTrigger::Explicit => "explicit",
        }
    }
}

/// A point-in-time summary for `GET /version`.
#[derive(Debug, Clone)]
pub struct VersionInfo {
    /// Served snapshot epoch.
    pub version: u64,
    /// Nodes in the served index.
    pub nodes: usize,
    /// Buffered, not-yet-visible updates.
    pub pending: usize,
    /// Background rebuilds completed since startup.
    pub rebuilds: u64,
    /// Whether this engine accepts updates at all.
    pub live: bool,
    /// The last rebuild *or checkpoint* failure, if any (cleared by the
    /// next fully clean rebuild pass).
    pub last_error: Option<String>,
    /// Which path produced the served index: `initial` (no rebuild yet),
    /// `full` (complete preprocessing pipeline), or `numeric` (plan-frozen
    /// KLU-style refactorization).
    pub rebuild_kind: &'static str,
    /// What scheduled the most recent rebuild: `none`, `threshold`, or
    /// `explicit`.
    pub rebuild_trigger: &'static str,
}

struct MutState {
    /// The graph matching the *served* snapshot. `None` for frozen
    /// engines (index loaded without an embedded graph).
    graph: Option<Graph>,
    pending: Vec<EdgeUpdate>,
    wal: Option<Wal>,
    /// Rebuild request/completion generations: the worker owes a pass
    /// whenever `request_gen > done_gen`.
    request_gen: u64,
    done_gen: u64,
    /// Set when the worker thread is gone (shutdown or panic) so waiters
    /// never block forever.
    worker_gone: bool,
    /// Most recent failure of any kind (rebuild or checkpoint), for
    /// `GET /version` / metrics. Cleared by the next fully clean pass.
    last_error: Option<String>,
    /// The generation whose *rebuild* (apply + preprocess + swap) failed,
    /// with the error. Checkpoint failures do not set this: the swap
    /// landed, so callers of [`LiveEngine::rebuild_and_wait`] still get
    /// their new version. Cleared once a later pass applies the
    /// re-buffered batch.
    failed: Option<(u64, String)>,
    /// What scheduled the pass the worker will run next — recorded at
    /// the `request_gen` bump sites, snapshotted by the worker.
    trigger: RebuildTrigger,
}

/// Shared, thread-safe live-update engine. Cheap to clone via `Arc`.
pub struct LiveEngine {
    current: Mutex<Arc<VersionedIndex>>,
    state: Mutex<MutState>,
    cv: Condvar,
    shutdown: AtomicBool,
    worker: Mutex<Option<JoinHandle<()>>>,
    solver_config: BePiConfig,
    approx_config: ApproxConfig,
    auto_flush_threshold: usize,
    checkpoint_path: Option<PathBuf>,
    mmap_checkpoints: bool,
    rebuilds_total: AtomicU64,
    updates_total: AtomicU64,
    last_rebuild_micros: AtomicU64,
    numeric_rebuilds_total: AtomicU64,
    structural_rebuilds_total: AtomicU64,
    /// Cumulative wall time spent in numeric-path rebuilds, in micros.
    numeric_rebuild_micros: AtomicU64,
    /// Cumulative wall time spent in full-path rebuilds, in micros.
    full_rebuild_micros: AtomicU64,
    /// Encoded [`RebuildKind`] of the served index (0/1/2).
    last_rebuild_kind: AtomicU64,
    /// Encoded [`RebuildTrigger`] of the latest pass (0/1/2).
    last_rebuild_trigger: AtomicU64,
}

fn encode_kind(kind: RebuildKind) -> u64 {
    match kind {
        RebuildKind::Initial => 0,
        RebuildKind::Full => 1,
        RebuildKind::Numeric => 2,
    }
}

fn decode_kind(v: u64) -> RebuildKind {
    match v {
        2 => RebuildKind::Numeric,
        1 => RebuildKind::Full,
        _ => RebuildKind::Initial,
    }
}

fn encode_trigger(t: RebuildTrigger) -> u64 {
    match t {
        RebuildTrigger::None => 0,
        RebuildTrigger::Threshold => 1,
        RebuildTrigger::Explicit => 2,
    }
}

fn decode_trigger(v: u64) -> RebuildTrigger {
    match v {
        2 => RebuildTrigger::Explicit,
        1 => RebuildTrigger::Threshold,
        _ => RebuildTrigger::None,
    }
}

impl LiveEngine {
    /// Wraps an index with no graph: queries work, updates are rejected.
    /// This is the daemon's classic static-snapshot mode. The
    /// approximate lane needs the graph, so it is unavailable here —
    /// use [`LiveEngine::frozen_with_graph`] when the graph is on hand.
    pub fn frozen(bepi: Arc<BePi>) -> Arc<Self> {
        Self::frozen_inner(bepi, None, ApproxConfig::default())
    }

    /// Wraps an index *with* its graph, still frozen (updates are
    /// rejected), but with the approximate serving lane enabled: the
    /// snapshot carries an [`ApproxEngine`] built from the graph with
    /// the index's own restart probability.
    pub fn frozen_with_graph(
        bepi: Arc<BePi>,
        graph: Graph,
        approx_config: ApproxConfig,
    ) -> Arc<Self> {
        let approx = build_approx(&bepi, &Arc::new(graph), approx_config);
        Self::frozen_inner(bepi, approx, approx_config)
    }

    fn frozen_inner(
        bepi: Arc<BePi>,
        approx: Option<Arc<ApproxEngine>>,
        approx_config: ApproxConfig,
    ) -> Arc<Self> {
        Arc::new(Self {
            current: Mutex::new(Arc::new(VersionedIndex {
                version: 1,
                bepi,
                approx,
            })),
            state: Mutex::new(MutState {
                graph: None,
                pending: Vec::new(),
                wal: None,
                request_gen: 0,
                done_gen: 0,
                worker_gone: true,
                last_error: None,
                failed: None,
                trigger: RebuildTrigger::None,
            }),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            worker: Mutex::new(None),
            solver_config: BePiConfig::default(),
            approx_config,
            auto_flush_threshold: 0,
            checkpoint_path: None,
            mmap_checkpoints: false,
            rebuilds_total: AtomicU64::new(0),
            updates_total: AtomicU64::new(0),
            last_rebuild_micros: AtomicU64::new(0),
            numeric_rebuilds_total: AtomicU64::new(0),
            structural_rebuilds_total: AtomicU64::new(0),
            numeric_rebuild_micros: AtomicU64::new(0),
            full_rebuild_micros: AtomicU64::new(0),
            last_rebuild_kind: AtomicU64::new(0),
            last_rebuild_trigger: AtomicU64::new(0),
        })
    }

    /// Starts a live engine: opens and replays the WAL (if configured),
    /// folds any replayed updates into the served index *before* the
    /// first query, checkpoints that recovered state, and spawns the
    /// background rebuild worker.
    pub fn start(
        bepi: Arc<BePi>,
        graph: Graph,
        solver_config: BePiConfig,
        config: LiveConfig,
    ) -> Result<Arc<Self>> {
        if graph.n() != bepi.node_count() {
            return Err(SparseError::ShapeMismatch {
                left: (graph.n(), graph.n()),
                right: (bepi.node_count(), bepi.node_count()),
                op: "LiveEngine::start (graph vs index node count)",
            });
        }
        let mut graph = graph;
        let mut bepi = bepi;
        let mut wal = None;
        let mut replayed_through = 0u64;
        if let Some(path) = &config.wal_path {
            let replay_span = bepi_obs::Span::enter("wal.replay");
            let (w, records, report) = Wal::open(path)?;
            let replayed = records.len();
            let mut replay_path = "none";
            if !records.is_empty() {
                // Recovered updates become visible immediately: the WAL
                // acknowledged them before the crash. The checkpoint's
                // symbolic plan survived the save/load round-trip (format
                // v4+ persists every plan field), so a numeric-only batch
                // replays through the cheap refactor path instead of a
                // full preprocess.
                let new_graph = apply_updates(&graph, &records)?;
                let sources: Vec<usize> = records
                    .iter()
                    .map(|u| match *u {
                        EdgeUpdate::Insert(a, _) | EdgeUpdate::Remove(a, _) => a,
                    })
                    .collect();
                bepi = match classify(&bepi.symbolic_plan(), &graph, &new_graph, &sources) {
                    Classification::NumericOnly(dirty) => match bepi.refactor(&new_graph, &dirty) {
                        Ok(b) => {
                            replay_path = "numeric";
                            Arc::new(b)
                        }
                        Err(_) => {
                            replay_path = "full";
                            Arc::new(BePi::preprocess(&new_graph, &solver_config)?)
                        }
                    },
                    Classification::Structural(_) => {
                        replay_path = "full";
                        Arc::new(BePi::preprocess(&new_graph, &solver_config)?)
                    }
                };
                graph = new_graph;
                replayed_through = report.segments;
            }
            let replay_time = replay_span.exit();
            bepi_obs::info!(
                "live",
                "WAL replay complete",
                records = replayed,
                segments = report.segments,
                truncated_bytes = report.truncated_bytes,
                path = replay_path,
                elapsed_ms = replay_time.as_millis()
            );
            wal = Some(w);
        }

        let approx = build_approx(&bepi, &Arc::new(graph.clone()), config.approx);
        let engine = Arc::new(Self {
            current: Mutex::new(Arc::new(VersionedIndex {
                version: 1,
                bepi,
                approx,
            })),
            state: Mutex::new(MutState {
                graph: Some(graph),
                pending: Vec::new(),
                wal,
                request_gen: 0,
                done_gen: 0,
                worker_gone: false,
                last_error: None,
                failed: None,
                trigger: RebuildTrigger::None,
            }),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            worker: Mutex::new(None),
            solver_config,
            approx_config: config.approx,
            auto_flush_threshold: config.auto_flush_threshold,
            checkpoint_path: config.checkpoint_path,
            mmap_checkpoints: config.mmap_checkpoints,
            rebuilds_total: AtomicU64::new(0),
            updates_total: AtomicU64::new(0),
            last_rebuild_micros: AtomicU64::new(0),
            numeric_rebuilds_total: AtomicU64::new(0),
            structural_rebuilds_total: AtomicU64::new(0),
            numeric_rebuild_micros: AtomicU64::new(0),
            full_rebuild_micros: AtomicU64::new(0),
            last_rebuild_kind: AtomicU64::new(0),
            last_rebuild_trigger: AtomicU64::new(0),
        });

        if replayed_through > 0 {
            // The recovered state is the new baseline: checkpoint it and
            // drop the replayed WAL prefix so a crash loop cannot grow
            // the log without bound.
            let mut st = engine.state.lock().unwrap_or_else(|e| e.into_inner());
            engine.checkpoint_and_compact(&mut st, replayed_through)?;
        }

        let worker = {
            let engine = Arc::clone(&engine);
            std::thread::Builder::new()
                .name("bepi-rebuild".to_string())
                .spawn(move || worker_loop(&engine))?
        };
        *engine.worker.lock().unwrap_or_else(|e| e.into_inner()) = Some(worker);
        Ok(engine)
    }

    /// The snapshot to answer queries from. Callers hold the `Arc` for
    /// the whole request so seed validation, the solve, and the rendered
    /// version header all agree even across a concurrent hot-swap.
    pub fn current(&self) -> Arc<VersionedIndex> {
        Arc::clone(&self.current.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Served snapshot epoch.
    pub fn version(&self) -> u64 {
        self.current().version
    }

    /// Whether this engine accepts edge updates.
    pub fn is_live(&self) -> bool {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .graph
            .is_some()
    }

    /// Buffered updates not yet visible to queries.
    pub fn pending_len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pending
            .len()
    }

    /// Background rebuilds completed since startup.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds_total.load(Ordering::Relaxed)
    }

    /// Edge updates accepted since startup.
    pub fn updates_accepted(&self) -> u64 {
        self.updates_total.load(Ordering::Relaxed)
    }

    /// Duration of the most recent completed rebuild, in microseconds.
    pub fn last_rebuild_micros(&self) -> u64 {
        self.last_rebuild_micros.load(Ordering::Relaxed)
    }

    /// Rebuilds that took the numeric-only refactorization path.
    pub fn numeric_rebuilds(&self) -> u64 {
        self.numeric_rebuilds_total.load(Ordering::Relaxed)
    }

    /// Rebuilds that ran the full (structural) preprocessing pipeline.
    pub fn structural_rebuilds(&self) -> u64 {
        self.structural_rebuilds_total.load(Ordering::Relaxed)
    }

    /// Cumulative wall time of numeric-path rebuilds, in seconds.
    pub fn numeric_rebuild_seconds(&self) -> f64 {
        self.numeric_rebuild_micros.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Cumulative wall time of full-path rebuilds, in seconds.
    pub fn full_rebuild_seconds(&self) -> f64 {
        self.full_rebuild_micros.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Which path produced the currently served index.
    pub fn last_rebuild_kind(&self) -> RebuildKind {
        decode_kind(self.last_rebuild_kind.load(Ordering::Relaxed))
    }

    /// What scheduled the most recent rebuild pass.
    pub fn last_rebuild_trigger(&self) -> RebuildTrigger {
        decode_trigger(self.last_rebuild_trigger.load(Ordering::Relaxed))
    }

    /// Point-in-time status summary.
    pub fn info(&self) -> VersionInfo {
        let current = self.current();
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        VersionInfo {
            version: current.version,
            nodes: current.bepi.node_count(),
            pending: st.pending.len(),
            rebuilds: self.rebuilds(),
            live: st.graph.is_some(),
            last_error: st.last_error.clone(),
            rebuild_kind: self.last_rebuild_kind().name(),
            rebuild_trigger: self.last_rebuild_trigger().name(),
        }
    }

    /// Validates, logs (WAL append + fsync), and buffers a batch of
    /// updates. All-or-nothing: an out-of-range update rejects the whole
    /// batch before anything is logged. Queries keep seeing the old
    /// snapshot until a rebuild completes.
    pub fn submit(&self, updates: &[EdgeUpdate]) -> Result<SubmitOutcome> {
        if updates.is_empty() {
            return Ok(SubmitOutcome {
                accepted: 0,
                pending: self.pending_len(),
                version: self.version(),
                rebuild_triggered: false,
            });
        }
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let Some(graph) = &st.graph else {
            return Err(SparseError::Parse(
                "live updates disabled: the index was loaded without its graph \
                 (re-preprocess with --embed-graph or pass --graph)"
                    .to_string(),
            ));
        };
        let n = graph.n();
        for update in updates {
            let (EdgeUpdate::Insert(u, v) | EdgeUpdate::Remove(u, v)) = *update;
            if u >= n || v >= n {
                return Err(SparseError::IndexOutOfBounds {
                    index: (u, v),
                    shape: (n, n),
                });
            }
        }
        // Durability first: only after the fsync succeeds does the batch
        // enter the in-memory buffer (and get acknowledged).
        if let Some(wal) = &mut st.wal {
            wal.append(updates)?;
        }
        st.pending.extend_from_slice(updates);
        st.pending = dedup_opposing(&st.pending);
        self.updates_total
            .fetch_add(updates.len() as u64, Ordering::Relaxed);

        let pending = st.pending.len();
        let trigger = self.auto_flush_threshold > 0 && pending >= self.auto_flush_threshold;
        if trigger {
            // Unconditionally bump the request generation — even while a
            // rebuild is in flight. The in-flight pass has already taken
            // its batch and will complete at an older generation, so this
            // increment makes the worker immediately run another pass
            // over the updates buffered here; gating on
            // `request_gen == done_gen` would leave a threshold-crossing
            // batch invisible forever if no later submit arrived.
            st.request_gen += 1;
            st.trigger = RebuildTrigger::Threshold;
            self.cv.notify_all();
        }
        drop(st);
        Ok(SubmitOutcome {
            accepted: updates.len(),
            pending,
            version: self.version(),
            rebuild_triggered: trigger,
        })
    }

    /// Forces a rebuild of everything buffered and blocks until the
    /// hot-swap completes (or reports the rebuild error). No-op returning
    /// the current version when nothing is buffered.
    pub fn rebuild_and_wait(&self) -> Result<u64> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.graph.is_none() {
            return Err(SparseError::Parse(
                "live updates disabled: the index was loaded without its graph".to_string(),
            ));
        }
        st.request_gen += 1;
        st.trigger = RebuildTrigger::Explicit;
        let target = st.request_gen;
        self.cv.notify_all();
        while st.done_gen < target {
            if st.worker_gone || self.shutdown.load(Ordering::SeqCst) {
                return Err(SparseError::Parse(
                    "rebuild worker is shutting down".to_string(),
                ));
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        // Only surface a failure from the pass that covered *this*
        // request (gen >= target): a stale error from an earlier
        // generation — or a checkpoint hiccup after a successful swap —
        // must not make a clean rebuild report failure.
        if let Some((gen, err)) = &st.failed {
            if *gen >= target {
                return Err(SparseError::Parse(format!("rebuild failed: {err}")));
            }
        }
        drop(st);
        Ok(self.version())
    }

    /// Stops the rebuild worker: a rebuild already in progress finishes
    /// (including its hot-swap and checkpoint), buffered-but-unflushed
    /// updates stay in the WAL for the next start. Idempotent.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.cv.notify_all();
        let handle = self.worker.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }

    /// Checkpoints the *current* snapshot (+ graph) to the configured
    /// path via a temp-file + atomic-rename, then truncates WAL segments
    /// `<= upto`. Compaction is skipped unless the checkpoint landed:
    /// checkpoint + remaining WAL must always reconstruct current state.
    fn checkpoint_and_compact(&self, st: &mut MutState, upto: u64) -> Result<()> {
        let Some(path) = &self.checkpoint_path else {
            return Ok(());
        };
        let Some(graph) = &st.graph else {
            return Ok(());
        };
        let current = self.current();
        let span = bepi_obs::Span::enter("live.checkpoint");
        let tmp = path.with_extension("bepi.tmp");
        if self.mmap_checkpoints {
            persist::save_file_v6(&current.bepi, Some(graph), &tmp)?;
        } else {
            persist::save_file_with_graph(&current.bepi, graph, &tmp)?;
        }
        std::fs::rename(&tmp, path)?;
        let checkpoint_time = span.exit();
        if let Some(wal) = &mut st.wal {
            wal.compact_through(upto)?;
        }
        bepi_obs::debug!(
            "live",
            "checkpoint written",
            version = current.version,
            elapsed_ms = checkpoint_time.as_millis()
        );
        if self.mmap_checkpoints {
            self.remap_from_checkpoint(path, &current);
        }
        Ok(())
    }

    /// Re-opens the just-written v6 checkpoint as a shared mapping and
    /// swaps the mapped copy in for the heap-built snapshot of the same
    /// epoch: the daemon then serves zero-copy from the page cache and
    /// the rebuild's heap allocations are freed once in-flight queries
    /// drain. The new file is mapped *before* the old snapshot's `Arc`
    /// is released, and the swap is skipped if another hot-swap bumped
    /// the version in the meantime (the mapped bytes would be stale).
    /// Failures are logged and leave the heap snapshot serving — the
    /// checkpoint itself already landed.
    fn remap_from_checkpoint(&self, path: &std::path::Path, expected: &VersionedIndex) {
        let (mapped, mapped_graph) = match persist::load_mapped_file(path) {
            Ok((bepi, graph)) => (Arc::new(bepi), graph),
            Err(e) => {
                bepi_obs::warn!(
                    "live",
                    "could not re-map checkpoint; keeping heap snapshot",
                    error = e
                );
                return;
            }
        };
        // Same graph state, new backing: rebuild the approximate engine
        // over the *mapped* adjacency when the checkpoint embeds it (its
        // pages are then shared with the exact index), else keep the
        // heap-built engine — the scores are bit-identical either way.
        let approx = match mapped_graph {
            Some(g) => build_approx(&mapped, &Arc::new(g), self.approx_config),
            None => expected.approx.clone(),
        };
        let mut current = self.current.lock().unwrap_or_else(|e| e.into_inner());
        if current.version != expected.version {
            return;
        }
        *current = Arc::new(VersionedIndex {
            version: expected.version,
            bepi: mapped,
            approx,
        });
        bepi_obs::debug!(
            "live",
            "serving mapped checkpoint",
            version = expected.version
        );
    }
}

/// Builds the approximate engine for one snapshot. Approximate serving
/// is an optional lane: any failure (or a graph that does not match the
/// index) degrades to exact-only serving with a logged warning instead
/// of failing the snapshot.
fn build_approx(bepi: &BePi, graph: &Arc<Graph>, cfg: ApproxConfig) -> Option<Arc<ApproxEngine>> {
    if graph.n() != bepi.node_count() {
        bepi_obs::warn!(
            "live",
            "graph does not match index; approximate lane disabled",
            graph_nodes = graph.n(),
            index_nodes = bepi.node_count()
        );
        return None;
    }
    match ApproxEngine::new(Arc::clone(graph), bepi.config().c, cfg) {
        Ok(engine) => Some(Arc::new(engine)),
        Err(e) => {
            bepi_obs::warn!(
                "live",
                "approximate engine build failed; lane disabled",
                error = e
            );
            None
        }
    }
}

/// Ensures waiters are released even if the worker thread panics.
struct WorkerGoneGuard<'a>(&'a LiveEngine);

impl Drop for WorkerGoneGuard<'_> {
    fn drop(&mut self) {
        let mut st = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
        st.worker_gone = true;
        self.0.cv.notify_all();
    }
}

fn worker_loop(engine: &LiveEngine) {
    let _guard = WorkerGoneGuard(engine);
    loop {
        // Phase 1 (cheap, under the state lock): claim the buffered
        // updates and the rebuild generation.
        let (updates, graph, upto, target, trigger) = {
            let mut st = engine.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if engine.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if st.request_gen > st.done_gen {
                    break;
                }
                st = engine.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            let target = st.request_gen;
            let updates = std::mem::take(&mut st.pending);
            let upto = st.wal.as_ref().map(|w| w.seq()).unwrap_or(0);
            let trigger = st.trigger;
            let Some(graph) = st.graph.clone() else {
                return; // unreachable: live engines always carry a graph
            };
            (updates, graph, upto, target, trigger)
        };

        if updates.is_empty() {
            let mut st = engine.state.lock().unwrap_or_else(|e| e.into_inner());
            st.done_gen = target;
            engine.cv.notify_all();
            continue;
        }

        // Phase 2 (expensive, NO locks held): apply the batch and rebuild
        // while queries keep being served from the old snapshot. A batch
        // that provably preserves the served index's symbolic plan takes
        // the numeric-only refactorization; anything structural (or a
        // refactor error) runs the full preprocessing pipeline.
        let started = Instant::now();
        let rebuild_span = bepi_obs::Span::enter("live.rebuild");
        let served = engine.current();
        let rebuilt = apply_updates(&graph, &updates).and_then(|new_graph| {
            let sources: Vec<usize> = updates
                .iter()
                .map(|u| match *u {
                    EdgeUpdate::Insert(a, _) | EdgeUpdate::Remove(a, _) => a,
                })
                .collect();
            let plan = served.bepi.symbolic_plan();
            let (bepi, kind) = match classify(&plan, &graph, &new_graph, &sources) {
                Classification::NumericOnly(dirty) => {
                    match served.bepi.refactor(&new_graph, &dirty) {
                        Ok(b) => (b, RebuildKind::Numeric),
                        Err(e) => {
                            bepi_obs::warn!(
                                "live",
                                "numeric refactor failed; falling back to full preprocess",
                                error = e
                            );
                            (
                                BePi::preprocess(&new_graph, &engine.solver_config)?,
                                RebuildKind::Full,
                            )
                        }
                    }
                }
                Classification::Structural(why) => {
                    bepi_obs::debug!("live", "structural batch", reason = why);
                    (
                        BePi::preprocess(&new_graph, &engine.solver_config)?,
                        RebuildKind::Full,
                    )
                }
            };
            Ok((new_graph, bepi, kind))
        });
        let rebuild_time = rebuild_span.exit();
        drop(served);

        match rebuilt {
            Ok((new_graph, bepi, kind)) => {
                let micros = started.elapsed().as_micros() as u64;
                engine.last_rebuild_micros.store(micros, Ordering::Relaxed);
                match kind {
                    RebuildKind::Numeric => {
                        engine
                            .numeric_rebuilds_total
                            .fetch_add(1, Ordering::Relaxed);
                        engine
                            .numeric_rebuild_micros
                            .fetch_add(micros, Ordering::Relaxed);
                    }
                    _ => {
                        engine
                            .structural_rebuilds_total
                            .fetch_add(1, Ordering::Relaxed);
                        engine
                            .full_rebuild_micros
                            .fetch_add(micros, Ordering::Relaxed);
                    }
                }
                engine
                    .last_rebuild_kind
                    .store(encode_kind(kind), Ordering::Relaxed);
                engine
                    .last_rebuild_trigger
                    .store(encode_trigger(trigger), Ordering::Relaxed);
                // The approximate lane swaps in lockstep with the exact
                // one: both engines in a snapshot answer from the same
                // graph state, so a mode=approx response can never mix
                // epochs with a mode=exact one. Built before the swap
                // lock, off the serving path.
                let bepi = Arc::new(bepi);
                let approx =
                    build_approx(&bepi, &Arc::new(new_graph.clone()), engine.approx_config);
                // Phase 3: the hot-swap. One pointer exchange; queries
                // already holding the old Arc finish on the old snapshot.
                let new_version = {
                    let _span = bepi_obs::Span::enter("live.swap");
                    let mut current = engine.current.lock().unwrap_or_else(|e| e.into_inner());
                    let v = current.version + 1;
                    *current = Arc::new(VersionedIndex {
                        version: v,
                        bepi,
                        approx,
                    });
                    v
                };
                engine.rebuilds_total.fetch_add(1, Ordering::Relaxed);
                bepi_obs::info!(
                    "live",
                    "rebuild hot-swapped",
                    version = new_version,
                    updates = updates.len(),
                    rebuild_kind = kind.name(),
                    trigger = trigger.name(),
                    elapsed_ms = rebuild_time.as_millis()
                );
                let mut st = engine.state.lock().unwrap_or_else(|e| e.into_inner());
                st.graph = Some(new_graph);
                st.last_error = None;
                st.failed = None;
                if let Err(e) = engine.checkpoint_and_compact(&mut st, upto) {
                    // The swap already happened; a failed checkpoint only
                    // costs replay time on the next restart. Recorded for
                    // /version but *not* as a failed generation — the
                    // caller's rebuild did succeed.
                    st.last_error = Some(format!("checkpoint failed: {e}"));
                }
                st.done_gen = target;
                engine.cv.notify_all();
            }
            Err(e) => {
                bepi_obs::warn!(
                    "live",
                    "rebuild failed; batch re-buffered",
                    generation = target,
                    error = e
                );
                let mut st = engine.state.lock().unwrap_or_else(|e| e.into_inner());
                // Put the batch back (ahead of anything newly buffered)
                // so acknowledged updates are never silently dropped.
                let mut merged = updates;
                merged.append(&mut st.pending);
                st.pending = merged;
                st.last_error = Some(e.to_string());
                st.failed = Some((target, e.to_string()));
                st.done_gen = target;
                engine.cv.notify_all();
            }
        }
    }
}

impl Drop for LiveEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bepi_graph::generators;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("bepi_engine_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}_{}", std::process::id()))
    }

    fn engine_over_cycle(n: usize, config: LiveConfig) -> Arc<LiveEngine> {
        let g = generators::cycle(n);
        let cfg = BePiConfig::default();
        let bepi = Arc::new(BePi::preprocess(&g, &cfg).unwrap());
        LiveEngine::start(bepi, g, cfg, config).unwrap()
    }

    #[test]
    fn frozen_engine_serves_but_rejects_updates() {
        let g = generators::cycle(10);
        let bepi = Arc::new(BePi::preprocess(&g, &BePiConfig::default()).unwrap());
        let engine = LiveEngine::frozen(bepi);
        assert!(!engine.is_live());
        assert_eq!(engine.version(), 1);
        assert!(engine.current().bepi.query(0).is_ok());
        assert!(engine.submit(&[EdgeUpdate::Insert(0, 5)]).is_err());
        assert!(engine.rebuild_and_wait().is_err());
        engine.shutdown(); // no-op, must not hang
    }

    #[test]
    fn submit_then_forced_rebuild_hot_swaps() {
        let engine = engine_over_cycle(10, LiveConfig::default());
        let before = engine.current();
        let score_before = before.bepi.query(0).unwrap().scores[5];

        let out = engine.submit(&[EdgeUpdate::Insert(0, 5)]).unwrap();
        assert_eq!(out.accepted, 1);
        assert_eq!(out.pending, 1);
        assert!(!out.rebuild_triggered, "no auto-flush configured");
        // Staleness contract: not visible until a rebuild completes.
        assert_eq!(
            engine.current().bepi.query(0).unwrap().scores[5],
            score_before
        );

        let v = engine.rebuild_and_wait().unwrap();
        assert_eq!(v, 2);
        assert_eq!(engine.pending_len(), 0);
        assert_eq!(engine.rebuilds(), 1);
        let after = engine.current();
        assert_eq!(after.version, 2);
        assert!(after.bepi.query(0).unwrap().scores[5] > score_before);
        // The old snapshot is still queryable by holders of the old Arc.
        assert_eq!(before.bepi.query(0).unwrap().scores[5], score_before);
        engine.shutdown();
    }

    #[test]
    fn auto_flush_threshold_triggers_background_rebuild() {
        let engine = engine_over_cycle(
            16,
            LiveConfig {
                auto_flush_threshold: 3,
                ..LiveConfig::default()
            },
        );
        engine.submit(&[EdgeUpdate::Insert(0, 2)]).unwrap();
        let out = engine
            .submit(&[EdgeUpdate::Insert(0, 3), EdgeUpdate::Insert(0, 4)])
            .unwrap();
        assert!(out.rebuild_triggered);
        // The rebuild is asynchronous; wait for it to land.
        let deadline = Instant::now() + std::time::Duration::from_secs(30);
        while engine.version() < 2 {
            assert!(Instant::now() < deadline, "rebuild never completed");
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert_eq!(engine.pending_len(), 0);
        engine.shutdown();
    }

    #[test]
    fn rebuild_with_empty_buffer_is_noop() {
        let engine = engine_over_cycle(8, LiveConfig::default());
        let v = engine.rebuild_and_wait().unwrap();
        assert_eq!(v, 1, "no updates: no new version");
        assert_eq!(engine.rebuilds(), 0);
        engine.shutdown();
    }

    #[test]
    fn out_of_range_batch_rejected_atomically() {
        let engine = engine_over_cycle(6, LiveConfig::default());
        let batch = [EdgeUpdate::Insert(0, 3), EdgeUpdate::Insert(0, 6)];
        assert!(engine.submit(&batch).is_err());
        assert_eq!(engine.pending_len(), 0, "nothing buffered");
        assert_eq!(engine.updates_accepted(), 0);
        engine.shutdown();
    }

    #[test]
    fn wal_replay_restores_submitted_updates() {
        let wal = tmp("replay.wal");
        let cp = tmp("replay.bepi");
        std::fs::remove_file(&wal).ok();
        std::fs::remove_file(&cp).ok();

        let g = generators::cycle(12);
        let cfg = BePiConfig::default();
        let bepi = Arc::new(BePi::preprocess(&g, &cfg).unwrap());
        let config = LiveConfig {
            wal_path: Some(wal.clone()),
            ..LiveConfig::default()
        };
        let engine = LiveEngine::start(Arc::clone(&bepi), g.clone(), cfg, config.clone()).unwrap();
        engine.submit(&[EdgeUpdate::Insert(0, 6)]).unwrap();
        engine.submit(&[EdgeUpdate::Remove(3, 4)]).unwrap();
        // Simulate a crash: drop without rebuild — updates only in WAL.
        engine.shutdown();
        drop(engine);

        let engine2 = LiveEngine::start(bepi, g.clone(), cfg, config).unwrap();
        // Replayed updates are visible immediately (folded in at start).
        let scores = engine2.current().bepi.query(0).unwrap().scores.clone();
        let expected_graph =
            apply_updates(&g, &[EdgeUpdate::Insert(0, 6), EdgeUpdate::Remove(3, 4)]).unwrap();
        let expected = BePi::preprocess(&expected_graph, &cfg).unwrap();
        assert_eq!(scores, expected.query(0).unwrap().scores);
        engine2.shutdown();
        std::fs::remove_file(&wal).ok();
    }

    #[test]
    fn checkpoint_compacts_wal_and_restart_is_fast_path() {
        let wal = tmp("compact.wal");
        let cp = tmp("compact.bepi");
        std::fs::remove_file(&wal).ok();
        std::fs::remove_file(&cp).ok();

        let g = generators::cycle(12);
        let cfg = BePiConfig::default();
        let bepi = Arc::new(BePi::preprocess(&g, &cfg).unwrap());
        let config = LiveConfig {
            wal_path: Some(wal.clone()),
            checkpoint_path: Some(cp.clone()),
            ..LiveConfig::default()
        };
        let engine = LiveEngine::start(bepi, g, cfg, config).unwrap();
        engine.submit(&[EdgeUpdate::Insert(0, 6)]).unwrap();
        engine.rebuild_and_wait().unwrap();
        engine.shutdown();

        // The checkpoint exists, is live-capable, and the WAL is empty.
        let (cp_bepi, cp_graph) = persist::load_file_with_graph(&cp).unwrap();
        assert!(cp_graph.is_some(), "checkpoint must embed the graph");
        assert_eq!(cp_graph.unwrap().adjacency().get(0, 6), 1.0);
        let (_, replayed, _) = Wal::open(&wal).unwrap();
        assert!(replayed.is_empty(), "applied segments must be truncated");
        // And it serves the post-update scores.
        assert!(cp_bepi.query(0).unwrap().scores[6] > 0.0);
        std::fs::remove_file(&wal).ok();
        std::fs::remove_file(&cp).ok();
    }

    #[test]
    fn mmap_checkpoints_write_v6_and_hot_swap_the_mapped_copy() {
        let wal = tmp("mmapcp.wal");
        let cp = tmp("mmapcp.bepi");
        std::fs::remove_file(&wal).ok();
        std::fs::remove_file(&cp).ok();

        let g = generators::cycle(12);
        let cfg = BePiConfig::default();
        let bepi = Arc::new(BePi::preprocess(&g, &cfg).unwrap());
        let config = LiveConfig {
            wal_path: Some(wal.clone()),
            checkpoint_path: Some(cp.clone()),
            mmap_checkpoints: true,
            ..LiveConfig::default()
        };
        let engine = LiveEngine::start(bepi, g.clone(), cfg, config).unwrap();
        assert!(
            !engine.current().bepi.is_mapped(),
            "nothing checkpointed yet: still the heap index"
        );
        // Remove(3,4) flips node 3 to a deadend — a structural batch, so
        // the rebuild runs the full pipeline and bit-identity against a
        // from-scratch preprocess holds below.
        let batch = [EdgeUpdate::Insert(0, 6), EdgeUpdate::Remove(3, 4)];
        engine.submit(&batch).unwrap();
        let v = engine.rebuild_and_wait().unwrap();
        assert_eq!(v, 2);

        // The checkpoint landed in the mappable format and the served
        // snapshot was re-pointed at it, same epoch, zero-copy.
        assert_eq!(persist::file_format_version(&cp).unwrap(), 6);
        let served = engine.current();
        assert_eq!(served.version, 2);
        assert!(served.bepi.is_mapped(), "post-rebuild snapshot is mapped");

        // Bit-identical to a from-scratch heap preprocess of the updated
        // graph (the --mmap byte-identity acceptance bar).
        let expected_graph = apply_updates(&g, &batch).unwrap();
        let expected = BePi::preprocess(&expected_graph, &cfg).unwrap();
        assert_eq!(
            served.bepi.query(0).unwrap().scores,
            expected.query(0).unwrap().scores
        );

        // A second update cycle keeps working over the mapped snapshot:
        // the rebuild preprocesses on the heap, checkpoints, and re-maps.
        engine.submit(&[EdgeUpdate::Remove(5, 6)]).unwrap();
        assert_eq!(engine.rebuild_and_wait().unwrap(), 3);
        assert!(engine.current().bepi.is_mapped());
        engine.shutdown();
        std::fs::remove_file(&wal).ok();
        std::fs::remove_file(&cp).ok();
    }

    #[test]
    fn threshold_crossing_submit_during_rebuild_still_flushes() {
        let engine = engine_over_cycle(
            16,
            LiveConfig {
                auto_flush_threshold: 2,
                ..LiveConfig::default()
            },
        );
        let baseline = engine.current().bepi.query(0).unwrap().scores[9];
        // First batch crosses the threshold and kicks off a rebuild.
        let out = engine
            .submit(&[EdgeUpdate::Insert(0, 2), EdgeUpdate::Insert(0, 3)])
            .unwrap();
        assert!(out.rebuild_triggered);
        // Give the worker a moment to claim the batch so the next submit
        // lands while the rebuild is in flight (either interleaving must
        // work; this makes the in-flight one likely).
        std::thread::sleep(std::time::Duration::from_millis(2));
        let out = engine
            .submit(&[EdgeUpdate::Insert(0, 5), EdgeUpdate::Insert(0, 9)])
            .unwrap();
        assert!(out.rebuild_triggered);
        // Without another submit ever arriving, the second batch must
        // still become visible — the worker owes it a follow-up pass.
        let deadline = Instant::now() + std::time::Duration::from_secs(30);
        loop {
            let visible = engine.pending_len() == 0
                && engine.current().bepi.query(0).unwrap().scores[9] > baseline;
            if visible {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "threshold-crossing batch submitted during a rebuild was never flushed"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        engine.shutdown();
    }

    #[test]
    fn checkpoint_failure_does_not_fail_rebuild() {
        // Checkpoint into a directory that does not exist: the swap
        // succeeds, so rebuild_and_wait must report the new version, with
        // the checkpoint error surfaced via info() only.
        let g = generators::cycle(10);
        let cfg = BePiConfig::default();
        let bepi = Arc::new(BePi::preprocess(&g, &cfg).unwrap());
        let engine = LiveEngine::start(
            bepi,
            g,
            cfg,
            LiveConfig {
                checkpoint_path: Some(PathBuf::from("/nonexistent-bepi-dir/checkpoint.bepi")),
                ..LiveConfig::default()
            },
        )
        .unwrap();
        engine.submit(&[EdgeUpdate::Insert(0, 5)]).unwrap();
        let v = engine.rebuild_and_wait().expect(
            "a successful hot-swap must not be reported as a rebuild failure \
             just because the checkpoint could not be written",
        );
        assert_eq!(v, 2);
        let err = engine.info().last_error.expect("checkpoint error recorded");
        assert!(err.contains("checkpoint failed"), "{err}");
        // A later no-op rebuild must not resurface the stale error.
        assert_eq!(engine.rebuild_and_wait().unwrap(), 2);
        engine.shutdown();
    }

    #[test]
    fn info_reports_state() {
        let engine = engine_over_cycle(8, LiveConfig::default());
        engine.submit(&[EdgeUpdate::Insert(1, 3)]).unwrap();
        let info = engine.info();
        assert_eq!(info.version, 1);
        assert_eq!(info.nodes, 8);
        assert_eq!(info.pending, 1);
        assert_eq!(info.rebuilds, 0);
        assert!(info.live);
        assert!(info.last_error.is_none());
        assert_eq!(info.rebuild_kind, "initial");
        assert_eq!(info.rebuild_trigger, "none");
        engine.shutdown();
    }

    #[test]
    fn numeric_batch_takes_refactor_path_and_reports_kind() {
        let g = generators::rmat(7, 400, generators::RmatParams::default(), 5).unwrap();
        let cfg = BePiConfig::default();
        let bepi = Arc::new(BePi::preprocess(&g, &cfg).unwrap());
        let engine = LiveEngine::start(bepi, g.clone(), cfg, LiveConfig::default()).unwrap();

        // Removing one edge of a multi-out-edge source is numeric-only.
        let u = (0..g.n()).find(|&u| g.out_degree(u) >= 2).unwrap();
        let v = g.out_neighbors(u).next().unwrap();
        engine.submit(&[EdgeUpdate::Remove(u, v)]).unwrap();
        assert_eq!(engine.rebuild_and_wait().unwrap(), 2);
        assert_eq!(engine.numeric_rebuilds(), 1);
        assert_eq!(engine.structural_rebuilds(), 0);
        assert!(engine.numeric_rebuild_seconds() > 0.0);
        let info = engine.info();
        assert_eq!(info.rebuild_kind, "numeric");
        assert_eq!(info.rebuild_trigger, "explicit");

        // The refactored snapshot answers like a from-scratch preprocess
        // of the updated graph.
        let expected_graph = apply_updates(&g, &[EdgeUpdate::Remove(u, v)]).unwrap();
        let expected = BePi::preprocess(&expected_graph, &cfg).unwrap();
        let got = engine.current().bepi.query(0).unwrap().scores;
        for (a, b) in got.iter().zip(&expected.query(0).unwrap().scores) {
            assert!((a - b).abs() < 1e-6);
        }

        // A deadend flip is structural: the full pipeline must run.
        let w = (0..g.n())
            .find(|&w| expected_graph.out_degree(w) == 1)
            .unwrap();
        let wv = expected_graph.out_neighbors(w).next().unwrap();
        engine.submit(&[EdgeUpdate::Remove(w, wv)]).unwrap();
        assert_eq!(engine.rebuild_and_wait().unwrap(), 3);
        assert_eq!(engine.structural_rebuilds(), 1);
        assert_eq!(engine.info().rebuild_kind, "full");
        engine.shutdown();
    }
}
