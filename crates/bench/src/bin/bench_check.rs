//! Schema validator for `bepi bench` artifacts.
//!
//! Usage: `bench_check [--min-precision X] BENCH_PR6.json [...]` — exits
//! non-zero with a diagnostic if any file is not a valid bench document.
//! The validator is picked by the artifact's own `schema` tag:
//!
//! * `bepi-bench/v1` — the thread-scaling benchmark (also the only
//!   schema `--min-precision` applies to: with it, any dataset whose
//!   approximate lane scores below `X` precision@k fails),
//! * `bepi-route-bench/v1` — router-vs-single throughput (fails unless
//!   the router's bodies were bit-identical to the single daemon's),
//! * `bepi-trace-bench/v1` — tracing overhead (fails unless traced p50
//!   stayed within the 5% gate and every traced body was id-consistent),
//! * `bepi-rebuild-bench/v1` — full-vs-incremental rebuild latency
//!   (fails unless every batch took the numeric fast path, the arms'
//!   scores agreed, and incremental p50 beat full p50 on every anchor).
//!
//! CI runs this on the smoke artifacts so neither the schemas nor the
//! gates they encode can silently drift.

use std::process::ExitCode;

use bepi_bench::perf::json;
use bepi_bench::{perf, rebuild, route, trace};

fn main() -> ExitCode {
    let mut min_precision: Option<f64> = None;
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--min-precision" {
            let Some(v) = args.next().and_then(|v| v.parse::<f64>().ok()) else {
                eprintln!("--min-precision needs a numeric value");
                return ExitCode::from(2);
            };
            if !(0.0..=1.0).contains(&v) {
                eprintln!("--min-precision must be in [0, 1], got {v}");
                return ExitCode::from(2);
            }
            min_precision = Some(v);
        } else {
            paths.push(arg);
        }
    }
    if paths.is_empty() {
        eprintln!("usage: bench_check [--min-precision X] <BENCH_*.json>...");
        return ExitCode::from(2);
    }
    let mut failed = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: unreadable: {e}");
                failed = true;
                continue;
            }
        };
        match check_one(&text, min_precision) {
            Ok(schema) => match min_precision {
                Some(min) => println!("{path}: ok ({schema}, precision@k >= {min})"),
                None => println!("{path}: ok ({schema})"),
            },
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Validates one artifact with the validator its `schema` tag names;
/// returns the schema on success.
fn check_one(text: &str, min_precision: Option<f64>) -> Result<String, String> {
    let schema = peek_schema(text)?;
    if min_precision.is_some() && schema != perf::SCHEMA {
        return Err(format!(
            "--min-precision only applies to {} artifacts, this is {schema}",
            perf::SCHEMA
        ));
    }
    match schema.as_str() {
        s if s == perf::SCHEMA => match min_precision {
            Some(min) => perf::check_min_precision(text, min)?,
            None => perf::validate_json(text)?,
        },
        s if s == route::SCHEMA => route::validate_json(text)?,
        s if s == trace::SCHEMA => trace::validate_json(text)?,
        s if s == rebuild::SCHEMA => rebuild::validate_json(text)?,
        s => {
            return Err(format!(
                "unknown schema {s:?} (known: {}, {}, {}, {})",
                perf::SCHEMA,
                route::SCHEMA,
                trace::SCHEMA,
                rebuild::SCHEMA
            ))
        }
    }
    Ok(schema)
}

/// Reads the top-level `schema` tag off an artifact.
fn peek_schema(text: &str) -> Result<String, String> {
    let value = json::parse(text)?;
    let obj = value.as_object().ok_or("top level must be an object")?;
    json::get(obj, "schema")
        .and_then(|v| v.as_str())
        .map(str::to_string)
        .ok_or_else(|| "missing \"schema\" tag".into())
}
