//! Leveled, structured line logger.
//!
//! Log lines go to stderr in a `level=.. target=.. msg=".." key=value` format
//! that is grep-friendly and cheap to produce. The active level is a single
//! process-global atomic, so the disabled-path cost of a log statement is one
//! relaxed load and a branch — no locks, no allocation.

use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or data-affecting problems.
    Error = 0,
    /// Suspicious conditions the process survives.
    Warn = 1,
    /// High-level lifecycle events (startup, rebuilds, swaps).
    Info = 2,
    /// Per-operation detail useful when debugging.
    Debug = 3,
    /// Very chatty tracing.
    Trace = 4,
}

impl Level {
    /// Lower-case name as rendered in log lines.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses a level name (case-insensitive). Accepts `off` as a synonym
    /// for filtering everything but errors out; returns `None` on junk.
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "error" | "off" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            3 => Level::Debug,
            _ => Level::Trace,
        }
    }
}

/// Default level: warnings and errors only, so library users and the CLI see
/// nothing new unless they opt in.
static LEVEL: AtomicU8 = AtomicU8::new(Level::Warn as u8);

/// Sets the process-global log level.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Returns the current process-global log level.
pub fn level() -> Level {
    Level::from_u8(LEVEL.load(Ordering::Relaxed))
}

/// Returns `true` when a record at `level` would be emitted. One relaxed
/// atomic load — safe to call on hot paths.
#[inline]
pub fn enabled(level: Level) -> bool {
    (level as u8) <= LEVEL.load(Ordering::Relaxed)
}

/// Initialises the level from the `BEPI_LOG` environment variable when set
/// and valid. Returns the resulting level.
pub fn init_from_env() -> Level {
    if let Ok(v) = std::env::var("BEPI_LOG") {
        if let Some(l) = Level::parse(&v) {
            set_level(l);
        }
    }
    level()
}

/// Emits one log line. Prefer the [`crate::log!`] family of macros, which
/// skip all formatting when the level is disabled.
///
/// Values containing whitespace, `"` or `=` are quoted with `{:?}` so the
/// line stays machine-splittable on spaces.
pub fn emit(level: Level, target: &str, msg: &str, kvs: &[(&str, String)]) {
    let ts = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default();
    let mut line = String::with_capacity(64 + msg.len());
    let _ = write!(
        line,
        "ts={}.{:06} level={} target={} msg={:?}",
        ts.as_secs(),
        ts.subsec_micros(),
        level.as_str(),
        target,
        msg
    );
    for (k, v) in kvs {
        if v.is_empty() || v.contains(|c: char| c.is_whitespace() || c == '"' || c == '=') {
            let _ = write!(line, " {}={:?}", k, v);
        } else {
            let _ = write!(line, " {}={}", k, v);
        }
    }
    line.push('\n');
    // Single write per record so concurrent threads do not interleave lines.
    let _ = std::io::stderr().write_all(line.as_bytes());
}

/// Logs at an explicit level: `log!(Level::Info, "target", "msg", key = value, ...)`.
///
/// Key/value arguments are only evaluated and formatted when the level is
/// enabled.
#[macro_export]
macro_rules! log {
    ($lvl:expr, $target:expr, $msg:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::log::enabled($lvl) {
            $crate::log::emit(
                $lvl,
                $target,
                &$msg.to_string(),
                &[$((stringify!($k), format!("{}", $v))),*],
            );
        }
    };
}

/// Logs at [`Level::Error`].
#[macro_export]
macro_rules! error {
    ($target:expr, $($rest:tt)*) => { $crate::log!($crate::Level::Error, $target, $($rest)*) };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($target:expr, $($rest:tt)*) => { $crate::log!($crate::Level::Warn, $target, $($rest)*) };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($target:expr, $($rest:tt)*) => { $crate::log!($crate::Level::Info, $target, $($rest)*) };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($target:expr, $($rest:tt)*) => { $crate::log!($crate::Level::Debug, $target, $($rest)*) };
}

/// Logs at [`Level::Trace`].
#[macro_export]
macro_rules! trace {
    ($target:expr, $($rest:tt)*) => { $crate::log!($crate::Level::Trace, $target, $($rest)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_known_names() {
        assert_eq!(Level::parse("info"), Some(Level::Info));
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("Trace"), Some(Level::Trace));
        assert_eq!(Level::parse("off"), Some(Level::Error));
        assert_eq!(Level::parse("nope"), None);
    }

    #[test]
    fn level_filtering_is_ordered() {
        let prev = level();
        set_level(Level::Warn);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        assert!(!enabled(Level::Trace));
        set_level(Level::Trace);
        assert!(enabled(Level::Debug));
        set_level(prev);
    }

    #[test]
    fn macros_compile_with_and_without_kvs() {
        let prev = level();
        set_level(Level::Error);
        // Disabled level: the $v expressions must not be evaluated.
        let mut evaluated = false;
        crate::debug!(
            "test",
            "never emitted",
            flag = {
                evaluated = true;
                1
            }
        );
        assert!(!evaluated);
        crate::error!("test", "emitted", code = 7, detail = "has spaces");
        crate::error!("test", "no kvs");
        set_level(prev);
    }
}
