//! Sharded LRU cache for rendered query responses.
//!
//! The daemon's hot path is dominated by the GMRES Schur solve. Real
//! query workloads are heavily skewed (a few hot seeds absorb most
//! traffic), so a small LRU over the *rendered JSON body* lets repeated
//! `(seed, top_k)` queries skip the solve and the serialization entirely,
//! and guarantees byte-identical responses for cache hits.
//!
//! The cache is sharded by key hash: each shard owns an independent
//! `Mutex<LruShard>`, so concurrent workers rarely contend on the same
//! lock. Values are `Arc<str>` — a hit clones a pointer, not the body.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

/// Which lane rendered (or will render) a response. Part of [`QueryKey`]
/// because exact and approximate answers for the same seed differ — a
/// cached exact body must never satisfy an approximate request or vice
/// versa. The key always holds the *resolved* mode: a `mode=auto` request
/// that resolves to the exact lane shares cache entries with explicit
/// `mode=exact` (they are byte-identical), and one that degrades to the
/// approximate lane shares entries with explicit `mode=approx` at the
/// same epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResponseMode {
    /// The exact BePI solve (Schur complement + GMRES).
    Exact,
    /// The deterministic approximate engine (`bepi-walk`). `epoch`
    /// selects the walk engine's random replicate and is part of the
    /// response identity — different epochs are different bodies.
    Approx {
        /// RNG epoch the approximate answer was computed under.
        epoch: u64,
    },
}

/// Cache key: the query endpoint's full identity. Two requests with the
/// same key produce byte-identical responses — each served snapshot is
/// immutable, `version` names the snapshot, and `mode` names the lane
/// (both engines are deterministic per key), so entries rendered from a
/// pre-hot-swap index or from the other lane can never answer this
/// request. Stale versions age out through normal LRU eviction.
///
/// Invariant: every query parameter that can change the response body
/// must be a field here. The `stale_lane_entries_never_cross` test pins
/// the mode half of that contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryKey {
    /// Seed node id.
    pub seed: usize,
    /// Number of ranked results requested.
    pub top_k: usize,
    /// Graph snapshot version the response was rendered from.
    pub version: u64,
    /// Resolved serving lane (exact vs approximate + epoch).
    pub mode: ResponseMode,
}

const NIL: usize = usize::MAX;

struct Slot {
    key: QueryKey,
    value: Arc<str>,
    prev: usize,
    next: usize,
}

/// One LRU shard: a hash map into a vec-backed intrusive doubly-linked
/// list ordered most- to least-recently used.
struct LruShard {
    map: HashMap<QueryKey, usize>,
    slots: Vec<Slot>,
    head: usize,
    tail: usize,
    cap: usize,
}

impl LruShard {
    fn new(cap: usize) -> Self {
        Self {
            map: HashMap::with_capacity(cap.min(1024)),
            slots: Vec::with_capacity(cap.min(1024)),
            head: NIL,
            tail: NIL,
            cap,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn get(&mut self, key: &QueryKey) -> Option<Arc<str>> {
        let i = *self.map.get(key)?;
        if i != self.head {
            self.unlink(i);
            self.push_front(i);
        }
        Some(Arc::clone(&self.slots[i].value))
    }

    fn insert(&mut self, key: QueryKey, value: Arc<str>) {
        if let Some(&i) = self.map.get(&key) {
            self.slots[i].value = value;
            if i != self.head {
                self.unlink(i);
                self.push_front(i);
            }
            return;
        }
        let i = if self.slots.len() < self.cap {
            self.slots.push(Slot {
                key,
                value,
                prev: NIL,
                next: NIL,
            });
            self.slots.len() - 1
        } else {
            // Evict the least-recently-used entry and reuse its slot.
            let victim = self.tail;
            self.unlink(victim);
            self.map.remove(&self.slots[victim].key);
            self.slots[victim].key = key;
            self.slots[victim].value = value;
            victim
        };
        self.map.insert(key, i);
        self.push_front(i);
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// A sharded LRU mapping [`QueryKey`] to rendered response bodies.
///
/// `capacity == 0` disables caching: every lookup misses and inserts are
/// dropped.
pub struct ResponseCache {
    shards: Vec<Mutex<LruShard>>,
    mask: usize,
}

impl ResponseCache {
    /// Creates a cache holding at most `capacity` entries in total,
    /// spread over `shards` (rounded up to a power of two) locks.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let nshards = shards.max(1).next_power_of_two();
        // Spread capacity across shards; each shard gets at least one
        // entry so a tiny capacity still caches something.
        let per_shard = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(nshards).max(1)
        };
        Self {
            shards: (0..nshards)
                .map(|_| Mutex::new(LruShard::new(per_shard)))
                .collect(),
            mask: nshards - 1,
        }
    }

    fn shard(&self, key: &QueryKey) -> &Mutex<LruShard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) & self.mask]
    }

    /// Looks `key` up, promoting it to most-recently-used on a hit.
    pub fn get(&self, key: &QueryKey) -> Option<Arc<str>> {
        let mut shard = self.shard(key).lock().unwrap_or_else(|e| e.into_inner());
        if shard.cap == 0 {
            return None;
        }
        shard.get(key)
    }

    /// Inserts (or refreshes) `key`, evicting the shard's LRU entry when
    /// the shard is full.
    pub fn insert(&self, key: QueryKey, value: Arc<str>) {
        let mut shard = self.shard(&key).lock().unwrap_or_else(|e| e.into_inner());
        if shard.cap == 0 {
            return;
        }
        shard.insert(key, value);
    }

    /// Total entries currently cached, across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// Whether the cache currently holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(seed: usize) -> QueryKey {
        QueryKey {
            seed,
            top_k: 10,
            version: 1,
            mode: ResponseMode::Exact,
        }
    }

    fn v(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn single_shard_lru_eviction_order() {
        let c = ResponseCache::new(2, 1);
        c.insert(k(1), v("one"));
        c.insert(k(2), v("two"));
        assert_eq!(c.get(&k(1)).as_deref(), Some("one"));
        // 2 is now the LRU entry; inserting 3 evicts it.
        c.insert(k(3), v("three"));
        assert_eq!(c.get(&k(2)), None);
        assert_eq!(c.get(&k(1)).as_deref(), Some("one"));
        assert_eq!(c.get(&k(3)).as_deref(), Some("three"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_value_and_recency() {
        let c = ResponseCache::new(2, 1);
        c.insert(k(1), v("a"));
        c.insert(k(2), v("b"));
        c.insert(k(1), v("a2")); // refresh: 2 becomes LRU
        c.insert(k(3), v("c"));
        assert_eq!(c.get(&k(2)), None);
        assert_eq!(c.get(&k(1)).as_deref(), Some("a2"));
    }

    #[test]
    fn key_includes_top_k_and_version() {
        let c = ResponseCache::new(8, 2);
        let key = |top_k, version| QueryKey {
            seed: 1,
            top_k,
            version,
            mode: ResponseMode::Exact,
        };
        c.insert(key(5, 1), v("five"));
        c.insert(key(9, 1), v("nine"));
        assert_eq!(c.get(&key(5, 1)).as_deref(), Some("five"));
        assert_eq!(c.get(&key(9, 1)).as_deref(), Some("nine"));
        // A hot-swap bumps the version: entries from the old snapshot
        // must never satisfy a query against the new one.
        assert_eq!(c.get(&key(5, 2)), None);
        c.insert(key(5, 2), v("five-v2"));
        assert_eq!(c.get(&key(5, 2)).as_deref(), Some("five-v2"));
        assert_eq!(c.get(&key(5, 1)).as_deref(), Some("five"));
    }

    #[test]
    fn stale_lane_entries_never_cross() {
        // Regression test for the cache-key contract: an entry rendered
        // by one lane must never answer a request for the other, for any
        // overlap of seed/top_k/version — and approximate entries are
        // further isolated per epoch.
        let c = ResponseCache::new(16, 2);
        let key = |mode| QueryKey {
            seed: 7,
            top_k: 10,
            version: 3,
            mode,
        };
        c.insert(key(ResponseMode::Exact), v("exact-body"));
        assert_eq!(c.get(&key(ResponseMode::Approx { epoch: 0 })), None);
        assert_eq!(c.get(&key(ResponseMode::Approx { epoch: 1 })), None);

        c.insert(key(ResponseMode::Approx { epoch: 0 }), v("approx-e0"));
        // The approx insert must not clobber or shadow the exact entry.
        assert_eq!(
            c.get(&key(ResponseMode::Exact)).as_deref(),
            Some("exact-body")
        );
        assert_eq!(
            c.get(&key(ResponseMode::Approx { epoch: 0 })).as_deref(),
            Some("approx-e0")
        );
        // A different epoch is a different replicate: still a miss.
        assert_eq!(c.get(&key(ResponseMode::Approx { epoch: 1 })), None);
    }

    #[test]
    fn zero_capacity_disables_cache() {
        let c = ResponseCache::new(0, 4);
        c.insert(k(1), v("x"));
        assert_eq!(c.get(&k(1)), None);
        assert!(c.is_empty());
    }

    #[test]
    fn sharded_capacity_bound_holds() {
        let c = ResponseCache::new(16, 4);
        for i in 0..200 {
            c.insert(k(i), v("x"));
        }
        // Each of the 4 shards holds at most ceil(16/4) = 4 entries.
        assert!(c.len() <= 16, "len {}", c.len());
        assert!(!c.is_empty());
    }

    #[test]
    fn concurrent_access_is_safe() {
        let c = Arc::new(ResponseCache::new(64, 8));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..500 {
                        let key = k((t * 31 + i) % 100);
                        if c.get(&key).is_none() {
                            c.insert(key, v("body"));
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.len() <= 64);
    }
}
