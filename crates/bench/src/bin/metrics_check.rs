//! `metrics_check` — validates a running daemon's (or router's)
//! `/metrics` endpoint against the Prometheus text exposition format
//! (version 0.0.4).
//!
//! Used by `scripts/ci.sh` as the end-to-end observability gate: it
//! optionally warms the target with a few `/query` requests, scrapes
//! `/metrics`, and exits non-zero if the exposition is malformed in any
//! way a real scraper would reject:
//!
//! * a sample line whose metric family has no `# TYPE` header
//!   (`_bucket` / `_sum` / `_count` suffixes map back to their family),
//! * an unparsable sample value,
//! * an `le` label that is not a plain decimal float or `+Inf`
//!   (exponent forms like `1e-05` break some scrapers),
//! * histogram bucket counts that are not cumulative (non-decreasing in
//!   `le` order) — checked per label set, so the router's fleet-merged
//!   exposition (every shard's histogram re-labeled `shard="N"`) is
//!   validated as N independent series, or
//! * a histogram series whose `_count` disagrees with its `+Inf` bucket.
//!
//! Usage: `metrics_check <host:port> [--warm-queries N] [--expect-shards S]`
//!
//! `--expect-shards S` additionally requires samples labeled
//! `shard="0"` through `shard="S-1"` — the router-aggregation check.
//!
//! The HTTP client is a raw `TcpStream` speaking HTTP/1.0 — this binary
//! must not depend on `bepi-server` internals, since its whole point is
//! to check the wire format an external scraper sees.

use std::collections::{BTreeMap, HashSet};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    match run() {
        Ok(summary) => {
            println!("metrics_check: OK ({summary})");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("metrics_check: FAIL: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<String, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (addr, rest) = args
        .split_first()
        .ok_or("usage: metrics_check <host:port> [--warm-queries N] [--expect-shards S]")?;
    let mut warm = 0usize;
    let mut expect_shards = 0usize;
    let mut rest = rest;
    while let Some((flag, tail)) = rest.split_first() {
        let (value, tail) = tail
            .split_first()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        match flag.as_str() {
            "--warm-queries" => {
                warm = value
                    .parse()
                    .map_err(|_| format!("bad --warm-queries: {value}"))?;
            }
            "--expect-shards" => {
                expect_shards = value
                    .parse()
                    .map_err(|_| format!("bad --expect-shards: {value}"))?;
            }
            f => return Err(format!("unknown flag: {f}")),
        }
        rest = tail;
    }

    // Warm-up: drive some solves (distinct seeds → cache misses) so the
    // GMRES histograms and latency buckets have real observations, plus
    // one traced request and a slow-log scrape so those paths render too.
    for seed in 0..warm {
        let _ = http_get(addr, &format!("/query?seed={seed}&trace=1"))?;
    }
    if warm > 0 {
        let slow = http_get(addr, "/debug/slow")?;
        if !slow.starts_with('{') {
            return Err(format!("/debug/slow did not return JSON: {slow:.40?}"));
        }
    }

    let body = http_get(addr, "/metrics")?;
    let mut report = validate_exposition(&body)?;
    if expect_shards > 0 {
        check_shard_labels(&body, expect_shards)?;
        report.push_str(&format!(", shard labels 0..{expect_shards} present"));
    }
    Ok(format!("{addr}: {report}"))
}

/// Checks the whole exposition; returns a one-line summary on success.
fn validate_exposition(body: &str) -> Result<String, String> {
    let mut typed: HashSet<String> = HashSet::new();
    // series key (family + non-le labels) → le-ordered bucket counts
    let mut buckets: BTreeMap<String, Vec<(f64, u64)>> = BTreeMap::new();
    // series key → _count value
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut samples = 0usize;

    for (lineno, line) in body.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.split_whitespace();
            match parts.next() {
                Some("TYPE") => {
                    let family = parts
                        .next()
                        .ok_or_else(|| format!("line {n}: # TYPE without a metric name"))?;
                    typed.insert(family.to_string());
                }
                Some("HELP") | Some("EOF") => {}
                other => {
                    return Err(format!("line {n}: unknown comment {other:?}"));
                }
            }
            continue;
        }

        let (name_and_labels, value_s) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {n}: no space-separated value: {line:?}"))?;
        let value: f64 = value_s
            .parse()
            .map_err(|_| format!("line {n}: sample value is not a float: {value_s:?}"))?;
        let (name, labels) = match name_and_labels.split_once('{') {
            Some((name, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {n}: unterminated label set: {line:?}"))?;
                (name, Some(labels))
            }
            None => (name_and_labels, None),
        };
        let family = family_of(name);
        if !typed.contains(family) {
            return Err(format!(
                "line {n}: sample {name:?} has no preceding # TYPE {family}"
            ));
        }
        samples += 1;

        if name.ends_with("_bucket") {
            let labels =
                labels.ok_or_else(|| format!("line {n}: _bucket sample without labels"))?;
            let le = label_value(labels, "le")
                .ok_or_else(|| format!("line {n}: _bucket sample without le label"))?;
            let bound = parse_le(&le).map_err(|e| format!("line {n}: {e}"))?;
            if value < 0.0 || value.fract() != 0.0 {
                return Err(format!("line {n}: bucket count is not a whole number"));
            }
            buckets
                .entry(series_key(family, Some(labels)))
                .or_default()
                .push((bound, value as u64));
        } else if name.ends_with("_count") {
            counts.insert(series_key(family, labels), value as u64);
        }
    }

    let mut histograms = 0usize;
    for (series, points) in &buckets {
        histograms += 1;
        let mut prev_bound = f64::NEG_INFINITY;
        let mut prev_count = 0u64;
        for &(bound, count) in points {
            if bound <= prev_bound {
                return Err(format!(
                    "{series}: le bounds not strictly increasing ({prev_bound} then {bound})"
                ));
            }
            if count < prev_count {
                return Err(format!(
                    "{series}: bucket counts not cumulative ({prev_count} then {count} at le={bound})"
                ));
            }
            prev_bound = bound;
            prev_count = count;
        }
        let (last_bound, last_count) = *points.last().expect("non-empty by construction");
        if last_bound != f64::INFINITY {
            return Err(format!("{series}: final bucket is not le=\"+Inf\""));
        }
        match counts.get(series) {
            Some(&c) if c == last_count => {}
            Some(&c) => {
                return Err(format!("{series}: _count {c} != +Inf bucket {last_count}"));
            }
            None => return Err(format!("{series}: histogram without a _count sample")),
        }
    }

    if samples == 0 {
        return Err("exposition contained no samples".into());
    }
    Ok(format!(
        "{samples} samples, {histograms} histogram series, {} typed families",
        typed.len()
    ))
}

/// Requires at least one sample labeled `shard="i"` for every shard id
/// in `0..expected` — the router's fleet-aggregation contract.
fn check_shard_labels(body: &str, expected: usize) -> Result<(), String> {
    let mut seen: HashSet<String> = HashSet::new();
    for line in body.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        if let Some((_, rest)) = line.split_once('{') {
            if let Some(labels) = rest.rsplit_once('}').map(|(l, _)| l) {
                if let Some(id) = label_value(labels, "shard") {
                    seen.insert(id);
                }
            }
        }
    }
    for id in 0..expected {
        if !seen.contains(&id.to_string()) {
            return Err(format!(
                "no sample labeled shard=\"{id}\" (saw shard labels: {:?})",
                {
                    let mut v: Vec<_> = seen.iter().cloned().collect();
                    v.sort();
                    v
                }
            ));
        }
    }
    Ok(())
}

/// One histogram series per label set: the key is the family name plus
/// every label except `le`, sorted so label order cannot split a series.
fn series_key(family: &str, labels: Option<&str>) -> String {
    let mut pairs: Vec<&str> = labels
        .unwrap_or("")
        .split(',')
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("le="))
        .collect();
    pairs.sort_unstable();
    if pairs.is_empty() {
        family.to_string()
    } else {
        format!("{family}{{{}}}", pairs.join(","))
    }
}

/// Maps a sample name to its metric family (`x_bucket`/`x_sum`/`x_count`
/// all belong to family `x`, which is what `# TYPE` names).
fn family_of(name: &str) -> &str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stem) = name.strip_suffix(suffix) {
            return stem;
        }
    }
    name
}

/// Extracts one label value from a rendered label set. Label values in
/// this codebase never contain escaped quotes, so a simple scan suffices.
fn label_value(labels: &str, key: &str) -> Option<String> {
    let needle = format!("{key}=\"");
    let start = labels.find(&needle)? + needle.len();
    let end = labels[start..].find('"')?;
    Some(labels[start..start + end].to_string())
}

/// An `le` value must be `+Inf` or a plain decimal float — exponent
/// notation is rejected because real-world scrapers reject it.
fn parse_le(le: &str) -> Result<f64, String> {
    if le == "+Inf" {
        return Ok(f64::INFINITY);
    }
    if le.contains(['e', 'E']) {
        return Err(format!("le={le:?} uses exponent notation"));
    }
    le.parse()
        .map_err(|_| format!("le={le:?} is not a decimal float"))
}

/// Minimal HTTP/1.0 GET returning the response body.
fn http_get(addr: &str, path: &str) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\nHost: {addr}\r\n\r\n").as_bytes())
        .map_err(|e| format!("write {path}: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("read {path}: {e}"))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("malformed response to {path}"))?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains(" 200 ") {
        return Err(format!("GET {path}: {status}"));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_well_formed_exposition() {
        let body = "\
# HELP bepi_query_latency_seconds Latency.
# TYPE bepi_query_latency_seconds histogram
bepi_query_latency_seconds_bucket{le=\"0.001\"} 1
bepi_query_latency_seconds_bucket{le=\"0.01\"} 3
bepi_query_latency_seconds_bucket{le=\"+Inf\"} 4
bepi_query_latency_seconds_sum 0.5
bepi_query_latency_seconds_count 4
# HELP bepi_queries_total Queries.
# TYPE bepi_queries_total counter
bepi_queries_total 4
";
        validate_exposition(body).unwrap();
    }

    #[test]
    fn shard_labeled_histograms_are_independent_series() {
        // A fleet-merged exposition: the same family carries one series
        // per shard, each cumulative on its own but interleaved such
        // that a label-blind checker would see counts go backwards.
        let body = "\
# TYPE h histogram
h_bucket{shard=\"0\",le=\"0.1\"} 5
h_bucket{shard=\"0\",le=\"+Inf\"} 9
h_sum{shard=\"0\"} 0.5
h_count{shard=\"0\"} 9
h_bucket{shard=\"1\",le=\"0.1\"} 1
h_bucket{shard=\"1\",le=\"+Inf\"} 2
h_sum{shard=\"1\"} 0.1
h_count{shard=\"1\"} 2
";
        let report = validate_exposition(body).unwrap();
        assert!(report.contains("2 histogram series"), "{report}");
        check_shard_labels(body, 2).unwrap();
        assert!(check_shard_labels(body, 3)
            .unwrap_err()
            .contains("shard=\"2\""));
    }

    #[test]
    fn per_series_count_mismatch_is_still_caught() {
        let body = "\
# TYPE h histogram
h_bucket{shard=\"0\",le=\"+Inf\"} 9
h_count{shard=\"0\"} 9
h_bucket{shard=\"1\",le=\"+Inf\"} 2
h_count{shard=\"1\"} 3
";
        let err = validate_exposition(body).unwrap_err();
        assert!(err.contains("shard=\"1\""), "{err}");
        assert!(err.contains("_count 3 != +Inf bucket 2"), "{err}");
    }

    #[test]
    fn rejects_exponent_le_missing_type_and_broken_cumulative() {
        let exponent =
            "# TYPE h histogram\nh_bucket{le=\"1e-05\"} 0\nh_bucket{le=\"+Inf\"} 0\nh_count 0\n";
        assert!(validate_exposition(exponent)
            .unwrap_err()
            .contains("exponent"));

        let untyped = "bepi_queries_total 4\n";
        assert!(validate_exposition(untyped).unwrap_err().contains("# TYPE"));

        let shrinking =
            "# TYPE h histogram\nh_bucket{le=\"0.1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_count 3\n";
        assert!(validate_exposition(shrinking)
            .unwrap_err()
            .contains("cumulative"));

        let count_mismatch =
            "# TYPE h histogram\nh_bucket{le=\"0.1\"} 1\nh_bucket{le=\"+Inf\"} 3\nh_count 4\n";
        assert!(validate_exposition(count_mismatch)
            .unwrap_err()
            .contains("+Inf bucket"));
    }
}
