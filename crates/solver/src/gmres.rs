//! Restarted GMRES with optional left preconditioning.
//!
//! GMRES (Saad & Schultz 1986) is the paper's iterative engine: plain on
//! the full system `H r = c q` as a baseline (Section 2.2), and
//! left-preconditioned with ILU(0) factors on the Schur-complement system
//! `S r2 = q̂2` inside BePI's query phase (Algorithm 4 / Appendix B).
//!
//! Implementation: Arnoldi with modified Gram–Schmidt, Givens rotations
//! for the incremental least-squares residual, restart after `m` inner
//! steps. With a preconditioner `M`, the iteration runs on `M^{-1}A` /
//! `M^{-1}b` and convergence is declared on the preconditioned relative
//! residual — exactly the quantity Algorithm 5 of the paper monitors
//! (`‖H̄y − ‖t‖e₁‖ < ε`).

use crate::linop::{LinOp, Preconditioner};
use bepi_sparse::vecops::{axpy, dot, norm2};
use bepi_sparse::{Result, SparseError};

/// GMRES configuration.
///
/// ```
/// use bepi_solver::{gmres, GmresConfig};
/// use bepi_sparse::Coo;
///
/// // Strictly diagonally dominant 2×2 system: [[4, 1], [1, 3]] x = [1, 2].
/// let mut coo = Coo::new(2, 2).unwrap();
/// coo.push(0, 0, 4.0).unwrap();
/// coo.push(0, 1, 1.0).unwrap();
/// coo.push(1, 0, 1.0).unwrap();
/// coo.push(1, 1, 3.0).unwrap();
/// let a = coo.to_csr();
///
/// let cfg = GmresConfig { tol: 1e-12, ..GmresConfig::default() };
/// let sol = gmres(&a, &[1.0, 2.0], None, None, &cfg).unwrap();
/// assert!(sol.converged);
/// assert!((sol.x[0] - 1.0 / 11.0).abs() < 1e-9);
/// assert!((sol.x[1] - 7.0 / 11.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GmresConfig {
    /// Relative residual tolerance ε (the paper uses `10^{-9}`).
    pub tol: f64,
    /// Krylov dimension before restart.
    pub restart: usize,
    /// Cap on total inner iterations.
    pub max_iters: usize,
}

impl Default for GmresConfig {
    fn default() -> Self {
        Self {
            tol: 1e-9,
            restart: 100,
            max_iters: 10_000,
        }
    }
}

/// Outcome of a GMRES run.
#[derive(Debug, Clone)]
pub struct GmresResult {
    /// The computed solution.
    pub x: Vec<f64>,
    /// Total inner (Arnoldi) iterations performed — the `T` of Theorem 2
    /// and the quantity Table 4 reports.
    pub iterations: usize,
    /// Final relative residual (preconditioned when `M` is supplied).
    pub residual: f64,
    /// Whether the tolerance was reached.
    pub converged: bool,
    /// Relative residual after each inner iteration (drives Figure 10).
    pub residual_history: Vec<f64>,
}

/// Solves `A x = b` (or `M^{-1}A x = M^{-1}b` when `precond` is given).
pub fn gmres<A: LinOp>(
    a: &A,
    b: &[f64],
    x0: Option<&[f64]>,
    precond: Option<&dyn Preconditioner>,
    cfg: &GmresConfig,
) -> Result<GmresResult> {
    let n = a.nrows();
    if a.ncols() != n {
        return Err(SparseError::ShapeMismatch {
            left: (a.nrows(), a.ncols()),
            right: (n, n),
            op: "gmres (operator must be square)",
        });
    }
    if b.len() != n {
        return Err(SparseError::VectorLength {
            expected: n,
            actual: b.len(),
        });
    }
    let mut x = match x0 {
        Some(x0) => {
            if x0.len() != n {
                return Err(SparseError::VectorLength {
                    expected: n,
                    actual: x0.len(),
                });
            }
            x0.to_vec()
        }
        None => vec![0.0; n],
    };

    // Reference norm: ‖M^{-1} b‖ (or ‖b‖ unpreconditioned).
    let mut mb = vec![0.0; n];
    match precond {
        Some(m) => m.apply(b, &mut mb),
        None => mb.copy_from_slice(b),
    }
    let denom = norm2(&mb);
    if denom == 0.0 {
        return Ok(GmresResult {
            x: vec![0.0; n],
            iterations: 0,
            residual: 0.0,
            converged: true,
            residual_history: Vec::new(),
        });
    }

    let m = cfg.restart.max(1);
    let mut iterations = 0usize;
    let mut history = Vec::new();
    let mut scratch = vec![0.0; n];
    let mut w = vec![0.0; n];

    loop {
        // (Preconditioned) residual r = M^{-1}(b − A x).
        a.apply(&x, &mut scratch);
        for (s, bi) in scratch.iter_mut().zip(b) {
            *s = bi - *s;
        }
        let mut r = vec![0.0; n];
        match precond {
            Some(mm) => mm.apply(&scratch, &mut r),
            None => r.copy_from_slice(&scratch),
        }
        let beta = norm2(&r);
        let rel = beta / denom;
        if rel <= cfg.tol {
            return Ok(GmresResult {
                x,
                iterations,
                residual: rel,
                converged: true,
                residual_history: history,
            });
        }
        if iterations >= cfg.max_iters {
            return Ok(GmresResult {
                x,
                iterations,
                residual: rel,
                converged: false,
                residual_history: history,
            });
        }

        // Arnoldi basis and Hessenberg columns for this cycle.
        let mut basis: Vec<Vec<f64>> = Vec::with_capacity(m + 1);
        for v in &mut r {
            *v /= beta;
        }
        basis.push(r);
        let mut h_cols: Vec<Vec<f64>> = Vec::with_capacity(m);
        let mut cs: Vec<f64> = Vec::with_capacity(m);
        let mut sn: Vec<f64> = Vec::with_capacity(m);
        let mut g = vec![0.0; m + 1];
        g[0] = beta;
        let mut k_used = 0usize;
        let mut cycle_converged = false;

        for j in 0..m {
            if iterations >= cfg.max_iters {
                break;
            }
            // w = M^{-1} A v_j
            a.apply(&basis[j], &mut scratch);
            match precond {
                Some(mm) => mm.apply(&scratch, &mut w),
                None => w.copy_from_slice(&scratch),
            }
            // Modified Gram–Schmidt.
            let mut h = vec![0.0; j + 2];
            for (i, v) in basis.iter().enumerate().take(j + 1) {
                let hij = dot(&w, v);
                h[i] = hij;
                axpy(-hij, v, &mut w);
            }
            let hnext = norm2(&w);
            h[j + 1] = hnext;

            // Apply accumulated Givens rotations to the new column.
            for i in 0..j {
                let t = cs[i] * h[i] + sn[i] * h[i + 1];
                h[i + 1] = -sn[i] * h[i] + cs[i] * h[i + 1];
                h[i] = t;
            }
            // New rotation annihilating h[j+1].
            let (c, s) = givens(h[j], h[j + 1]);
            cs.push(c);
            sn.push(s);
            h[j] = c * h[j] + s * h[j + 1];
            h[j + 1] = 0.0;
            let gj = g[j];
            g[j] = c * gj;
            g[j + 1] = -s * gj;

            h_cols.push(h);
            iterations += 1;
            k_used = j + 1;
            let rel = g[j + 1].abs() / denom;
            history.push(rel);

            let happy = hnext <= 1e-14 * denom.max(1.0);
            if rel <= cfg.tol || happy {
                cycle_converged = true;
                break;
            }
            // Extend the basis.
            let mut v = w.clone();
            for vi in &mut v {
                *vi /= hnext;
            }
            basis.push(v);
        }

        // Solve the small triangular system R y = g and update x.
        if k_used > 0 {
            let mut y = vec![0.0; k_used];
            for i in (0..k_used).rev() {
                let mut acc = g[i];
                for (jj, yj) in y.iter().enumerate().take(k_used).skip(i + 1) {
                    acc -= h_cols[jj][i] * yj;
                }
                y[i] = acc / h_cols[i][i];
            }
            for (jj, yj) in y.iter().enumerate() {
                axpy(*yj, &basis[jj], &mut x);
            }
        }

        if cycle_converged {
            // Re-enter the loop once more; the residual check at the top
            // confirms convergence (and returns the true final residual).
            continue;
        }
        if iterations >= cfg.max_iters {
            a.apply(&x, &mut scratch);
            for (s, bi) in scratch.iter_mut().zip(b) {
                *s = bi - *s;
            }
            let mut r = vec![0.0; n];
            match precond {
                Some(mm) => mm.apply(&scratch, &mut r),
                None => r.copy_from_slice(&scratch),
            }
            let rel = norm2(&r) / denom;
            return Ok(GmresResult {
                x,
                iterations,
                residual: rel,
                converged: rel <= cfg.tol,
                residual_history: history,
            });
        }
    }
}

fn givens(a: f64, b: f64) -> (f64, f64) {
    if b == 0.0 {
        (1.0, 0.0)
    } else if a == 0.0 {
        (0.0, 1.0)
    } else {
        let r = a.hypot(b);
        (a / r, b / r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ilu0::Ilu0;
    use bepi_sparse::{Coo, Csr};

    fn dd_matrix(n: usize) -> Csr {
        let mut coo = Coo::new(n, n).unwrap();
        for i in 0..n {
            let mut off = 0.0;
            for d in [1usize, 4, 9] {
                let j = (i + d) % n;
                if j != i {
                    let v = 0.2 + ((i * 13 + j * 7) % 6) as f64 * 0.1;
                    coo.push(i, j, -v).unwrap();
                    off += v;
                }
            }
            coo.push(i, i, off + 0.5).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn solves_diagonal_system_exactly() {
        let mut coo = Coo::new(3, 3).unwrap();
        for (i, d) in [2.0, 4.0, 8.0].iter().enumerate() {
            coo.push(i, i, *d).unwrap();
        }
        let a = coo.to_csr();
        let r = gmres(&a, &[2.0, 4.0, 8.0], None, None, &GmresConfig::default()).unwrap();
        assert!(r.converged);
        for xi in &r.x {
            assert!((xi - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn solves_nonsymmetric_dd_system() {
        let a = dd_matrix(60);
        let x_true: Vec<f64> = (0..60).map(|i| (i as f64 * 0.17).sin()).collect();
        let b = a.mul_vec(&x_true).unwrap();
        let r = gmres(&a, &b, None, None, &GmresConfig::default()).unwrap();
        assert!(r.converged, "residual {}", r.residual);
        for (g, w) in r.x.iter().zip(&x_true) {
            assert!((g - w).abs() < 1e-6, "{g} vs {w}");
        }
    }

    #[test]
    fn restart_path_still_converges() {
        let a = dd_matrix(80);
        let x_true: Vec<f64> = (0..80).map(|i| ((i * i) as f64 * 0.01).cos()).collect();
        let b = a.mul_vec(&x_true).unwrap();
        let cfg = GmresConfig {
            restart: 5, // force many restarts
            ..GmresConfig::default()
        };
        let r = gmres(&a, &b, None, None, &cfg).unwrap();
        assert!(r.converged, "residual {}", r.residual);
        for (g, w) in r.x.iter().zip(&x_true) {
            assert!((g - w).abs() < 1e-6);
        }
    }

    #[test]
    fn preconditioning_reduces_iterations() {
        let a = dd_matrix(120);
        let b: Vec<f64> = (0..120).map(|i| ((i + 1) as f64).recip()).collect();
        let plain = gmres(&a, &b, None, None, &GmresConfig::default()).unwrap();
        let ilu = Ilu0::factor(&a).unwrap();
        let pre = gmres(
            &a,
            &b,
            None,
            Some(&ilu as &dyn Preconditioner),
            &GmresConfig::default(),
        )
        .unwrap();
        assert!(plain.converged && pre.converged);
        assert!(
            pre.iterations < plain.iterations,
            "precond {} vs plain {}",
            pre.iterations,
            plain.iterations
        );
        // Same solution.
        for (p, q) in pre.x.iter().zip(&plain.x) {
            assert!((p - q).abs() < 1e-6);
        }
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let a = dd_matrix(10);
        let r = gmres(&a, &[0.0; 10], None, None, &GmresConfig::default()).unwrap();
        assert!(r.converged);
        assert_eq!(r.x, vec![0.0; 10]);
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn warm_start_from_solution_is_immediate() {
        let a = dd_matrix(30);
        let x_true: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let b = a.mul_vec(&x_true).unwrap();
        let r = gmres(&a, &b, Some(&x_true), None, &GmresConfig::default()).unwrap();
        assert!(r.converged);
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn iteration_cap_respected() {
        let a = dd_matrix(100);
        let b = vec![1.0; 100];
        let cfg = GmresConfig {
            tol: 1e-30, // unreachable
            restart: 10,
            max_iters: 17,
        };
        let r = gmres(&a, &b, None, None, &cfg).unwrap();
        assert!(!r.converged);
        assert_eq!(r.iterations, 17);
    }

    #[test]
    fn residual_history_is_monotone_within_cycle() {
        let a = dd_matrix(50);
        let b = vec![1.0; 50];
        let r = gmres(&a, &b, None, None, &GmresConfig::default()).unwrap();
        // GMRES residual is non-increasing (up to fp noise) without restart.
        for w in r.residual_history.windows(2) {
            assert!(w[1] <= w[0] * (1.0 + 1e-9), "{} then {}", w[0], w[1]);
        }
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = dd_matrix(5);
        assert!(gmres(&a, &[1.0; 4], None, None, &GmresConfig::default()).is_err());
        assert!(gmres(
            &a,
            &[1.0; 5],
            Some(&[0.0; 3]),
            None,
            &GmresConfig::default()
        )
        .is_err());
    }
}
