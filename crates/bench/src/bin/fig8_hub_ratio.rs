//! Regenerates the paper artifact; see `bepi_bench::experiments::fig8`.

fn main() {
    print!("{}", bepi_bench::experiments::fig8::run());
}
