//! Jacobi iteration — an additional stationary iterative baseline.
//!
//! Not in the paper's main comparison, but a standard point of reference
//! for diagonally dominant systems such as `H r = c q`; the bench harness
//! uses it for an ablation of iterative methods.

use bepi_sparse::vecops::dist2;
use bepi_sparse::{Csr, Result, SparseError};

/// Configuration for Jacobi iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JacobiConfig {
    /// Convergence tolerance on `‖x_i − x_{i−1}‖₂`.
    pub tol: f64,
    /// Iteration cap.
    pub max_iters: usize,
}

impl Default for JacobiConfig {
    fn default() -> Self {
        Self {
            tol: 1e-9,
            max_iters: 10_000,
        }
    }
}

/// Outcome of a Jacobi run.
#[derive(Debug, Clone)]
pub struct JacobiResult {
    /// Solution estimate.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was reached.
    pub converged: bool,
}

/// Solves `A x = b` by Jacobi iteration
/// `x_i ← D^{-1}(b − (A − D) x_{i−1})`.
///
/// Converges for strictly diagonally dominant `A` (all the systems BePI
/// builds). Fails fast if some diagonal entry is missing.
pub fn jacobi(a: &Csr, b: &[f64], cfg: &JacobiConfig) -> Result<JacobiResult> {
    let n = a.nrows();
    if a.ncols() != n {
        return Err(SparseError::ShapeMismatch {
            left: a.shape(),
            right: (n, n),
            op: "jacobi (matrix must be square)",
        });
    }
    if b.len() != n {
        return Err(SparseError::VectorLength {
            expected: n,
            actual: b.len(),
        });
    }
    let diag = a.diagonal();
    if let Some(i) = diag.iter().position(|&d| d == 0.0) {
        return Err(SparseError::ZeroDiagonal { row: i });
    }
    let mut x = vec![0.0; n];
    let mut next = vec![0.0; n];
    for it in 1..=cfg.max_iters {
        for i in 0..n {
            let mut acc = b[i];
            for (j, v) in a.row_iter(i) {
                if j != i {
                    acc -= v * x[j];
                }
            }
            next[i] = acc / diag[i];
        }
        let delta = dist2(&next, &x);
        std::mem::swap(&mut x, &mut next);
        if delta <= cfg.tol {
            return Ok(JacobiResult {
                x,
                iterations: it,
                converged: true,
            });
        }
    }
    Ok(JacobiResult {
        x,
        iterations: cfg.max_iters,
        converged: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bepi_sparse::Coo;

    fn dd_matrix(n: usize) -> Csr {
        let mut coo = Coo::new(n, n).unwrap();
        for i in 0..n {
            let mut off = 0.0;
            for d in [1usize, 2] {
                let j = (i + d) % n;
                let v = 0.3;
                coo.push(i, j, -v).unwrap();
                off += v;
            }
            coo.push(i, i, off + 1.0).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn solves_dd_system() {
        let a = dd_matrix(40);
        let x_true: Vec<f64> = (0..40).map(|i| (i as f64 * 0.2).sin()).collect();
        let b = a.mul_vec(&x_true).unwrap();
        let r = jacobi(&a, &b, &JacobiConfig::default()).unwrap();
        assert!(r.converged);
        for (g, w) in r.x.iter().zip(&x_true) {
            assert!((g - w).abs() < 1e-7);
        }
    }

    #[test]
    fn missing_diagonal_rejected() {
        let mut coo = Coo::new(2, 2).unwrap();
        coo.push(0, 1, 1.0).unwrap();
        coo.push(1, 0, 1.0).unwrap();
        assert!(jacobi(&coo.to_csr(), &[1.0, 1.0], &JacobiConfig::default()).is_err());
    }

    #[test]
    fn iteration_cap() {
        let a = dd_matrix(20);
        let cfg = JacobiConfig {
            tol: 1e-30,
            max_iters: 3,
        };
        let r = jacobi(&a, &[1.0; 20], &cfg).unwrap();
        assert!(!r.converged);
        assert_eq!(r.iterations, 3);
    }
}
