//! Durable write-ahead log of [`EdgeUpdate`] records.
//!
//! Every [`Wal::append`] call writes one *segment* and fsyncs before
//! returning, so an update acknowledged to a client survives a crash.
//! The on-disk format follows the persist-v2 conventions: a magic +
//! version header, then length-validated frames each carrying its own
//! CRC-32 trailer:
//!
//! ```text
//! header:  "BPWL" | u32 version
//! segment: u32 len | len bytes of records | u32 crc32(records)
//! record:  u8 op (0 = insert, 1 = remove) | u64 u | u64 v
//! ```
//!
//! Replay on restart tolerates a *truncated tail* — a segment cut short
//! by a crash mid-append is discarded (and the file truncated back to the
//! last complete segment) because its bytes simply end early. A segment
//! that is fully present but fails its CRC or length validation is
//! genuine corruption and replay fails with a clean parse error, never an
//! abort.

use bepi_core::dynamic::EdgeUpdate;
use bepi_core::persist::Crc32;
use bepi_sparse::{Result, SparseError};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"BPWL";
const VERSION: u32 = 1;
const HEADER_BYTES: u64 = 8;
/// Bytes per serialized record: op tag + two node ids.
const RECORD_BYTES: usize = 17;
/// Upper bound on one segment's payload — a corrupt length field must
/// fail validation instead of driving a huge read.
pub const MAX_SEGMENT_BYTES: usize = RECORD_BYTES * (1 << 20);

/// What [`Wal::open`] found while replaying an existing log.
#[derive(Debug, Default, Clone, Copy)]
pub struct ReplayReport {
    /// Complete segments replayed.
    pub segments: u64,
    /// Edge updates recovered, in append order.
    pub records: usize,
    /// Bytes of torn tail discarded (0 for a cleanly closed log).
    pub truncated_bytes: usize,
}

/// An append-only, fsync-on-append edge-update log.
///
/// Segments are numbered from 1 in append order across the whole life of
/// the log *within this process*; [`Wal::compact_through`] drops a prefix
/// once a rebuild has made it redundant.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    /// Segments physically present in the file.
    segments_in_file: u64,
    /// Segments dropped by compaction (global seq of the file's first
    /// segment is `base + 1`).
    base: u64,
}

fn encode_records(updates: &[EdgeUpdate]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(updates.len() * RECORD_BYTES);
    for update in updates {
        let (op, u, v) = match *update {
            EdgeUpdate::Insert(u, v) => (0u8, u, v),
            EdgeUpdate::Remove(u, v) => (1u8, u, v),
        };
        payload.push(op);
        payload.extend_from_slice(&(u as u64).to_le_bytes());
        payload.extend_from_slice(&(v as u64).to_le_bytes());
    }
    payload
}

fn decode_records(payload: &[u8]) -> Result<Vec<EdgeUpdate>> {
    let mut out = Vec::with_capacity(payload.len() / RECORD_BYTES);
    for rec in payload.chunks(RECORD_BYTES) {
        let u = u64::from_le_bytes(rec[1..9].try_into().unwrap()) as usize;
        let v = u64::from_le_bytes(rec[9..17].try_into().unwrap()) as usize;
        out.push(match rec[0] {
            0 => EdgeUpdate::Insert(u, v),
            1 => EdgeUpdate::Remove(u, v),
            op => {
                return Err(SparseError::Parse(format!(
                    "corrupt WAL record: unknown op tag {op}"
                )))
            }
        });
    }
    Ok(out)
}

/// One segment found by [`scan_segments`]: the byte range of its payload
/// within the scanned buffer.
struct Segment {
    payload_start: usize,
    payload_len: usize,
}

/// Walks the segment stream in `bytes` (everything after the header).
/// Returns the complete segments, the offset just past the last complete
/// one, and whether a torn tail follows it. Fails on CRC mismatches and
/// invalid length fields — those are corruption, not torn writes.
fn scan_segments(bytes: &[u8]) -> Result<(Vec<Segment>, usize)> {
    let mut segments = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        // A torn append simply runs out of bytes: tolerate and stop.
        let Some(len_bytes) = bytes.get(pos..pos + 4) else {
            break;
        };
        let len = u32::from_le_bytes(len_bytes.try_into().unwrap()) as usize;
        if len == 0 || len > MAX_SEGMENT_BYTES || len % RECORD_BYTES != 0 {
            return Err(SparseError::Parse(format!(
                "corrupt WAL: segment at byte {} declares invalid length {len}",
                HEADER_BYTES as usize + pos
            )));
        }
        let Some(payload) = bytes.get(pos + 4..pos + 4 + len) else {
            break; // torn payload
        };
        let Some(crc_bytes) = bytes.get(pos + 4 + len..pos + 8 + len) else {
            break; // torn trailer
        };
        let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        let mut crc = Crc32::new();
        crc.update(payload);
        let computed = crc.finalize();
        if stored != computed {
            return Err(SparseError::Parse(format!(
                "corrupt WAL: segment at byte {} checksum mismatch \
                 (stored {stored:#010x}, computed {computed:#010x})",
                HEADER_BYTES as usize + pos
            )));
        }
        segments.push(Segment {
            payload_start: pos + 4,
            payload_len: len,
        });
        pos += 8 + len;
    }
    Ok((segments, pos))
}

impl Wal {
    /// Opens (creating if absent) the log at `path`, replaying every
    /// complete segment. A torn tail from a crash mid-append is truncated
    /// away; corruption of a complete segment is a clean error.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<(Self, Vec<EdgeUpdate>, ReplayReport)> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        if bytes.is_empty() {
            file.write_all(MAGIC)?;
            file.write_all(&VERSION.to_le_bytes())?;
            file.sync_data()?;
            return Ok((
                Self {
                    file,
                    path,
                    segments_in_file: 0,
                    base: 0,
                },
                Vec::new(),
                ReplayReport::default(),
            ));
        }
        if bytes.len() < HEADER_BYTES as usize || &bytes[..4] != MAGIC {
            return Err(SparseError::Parse(format!(
                "{} is not a BePI WAL (bad magic)",
                path.display()
            )));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != VERSION {
            return Err(SparseError::Parse(format!(
                "unsupported WAL version {version} (expected {VERSION})"
            )));
        }

        let body = &bytes[HEADER_BYTES as usize..];
        let (segments, valid_len) = scan_segments(body)?;
        let mut records = Vec::new();
        for seg in &segments {
            records.extend(decode_records(
                &body[seg.payload_start..seg.payload_start + seg.payload_len],
            )?);
        }
        let report = ReplayReport {
            segments: segments.len() as u64,
            records: records.len(),
            truncated_bytes: body.len() - valid_len,
        };
        if report.truncated_bytes > 0 {
            // Drop the torn tail so the next append starts on a segment
            // boundary.
            file.set_len(HEADER_BYTES + valid_len as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok((
            Self {
                file,
                path,
                segments_in_file: report.segments,
                base: 0,
            },
            records,
            report,
        ))
    }

    /// Global sequence number of the newest segment (0 when empty).
    pub fn seq(&self) -> u64 {
        self.base + self.segments_in_file
    }

    /// Appends one segment holding `updates` and fsyncs. Returns the new
    /// segment's global sequence number.
    pub fn append(&mut self, updates: &[EdgeUpdate]) -> Result<u64> {
        if updates.is_empty() {
            return Ok(self.seq());
        }
        if updates.len() * RECORD_BYTES > MAX_SEGMENT_BYTES {
            return Err(SparseError::Parse(format!(
                "WAL segment too large: {} updates (max {})",
                updates.len(),
                MAX_SEGMENT_BYTES / RECORD_BYTES
            )));
        }
        let payload = encode_records(updates);
        let mut crc = Crc32::new();
        crc.update(&payload);
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&crc.finalize().to_le_bytes());
        let _span = bepi_obs::Span::enter("wal.append");
        self.file.write_all(&frame)?;
        let fsync_start = std::time::Instant::now();
        self.file.sync_data()?;
        bepi_obs::telemetry::wal_fsync_seconds().observe(fsync_start.elapsed().as_secs_f64());
        self.segments_in_file += 1;
        Ok(self.seq())
    }

    /// Drops every segment with sequence number `<= upto` — they are
    /// covered by a durable checkpoint. Rewrites the remaining tail into
    /// a temporary file and atomically renames it over the log, so a
    /// crash mid-compaction leaves either the old or the new log, never a
    /// mix.
    pub fn compact_through(&mut self, upto: u64) -> Result<()> {
        if upto <= self.base {
            return Ok(());
        }
        let drop_local = (upto - self.base).min(self.segments_in_file);

        self.file.seek(SeekFrom::Start(HEADER_BYTES))?;
        let mut body = Vec::new();
        self.file.read_to_end(&mut body)?;
        let (segments, _) = scan_segments(&body)?;

        let keep_from = segments
            .get(drop_local as usize)
            .map(|s| s.payload_start - 4)
            .unwrap_or(body.len());

        let tmp_path = self.path.with_extension("wal.tmp");
        let mut tmp = File::create(&tmp_path)?;
        tmp.write_all(MAGIC)?;
        tmp.write_all(&VERSION.to_le_bytes())?;
        tmp.write_all(&body[keep_from..])?;
        tmp.sync_data()?;
        std::fs::rename(&tmp_path, &self.path)?;

        self.file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        self.file.seek(SeekFrom::End(0))?;
        self.segments_in_file -= drop_local;
        self.base += drop_local;
        Ok(())
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("bepi_wal_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}_{}.wal", std::process::id()))
    }

    fn ups(n: usize) -> Vec<EdgeUpdate> {
        (0..n).map(|i| EdgeUpdate::Insert(i, i + 1)).collect()
    }

    #[test]
    fn roundtrip_across_reopen() {
        let path = tmp("roundtrip");
        std::fs::remove_file(&path).ok();
        let (mut wal, replayed, _) = Wal::open(&path).unwrap();
        assert!(replayed.is_empty());
        assert_eq!(wal.append(&ups(3)).unwrap(), 1);
        assert_eq!(wal.append(&[EdgeUpdate::Remove(7, 8)]).unwrap(), 2);
        drop(wal);
        let (wal, replayed, report) = Wal::open(&path).unwrap();
        assert_eq!(report.segments, 2);
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(replayed.len(), 4);
        assert_eq!(replayed[3], EdgeUpdate::Remove(7, 8));
        assert_eq!(wal.seq(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let path = tmp("torn");
        std::fs::remove_file(&path).ok();
        let (mut wal, _, _) = Wal::open(&path).unwrap();
        wal.append(&ups(2)).unwrap();
        drop(wal);
        // Simulate a crash mid-append: a partial frame at the tail.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&(34u32.to_le_bytes())).unwrap(); // claims 2 records
        f.write_all(&[0u8; 10]).unwrap(); // ...but only 10 payload bytes
        drop(f);
        let before = std::fs::metadata(&path).unwrap().len();
        let (mut wal, replayed, report) = Wal::open(&path).unwrap();
        assert_eq!(replayed.len(), 2, "complete segment survives");
        assert_eq!(report.truncated_bytes, 14);
        assert!(std::fs::metadata(&path).unwrap().len() < before);
        // The log keeps working after truncation.
        wal.append(&ups(1)).unwrap();
        drop(wal);
        let (_, replayed, report) = Wal::open(&path).unwrap();
        assert_eq!(replayed.len(), 3);
        assert_eq!(report.truncated_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_trailer_fails_cleanly() {
        let path = tmp("corrupt");
        std::fs::remove_file(&path).ok();
        let (mut wal, _, _) = Wal::open(&path).unwrap();
        wal.append(&ups(3)).unwrap();
        drop(wal);
        // Flip a bit in the final CRC trailer: the segment is complete,
        // so this is corruption, not a torn write.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        let err = Wal::open(&path).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn invalid_length_field_fails_cleanly() {
        let path = tmp("badlen");
        std::fs::remove_file(&path).ok();
        let (wal, _, _) = Wal::open(&path).unwrap();
        drop(wal);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        // Complete 8-byte "frame" with a length not divisible by 17.
        f.write_all(&5u32.to_le_bytes()).unwrap();
        f.write_all(&[1, 2, 3, 4, 5]).unwrap();
        f.write_all(&0u32.to_le_bytes()).unwrap();
        drop(f);
        let err = Wal::open(&path).unwrap_err();
        assert!(err.to_string().contains("invalid length"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_drops_prefix_keeps_tail() {
        let path = tmp("compact");
        std::fs::remove_file(&path).ok();
        let (mut wal, _, _) = Wal::open(&path).unwrap();
        wal.append(&ups(5)).unwrap(); // seq 1
        wal.append(&[EdgeUpdate::Remove(1, 2)]).unwrap(); // seq 2
        let upto = wal.seq();
        wal.append(&[EdgeUpdate::Insert(9, 9)]).unwrap(); // seq 3
        wal.compact_through(upto).unwrap();
        assert_eq!(wal.seq(), 3, "global numbering survives compaction");
        // Appends after compaction land after the kept tail.
        wal.append(&[EdgeUpdate::Remove(9, 9)]).unwrap(); // seq 4
        drop(wal);
        let (_, replayed, report) = Wal::open(&path).unwrap();
        assert_eq!(report.segments, 2);
        assert_eq!(
            replayed,
            vec![EdgeUpdate::Insert(9, 9), EdgeUpdate::Remove(9, 9)]
        );
        // Compacting everything empties the log.
        let (mut wal, _, _) = Wal::open(&path).unwrap();
        wal.compact_through(wal.seq()).unwrap();
        drop(wal);
        let (_, replayed, _) = Wal::open(&path).unwrap();
        assert!(replayed.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_foreign_files() {
        let path = tmp("foreign");
        std::fs::write(&path, b"definitely not a wal file").unwrap();
        assert!(Wal::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
