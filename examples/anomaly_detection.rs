//! Anomaly detection in a bipartite-like interaction graph.
//!
//! Following Sun et al. (cited as the RWR anomaly-detection application in
//! the paper's related work): a node is *anomalous* w.r.t. its declared
//! community when its RWR-based neighborhood looks unlike its peers'.
//! We plant two communities plus a handful of "bridge" accounts that
//! interact with both, and flag them by neighborhood-concentration score:
//! the fraction of a node's RWR mass that stays inside its own community.
//!
//! Run with: `cargo run --release -p bepi-core --example anomaly_detection`

use bepi_core::prelude::*;
use bepi_graph::Graph;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(7);
    let half = 150usize;
    let n = 2 * half;
    let mut edges = Vec::new();
    // Two dense communities.
    for comm in 0..2 {
        let base = comm * half;
        for _ in 0..half * 6 {
            let u = base + rng.random_range(0..half);
            let v = base + rng.random_range(0..half);
            if u != v {
                edges.push((u, v));
            }
        }
    }
    // Five planted anomalies: nodes of community 0 that mostly interact
    // with community 1.
    let anomalies: Vec<usize> = (0..5).map(|i| i * 29 % half).collect();
    for &a in &anomalies {
        for _ in 0..12 {
            let v = half + rng.random_range(0..half);
            edges.push((a, v));
            edges.push((v, a));
        }
    }
    let graph = Graph::from_edges(n, &edges)?;
    println!(
        "interaction graph: {} nodes, {} edges, planted anomalies {:?}",
        graph.n(),
        graph.m(),
        anomalies
    );

    let solver = BePi::preprocess(&graph, &BePiConfig::default())?;

    // Score each community-0 node by in-community RWR concentration.
    let mut scored: Vec<(usize, f64)> = Vec::new();
    for u in 0..half {
        if graph.out_degree(u) == 0 {
            continue;
        }
        let r = solver.query(u)?;
        let inside: f64 = r.scores[..half].iter().sum();
        let total: f64 = r.scores.iter().sum();
        scored.push((u, inside / total));
    }
    scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());

    println!("\nmost anomalous community-0 nodes (lowest in-community mass):");
    for (u, conc) in scored.iter().take(8) {
        let planted = if anomalies.contains(u) {
            "  <-- planted"
        } else {
            ""
        };
        println!(
            "node {u:>4}: {:.3} of RWR mass in own community{planted}",
            conc
        );
    }

    // All five planted anomalies should appear in the bottom 8.
    let flagged: Vec<usize> = scored.iter().take(8).map(|&(u, _)| u).collect();
    let caught = anomalies.iter().filter(|a| flagged.contains(a)).count();
    println!("\ncaught {caught}/5 planted anomalies in the top-8 flags");
    assert!(caught >= 4, "detection should catch most planted anomalies");
    Ok(())
}
