//! `bepi` — command-line RWR queries over edge-list graphs.
//!
//! Run `bepi help` for the full usage text (the [`USAGE`] constant is the
//! single source of truth for every subcommand and flag). The edge list
//! is whitespace-separated `src dst [weight]` per line, `#`/`%` comments
//! allowed.

use bepi_core::community::sweep_cut;
use bepi_core::prelude::*;
use bepi_core::schur::select_hub_ratio;
use bepi_graph::io::read_labeled_edge_list_file;
use bepi_graph::{Graph, NodeIndexer};
use bepi_sparse::io::read_edge_list_file;
use bepi_sparse::mem::format_bytes;
use std::process::ExitCode;

/// How `bepi query` computes its scores: the exact BePI solve or one of
/// the approximate engines the daemon's degraded lane uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QueryMethod {
    /// Exact: full BePI preprocessing + Schur/GMRES solve (default).
    Bepi,
    /// Forward push (`bepi_core::approx::forward_push`), the classic
    /// local-push estimator.
    Push,
    /// Step-interleaved batch random walks (`bepi_walk::walk_scores`).
    Walk,
    /// Truncated cumulative power iteration (`bepi_walk::tpa_scores`).
    Tpa,
}

struct Options {
    c: f64,
    tol: f64,
    k: Option<f64>,
    top: usize,
    max_size: Option<usize>,
    variant: BePiVariant,
    labels: bool,
    embed_graph: bool,
    threads: Option<usize>,
    format: Option<u32>,
    mmap: bool,
    method: QueryMethod,
    walks: usize,
    terms: usize,
    epsilon: f64,
    epoch: u64,
}

impl Default for Options {
    fn default() -> Self {
        let approx = bepi_walk::ApproxConfig::default();
        Self {
            c: bepi_core::DEFAULT_RESTART_PROB,
            tol: bepi_core::DEFAULT_TOLERANCE,
            k: None,
            top: 10,
            max_size: None,
            variant: BePiVariant::Full,
            labels: false,
            embed_graph: false,
            threads: None,
            format: None,
            mmap: false,
            method: QueryMethod::Bepi,
            walks: approx.walks,
            terms: approx.max_terms,
            epsilon: 1e-6,
            epoch: 0,
        }
    }
}

fn parse_format(value: &str) -> Result<u32, String> {
    match value.trim_start_matches('v') {
        "4" => Ok(4),
        "5" => Ok(5),
        "6" => Ok(6),
        _ => Err(format!("bad --format: {value} (expected v4, v5 or v6)")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// The one usage text: printed by `bepi help` / `--help` and after every
/// argument error, so flag documentation cannot drift between the two.
const USAGE: &str = "usage:
  bepi query      <edges.txt> <seed> [--top K] [--method M] [common flags]
  bepi ppr        <edges.txt> <seed:weight> [<seed:weight> ...] [--top K] [common flags]
  bepi community  <edges.txt> <seed> [--max-size N] [common flags]
  bepi stats      <edges.txt|index.bepi> [--mmap] [common flags]
  bepi select-k   <edges.txt> [--c C]
  bepi preprocess <edges.txt> <out.bepi> [--embed-graph] [--format V] [common flags]
  bepi convert    <in.bepi> <out.bepi> [--format V]      (re-encode an index;
                  default target v6, written atomically via temp + rename)
  bepi serve      <index.bepi> <seed> [--top K] [--mmap] (one-shot query)
  bepi serve      <index.bepi> --listen ADDR [--mmap] [--threads N]
                  [--cache-entries M]
                  [--queue-depth Q] [--timeout-ms T] [--slow-query-ms S]
                  [--pressure F] [--approx-engine E] [--trace-export PATH]
                  [--wal PATH] [--auto-flush N] [--graph edges.txt]
                  [--checkpoint PATH]
                  (HTTP daemon)
  bepi route      <index.bepi> --shards N [--listen ADDR] [--mmap]
                  [--hedge-ms H] [--retries R] [--backoff-ms B]
                  [--health-interval-ms I] [--cache-entries M] [--threads N]
                  [--timeout-ms T] [--pressure F] [--slow-query-ms S]
                  [--trace-export PATH]
                  (scatter-gather front tier: spawns N `bepi serve` shard
                  daemons over the same index and routes across them)
  bepi route      --attach ADDR1,ADDR2,... [front-tier flags]
                  (route over already-running daemons; no spawning)
  bepi bench      [--quick] [--datasets N] [--seeds N] [--threads-list 1,2,4,8]
                  [--out PATH]             (thread-scaling benchmark)
  bepi bench      --route [--quick] [--shards N] [--cache-entries M]
                  [--datasets N] [--out PATH]
                  (router-vs-single-daemon throughput: same per-process
                  response cache, working set sized to thrash one daemon
                  while each shard's partition fits; writes BENCH_PR7.json)
  bepi bench      --trace [--quick] [--seeds N] [--datasets N] [--out PATH]
                  (tracing-overhead benchmark: interleaves plain and
                  ?trace=1 queries against one daemon; gate is traced p50
                  within 5% of untraced; writes BENCH_PR8.json)
  bepi bench      --rebuild [--quick] [--batches K] [--batch-size B]
                  [--datasets N] [--out PATH]
                  (full-vs-incremental rebuild latency: small edge batches
                  through a from-scratch preprocess vs a plan-frozen
                  refactorization; gate is incremental p50 beating full
                  p50 on every anchor; writes BENCH_PR10.json)
  bepi help       (aliases: --help, -h)

common flags:
  --log-level L    stderr log verbosity: error|warn|info|debug|trace
                   (default warn; BEPI_LOG env var sets the same thing)
  --threads N      kernel threads for the parallel SpMV/SpGEMM/block-LU
                   kernels (default: available parallelism; the
                   BEPI_THREADS env var sets the same thing)
  --c C            restart probability (default 0.05)
  --tol EPS        solver tolerance (default 1e-9)
  --k RATIO        SlashBurn hub ratio (default: chosen automatically)
  --variant V      full | sparse | basic (default full)
  --top K          ranking rows to print (default 10)
  --method M       query: scoring engine — bepi (exact, default), push
                   (forward push), walk (step-interleaved batch random
                   walks), tpa (truncated cumulative power iteration).
                   walk and tpa are the deterministic approximate engines
                   the daemon's degraded lane serves
  --walks N        query --method walk: walks to run (default 20000)
  --terms N        query --method tpa: max series terms (default 64)
  --epsilon E      query --method push: push tolerance (default 1e-6)
  --epoch N        query --method walk: RNG epoch selecting the random
                   replicate; same (seed, epoch) is bit-identical at any
                   thread count (default 0)
  --max-size N     community: cap the sweep-cut size
  --labels         treat node ids as arbitrary strings instead of 0-indexed
                   integers. Only for commands that read an edge list;
                   preprocess and serve require integer ids because the
                   label mapping is not stored in the .bepi index.
  --embed-graph    preprocess: also store the adjacency inside the index,
                   making it live-update capable when served
  --format V       preprocess/convert: index format version — v4 (streamed),
                   v5 (streamed + embedded graph), v6 (memory-mappable
                   section container; persists the ILU factors, supports
                   --mmap serving). Default: v4, or v5 with --embed-graph;
                   convert defaults to v6
  --mmap           serve/stats: open a v6 index as a shared read-only memory
                   map and serve zero-copy from the page cache (instant
                   startup, index pages shared across processes). Pre-v6
                   indexes fall back to a heap load with a warning

bench flags:
  --quick          smoke preset: smallest anchor graph, threads 1 and 2,
                   5 seeds (what CI runs)
  --datasets N     measure the first N anchor graphs (default 3)
  --seeds N        query seeds per graph (default 10)
  --threads-list L comma-separated kernel-thread counts to sweep; must
                   include 1, the speedup base (default 1,2,4,8)
  --out PATH       where to write the JSON artifact (schema bepi-bench/v1,
                   default BENCH_PR6.json)

serve daemon flags (with --listen):
  --listen ADDR    bind address, e.g. 127.0.0.1:7462 (port 0 picks an
                   ephemeral port; the bound address is printed on startup)
  --threads N      worker threads (default: available parallelism). Each
                   worker's solver kernels then default to their share of
                   the remaining cores (override with BEPI_THREADS)
  --cache-entries M  response-cache capacity in entries (default 4096;
                   0 disables caching)
  --queue-depth Q  admission-queue depth; connections beyond it are shed
                   with 503 + Retry-After (default 128)
  --timeout-ms T   per-request deadline in milliseconds, including queue
                   wait (default 10000)
  --slow-query-ms S  queries at or above S milliseconds end-to-end are kept
                   in the slow-query ring served by GET /debug/slow
                   (default 100; 0 records every query)
  --pressure F     fraction of the admission queue at which mode=auto
                   queries start getting approximate answers instead of
                   queueing for the exact solver (default 0.75; 0 serves
                   every auto query approximately, useful for drills)
  --approx-engine E  engine behind approximate answers: tpa (truncated
                   cumulative power iteration, default) or walk
                   (batch random walks). Needs a graph (embedded or
                   --graph); without one, approx/auto degrade paths 400/shed
  --wal PATH       durable write-ahead log of live edge updates: every
                   accepted POST /edges batch is fsynced here and replayed
                   on restart (torn tails from a crash are tolerated)
  --auto-flush N   rebuild the index in the background once N updates are
                   buffered (default 0 = only POST /rebuild flushes)
  --graph PATH     edge list matching the index, for live updates when the
                   index was saved without --embed-graph
  --checkpoint P   where to write the post-rebuild index (default: the
                   index path itself when --wal is set); applied WAL
                   segments are truncated once the checkpoint is durable
  --shard-id N     stamp every response with an X-Shard: N header; set by
                   `bepi route` on the shard daemons it spawns so the
                   front tier can attribute responses to processes
  --trace-export PATH  append every traced (?trace=1) query as Chrome
                   trace-event JSON to PATH (open it in Perfetto or
                   chrome://tracing); preprocessing phase timings are
                   exported once at startup

route (front tier) flags:
  --shards N       shard daemons to spawn over the index; each serves the
                   full index (--mmap shares its pages across processes)
                   and owns a deterministic slice of the seed space for
                   cache locality
  --attach ADDRS   comma-separated addresses of already-running daemons
                   to route over instead of spawning (no restarts then)
  --listen ADDR    router bind address (default 127.0.0.1:0)
  --hedge-ms H     hedge delay: an unanswered /query launches a duplicate
                   at the next sibling after H ms; first answer wins
                   (default 50; 0 disables hedging)
  --retries R      extra shard attempts after the first, each on the next
                   sibling in the seed's ring order (default 3)
  --backoff-ms B   base backoff between sequential retries; attempt n
                   waits n×B ms (default 10)
  --health-interval-ms I  /version probe cadence per shard; failed probes
                   take a shard out of rotation, passing ones re-admit it
                   once it serves the fleet's expected epoch (default 200)
  --slow-query-ms S  requests at or above S milliseconds end-to-end are
                   kept (one record per shard attempt) in the router's
                   slowlog served by GET /debug/slow (default 100;
                   0 records every request)
  --trace-export PATH  append every traced (?trace=1) request as Chrome
                   trace-event JSON to PATH: a router span (pid 9999)
                   plus one lane per shard attempt
  --mmap, --cache-entries, --threads, --timeout-ms, --pressure,
  --slow-query-ms are forwarded to the spawned shard daemons
  (--timeout-ms also bounds the router's per-attempt shard I/O;
  the shared --slow-query-ms keeps both tiers' slowlogs correlatable
  by request id)

router endpoints: GET /query (proxied with failover + hedging; trace=1
                  wraps the shard's trace with per-attempt detail)
                  GET /batch?seeds=a,b,c[&top=K][&mode=M][&merge=1]
                  (scatter-gather; merge=1 folds per-seed top-k lists
                  into one fleet-wide ranking)
                  GET /route/health (per-shard health, graph version
                  generation, and last-probe age)
                  GET /version (quorum-advertised fleet graph version)
                  GET /healthz   GET /metrics (router series plus every
                  healthy shard's exposition re-labeled shard=\"N\")
                  GET /debug/slow   GET /debug/trace (per-attempt
                  slowlog / traced-request ring)

daemon endpoints: GET /query?seed=S&top=K[&mode=M][&epoch=N][&trace=1]
                  GET /healthz   GET /metrics   GET /version
                  GET /debug/slow   GET /debug/trace
                  POST /edges   POST /rebuild
approximate serving: ?mode= is exact, approx, or auto (default auto):
auto answers exactly until the admission queue crosses the --pressure
threshold, then serves deterministic approximate scores (tagged
X-Approx: 1) instead of shedding 503 — including on the overflow lane
once the queue is full; mode=exact keeps strict answers and sheds under
overload; approximate responses are cached per (seed, top, version,
mode, epoch) and byte-identical across repeats.
observability: every request gets a 128-bit correlation id, minted at
ingress (or adopted from a valid X-Request-Id header), echoed on the
response, forwarded router->shard on every attempt, and stamped into
structured logs, both tiers' slowlogs, and trace exports; /query?trace=1
embeds a per-stage timing breakdown (queue wait, solve, top-k,
serialize) in the response — through the router it is wrapped in a
\"route\" block with per-attempt detail (shard, kind, connect/send/wait
timings, outcome); traced requests are retained in /debug/trace rings
on both tiers and, with --trace-export, appended as Chrome trace-event
JSON; /metrics exposes GMRES iteration histograms, per-phase
preprocessing timings, WAL fsync latency, approx/degraded counters, and
queue-depth/in-flight gauges (the router merges every shard's
exposition under shard=\"N\" labels); /debug/slow returns the latest
slow queries as JSON (approx-flagged, request-id-correlated).
live updates: POST /edges takes JSON lines {\"op\":\"insert\",\"u\":0,\"v\":5};
queries keep serving the last completed rebuild (check X-Graph-Version)
until a rebuild flushes the buffer.
the daemon shuts down gracefully (draining in-flight queries) on stdin EOF.";

fn run() -> Result<(), String> {
    // BEPI_LOG seeds the level; a --log-level flag anywhere overrides it.
    bepi_obs::init_from_env();
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    while let Some(i) = args.iter().position(|a| a == "--log-level") {
        if i + 1 >= args.len() {
            return Err("flag --log-level needs a value".into());
        }
        let value = args.remove(i + 1);
        args.remove(i);
        let level = bepi_obs::Level::parse(&value)
            .ok_or_else(|| format!("bad --log-level: {value} (try error|warn|info|debug|trace)"))?;
        bepi_obs::set_level(level);
    }
    let (cmd, rest) = args.split_first().ok_or("missing subcommand")?;
    match cmd.as_str() {
        "query" => {
            let (path, rest) = rest.split_first().ok_or("missing edge-list path")?;
            let (seed_s, rest) = rest.split_first().ok_or("missing seed node")?;
            let opts = parse_opts(rest)?;
            cmd_query(path, seed_s, &opts)
        }
        "ppr" => {
            let (path, rest) = rest.split_first().ok_or("missing edge-list path")?;
            let split = rest
                .iter()
                .position(|a| a.starts_with("--"))
                .unwrap_or(rest.len());
            let (seed_specs, flags) = rest.split_at(split);
            if seed_specs.is_empty() {
                return Err("ppr needs at least one seed:weight".into());
            }
            let opts = parse_opts(flags)?;
            cmd_ppr(path, seed_specs, &opts)
        }
        "community" => {
            let (path, rest) = rest.split_first().ok_or("missing edge-list path")?;
            let (seed_s, rest) = rest.split_first().ok_or("missing seed node")?;
            let opts = parse_opts(rest)?;
            cmd_community(path, seed_s, &opts)
        }
        "stats" => {
            let (path, rest) = rest.split_first().ok_or("missing edge-list path")?;
            let opts = parse_opts(rest)?;
            cmd_stats(path, &opts)
        }
        "select-k" => {
            let (path, rest) = rest.split_first().ok_or("missing edge-list path")?;
            let opts = parse_opts(rest)?;
            cmd_select_k(path, &opts)
        }
        "preprocess" => {
            let (path, rest) = rest.split_first().ok_or("missing edge-list path")?;
            let (out, rest) = rest.split_first().ok_or("missing output path")?;
            let opts = parse_opts(rest)?;
            cmd_preprocess(path, out, &opts)
        }
        "convert" => {
            let (input, rest) = rest.split_first().ok_or("missing input index path")?;
            let (out, rest) = rest.split_first().ok_or("missing output index path")?;
            let opts = parse_opts(rest)?;
            cmd_convert(input, out, &opts)
        }
        "serve" => {
            let (index, rest) = rest.split_first().ok_or("missing index path")?;
            if rest.first().is_some_and(|a| a.starts_with("--")) {
                cmd_serve_daemon(index, rest)
            } else {
                let (seed_s, rest) = rest
                    .split_first()
                    .ok_or("missing seed node (or --listen ADDR for daemon mode)")?;
                let opts = parse_opts(rest)?;
                cmd_serve(index, seed_s, &opts)
            }
        }
        "route" => {
            // The index is positional but optional: attach mode routes
            // over already-running daemons and needs no index here.
            let (index, flags) = match rest.split_first() {
                Some((first, tail)) if !first.starts_with("--") => (Some(first.as_str()), tail),
                _ => (None, rest),
            };
            cmd_route(index, flags)
        }
        "bench" => cmd_bench(rest),
        "help" | "--help" | "-h" => {
            // Tolerate a closed pipe (`bepi help | head`): ignore the
            // write error instead of panicking like `println!` would.
            use std::io::Write as _;
            let _ = writeln!(std::io::stdout(), "{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand: {other}")),
    }
}

fn parse_opts(mut rest: &[String]) -> Result<Options, String> {
    let mut o = Options::default();
    while let Some((flag, tail)) = rest.split_first() {
        if flag == "--labels" {
            o.labels = true;
            rest = tail;
            continue;
        }
        if flag == "--embed-graph" {
            o.embed_graph = true;
            rest = tail;
            continue;
        }
        if flag == "--mmap" {
            o.mmap = true;
            rest = tail;
            continue;
        }
        let (value, tail) = tail
            .split_first()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        match flag.as_str() {
            "--c" => o.c = value.parse().map_err(|_| format!("bad --c: {value}"))?,
            "--tol" => o.tol = value.parse().map_err(|_| format!("bad --tol: {value}"))?,
            "--k" => o.k = Some(value.parse().map_err(|_| format!("bad --k: {value}"))?),
            "--top" => o.top = value.parse().map_err(|_| format!("bad --top: {value}"))?,
            "--max-size" => {
                o.max_size = Some(
                    value
                        .parse()
                        .map_err(|_| format!("bad --max-size: {value}"))?,
                )
            }
            "--format" => o.format = Some(parse_format(value)?),
            "--method" => {
                o.method = match value.as_str() {
                    "bepi" => QueryMethod::Bepi,
                    "push" => QueryMethod::Push,
                    "walk" => QueryMethod::Walk,
                    "tpa" => QueryMethod::Tpa,
                    m => return Err(format!("bad --method: {m} (try bepi|push|walk|tpa)")),
                }
            }
            "--walks" => {
                o.walks = value.parse().map_err(|_| format!("bad --walks: {value}"))?;
                if o.walks == 0 {
                    return Err("--walks must be at least 1".into());
                }
            }
            "--terms" => {
                o.terms = value.parse().map_err(|_| format!("bad --terms: {value}"))?;
                if o.terms == 0 {
                    return Err("--terms must be at least 1".into());
                }
            }
            "--epsilon" => {
                o.epsilon = value
                    .parse()
                    .map_err(|_| format!("bad --epsilon: {value}"))?;
                if o.epsilon <= 0.0 || o.epsilon.is_nan() {
                    return Err("--epsilon must be positive".into());
                }
            }
            "--epoch" => o.epoch = value.parse().map_err(|_| format!("bad --epoch: {value}"))?,
            "--variant" => {
                o.variant = match value.as_str() {
                    "full" => BePiVariant::Full,
                    "sparse" => BePiVariant::Sparse,
                    "basic" => BePiVariant::Basic,
                    v => return Err(format!("bad --variant: {v}")),
                }
            }
            "--threads" => {
                let t: usize = value
                    .parse()
                    .map_err(|_| format!("bad --threads: {value}"))?;
                if t == 0 {
                    return Err("--threads must be at least 1".into());
                }
                o.threads = Some(t);
            }
            f => return Err(format!("unknown flag: {f}")),
        }
        rest = tail;
    }
    // The kernel-thread knob is process-global (SpMV/SpGEMM/block-LU all
    // read it); install it as soon as it is parsed.
    if let Some(t) = o.threads {
        bepi_par::set_threads(t);
    }
    Ok(o)
}

/// A loaded graph plus optional label mapping.
struct Loaded {
    graph: Graph,
    indexer: Option<NodeIndexer>,
}

impl Loaded {
    fn node_id(&self, token: &str) -> Result<usize, String> {
        match &self.indexer {
            Some(ix) => ix
                .id(token)
                .ok_or_else(|| format!("unknown node label: {token}")),
            None => token.parse().map_err(|_| format!("bad node id: {token}")),
        }
    }

    fn node_name(&self, id: usize) -> String {
        match &self.indexer {
            Some(ix) => ix.label(id).unwrap_or("?").to_string(),
            None => id.to_string(),
        }
    }
}

fn load(path: &str, opts: &Options) -> Result<Loaded, String> {
    if opts.labels {
        let (graph, indexer) = read_labeled_edge_list_file(path).map_err(|e| e.to_string())?;
        Ok(Loaded {
            graph,
            indexer: Some(indexer),
        })
    } else {
        let coo = read_edge_list_file(path, None).map_err(|e| e.to_string())?;
        Ok(Loaded {
            graph: Graph::from_adjacency(coo.to_csr()).map_err(|e| e.to_string())?,
            indexer: None,
        })
    }
}

fn config_of(o: &Options) -> BePiConfig {
    BePiConfig {
        variant: o.variant,
        c: o.c,
        tol: o.tol,
        hub_ratio: o.k,
        ..BePiConfig::default()
    }
}

fn preprocess(g: &Graph, o: &Options) -> Result<BePi, String> {
    BePi::preprocess(g, &config_of(o)).map_err(|e| e.to_string())
}

fn print_ranking(loaded: &Loaded, scores: &RwrScores, top: usize) {
    println!("{:<16} {:>14} {:>6}", "node", "rwr-score", "rank");
    for (rank, node) in scores.top_k(top).into_iter().enumerate() {
        println!(
            "{:<16} {:>14.6e} {:>6}",
            loaded.node_name(node),
            scores.scores[node],
            rank + 1
        );
    }
}

fn cmd_query(path: &str, seed_s: &str, o: &Options) -> Result<(), String> {
    let loaded = load(path, o)?;
    let seed = loaded.node_id(seed_s)?;
    let (label, r) = match o.method {
        QueryMethod::Bepi => {
            let solver = preprocess(&loaded.graph, o)?;
            let r = solver.query(seed).map_err(|e| e.to_string())?;
            (o.variant.name().to_string(), r)
        }
        QueryMethod::Push => {
            let out = bepi_core::approx::forward_push(&loaded.graph, o.c, seed, o.epsilon)
                .map_err(|e| e.to_string())?;
            (
                format!(
                    "forward-push (epsilon {:e}, {} pushes, {} touched)",
                    o.epsilon, out.pushes, out.touched
                ),
                out.scores,
            )
        }
        QueryMethod::Walk | QueryMethod::Tpa => {
            let method = if o.method == QueryMethod::Walk {
                bepi_walk::ApproxMethod::Walk
            } else {
                bepi_walk::ApproxMethod::Tpa
            };
            let engine = bepi_walk::ApproxEngine::new(
                std::sync::Arc::new(loaded.graph.clone()),
                o.c,
                bepi_walk::ApproxConfig {
                    method,
                    walks: o.walks,
                    max_terms: o.terms,
                    ..bepi_walk::ApproxConfig::default()
                },
            )
            .map_err(|e| e.to_string())?;
            let r = engine.query(seed, o.epoch).map_err(|e| e.to_string())?;
            let label = match method {
                bepi_walk::ApproxMethod::Walk => {
                    format!("walk ({} walks, epoch {})", o.walks, o.epoch)
                }
                bepi_walk::ApproxMethod::Tpa => format!("tpa (max {} terms)", o.terms),
            };
            (label, r)
        }
    };
    println!(
        "# {} on {} nodes / {} edges, seed {}, {} inner iterations",
        label,
        loaded.graph.n(),
        loaded.graph.m(),
        seed_s,
        r.iterations
    );
    print_ranking(&loaded, &r, o.top);
    Ok(())
}

fn cmd_ppr(path: &str, seed_specs: &[String], o: &Options) -> Result<(), String> {
    let loaded = load(path, o)?;
    let mut q = vec![0.0; loaded.graph.n()];
    for spec in seed_specs {
        let (node_s, weight_s) = spec
            .split_once(':')
            .ok_or_else(|| format!("seed spec must be node:weight, got {spec}"))?;
        let node = loaded.node_id(node_s)?;
        let w: f64 = weight_s
            .parse()
            .map_err(|_| format!("bad weight in {spec}"))?;
        q[node] += w;
    }
    let total: f64 = q.iter().sum();
    if total <= 0.0 {
        return Err("preference weights must sum to a positive value".into());
    }
    for v in &mut q {
        *v /= total;
    }
    let solver = preprocess(&loaded.graph, o)?;
    let r = solver.query_vector(&q).map_err(|e| e.to_string())?;
    println!(
        "# Personalized PageRank over {} seeds, {} inner iterations",
        seed_specs.len(),
        r.iterations
    );
    print_ranking(&loaded, &r, o.top);
    Ok(())
}

fn cmd_community(path: &str, seed_s: &str, o: &Options) -> Result<(), String> {
    let loaded = load(path, o)?;
    let seed = loaded.node_id(seed_s)?;
    let solver = preprocess(&loaded.graph, o)?;
    let scores = solver.query(seed).map_err(|e| e.to_string())?;
    let cut = sweep_cut(&loaded.graph, &scores, o.max_size).map_err(|e| e.to_string())?;
    println!(
        "# community of seed {} — {} nodes, conductance {:.4}",
        seed_s,
        cut.nodes.len(),
        cut.conductance
    );
    for node in &cut.nodes {
        println!("{}", loaded.node_name(*node));
    }
    Ok(())
}

/// True when `path` starts with the 4-byte `.bepi` index magic, so
/// `bepi stats` can accept either an edge list or a saved index.
fn is_index_file(path: &str) -> bool {
    use std::io::Read as _;
    let mut magic = [0u8; 4];
    std::fs::File::open(path)
        .and_then(|mut f| f.read_exact(&mut magic))
        .map(|()| &magic == b"BEPI")
        .unwrap_or(false)
}

/// Best-effort resident-set size of this process. Prefers
/// `/proc/self/smaps_rollup` (kernel-summed Rss) and falls back to
/// `VmRSS` in `/proc/self/status`; `None` off Linux.
fn resident_bytes() -> Option<usize> {
    fn scan(text: &str, key: &str) -> Option<usize> {
        text.lines().find_map(|l| {
            let rest = l.strip_prefix(key)?;
            let kb: usize = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            Some(kb * 1024)
        })
    }
    if let Ok(text) = std::fs::read_to_string("/proc/self/smaps_rollup") {
        if let Some(b) = scan(&text, "Rss:") {
            return Some(b);
        }
    }
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|t| scan(&t, "VmRSS:"))
}

/// Per-section physical memory of a loaded index: heap bytes vs bytes
/// served zero-copy from the mapped file (the paper's Table 5 "memory
/// usage" axis, split by backing).
fn print_memory_report(solver: &BePi) {
    println!("--- index memory by section ---");
    println!("{:<10} {:>12} {:>12}", "section", "heap", "mapped");
    let (mut heap, mut mapped) = (0usize, 0usize);
    for s in solver.memory_report() {
        heap += s.heap_bytes;
        mapped += s.mapped_bytes;
        println!(
            "{:<10} {:>12} {:>12}",
            s.name,
            format_bytes(s.heap_bytes),
            format_bytes(s.mapped_bytes)
        );
    }
    println!(
        "{:<10} {:>12} {:>12}",
        "total",
        format_bytes(heap),
        format_bytes(mapped)
    );
}

/// `bepi stats` on a saved index: format, backing, and the memory
/// report. The resident estimate is the RSS delta across the load, so
/// a mapped index shows only the pages actually touched — unlike
/// `VmHWM`-style peak counters, which charge every mapped page that was
/// ever resident.
fn cmd_index_stats(path: &str, o: &Options) -> Result<(), String> {
    let version = bepi_core::persist::file_format_version(path).map_err(|e| e.to_string())?;
    let rss_before = resident_bytes();
    let (solver, graph, mapped) = load_index(path, o.mmap)?;
    let rss_after = resident_bytes();
    let s = solver.stats();
    println!("index            {path}");
    println!("format           v{version}");
    println!(
        "backing          {}",
        if mapped { "memory-mapped" } else { "heap" }
    );
    println!("nodes            {}", solver.node_count());
    println!("n1 / n2 / n3     {} / {} / {}", s.n1, s.n2, s.n3);
    println!("H11 blocks       {}", s.num_blocks);
    println!("|S|              {}", s.s_nnz);
    println!(
        "embedded graph   {}",
        match &graph {
            Some(g) => format!("yes ({} edges)", g.m()),
            None => "no".into(),
        }
    );
    print_memory_report(&solver);
    if let (Some(before), Some(after)) = (rss_before, rss_after) {
        println!(
            "resident (load delta)  {}",
            format_bytes(after.saturating_sub(before))
        );
    }
    Ok(())
}

fn cmd_stats(path: &str, o: &Options) -> Result<(), String> {
    // `stats` takes either an edge list or a saved `.bepi` index,
    // told apart by the index magic.
    if is_index_file(path) {
        return cmd_index_stats(path, o);
    }
    let loaded = load(path, o)?;
    let g = &loaded.graph;
    let stats = bepi_graph::stats::graph_stats(g);
    println!("nodes            {}", stats.n);
    println!("edges            {}", stats.m);
    println!("deadends         {}", stats.deadends);
    println!("max degree       {}", stats.max_degree);
    println!("mean degree      {:.2}", stats.mean_degree);
    if let Some(a) = stats.power_law_alpha {
        println!("power-law alpha  {a:.2}");
    }
    println!("GCC size         {}", stats.gcc_size);
    let solver = preprocess(g, o)?;
    let s = solver.stats();
    println!("--- BePI preprocessing ({}) ---", o.variant.name());
    println!("n1 / n2 / n3     {} / {} / {}", s.n1, s.n2, s.n3);
    println!("H11 blocks       {}", s.num_blocks);
    println!("|S|              {}", s.s_nnz);
    println!("preprocess time  {:?}", s.elapsed);
    println!(
        "preprocessed     {}",
        format_bytes(solver.preprocessed_bytes())
    );
    print_phase_table(&s.phases);
    Ok(())
}

/// Per-phase preprocessing wall times (the breakdown behind the paper's
/// Table 3 preprocessing-time comparison).
fn print_phase_table(phases: &[PhaseTiming]) {
    if phases.is_empty() {
        return;
    }
    let total: f64 = phases.iter().map(|p| p.seconds).sum();
    println!("--- preprocessing phases ---");
    println!("{:<24} {:>12} {:>7}", "phase", "seconds", "share");
    for p in phases {
        let share = if total > 0.0 {
            100.0 * p.seconds / total
        } else {
            0.0
        };
        println!("{:<24} {:>12.6} {:>6.1}%", p.name, p.seconds, share);
    }
    println!("{:<24} {total:>12.6}", "total (phased)");
}

fn cmd_select_k(path: &str, o: &Options) -> Result<(), String> {
    let loaded = load(path, o)?;
    let grid = [0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5];
    let (best, curve) = select_hub_ratio(&loaded.graph, o.c, &grid).map_err(|e| e.to_string())?;
    println!("{:<6} {:>12}", "k", "|S|");
    for (k, nnz) in curve {
        let marker = if k == best { "  <-- minimum" } else { "" };
        println!("{k:<6.2} {nnz:>12}{marker}");
    }
    println!("\nrecommended hub ratio: {best}");
    Ok(())
}

/// Persists `solver` to `out` in the requested format version.
fn save_index(
    solver: &BePi,
    graph: Option<&Graph>,
    out: &str,
    format: u32,
    embed_graph: bool,
) -> Result<(), String> {
    use bepi_core::persist;
    match (format, embed_graph) {
        (4, false) => persist::save_file(solver, out).map_err(|e| e.to_string()),
        (4, true) => Err("--format v4 cannot embed the graph (use v5 or v6)".into()),
        (5, _) => {
            let g = graph.ok_or("--format v5 always embeds the graph, but none is available")?;
            persist::save_file_with_graph(solver, g, out).map_err(|e| e.to_string())
        }
        (6, embed) => {
            let g = if embed {
                Some(graph.ok_or("--embed-graph requested but no graph is available")?)
            } else {
                None
            };
            persist::save_file_v6(solver, g, out).map_err(|e| e.to_string())
        }
        (v, _) => Err(format!("unsupported --format v{v}")),
    }
}

fn cmd_preprocess(path: &str, out: &str, o: &Options) -> Result<(), String> {
    if o.labels {
        return Err("preprocess/serve work with integer node ids (the label \
                    mapping is not stored in the index)"
            .into());
    }
    let loaded = load(path, o)?;
    let solver = preprocess(&loaded.graph, o)?;
    // Default format: v4, or v5 when the graph rides along.
    let format = o.format.unwrap_or(if o.embed_graph { 5 } else { 4 });
    // v5 always embeds; for v6 the graph is optional and follows the flag.
    let embed = o.embed_graph || format == 5;
    save_index(
        &solver,
        Some(&loaded.graph),
        out,
        format,
        embed && format != 5,
    )?;
    println!(
        "preprocessed {} nodes / {} edges into {out} (format v{format}, {}{})",
        loaded.graph.n(),
        loaded.graph.m(),
        format_bytes(
            std::fs::metadata(out)
                .map(|m| m.len() as usize)
                .unwrap_or(0)
        ),
        if embed {
            ", graph embedded: live-update capable"
        } else {
            ""
        }
    );
    print_phase_table(&solver.stats().phases);
    Ok(())
}

/// Re-encodes an existing index in another format version (default v6).
/// The output is written to a temporary file in the destination
/// directory and atomically renamed into place, so a crash mid-convert
/// leaves the source untouched and never a half-written destination.
fn cmd_convert(input: &str, out: &str, o: &Options) -> Result<(), String> {
    let source_version =
        bepi_core::persist::file_format_version(input).map_err(|e| e.to_string())?;
    let (solver, graph) =
        bepi_core::persist::load_file_with_graph(input).map_err(|e| e.to_string())?;
    let format = o.format.unwrap_or(6);
    let tmp = format!("{out}.tmp.{}", std::process::id());
    let embed = graph.is_some();
    save_index(&solver, graph.as_ref(), &tmp, format, embed).map_err(|e| {
        std::fs::remove_file(&tmp).ok();
        e
    })?;
    std::fs::rename(&tmp, out).map_err(|e| {
        std::fs::remove_file(&tmp).ok();
        format!("renaming {tmp} into place: {e}")
    })?;
    println!(
        "converted {input} (v{source_version}) -> {out} (v{format}, {}{})",
        format_bytes(
            std::fs::metadata(out)
                .map(|m| m.len() as usize)
                .unwrap_or(0)
        ),
        if embed {
            ", graph embedded"
        } else {
            "no embedded graph"
        }
    );
    Ok(())
}

/// Loads an index for serving, honoring `--mmap`: v6 files are opened as
/// a shared read-only mapping; older formats fall back to a heap load
/// with a logged warning. Returns whether the mapped path was taken.
fn load_index(index: &str, mmap: bool) -> Result<(BePi, Option<Graph>, bool), String> {
    use bepi_core::persist;
    if mmap {
        let version = persist::file_format_version(index).map_err(|e| e.to_string())?;
        if version >= 6 {
            let (solver, graph) = persist::load_mapped_file(index).map_err(|e| e.to_string())?;
            return Ok((solver, graph, true));
        }
        bepi_obs::warn!(
            "index",
            "non-mappable index format, falling back to heap load",
            path = index,
            version = version
        );
        eprintln!(
            "warning: {index} is format v{version}, not mappable; loading on the heap \
             (convert to v6 for --mmap serving)"
        );
    }
    let (solver, graph) = persist::load_file_with_graph(index).map_err(|e| e.to_string())?;
    Ok((solver, graph, false))
}

fn cmd_bench(flags: &[String]) -> Result<(), String> {
    use bepi_bench::perf;

    if flags.iter().any(|f| f == "--route") {
        return cmd_bench_route(flags);
    }
    if flags.iter().any(|f| f == "--trace") {
        return cmd_bench_trace(flags);
    }
    if flags.iter().any(|f| f == "--rebuild") {
        return cmd_bench_rebuild(flags);
    }
    // --quick is a preset, applied before the other flags so they can
    // override parts of it regardless of argument order.
    let mut cfg = if flags.iter().any(|f| f == "--quick") {
        perf::PerfConfig::quick()
    } else {
        perf::PerfConfig::full()
    };
    let mut out_path = String::from("BENCH_PR6.json");
    let mut rest = flags;
    while let Some((flag, tail)) = rest.split_first() {
        if flag == "--quick" {
            rest = tail;
            continue;
        }
        let (value, tail) = tail
            .split_first()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        match flag.as_str() {
            "--out" => out_path = value.clone(),
            "--seeds" => {
                cfg.seeds = value.parse().map_err(|_| format!("bad --seeds: {value}"))?;
                if cfg.seeds == 0 {
                    return Err("--seeds must be at least 1".into());
                }
            }
            "--datasets" => {
                let n: usize = value
                    .parse()
                    .map_err(|_| format!("bad --datasets: {value}"))?;
                if n == 0 {
                    return Err("--datasets must be at least 1".into());
                }
                cfg.datasets = bepi_graph::Dataset::all().into_iter().take(n).collect();
            }
            "--threads-list" => {
                cfg.thread_counts = value
                    .split(',')
                    .map(|t| t.trim().parse::<usize>())
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|_| format!("bad --threads-list: {value}"))?;
                if cfg.thread_counts.is_empty() || cfg.thread_counts.contains(&0) {
                    return Err("--threads-list needs positive thread counts".into());
                }
                if !cfg.thread_counts.contains(&1) {
                    return Err("--threads-list must include 1 (the speedup base)".into());
                }
            }
            f => return Err(format!("unknown bench flag: {f}")),
        }
        rest = tail;
    }
    let report = perf::run(&cfg).map_err(|e| e.to_string())?;
    print!("{}", perf::render_table(&report));
    std::fs::write(&out_path, perf::to_json(&report))
        .map_err(|e| format!("writing {out_path}: {e}"))?;
    println!("\nwrote {out_path}");
    Ok(())
}

/// `bepi bench --route`: the router-vs-single-daemon throughput
/// comparison (cache partitioning across shard processes). Spawns the
/// daemon and router via this same binary, so it needs no extra tools.
fn cmd_bench_route(flags: &[String]) -> Result<(), String> {
    use bepi_bench::route;

    let mut cfg = if flags.iter().any(|f| f == "--quick") {
        route::RouteBenchConfig::quick()
    } else {
        route::RouteBenchConfig::full()
    };
    let mut out_path = String::from("BENCH_PR7.json");
    let mut rest = flags;
    while let Some((flag, tail)) = rest.split_first() {
        if flag == "--route" || flag == "--quick" {
            rest = tail;
            continue;
        }
        let (value, tail) = tail
            .split_first()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        match flag.as_str() {
            "--out" => out_path = value.clone(),
            "--shards" => {
                cfg.shards = value
                    .parse()
                    .map_err(|_| format!("bad --shards: {value}"))?;
                if cfg.shards < 2 {
                    return Err("--shards must be at least 2 for the route bench".into());
                }
            }
            "--cache-entries" => {
                cfg.cache_entries = value
                    .parse()
                    .map_err(|_| format!("bad --cache-entries: {value}"))?;
                if cfg.cache_entries == 0 {
                    return Err("--cache-entries must be at least 1".into());
                }
                // Keep the working set at 1.5x the per-process cache so
                // the partitioning contrast is preserved at any size.
                cfg.working_set = cfg.cache_entries * 3 / 2;
            }
            "--datasets" => {
                let n: usize = value
                    .parse()
                    .map_err(|_| format!("bad --datasets: {value}"))?;
                if n == 0 {
                    return Err("--datasets must be at least 1".into());
                }
                cfg.datasets = bepi_graph::Dataset::all().into_iter().take(n).collect();
            }
            f => return Err(format!("unknown bench --route flag: {f}")),
        }
        rest = tail;
    }
    let bin = std::env::current_exe().map_err(|e| format!("locating own binary: {e}"))?;
    let report = route::run(&cfg, &bin)?;
    print!("{}", route::render_table(&report));
    let json = route::to_json(&report);
    route::validate_json(&json)?;
    std::fs::write(&out_path, json).map_err(|e| format!("writing {out_path}: {e}"))?;
    println!("\nwrote {out_path}");
    Ok(())
}

/// `bepi bench --trace`: the tracing-overhead benchmark. Boots one
/// daemon via this binary and interleaves plain and `?trace=1` queries
/// over the same cache-hot working set; the gate is traced p50 within
/// 5% of untraced.
fn cmd_bench_trace(flags: &[String]) -> Result<(), String> {
    use bepi_bench::trace;

    let mut cfg = if flags.iter().any(|f| f == "--quick") {
        trace::TraceBenchConfig::quick()
    } else {
        trace::TraceBenchConfig::full()
    };
    let mut out_path = String::from("BENCH_PR8.json");
    let mut rest = flags;
    while let Some((flag, tail)) = rest.split_first() {
        if flag == "--trace" || flag == "--quick" {
            rest = tail;
            continue;
        }
        let (value, tail) = tail
            .split_first()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        match flag.as_str() {
            "--out" => out_path = value.clone(),
            "--seeds" => {
                cfg.working_set = value.parse().map_err(|_| format!("bad --seeds: {value}"))?;
                if cfg.working_set == 0 {
                    return Err("--seeds must be at least 1".into());
                }
            }
            "--datasets" => {
                let n: usize = value
                    .parse()
                    .map_err(|_| format!("bad --datasets: {value}"))?;
                if n == 0 {
                    return Err("--datasets must be at least 1".into());
                }
                cfg.datasets = bepi_graph::Dataset::all().into_iter().take(n).collect();
            }
            f => return Err(format!("unknown bench --trace flag: {f}")),
        }
        rest = tail;
    }
    let bin = std::env::current_exe().map_err(|e| format!("locating own binary: {e}"))?;
    let report = trace::run(&cfg, &bin)?;
    print!("{}", trace::render_table(&report));
    let json = trace::to_json(&report);
    trace::validate_json(&json)?;
    std::fs::write(&out_path, json).map_err(|e| format!("writing {out_path}: {e}"))?;
    println!("\nwrote {out_path}");
    Ok(())
}

/// `bepi bench --rebuild`: the full-vs-incremental rebuild benchmark.
/// Pushes small numeric-safe edge batches through a from-scratch
/// preprocess and a plan-frozen refactorization side by side; the gate
/// is incremental p50 beating full p50 on every anchor graph.
fn cmd_bench_rebuild(flags: &[String]) -> Result<(), String> {
    use bepi_bench::rebuild;

    let mut cfg = if flags.iter().any(|f| f == "--quick") {
        rebuild::RebuildBenchConfig::quick()
    } else {
        rebuild::RebuildBenchConfig::full()
    };
    let mut out_path = String::from("BENCH_PR10.json");
    let mut rest = flags;
    while let Some((flag, tail)) = rest.split_first() {
        if flag == "--rebuild" || flag == "--quick" {
            rest = tail;
            continue;
        }
        let (value, tail) = tail
            .split_first()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        match flag.as_str() {
            "--out" => out_path = value.clone(),
            "--batches" => {
                cfg.batches = value
                    .parse()
                    .map_err(|_| format!("bad --batches: {value}"))?;
                if cfg.batches < 2 {
                    return Err("--batches must be at least 2".into());
                }
            }
            "--batch-size" => {
                cfg.batch_size = value
                    .parse()
                    .map_err(|_| format!("bad --batch-size: {value}"))?;
                if cfg.batch_size == 0 {
                    return Err("--batch-size must be at least 1".into());
                }
            }
            "--datasets" => {
                let n: usize = value
                    .parse()
                    .map_err(|_| format!("bad --datasets: {value}"))?;
                if n == 0 {
                    return Err("--datasets must be at least 1".into());
                }
                cfg.datasets = bepi_graph::Dataset::all().into_iter().take(n).collect();
            }
            f => return Err(format!("unknown bench --rebuild flag: {f}")),
        }
        rest = tail;
    }
    let report = rebuild::run(&cfg)?;
    print!("{}", rebuild::render_table(&report));
    let json = rebuild::to_json(&report);
    rebuild::validate_json(&json)?;
    std::fs::write(&out_path, json).map_err(|e| format!("writing {out_path}: {e}"))?;
    println!("\nwrote {out_path}");
    Ok(())
}

fn cmd_serve_daemon(index: &str, flags: &[String]) -> Result<(), String> {
    use bepi_live::{LiveConfig, LiveEngine};
    use bepi_server::{Server, ServerConfig};
    use std::path::PathBuf;

    let mut cfg = ServerConfig::default();
    let mut listen: Option<String> = None;
    let mut wal: Option<String> = None;
    let mut graph_path: Option<String> = None;
    let mut checkpoint: Option<String> = None;
    let mut auto_flush: usize = 0;
    let mut mmap = false;
    let mut approx_cfg = bepi_walk::ApproxConfig::default();
    let mut rest = flags;
    while let Some((flag, tail)) = rest.split_first() {
        if flag == "--mmap" {
            mmap = true;
            rest = tail;
            continue;
        }
        let (value, tail) = tail
            .split_first()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        match flag.as_str() {
            "--listen" => listen = Some(value.clone()),
            "--wal" => wal = Some(value.clone()),
            "--graph" => graph_path = Some(value.clone()),
            "--checkpoint" => checkpoint = Some(value.clone()),
            "--auto-flush" => {
                auto_flush = value
                    .parse()
                    .map_err(|_| format!("bad --auto-flush: {value}"))?
            }
            "--threads" => {
                cfg.threads = value
                    .parse()
                    .map_err(|_| format!("bad --threads: {value}"))?
            }
            "--cache-entries" => {
                cfg.cache_entries = value
                    .parse()
                    .map_err(|_| format!("bad --cache-entries: {value}"))?
            }
            "--queue-depth" => {
                cfg.queue_depth = value
                    .parse()
                    .map_err(|_| format!("bad --queue-depth: {value}"))?;
                if cfg.queue_depth == 0 {
                    return Err("--queue-depth must be at least 1".into());
                }
            }
            "--timeout-ms" => {
                let ms: u64 = value
                    .parse()
                    .map_err(|_| format!("bad --timeout-ms: {value}"))?;
                if ms == 0 {
                    return Err("--timeout-ms must be at least 1".into());
                }
                cfg.timeout = std::time::Duration::from_millis(ms);
            }
            "--slow-query-ms" => {
                let ms: u64 = value
                    .parse()
                    .map_err(|_| format!("bad --slow-query-ms: {value}"))?;
                cfg.slow_query = std::time::Duration::from_millis(ms);
            }
            "--pressure" => {
                let p: f64 = value
                    .parse()
                    .map_err(|_| format!("bad --pressure: {value}"))?;
                if p.is_nan() || p < 0.0 {
                    return Err("--pressure must be a non-negative fraction".into());
                }
                cfg.pressure = p;
            }
            "--approx-engine" => {
                approx_cfg.method = bepi_walk::ApproxMethod::parse(value)
                    .ok_or_else(|| format!("bad --approx-engine: {value} (try tpa|walk)"))?;
            }
            "--shard-id" => {
                cfg.shard_id = Some(
                    value
                        .parse()
                        .map_err(|_| format!("bad --shard-id: {value}"))?,
                )
            }
            "--trace-export" => cfg.trace_export = Some(PathBuf::from(value)),
            f => return Err(format!("unknown serve flag: {f}")),
        }
        rest = tail;
    }
    cfg.listen = listen.ok_or("daemon mode needs --listen ADDR")?;

    let (solver, embedded, mapped) = load_index(index, mmap)?;
    let nodes = solver.node_count();
    let solver_config = *solver.config();

    // The rebuild pipeline needs the original adjacency: either embedded
    // in a v3 index (`preprocess --embed-graph`) or given via --graph.
    // The embedded copy wins when both are present: checkpoints embed the
    // graph *with* all applied WAL updates, so restarting on the same
    // flags after a rebuild must not resurrect a stale edge list (the
    // compacted WAL can no longer replay those updates).
    let graph = match (embedded, &graph_path) {
        (Some(g), Some(p)) => {
            eprintln!(
                "warning: ignoring --graph {p}: the index embeds its own graph, \
                 which reflects every checkpointed update"
            );
            Some(g)
        }
        (Some(g), None) => Some(g),
        (None, Some(p)) => {
            let coo = read_edge_list_file(p, Some(nodes)).map_err(|e| e.to_string())?;
            Some(Graph::from_adjacency(coo.to_csr()).map_err(|e| e.to_string())?)
        }
        (None, None) => None,
    };

    let live = graph.is_some();
    let engine = match graph {
        Some(g) => {
            // With a WAL, the durable state is checkpoint + log: default
            // the checkpoint to the index path so a restart on the same
            // flags resumes exactly where the daemon left off.
            let checkpoint_path = checkpoint
                .clone()
                .or_else(|| wal.as_ref().map(|_| index.to_string()))
                .map(PathBuf::from);
            LiveEngine::start(
                std::sync::Arc::new(solver),
                g,
                solver_config,
                LiveConfig {
                    auto_flush_threshold: auto_flush,
                    wal_path: wal.as_ref().map(PathBuf::from),
                    checkpoint_path,
                    // --mmap also upgrades checkpoints to the mappable
                    // v6 format and re-maps them after each rebuild.
                    mmap_checkpoints: mmap,
                    approx: approx_cfg,
                },
            )
            .map_err(|e| e.to_string())?
        }
        None => {
            if wal.is_some() || auto_flush > 0 || checkpoint.is_some() {
                return Err(
                    "live-update flags (--wal/--auto-flush/--checkpoint) need the \
                            graph: re-preprocess with --embed-graph or pass --graph edges.txt"
                        .into(),
                );
            }
            LiveEngine::frozen(std::sync::Arc::new(solver))
        }
    };
    let version = engine.version();
    let handle = Server::start_live(engine, &cfg).map_err(|e| e.to_string())?;
    println!(
        "bepi-server listening on http://{} ({} nodes, {} index; cache {} entries, \
         queue depth {}, timeout {:?}; {}, graph version {})",
        handle.local_addr(),
        nodes,
        if mapped { "memory-mapped" } else { "heap" },
        cfg.cache_entries,
        cfg.queue_depth,
        cfg.timeout,
        if live {
            "live updates enabled"
        } else {
            "static snapshot"
        },
        version,
    );
    // Everything after the listening line is informational: a supervisor
    // (like `bepi route`) may close our stdout as soon as it has parsed
    // the address, and a daemon must not die on EPIPE because of it —
    // hence fallible writes, not `println!`.
    let _ = daemon_println(
        "endpoints: /query?seed=S&top=K[&mode=exact|approx|auto][&trace=1]  /healthz  \
         /metrics  /version  /debug/slow  /debug/trace  POST /edges  POST /rebuild",
    );
    let _ = daemon_println(&format!(
        "approximate lane: {} (mode=auto degrades at {:.0}% queue pressure)",
        if live {
            format!("{} engine", approx_cfg.method.name())
        } else {
            "unavailable (no graph)".to_string()
        },
        cfg.pressure * 100.0,
    ));
    let _ = daemon_println("EOF on stdin (e.g. ctrl-D) shuts down gracefully");

    // stdin EOF is the daemon's SIGTERM-equivalent: installing a real
    // signal handler would need a non-std dependency, and a supervising
    // process can close our stdin just as easily as it can signal us.
    let trigger = handle.trigger();
    std::io::copy(&mut std::io::stdin().lock(), &mut std::io::sink()).ok();
    eprintln!("shutting down: draining queued and in-flight queries");
    trigger.fire();
    handle.join();
    eprintln!("bye");
    Ok(())
}

/// A `println!` that reports failure instead of panicking: daemons keep
/// running when a supervising process closes their stdout early.
fn daemon_println(line: &str) -> std::io::Result<()> {
    use std::io::Write as _;
    let mut out = std::io::stdout().lock();
    writeln!(out, "{line}")?;
    out.flush()
}

/// `bepi route`: the scatter-gather front tier over N shard daemons.
fn cmd_route(index: Option<&str>, flags: &[String]) -> Result<(), String> {
    use bepi_route::router::{Router, RouterConfig};
    use bepi_route::shard::ShardState;
    use bepi_route::supervisor::{SpawnSpec, Supervisor};

    let mut cfg = RouterConfig::default();
    let mut shards: usize = 0;
    let mut attach: Option<String> = None;
    // Flags forwarded verbatim to each spawned `bepi serve` shard.
    let mut shard_flags: Vec<String> = Vec::new();
    let mut rest = flags;
    while let Some((flag, tail)) = rest.split_first() {
        if flag == "--mmap" {
            shard_flags.push("--mmap".to_string());
            rest = tail;
            continue;
        }
        let (value, tail) = tail
            .split_first()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        match flag.as_str() {
            "--listen" => cfg.listen = value.clone(),
            "--shards" => {
                shards = value
                    .parse()
                    .map_err(|_| format!("bad --shards: {value}"))?;
                if shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            "--attach" => attach = Some(value.clone()),
            "--hedge-ms" => {
                cfg.hedge_ms = value
                    .parse()
                    .map_err(|_| format!("bad --hedge-ms: {value}"))?
            }
            "--retries" => {
                cfg.retries = value
                    .parse()
                    .map_err(|_| format!("bad --retries: {value}"))?
            }
            "--backoff-ms" => {
                cfg.backoff_ms = value
                    .parse()
                    .map_err(|_| format!("bad --backoff-ms: {value}"))?
            }
            "--health-interval-ms" => {
                let ms: u64 = value
                    .parse()
                    .map_err(|_| format!("bad --health-interval-ms: {value}"))?;
                if ms == 0 {
                    return Err("--health-interval-ms must be at least 1".into());
                }
                cfg.health_interval = std::time::Duration::from_millis(ms);
            }
            "--timeout-ms" => {
                let ms: u64 = value
                    .parse()
                    .map_err(|_| format!("bad --timeout-ms: {value}"))?;
                if ms == 0 {
                    return Err("--timeout-ms must be at least 1".into());
                }
                cfg.shard_timeout = std::time::Duration::from_millis(ms);
                shard_flags.extend(["--timeout-ms".to_string(), value.clone()]);
            }
            "--slow-query-ms" => {
                let ms: u64 = value
                    .parse()
                    .map_err(|_| format!("bad --slow-query-ms: {value}"))?;
                cfg.slow_query = std::time::Duration::from_millis(ms);
                // The same threshold applies on the shard daemons, so a
                // request slow enough for the router's slowlog is also
                // in the answering shard's (correlated by request id).
                shard_flags.extend(["--slow-query-ms".to_string(), value.clone()]);
            }
            "--trace-export" => {
                cfg.trace_export = Some(std::path::PathBuf::from(value));
            }
            "--cache-entries" | "--threads" | "--pressure" => {
                shard_flags.extend([flag.clone(), value.clone()]);
            }
            f => return Err(format!("unknown route flag: {f}")),
        }
        rest = tail;
    }

    let supervisor = match attach {
        Some(addrs) => {
            if shards != 0 {
                return Err("--attach and --shards are mutually exclusive".into());
            }
            let states: Vec<_> = addrs
                .split(',')
                .filter(|a| !a.trim().is_empty())
                .enumerate()
                .map(|(i, a)| std::sync::Arc::new(ShardState::new(i, a.trim(), cfg.shard_timeout)))
                .collect();
            if states.is_empty() {
                return Err("--attach needs at least one address".into());
            }
            Supervisor::attach(states)
        }
        None => {
            let index = index.ok_or("route needs an index path (or --attach ADDRS)")?;
            if shards == 0 {
                return Err("route needs --shards N (or --attach ADDRS)".into());
            }
            let program =
                std::env::current_exe().map_err(|e| format!("cannot find own binary: {e}"))?;
            let spec = SpawnSpec {
                program,
                index: index.into(),
                extra_args: shard_flags,
            };
            eprintln!("spawning {shards} shard daemon(s) over {index} ...");
            Supervisor::spawn(spec, shards, cfg.shard_timeout).map_err(|e| e.to_string())?
        }
    };

    let hedge_ms = cfg.hedge_ms;
    let retries = cfg.retries;
    let handle = Router::start(supervisor, cfg).map_err(|e| e.to_string())?;
    // All stdout writes are fallible for the same reason as the serve
    // daemon's: a supervisor may close our stdout once it has the
    // address, and that must not kill the router.
    let _ = daemon_println(&format!(
        "bepi-route listening on http://{} ({} shards; hedge {} ms, retries {})",
        handle.local_addr(),
        handle.shards().len(),
        hedge_ms,
        retries,
    ));
    let pids = handle.supervisor().child_pids();
    for shard in handle.shards() {
        let _ = daemon_println(&format!(
            "shard {}: http://{} healthy={}{}",
            shard.id,
            shard.addr(),
            shard.is_healthy(),
            pids.get(shard.id)
                .map(|p| format!(" pid={p}"))
                .unwrap_or_default(),
        ));
    }
    let _ = daemon_println(
        "endpoints: /query?seed=S&top=K[&mode=M][&trace=1]  \
         /batch?seeds=a,b,c[&top=K][&merge=1]  \
         /route/health  /version  /healthz  /metrics  /debug/slow  /debug/trace",
    );
    let _ = daemon_println("EOF on stdin (e.g. ctrl-D) shuts down gracefully");

    std::io::copy(&mut std::io::stdin().lock(), &mut std::io::sink()).ok();
    eprintln!("shutting down: stopping router, draining shard daemons");
    handle.shutdown();
    eprintln!("bye");
    Ok(())
}

fn cmd_serve(index: &str, seed_s: &str, o: &Options) -> Result<(), String> {
    let (solver, _graph, mapped) = load_index(index, o.mmap)?;
    if mapped {
        // One-shot queries have no startup-latency story, so run the
        // payload CRC pass the zero-copy open skips: a corrupt section
        // becomes a typed error here instead of a solver panic below.
        bepi_core::persist::verify_mapped_file(index).map_err(|e| e.to_string())?;
    }
    let seed: usize = seed_s
        .parse()
        .map_err(|_| format!("bad node id: {seed_s}"))?;
    let r = solver.query(seed).map_err(|e| e.to_string())?;
    let loaded = Loaded {
        graph: Graph::from_edges(solver.node_count(), &[]).map_err(|e| e.to_string())?,
        indexer: None,
    };
    println!(
        "# loaded index of {} nodes ({}), seed {}, {} inner iterations",
        solver.node_count(),
        if mapped { "memory-mapped" } else { "heap" },
        seed_s,
        r.iterations
    );
    print_ranking(&loaded, &r, o.top);
    Ok(())
}
