//! Failure injection and degenerate inputs: the library must fail
//! loudly and precisely, never hang or return garbage.

use bepi_core::bear::{Bear, BearConfig};
use bepi_core::lu_method::{LuDecomp, LuDecompConfig};
use bepi_core::prelude::*;
use bepi_graph::{generators, Graph};

#[test]
fn empty_graph() {
    let g = Graph::from_edges(0, &[]).unwrap();
    let solver = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
    assert_eq!(solver.node_count(), 0);
    assert!(solver.query(0).is_err());
}

#[test]
fn singleton_graph() {
    let g = Graph::from_edges(1, &[]).unwrap();
    let solver = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
    let r = solver.query(0).unwrap();
    // Sole node is a deadend: score = c.
    assert!((r.scores[0] - 0.05).abs() < 1e-12);
}

#[test]
fn all_deadends_graph() {
    let g = Graph::from_edges(5, &[]).unwrap();
    let solver = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
    let r = solver.query(3).unwrap();
    assert!((r.scores[3] - 0.05).abs() < 1e-12);
    assert!(r
        .scores
        .iter()
        .enumerate()
        .all(|(i, &v)| i == 3 || v == 0.0));
}

#[test]
fn self_loops_are_handled() {
    let mut edges = vec![(0, 0), (1, 1)];
    edges.extend([(0, 1), (1, 2), (2, 0)]);
    let g = Graph::from_edges(3, &edges).unwrap();
    let solver = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
    let r = solver.query(0).unwrap();
    let want = bepi_tests::reference_scores(&g, 0.05, 0);
    bepi_tests::assert_scores_close("self-loops", &r.scores, &want, 1e-6);
}

#[test]
fn invalid_restart_probabilities_rejected_everywhere() {
    let g = generators::cycle(5);
    for c in [0.0, 1.0, -1.0, 2.0, f64::NAN] {
        assert!(
            BePi::preprocess(
                &g,
                &BePiConfig {
                    c,
                    ..BePiConfig::default()
                }
            )
            .is_err(),
            "c = {c} must be rejected"
        );
        assert!(PowerSolver::new(&g, c, 1e-9).is_err());
    }
}

#[test]
fn out_of_range_seed_rejected_by_every_method() {
    let g = generators::erdos_renyi(50, 200, 1).unwrap();
    let n = g.n();
    let solvers: Vec<Box<dyn RwrSolver>> = vec![
        Box::new(BePi::preprocess(&g, &BePiConfig::default()).unwrap()),
        Box::new(Bear::preprocess(&g, &BearConfig::default()).unwrap()),
        Box::new(LuDecomp::preprocess(&g, &LuDecompConfig::default()).unwrap()),
        Box::new(PowerSolver::with_defaults(&g).unwrap()),
        Box::new(GmresSolver::with_defaults(&g).unwrap()),
        Box::new(DenseExact::with_defaults(&g).unwrap()),
    ];
    for s in &solvers {
        assert!(s.query(n).is_err(), "{} accepted bad seed", s.name());
        assert!(s.query(usize::MAX).is_err());
    }
}

#[test]
fn budget_gates_fail_with_descriptive_errors() {
    let g = generators::erdos_renyi(200, 1000, 2).unwrap();
    let bear_err = Bear::preprocess(
        &g,
        &BearConfig {
            max_hub_count: 0,
            ..BearConfig::default()
        },
    )
    .unwrap_err();
    assert!(bear_err.to_string().contains("n2"));
    let lu_err = LuDecomp::preprocess(
        &g,
        &LuDecompConfig {
            max_dimension: 1,
            ..LuDecompConfig::default()
        },
    )
    .unwrap_err();
    assert!(lu_err.to_string().contains("dimension"));
}

#[test]
fn extreme_tolerances() {
    let g = generators::erdos_renyi(80, 300, 7).unwrap();
    // Very loose tolerance: still returns finite scores.
    let loose = BePi::preprocess(
        &g,
        &BePiConfig {
            tol: 0.5,
            ..BePiConfig::default()
        },
    )
    .unwrap();
    let r = loose.query(0).unwrap();
    assert!(r.scores.iter().all(|v| v.is_finite()));
    // Very tight tolerance: converges (diagonally dominant system).
    let tight = BePi::preprocess(
        &g,
        &BePiConfig {
            tol: 1e-14,
            ..BePiConfig::default()
        },
    )
    .unwrap();
    let r = tight.query(0).unwrap();
    let want = bepi_tests::reference_scores(&g, 0.05, 0);
    bepi_tests::assert_scores_close("tight", &r.scores, &want, 1e-7);
}

#[test]
fn duplicate_and_antiparallel_edges() {
    let g = Graph::from_edges(4, &[(0, 1), (0, 1), (1, 0), (2, 3), (3, 2), (0, 1)]).unwrap();
    let solver = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
    let r = solver.query(0).unwrap();
    let want = bepi_tests::reference_scores(&g, 0.05, 0);
    bepi_tests::assert_scores_close("multi-edges", &r.scores, &want, 1e-8);
}

#[test]
fn hub_ratio_extremes() {
    let g = generators::erdos_renyi(100, 500, 9).unwrap();
    for k in [0.01, 0.9] {
        let solver = BePi::preprocess(
            &g,
            &BePiConfig {
                hub_ratio: Some(k),
                ..BePiConfig::default()
            },
        )
        .unwrap();
        let r = solver.query(5).unwrap();
        let want = bepi_tests::reference_scores(&g, 0.05, 5);
        bepi_tests::assert_scores_close("hub-ratio-extreme", &r.scores, &want, 1e-6);
    }
}
