//! Side-by-side comparison of every RWR method in the workspace —
//! a miniature of the paper's Figure 1 on a single graph.
//!
//! Preprocesses BePI (all three variants), Bear, and LU decomposition,
//! then times queries for all methods including the iterative baselines,
//! verifying they all agree with the exact solution.
//!
//! Run with: `cargo run --release -p bepi-core --example method_comparison`

use bepi_core::bear::BearConfig;
use bepi_core::lu_method::LuDecompConfig;
use bepi_core::prelude::*;
use bepi_graph::generators::{self, RmatParams};
use bepi_sparse::mem::format_bytes;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = generators::inject_deadends(
        &generators::rmat(11, 12_000, RmatParams::default(), 99)?,
        0.2,
        1,
    )?;
    println!(
        "graph: {} nodes, {} edges, {} deadends\n",
        graph.n(),
        graph.m(),
        graph.deadend_count()
    );
    let seeds: Vec<usize> = (0..10).map(|i| i * 97 % graph.n()).collect();
    let exact = DenseExact::with_defaults(&graph)?;

    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12}",
        "method", "preprocess", "memory", "query(avg)", "max |err|"
    );

    let report = |name: &str,
                  pre_time: f64,
                  solver: &dyn RwrSolver|
     -> Result<(), Box<dyn std::error::Error>> {
        let t = Instant::now();
        let mut max_err = 0.0f64;
        for &s in &seeds {
            let got = solver.query(s)?;
            let want = exact.query(s)?;
            for (a, b) in got.scores.iter().zip(&want.scores) {
                max_err = max_err.max((a - b).abs());
            }
        }
        let avg_q = t.elapsed().as_secs_f64() / seeds.len() as f64;
        println!(
            "{:<8} {:>10.3}s {:>12} {:>10.4}s {:>12.2e}",
            name,
            pre_time,
            format_bytes(solver.preprocessed_bytes()),
            avg_q,
            max_err
        );
        Ok(())
    };

    for variant in [BePiVariant::Basic, BePiVariant::Sparse, BePiVariant::Full] {
        let t = Instant::now();
        let solver = BePi::preprocess(&graph, &BePiConfig::for_variant(variant))?;
        report(variant.name(), t.elapsed().as_secs_f64(), &solver)?;
    }
    {
        let t = Instant::now();
        let bear = Bear::preprocess(&graph, &BearConfig::default())?;
        report("Bear", t.elapsed().as_secs_f64(), &bear)?;
    }
    {
        let t = Instant::now();
        let lu = LuDecomp::preprocess(&graph, &LuDecompConfig::default())?;
        report("LU", t.elapsed().as_secs_f64(), &lu)?;
    }
    report("Power", 0.0, &PowerSolver::with_defaults(&graph)?)?;
    report("GMRES", 0.0, &GmresSolver::with_defaults(&graph)?)?;

    println!("\nAll methods agree with the exact dense solution.");
    Ok(())
}
