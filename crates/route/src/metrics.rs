//! Router-level metrics in Prometheus exposition format.
//!
//! The fleet-facing series the ISSUE names — `bepi_shard_healthy`,
//! `bepi_route_retries_total`, `bepi_hedged_requests_total` — plus the
//! per-shard latency histograms, rendered with a `shard` label (the
//! shared [`bepi_obs::telemetry::Histogram`] renderer is label-free, so
//! the labeled exposition is assembled here from its raw buckets).

use crate::shard::{quorum_version, ShardState};
use bepi_obs::telemetry::{format_le, render_f64};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Router-wide counters.
#[derive(Debug, Default)]
pub struct RouteMetrics {
    /// Requests accepted by the router (any endpoint).
    pub requests_total: AtomicU64,
    /// Retries after a failed shard attempt (`bepi_route_retries_total`).
    pub retries_total: AtomicU64,
    /// Hedge requests launched (`bepi_hedged_requests_total`).
    pub hedged_total: AtomicU64,
    /// Requests answered by a non-primary shard after its primary
    /// failed or was unhealthy.
    pub failovers_total: AtomicU64,
    /// Requests the router could not answer from any shard.
    pub errors_total: AtomicU64,
}

impl RouteMetrics {
    /// Relaxed add-one; counters are monotonic and independent.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// Renders the full router exposition: router counters, per-shard
/// health gauges, versions, request/error counters, and latency
/// histograms.
pub fn render(metrics: &RouteMetrics, shards: &[Arc<ShardState>]) -> String {
    let mut out = String::with_capacity(2048);
    let counter = |out: &mut String, name: &str, help: &str, v: u64| {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {v}");
    };
    counter(
        &mut out,
        "bepi_route_requests_total",
        "Requests accepted by the router.",
        metrics.requests_total.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "bepi_route_retries_total",
        "Shard attempts retried on a sibling after a failure.",
        metrics.retries_total.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "bepi_hedged_requests_total",
        "Hedge requests launched against a sibling for tail latency.",
        metrics.hedged_total.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "bepi_route_failovers_total",
        "Requests answered by a non-primary shard.",
        metrics.failovers_total.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "bepi_route_errors_total",
        "Requests no shard could answer.",
        metrics.errors_total.load(Ordering::Relaxed),
    );

    let _ = writeln!(
        out,
        "# HELP bepi_shard_healthy Shard serving state (1 healthy, 0 out of rotation)."
    );
    let _ = writeln!(out, "# TYPE bepi_shard_healthy gauge");
    for s in shards {
        let _ = writeln!(
            out,
            "bepi_shard_healthy{{shard=\"{}\"}} {}",
            s.id,
            u8::from(s.is_healthy())
        );
    }
    let _ = writeln!(
        out,
        "# HELP bepi_shard_graph_version Highest graph version observed per shard."
    );
    let _ = writeln!(out, "# TYPE bepi_shard_graph_version gauge");
    for s in shards {
        let _ = writeln!(
            out,
            "bepi_shard_graph_version{{shard=\"{}\"}} {}",
            s.id,
            s.version()
        );
    }
    let _ = writeln!(
        out,
        "# HELP bepi_route_advertised_version Quorum-advertised fleet graph version."
    );
    let _ = writeln!(out, "# TYPE bepi_route_advertised_version gauge");
    let _ = writeln!(
        out,
        "bepi_route_advertised_version {}",
        quorum_version(shards)
    );

    let _ = writeln!(
        out,
        "# HELP bepi_route_shard_requests_total Requests answered per shard."
    );
    let _ = writeln!(out, "# TYPE bepi_route_shard_requests_total counter");
    for s in shards {
        let _ = writeln!(
            out,
            "bepi_route_shard_requests_total{{shard=\"{}\"}} {}",
            s.id,
            s.requests_total.load(Ordering::Relaxed)
        );
    }
    let _ = writeln!(
        out,
        "# HELP bepi_route_shard_errors_total Transport failures per shard."
    );
    let _ = writeln!(out, "# TYPE bepi_route_shard_errors_total counter");
    for s in shards {
        let _ = writeln!(
            out,
            "bepi_route_shard_errors_total{{shard=\"{}\"}} {}",
            s.id,
            s.errors_total.load(Ordering::Relaxed)
        );
    }

    let _ = writeln!(
        out,
        "# HELP bepi_route_shard_latency_seconds Successful request latency per shard."
    );
    let _ = writeln!(out, "# TYPE bepi_route_shard_latency_seconds histogram");
    for s in shards {
        let cumulative = s.latency.cumulative();
        for (i, &bound) in s.latency.bounds().iter().enumerate() {
            let _ = writeln!(
                out,
                "bepi_route_shard_latency_seconds_bucket{{shard=\"{}\",le=\"{}\"}} {}",
                s.id,
                format_le(bound),
                cumulative[i]
            );
        }
        let total = *cumulative.last().unwrap_or(&0);
        let _ = writeln!(
            out,
            "bepi_route_shard_latency_seconds_bucket{{shard=\"{}\",le=\"+Inf\"}} {}",
            s.id, total
        );
        let _ = writeln!(
            out,
            "bepi_route_shard_latency_seconds_sum{{shard=\"{}\"}} {}",
            s.id,
            render_f64(s.latency.sum())
        );
        let _ = writeln!(
            out,
            "bepi_route_shard_latency_seconds_count{{shard=\"{}\"}} {}",
            s.id, total
        );
    }
    out
}

/// One metric family being merged: HELP/TYPE emitted once, samples from
/// every source appended in arrival order (so a family's samples stay
/// contiguous and each shard's run stays contiguous within it).
struct Family {
    help: Option<String>,
    type_line: Option<String>,
    samples: Vec<String>,
}

/// Merges the router's own exposition with scraped shard expositions
/// into one valid Prometheus text body: every shard sample is re-labeled
/// with `shard="N"` and grouped under a single HELP/TYPE header per
/// family, so one scrape of the router observes the whole fleet.
pub fn merge_expositions(own: &str, shard_bodies: &[(u64, String)]) -> String {
    let mut order: Vec<String> = Vec::new();
    let mut families: std::collections::HashMap<String, Family> = std::collections::HashMap::new();
    let mut absorb = |body: &str, shard: Option<u64>| {
        // Samples are attributed to the family of the preceding HELP or
        // TYPE line — the order both tiers' renderers guarantee.
        let mut current = String::new();
        for line in body.lines() {
            if line.is_empty() {
                continue;
            }
            let meta = line
                .strip_prefix("# HELP ")
                .map(|r| (true, r))
                .or_else(|| line.strip_prefix("# TYPE ").map(|r| (false, r)));
            let family_of =
                |name: &str,
                 order: &mut Vec<String>,
                 families: &mut std::collections::HashMap<String, Family>| {
                    if !families.contains_key(name) {
                        order.push(name.to_string());
                        families.insert(
                            name.to_string(),
                            Family {
                                help: None,
                                type_line: None,
                                samples: Vec::new(),
                            },
                        );
                    }
                };
            if let Some((is_help, rest)) = meta {
                let name = rest.split_whitespace().next().unwrap_or("");
                family_of(name, &mut order, &mut families);
                current = name.to_string();
                let fam = families.get_mut(name).expect("just inserted");
                if is_help {
                    fam.help.get_or_insert_with(|| line.to_string());
                } else {
                    fam.type_line.get_or_insert_with(|| line.to_string());
                }
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            if current.is_empty() {
                // A sample with no preceding header: its own family.
                let name = line.split(['{', ' ']).next().unwrap_or("").to_string();
                family_of(&name, &mut order, &mut families);
                current = name;
            }
            let sample = match shard {
                Some(id) => inject_shard_label(line, id),
                None => line.to_string(),
            };
            families
                .get_mut(&current)
                .expect("current family exists")
                .samples
                .push(sample);
        }
    };
    absorb(own, None);
    for (id, body) in shard_bodies {
        absorb(body, Some(*id));
    }
    let mut out = String::with_capacity(own.len() * (1 + shard_bodies.len()));
    for name in &order {
        let fam = &families[name];
        if let Some(h) = &fam.help {
            out.push_str(h);
            out.push('\n');
        }
        if let Some(t) = &fam.type_line {
            out.push_str(t);
            out.push('\n');
        }
        for s in &fam.samples {
            out.push_str(s);
            out.push('\n');
        }
    }
    out
}

/// Re-labels one sample line with `shard="N"` as its first label.
fn inject_shard_label(line: &str, shard: u64) -> String {
    match line.find('{') {
        Some(brace) => format!(
            "{}{{shard=\"{}\",{}",
            &line[..brace],
            shard,
            &line[brace + 1..]
        ),
        None => match line.find(' ') {
            Some(space) => format!(
                "{}{{shard=\"{}\"}}{}",
                &line[..space],
                shard,
                &line[space..]
            ),
            None => line.to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn merge_relabels_shard_samples_and_keeps_one_header_per_family() {
        let own = "# HELP bepi_route_requests_total Requests accepted.\n\
                   # TYPE bepi_route_requests_total counter\n\
                   bepi_route_requests_total 4\n";
        let shard0 = "# HELP bepi_server_queries_total Queries answered.\n\
                      # TYPE bepi_server_queries_total counter\n\
                      bepi_server_queries_total 7\n\
                      # HELP bepi_server_query_latency_seconds Query latency.\n\
                      # TYPE bepi_server_query_latency_seconds histogram\n\
                      bepi_server_query_latency_seconds_bucket{le=\"0.01\"} 7\n\
                      bepi_server_query_latency_seconds_bucket{le=\"+Inf\"} 7\n\
                      bepi_server_query_latency_seconds_sum 0.004\n\
                      bepi_server_query_latency_seconds_count 7\n";
        let shard1 = "# HELP bepi_server_queries_total Queries answered.\n\
                      # TYPE bepi_server_queries_total counter\n\
                      bepi_server_queries_total 9\n";
        let merged = merge_expositions(own, &[(0, shard0.to_string()), (1, shard1.to_string())]);
        // Router's own series pass through unlabeled.
        assert!(merged.contains("bepi_route_requests_total 4\n"));
        // Shard samples gain the shard label; the family header appears
        // exactly once and precedes every sample of the family.
        assert!(merged.contains("bepi_server_queries_total{shard=\"0\"} 7\n"));
        assert!(merged.contains("bepi_server_queries_total{shard=\"1\"} 9\n"));
        assert_eq!(
            merged.matches("# TYPE bepi_server_queries_total").count(),
            1
        );
        assert!(merged
            .contains("bepi_server_query_latency_seconds_bucket{shard=\"0\",le=\"0.01\"} 7\n"));
        assert!(merged.contains("bepi_server_query_latency_seconds_sum{shard=\"0\"} 0.004\n"));
        let type_at = merged.find("# TYPE bepi_server_queries_total").unwrap();
        let s0 = merged
            .find("bepi_server_queries_total{shard=\"0\"}")
            .unwrap();
        let s1 = merged
            .find("bepi_server_queries_total{shard=\"1\"}")
            .unwrap();
        assert!(type_at < s0 && s0 < s1);
    }

    #[test]
    fn exposition_carries_the_issue_series() {
        let m = RouteMetrics::default();
        RouteMetrics::inc(&m.retries_total);
        RouteMetrics::inc(&m.hedged_total);
        let shards: Vec<Arc<ShardState>> = (0..2)
            .map(|i| Arc::new(ShardState::new(i, "127.0.0.1:1", Duration::from_millis(10))))
            .collect();
        shards[0].mark(true);
        shards[0].latency.observe(0.002);
        shards[0].observe_version(3);
        shards[1].observe_version(3);
        let text = render(&m, &shards);
        assert!(text.contains("bepi_route_retries_total 1"), "{text}");
        assert!(text.contains("bepi_hedged_requests_total 1"));
        assert!(text.contains("bepi_shard_healthy{shard=\"0\"} 1"));
        assert!(text.contains("bepi_shard_healthy{shard=\"1\"} 0"));
        assert!(text.contains("bepi_route_advertised_version 3"));
        assert!(
            text.contains("bepi_route_shard_latency_seconds_bucket{shard=\"0\",le=\"0.0025\"} 1")
        );
        assert!(text.contains("bepi_route_shard_latency_seconds_count{shard=\"0\"} 1"));
        // Every sample line parses via the server's metric scraper.
        assert_eq!(
            bepi_server::parse_metric(&text, "bepi_route_retries_total"),
            Some(1.0)
        );
    }
}
