//! The iterative baselines: power iteration and plain GMRES on the full
//! system `H r = c q` (Section 2.2 of the paper).
//!
//! Neither stores preprocessed data (that is their selling point in
//! Figure 1(b)); both redo all iterations per query (their weakness in
//! Figure 1(c)).

use crate::rwr::{build_h, check_restart_prob, seed_vector, RwrScores, RwrSolver};
use crate::{DEFAULT_RESTART_PROB, DEFAULT_TOLERANCE};
use bepi_graph::Graph;
use bepi_solver::power::{power_iteration, PowerConfig};
use bepi_solver::{gmres, GmresConfig};
use bepi_sparse::{Csr, Result};

/// Power-iteration RWR solver.
#[derive(Debug, Clone)]
pub struct PowerSolver {
    a_norm: Csr,
    c: f64,
    cfg: PowerConfig,
}

impl PowerSolver {
    /// Builds the solver (only the row-normalized adjacency is kept).
    pub fn new(g: &Graph, c: f64, tol: f64) -> Result<Self> {
        check_restart_prob(c)?;
        Ok(Self {
            a_norm: g.row_normalized(),
            c,
            cfg: PowerConfig {
                tol,
                max_iters: 100_000,
            },
        })
    }

    /// Solver with the paper's defaults (`c = 0.05`, `ε = 1e-9`).
    pub fn with_defaults(g: &Graph) -> Result<Self> {
        Self::new(g, DEFAULT_RESTART_PROB, DEFAULT_TOLERANCE)
    }
}

impl RwrSolver for PowerSolver {
    fn name(&self) -> &'static str {
        "Power"
    }

    fn node_count(&self) -> usize {
        self.a_norm.nrows()
    }

    fn query(&self, seed: usize) -> Result<RwrScores> {
        let q = seed_vector(self.node_count(), seed)?;
        let res = power_iteration(&self.a_norm, self.c, &q, &self.cfg, false)?;
        Ok(RwrScores {
            scores: res.r,
            iterations: res.iterations,
            residual: res.delta,
        })
    }

    fn preprocessed_bytes(&self) -> usize {
        0 // iterative methods keep no preprocessed data
    }
}

/// Plain (unpreconditioned) GMRES on `H r = c q`.
#[derive(Debug, Clone)]
pub struct GmresSolver {
    h: Csr,
    c: f64,
    cfg: GmresConfig,
}

impl GmresSolver {
    /// Builds `H` once and keeps it for queries.
    pub fn new(g: &Graph, c: f64, tol: f64) -> Result<Self> {
        Ok(Self {
            h: build_h(g, c)?,
            c,
            cfg: GmresConfig {
                tol,
                ..GmresConfig::default()
            },
        })
    }

    /// Solver with the paper's defaults.
    pub fn with_defaults(g: &Graph) -> Result<Self> {
        Self::new(g, DEFAULT_RESTART_PROB, DEFAULT_TOLERANCE)
    }
}

impl RwrSolver for GmresSolver {
    fn name(&self) -> &'static str {
        "GMRES"
    }

    fn node_count(&self) -> usize {
        self.h.nrows()
    }

    fn query(&self, seed: usize) -> Result<RwrScores> {
        let mut q = seed_vector(self.node_count(), seed)?;
        for v in &mut q {
            *v *= self.c;
        }
        let res = gmres(&self.h, &q, None, None, &self.cfg)?;
        Ok(RwrScores {
            scores: res.x,
            iterations: res.iterations,
            residual: res.residual,
        })
    }

    fn preprocessed_bytes(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bepi_graph::generators;

    #[test]
    fn power_and_gmres_agree() {
        let g = generators::rmat(7, 400, generators::RmatParams::default(), 3).unwrap();
        let p = PowerSolver::with_defaults(&g).unwrap();
        let m = GmresSolver::with_defaults(&g).unwrap();
        for seed in [0usize, 31, 100] {
            let a = p.query(seed).unwrap();
            let b = m.query(seed).unwrap();
            for (x, y) in a.scores.iter().zip(&b.scores) {
                assert!((x - y).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn iterations_are_reported() {
        let g = generators::erdos_renyi(80, 400, 5).unwrap();
        let p = PowerSolver::with_defaults(&g).unwrap();
        let m = GmresSolver::with_defaults(&g).unwrap();
        assert!(p.query(0).unwrap().iterations > 1);
        assert!(m.query(0).unwrap().iterations > 1);
    }

    #[test]
    fn no_preprocessed_bytes() {
        let g = generators::cycle(10);
        assert_eq!(
            PowerSolver::with_defaults(&g).unwrap().preprocessed_bytes(),
            0
        );
        assert_eq!(
            GmresSolver::with_defaults(&g).unwrap().preprocessed_bytes(),
            0
        );
    }

    #[test]
    fn example_graph_ranking_matches_figure_2_shape() {
        // Figure 2: u1 seeds; bridge nodes u4/u5 outrank peripheral u6/u7.
        let g = generators::example_graph();
        let p = PowerSolver::with_defaults(&g).unwrap();
        let r = p.query(0).unwrap();
        assert!(r.scores[3] > r.scores[5]); // u4 > u6
        assert!(r.scores[7] > r.scores[5]); // u8 > u6 (the paper's point)
        assert_eq!(r.top_k(1), vec![0]); // seed first
    }
}
