//! `bepi convert` crash safety: killing the process mid-convert must
//! leave the source index untouched and never a half-written
//! destination — the output is staged in a temp file and renamed into
//! place only when complete.

use std::path::Path;
use std::process::Command;

fn bepi() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bepi"))
}

fn read(path: &Path) -> Vec<u8> {
    std::fs::read(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn sigkill_during_convert_leaves_source_untouched() {
    let dir = std::env::temp_dir().join(format!("bepi-convert-crash-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let edges = dir.join("edges.txt");
    let src = dir.join("src.bepi");
    let out = dir.join("out.bepi");

    // A graph big enough that conversion does measurable work.
    let mut text = String::new();
    for v in 0..400u32 {
        text.push_str(&format!("{} {}\n", v, (v + 1) % 400));
        text.push_str(&format!("{} {}\n", v, (v * 7 + 3) % 400));
    }
    std::fs::write(&edges, text).unwrap();
    let status = bepi()
        .args(["preprocess", edges.to_str().unwrap(), src.to_str().unwrap()])
        .args(["--embed-graph"])
        .status()
        .expect("run bepi preprocess");
    assert!(status.success(), "preprocess failed");
    let src_before = read(&src);

    // Kill converts at staggered points; whatever instant the SIGKILL
    // lands at, the invariants below must hold.
    for attempt in 0..5u32 {
        std::fs::remove_file(&out).ok();
        let mut child = bepi()
            .args(["convert", src.to_str().unwrap(), out.to_str().unwrap()])
            .spawn()
            .expect("spawn bepi convert");
        std::thread::sleep(std::time::Duration::from_millis(attempt as u64 * 3));
        child.kill().ok(); // SIGKILL on unix — no cleanup handlers run
        child.wait().unwrap();

        assert_eq!(
            read(&src),
            src_before,
            "attempt {attempt}: source index changed"
        );
        // The destination either never appeared or is the complete,
        // loadable v6 result of a finished rename — never a torn file.
        if out.exists() {
            let output = bepi()
                .args(["stats", out.to_str().unwrap(), "--mmap"])
                .output()
                .expect("run bepi stats");
            assert!(
                output.status.success(),
                "attempt {attempt}: destination exists but is not a valid index:\n{}",
                String::from_utf8_lossy(&output.stderr)
            );
        }
    }

    // And an uninterrupted convert still succeeds over the same source.
    std::fs::remove_file(&out).ok();
    let status = bepi()
        .args(["convert", src.to_str().unwrap(), out.to_str().unwrap()])
        .status()
        .expect("run bepi convert");
    assert!(status.success());
    assert_eq!(read(&src), src_before);
    std::fs::remove_dir_all(&dir).ok();
}
