//! Wall-time span instrumentation over a process-global phase registry.
//!
//! [`Span::enter("phase")`](Span::enter) starts a timer; when the span is
//! dropped (or [`Span::exit`] is called) the elapsed time is folded into the
//! named phase accumulator: invocation count, total nanoseconds, and maximum
//! nanoseconds, all plain atomics. The registry is a fixed pool of static
//! slots whose names are set once — looking up an already-registered phase is
//! a linear scan of atomic loads and string compares, so the hot path takes
//! no locks. Registration of a brand-new phase name (a handful of times per
//! process) goes through `OnceLock::set`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Maximum number of distinct phase names the registry can hold. Spans with
/// names beyond this capacity are silently not recorded.
pub const MAX_PHASES: usize = 64;

/// One named accumulator in the global registry.
#[derive(Debug)]
pub struct PhaseSlot {
    name: OnceLock<String>,
    count: AtomicU64,
    total_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl PhaseSlot {
    const fn new() -> PhaseSlot {
        PhaseSlot {
            name: OnceLock::new(),
            count: AtomicU64::new(0),
            total_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
        }
    }

    fn record(&self, elapsed: Duration) {
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }
}

fn registry() -> &'static [PhaseSlot; MAX_PHASES] {
    static REGISTRY: OnceLock<[PhaseSlot; MAX_PHASES]> = OnceLock::new();
    REGISTRY.get_or_init(|| std::array::from_fn(|_| PhaseSlot::new()))
}

/// Finds the slot for `name`, registering it in the first free slot when new.
/// Returns `None` when the registry is full.
fn phase(name: &str) -> Option<&'static PhaseSlot> {
    for slot in registry() {
        match slot.name.get() {
            Some(n) if n == name => return Some(slot),
            Some(_) => continue,
            None => {
                // Free slot: try to claim it. A racing thread may claim it
                // first (possibly with the same name), so re-check.
                let _ = slot.name.set(name.to_string());
                match slot.name.get() {
                    Some(n) if n == name => return Some(slot),
                    _ => continue,
                }
            }
        }
    }
    None
}

/// Records a duration against a named phase without going through a guard.
pub fn record_duration(name: &str, elapsed: Duration) {
    if let Some(slot) = phase(name) {
        slot.record(elapsed);
    }
}

/// An RAII wall-time span. Created by [`Span::enter`]; records into the
/// process-global phase registry when dropped.
#[derive(Debug)]
pub struct Span {
    slot: Option<&'static PhaseSlot>,
    start: Instant,
    done: bool,
}

impl Span {
    /// Starts timing the named phase.
    pub fn enter(name: &str) -> Span {
        Span {
            slot: phase(name),
            start: Instant::now(),
            done: false,
        }
    }

    /// Ends the span and returns the elapsed wall time.
    pub fn exit(mut self) -> Duration {
        let elapsed = self.start.elapsed();
        if let Some(slot) = self.slot {
            slot.record(elapsed);
        }
        self.done = true;
        elapsed
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.done {
            if let Some(slot) = self.slot {
                slot.record(self.start.elapsed());
            }
        }
    }
}

/// Point-in-time view of one phase accumulator.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSnapshot {
    /// Phase name as passed to [`Span::enter`].
    pub name: String,
    /// Number of completed spans.
    pub count: u64,
    /// Sum of span durations.
    pub total: Duration,
    /// Longest single span.
    pub max: Duration,
}

/// Snapshots every registered phase, sorted by name for stable rendering.
/// Duplicate slots for the same name (possible under a registration race)
/// are merged.
pub fn snapshot() -> Vec<PhaseSnapshot> {
    let mut out: Vec<PhaseSnapshot> = Vec::new();
    for slot in registry() {
        let Some(name) = slot.name.get() else {
            continue;
        };
        let count = slot.count.load(Ordering::Relaxed);
        let total = Duration::from_nanos(slot.total_nanos.load(Ordering::Relaxed));
        let max = Duration::from_nanos(slot.max_nanos.load(Ordering::Relaxed));
        if let Some(existing) = out.iter_mut().find(|s| &s.name == name) {
            existing.count += count;
            existing.total += total;
            existing.max = existing.max.max(max);
        } else {
            out.push(PhaseSnapshot {
                name: name.clone(),
                count,
                total,
                max,
            });
        }
    }
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find(name: &str) -> Option<PhaseSnapshot> {
        snapshot().into_iter().find(|s| s.name == name)
    }

    #[test]
    fn span_accumulates_count_total_max() {
        let before = find("test.span_a").map(|s| s.count).unwrap_or(0);
        {
            let _s = Span::enter("test.span_a");
            std::thread::sleep(Duration::from_millis(2));
        }
        record_duration("test.span_a", Duration::from_millis(50));
        let snap = find("test.span_a").expect("phase registered");
        assert_eq!(snap.count, before + 2);
        assert!(
            snap.total >= Duration::from_millis(52),
            "total={:?}",
            snap.total
        );
        assert!(snap.max >= Duration::from_millis(50));
    }

    #[test]
    fn exit_returns_elapsed_and_records_once() {
        let span = Span::enter("test.span_exit");
        let elapsed = span.exit();
        let snap = find("test.span_exit").expect("phase registered");
        assert_eq!(snap.count, 1);
        assert!(snap.total >= elapsed || snap.total.as_nanos() > 0 || elapsed.as_nanos() == 0);
    }

    #[test]
    fn concurrent_spans_from_many_threads() {
        let threads: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..100 {
                        record_duration("test.concurrent", Duration::from_nanos(10));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = find("test.concurrent").expect("phase registered");
        assert_eq!(snap.count, 800);
        assert_eq!(snap.total, Duration::from_nanos(8000));
        assert_eq!(snap.max, Duration::from_nanos(10));
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        record_duration("test.zzz", Duration::from_nanos(1));
        record_duration("test.aaa", Duration::from_nanos(1));
        let snap = snapshot();
        let names: Vec<_> = snap.iter().map(|s| s.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }
}
