//! Bounded MPMC admission queue (std-only: `Mutex` + `Condvar`).
//!
//! The daemon's load-shedding contract lives here: `try_push` never
//! blocks — when the queue is at capacity the connection is rejected
//! immediately (the acceptor answers `503`), keeping tail latency bounded
//! instead of letting a backlog grow without limit. Workers block on
//! `pop`, which returns `None` only once the queue is *closed and
//! drained* — exactly the graceful-shutdown semantics.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
}

/// Why `try_push` refused an item.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; shed the item.
    Full(T),
    /// The queue was closed; no more items are admitted.
    Closed(T),
}

/// Producer handle. Dropping (or calling [`Producer::close`]) closes the
/// queue; consumers drain what remains and then see `None`.
pub struct Producer<T> {
    inner: Arc<Inner<T>>,
}

/// Consumer handle; cloneable so each worker owns one.
pub struct Consumer<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for Consumer<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// Creates a queue admitting at most `capacity` queued items.
pub fn bounded<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            items: VecDeque::with_capacity(capacity),
            closed: false,
        }),
        available: Condvar::new(),
        capacity: capacity.max(1),
    });
    (
        Producer {
            inner: Arc::clone(&inner),
        },
        Consumer { inner },
    )
}

impl<T> Producer<T> {
    /// Non-blocking admission: enqueues or reports `Full`/`Closed`.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.inner.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.inner.available.notify_one();
        Ok(())
    }

    /// Closes the queue: consumers drain the backlog, then observe end
    /// of stream.
    pub fn close(&self) {
        let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        state.closed = true;
        drop(state);
        self.inner.available.notify_all();
    }

    /// Queued item count (diagnostics only; immediately stale).
    pub fn len(&self) -> usize {
        self.inner
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .items
            .len()
    }

    /// Whether the queue is currently empty (diagnostics only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.close();
    }
}

impl<T> Consumer<T> {
    /// Blocks for the next item. `None` means closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .inner
                .available
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fifo_order_and_full_rejection() {
        let (tx, rx) = bounded::<u32>(2);
        tx.try_push(1).unwrap();
        tx.try_push(2).unwrap();
        assert_eq!(tx.try_push(3), Err(PushError::Full(3)));
        assert_eq!(rx.pop(), Some(1));
        tx.try_push(4).unwrap();
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), Some(4));
    }

    #[test]
    fn close_drains_then_ends() {
        let (tx, rx) = bounded::<u32>(8);
        tx.try_push(1).unwrap();
        tx.try_push(2).unwrap();
        tx.close();
        assert_eq!(tx.try_push(3), Err(PushError::Closed(3)));
        assert_eq!(rx.pop(), Some(1));
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), None);
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn dropping_producer_closes() {
        let (tx, rx) = bounded::<u32>(4);
        tx.try_push(9).unwrap();
        drop(tx);
        assert_eq!(rx.pop(), Some(9));
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn blocked_consumers_wake_on_push_and_close() {
        let (tx, rx) = bounded::<u32>(4);
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = 0usize;
                    while rx.pop().is_some() {
                        got += 1;
                    }
                    got
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(50));
        for i in 0..20 {
            // Retry when full: consumers are draining concurrently.
            let mut item = i;
            loop {
                match tx.try_push(item) {
                    Ok(()) => break,
                    Err(PushError::Full(v)) => {
                        item = v;
                        std::thread::yield_now();
                    }
                    Err(PushError::Closed(_)) => unreachable!(),
                }
            }
        }
        tx.close();
        let total: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(total, 20);
    }
}
