//! Regenerates the paper artifact; see `bepi_bench::experiments::fig7`.

fn main() {
    print!("{}", bepi_bench::experiments::fig7::run());
}
