//! Regenerates the paper artifact; see `bepi_bench::experiments::fig6`.

fn main() {
    print!("{}", bepi_bench::experiments::fig6::run());
}
