//! The `mmap` wrapper: [`Mapping`] (raw read-only file mapping),
//! [`Section`] (typed, owning view of one payload section), and
//! [`MappedIndex`] (an opened, validated v6 container).
//!
//! Every `unsafe` block in the workspace's mapped-index path lives in
//! this module; consumers only ever see safe handles.

use crate::format::{parse_layout, SectionEntry};
use crate::{sections, MapError};
use std::fs::File;
use std::marker::PhantomData;
use std::ops::Deref;
use std::path::Path;
use std::sync::Arc;

#[cfg(unix)]
mod sys {
    //! Minimal `extern "C"` declarations for the three syscall wrappers
    //! used here (no libc crate — the workspace vendors all deps).
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_SHARED: c_int = 1;
    pub const MADV_WILLNEED: c_int = 3;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
        pub fn madvise(addr: *mut c_void, len: usize, advice: c_int) -> c_int;
    }

    /// `MAP_FAILED` — the all-ones sentinel, not null.
    pub fn map_failed() -> *mut c_void {
        usize::MAX as *mut c_void
    }
}

/// A read-only, shared memory mapping of an entire file.
///
/// The mapping is `MAP_SHARED` + `PROT_READ`: every process mapping the
/// same index file shares one copy of its pages in the page cache, which
/// is the whole point of serving from a mapped index. Unmapped on drop.
pub struct Mapping {
    ptr: *const u8,
    len: usize,
}

// SAFETY: the mapping is read-only for its entire lifetime (PROT_READ,
// never remapped or written through), so shared references from any
// thread are sound.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Maps `file` read-only in its entirety.
    #[cfg(unix)]
    pub fn map_file(file: &File) -> Result<Self, MapError> {
        use std::os::unix::io::AsRawFd;
        let len = file.metadata()?.len();
        if len == 0 {
            return Err(MapError::TooSmall { len: 0 });
        }
        if len > usize::MAX as u64 {
            return Err(MapError::Unsupported("file exceeds address space"));
        }
        let len = len as usize;
        // SAFETY: fd is a valid open file descriptor for the lifetime of
        // this call; we request a fresh read-only shared mapping (addr
        // null, offset 0) and check for MAP_FAILED before trusting the
        // result. The kernel guarantees page-aligned placement.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::map_failed() || ptr.is_null() {
            return Err(MapError::Io(format!(
                "mmap failed: {}",
                std::io::Error::last_os_error()
            )));
        }
        Ok(Self {
            ptr: ptr as *const u8,
            len,
        })
    }

    /// Mapping is only implemented for unix hosts; elsewhere callers get
    /// a clean [`MapError::Unsupported`] and fall back to heap loading.
    #[cfg(not(unix))]
    pub fn map_file(_file: &File) -> Result<Self, MapError> {
        Err(MapError::Unsupported("mmap requires a unix host"))
    }

    /// Length of the mapped file in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for an empty mapping (never constructed in practice).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The whole mapped file as a byte slice.
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: ptr/len describe a live PROT_READ mapping owned by
        // self; the slice's lifetime is tied to &self.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Advises the kernel that `offset..offset + len` will be needed
    /// soon (`MADV_WILLNEED`), triggering asynchronous read-ahead for a
    /// hot section. Best-effort: failures are ignored (the advice is an
    /// optimization, not a correctness requirement), and out-of-range
    /// requests are clamped.
    pub fn advise_willneed(&self, offset: usize, len: usize) {
        #[cfg(unix)]
        {
            let offset = offset.min(self.len);
            let len = len.min(self.len - offset);
            if len == 0 {
                return;
            }
            // madvise wants page-aligned addresses: round the start down
            // to the containing page (the kernel rejects unaligned addr).
            let page = 4096usize;
            let start = (offset / page) * page;
            let adj_len = len + (offset - start);
            // SAFETY: start/adj_len lie within our live mapping.
            unsafe {
                sys::madvise(
                    self.ptr.add(start) as *mut std::os::raw::c_void,
                    adj_len,
                    sys::MADV_WILLNEED,
                );
            }
        }
        #[cfg(not(unix))]
        {
            let _ = (offset, len);
        }
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        #[cfg(unix)]
        // SAFETY: ptr/len came from a successful mmap and are unmapped
        // exactly once, here.
        unsafe {
            sys::munmap(self.ptr as *mut std::os::raw::c_void, self.len);
        }
    }
}

impl std::fmt::Debug for Mapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mapping").field("len", &self.len).finish()
    }
}

mod sealed {
    pub trait Sealed {}
}

/// Element types that can alias the little-endian, 64-byte-aligned
/// payload bytes of a mapped section directly. Sealed: soundness of
/// [`Section`] depends on every implementor being a plain-old-data type
/// with no padding, no invalid bit patterns, and alignment ≤ 64.
pub trait Pod: sealed::Sealed + Copy + 'static {}

macro_rules! impl_pod {
    ($($t:ty),*) => {$(
        impl sealed::Sealed for $t {}
        impl Pod for $t {}
    )*};
}

impl_pod!(u8, u32, u64, f64);

// `usize` sections are stored as u64 on disk; aliasing them as usize is
// only valid where the two types agree.
#[cfg(target_pointer_width = "64")]
impl_pod!(usize);

/// A typed, owning view of one payload section of a mapped index.
///
/// Derefs to `&[T]` and keeps the whole file mapping alive through an
/// internal [`Arc`], so a `Section` can outlive the [`MappedIndex`] it
/// came from. Cloning is cheap (an `Arc` bump).
pub struct Section<T: Pod> {
    map: Arc<Mapping>,
    /// Byte offset of the payload within the mapping.
    offset: usize,
    /// Element (not byte) count.
    len: usize,
    _marker: PhantomData<T>,
}

impl<T: Pod> Section<T> {
    fn from_entry(map: Arc<Mapping>, entry: &SectionEntry) -> Result<Self, MapError> {
        let elem = std::mem::size_of::<T>();
        if entry.len as usize % elem != 0 {
            return Err(MapError::BadElementSize {
                id: entry.id,
                section: sections::name(entry.id),
                len: entry.len,
                elem,
            });
        }
        if cfg!(target_endian = "big") && elem > 1 {
            return Err(MapError::Unsupported(
                "mapped sections are little-endian; this host is big-endian",
            ));
        }
        Ok(Self {
            map,
            offset: entry.offset as usize,
            len: entry.len as usize / elem,
            _marker: PhantomData,
        })
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the section holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Logical payload size in bytes.
    pub fn byte_len(&self) -> usize {
        self.len * std::mem::size_of::<T>()
    }

    /// The section contents as a slice.
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: parse_layout proved offset..offset+len*size lies inside
        // the mapping and offset is 64-byte aligned (≥ align_of::<T>());
        // T is Pod (sealed), so every bit pattern is a valid T; the
        // mapping is read-only and outlives self via the Arc.
        unsafe {
            std::slice::from_raw_parts(
                self.map.as_slice().as_ptr().add(self.offset) as *const T,
                self.len,
            )
        }
    }

    /// Asks the kernel to read this section's pages ahead of first use.
    pub fn advise_willneed(&self) {
        self.map
            .advise_willneed(self.offset, self.len * std::mem::size_of::<T>());
    }
}

impl<T: Pod> Deref for Section<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Pod> Clone for Section<T> {
    fn clone(&self) -> Self {
        Self {
            map: Arc::clone(&self.map),
            offset: self.offset,
            len: self.len,
            _marker: PhantomData,
        }
    }
}

impl<T: Pod> std::fmt::Debug for Section<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Section(len={}, offset={})", self.len, self.offset)
    }
}

/// An opened, eagerly validated v6 container file.
///
/// Construction ([`MappedIndex::open`]) maps the file and validates
/// magic, version, footer, and the full section table — `O(#sections)`
/// work, independent of index size. Typed access then borrows payload
/// arrays in place.
#[derive(Debug)]
pub struct MappedIndex {
    map: Arc<Mapping>,
    table: Vec<SectionEntry>,
}

impl MappedIndex {
    /// Opens and validates the container at `path`.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, MapError> {
        Self::open_file(&File::open(path)?)
    }

    /// Opens and validates an already open file.
    pub fn open_file(file: &File) -> Result<Self, MapError> {
        let map = Arc::new(Mapping::map_file(file)?);
        let table = parse_layout(map.as_slice())?;
        Ok(Self { map, table })
    }

    /// The parsed section table.
    pub fn entries(&self) -> &[SectionEntry] {
        &self.table
    }

    /// Total file size in bytes.
    pub fn file_len(&self) -> usize {
        self.map.len()
    }

    /// True if the container holds a section with this id.
    pub fn has(&self, id: u32) -> bool {
        self.table.iter().any(|e| e.id == id)
    }

    fn entry(&self, id: u32) -> Result<&SectionEntry, MapError> {
        self.table
            .iter()
            .find(|e| e.id == id)
            .ok_or(MapError::MissingSection {
                id,
                section: sections::name(id),
            })
    }

    /// The raw payload bytes of a section.
    pub fn bytes(&self, id: u32) -> Result<&[u8], MapError> {
        let e = self.entry(id)?;
        Ok(&self.map.as_slice()[e.offset as usize..(e.offset + e.len) as usize])
    }

    /// A typed view of a section. The returned handle owns a reference
    /// to the mapping, so it stays valid after this `MappedIndex` drops.
    pub fn section<T: Pod>(&self, id: u32) -> Result<Section<T>, MapError> {
        Section::from_entry(Arc::clone(&self.map), self.entry(id)?)
    }

    /// Verifies one section's payload CRC.
    pub fn verify(&self, id: u32) -> Result<(), MapError> {
        let e = *self.entry(id)?;
        let payload = &self.map.as_slice()[e.offset as usize..(e.offset + e.len) as usize];
        let computed = crate::crc32(payload);
        if computed != e.crc {
            return Err(MapError::SectionCrc {
                id: e.id,
                section: sections::name(e.id),
                stored: e.crc,
                computed,
            });
        }
        Ok(())
    }

    /// Verifies every section's payload CRC (full-file integrity check;
    /// costs a read of the whole file, so it is opt-in rather than part
    /// of the open path).
    pub fn verify_all(&self) -> Result<(), MapError> {
        for e in &self.table {
            self.verify(e.id)?;
        }
        Ok(())
    }

    /// Issues `MADV_WILLNEED` for a section, starting read-ahead for it.
    /// Missing sections are ignored (the advice is best-effort).
    pub fn advise_willneed(&self, id: u32) {
        if let Ok(e) = self.entry(id) {
            self.map.advise_willneed(e.offset as usize, e.len as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::ContainerWriter;
    use std::io::Write as _;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("bepi_mapidx_{tag}_{}", std::process::id()))
    }

    fn write_sample(path: &std::path::Path) {
        let file = File::create(path).unwrap();
        let mut w = ContainerWriter::new(std::io::BufWriter::new(file)).unwrap();
        w.begin_section(sections::BLOCK_SIZES).unwrap();
        for v in [3u64, 1, 4, 1, 5] {
            w.write_all(&v.to_le_bytes()).unwrap();
        }
        w.end_section().unwrap();
        w.begin_section(sections::S_VALUES).unwrap();
        for v in [0.5f64, -2.0, 1.25] {
            w.write_all(&v.to_le_bytes()).unwrap();
        }
        w.end_section().unwrap();
        w.section_bytes(sections::META, b"cfg").unwrap();
        w.finish().unwrap().into_inner().unwrap();
    }

    #[test]
    fn open_and_read_typed_sections() {
        let path = temp_path("typed");
        write_sample(&path);
        let idx = MappedIndex::open(&path).unwrap();
        assert!(idx.has(sections::META));
        assert!(!idx.has(sections::ILU_DIAG));
        let sizes: Section<u64> = idx.section(sections::BLOCK_SIZES).unwrap();
        assert_eq!(&*sizes, &[3, 1, 4, 1, 5]);
        let vals: Section<f64> = idx.section(sections::S_VALUES).unwrap();
        assert_eq!(&*vals, &[0.5, -2.0, 1.25]);
        assert_eq!(idx.bytes(sections::META).unwrap(), b"cfg");
        idx.verify_all().unwrap();
        // WILLNEED on present and absent sections must both be harmless.
        idx.advise_willneed(sections::S_VALUES);
        idx.advise_willneed(sections::ILU_DIAG);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sections_outlive_the_index() {
        let path = temp_path("outlive");
        write_sample(&path);
        let sizes: Section<u64> = {
            let idx = MappedIndex::open(&path).unwrap();
            idx.section(sections::BLOCK_SIZES).unwrap()
        };
        // The MappedIndex is gone; the Arc'd mapping keeps the view alive.
        assert_eq!(sizes.len(), 5);
        assert_eq!(sizes[2], 4);
        assert_eq!(sizes.byte_len(), 40);
        let clone = sizes.clone();
        drop(sizes);
        assert_eq!(&*clone, &[3, 1, 4, 1, 5]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn usize_view_matches_u64_on_64bit() {
        #[cfg(target_pointer_width = "64")]
        {
            let path = temp_path("usize");
            write_sample(&path);
            let idx = MappedIndex::open(&path).unwrap();
            let s: Section<usize> = idx.section(sections::BLOCK_SIZES).unwrap();
            assert_eq!(&*s, &[3usize, 1, 4, 1, 5]);
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn missing_section_is_typed_error() {
        let path = temp_path("missing");
        write_sample(&path);
        let idx = MappedIndex::open(&path).unwrap();
        match idx.section::<u64>(sections::ILU_DIAG) {
            Err(MapError::MissingSection { section, .. }) => {
                assert_eq!(section, "ilu.diag_pos");
            }
            other => panic!("expected MissingSection, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn element_size_mismatch_is_typed_error() {
        let path = temp_path("elem");
        write_sample(&path);
        let idx = MappedIndex::open(&path).unwrap();
        // META is 3 bytes — not a multiple of 8.
        match idx.section::<u64>(sections::META) {
            Err(MapError::BadElementSize { section, .. }) => assert_eq!(section, "meta"),
            other => panic!("expected BadElementSize, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn payload_corruption_caught_by_verify() {
        let path = temp_path("verify");
        write_sample(&path);
        let mut buf = std::fs::read(&path).unwrap();
        // Flip one payload byte of the first section (offset 64).
        buf[64] ^= 0x80;
        std::fs::write(&path, &buf).unwrap();
        let idx = MappedIndex::open(&path).unwrap(); // open stays O(#sections)
        match idx.verify(sections::BLOCK_SIZES) {
            Err(MapError::SectionCrc { section, .. }) => assert_eq!(section, "block_sizes"),
            other => panic!("expected SectionCrc, got {other:?}"),
        }
        assert!(idx.verify_all().is_err());
        assert!(idx.verify(sections::META).is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_rejected() {
        let path = temp_path("empty");
        File::create(&path).unwrap();
        assert!(matches!(
            MappedIndex::open(&path),
            Err(MapError::TooSmall { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapping_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Mapping>();
        assert_send_sync::<Section<f64>>();
        assert_send_sync::<MappedIndex>();
    }
}
