//! Ranking-quality metrics.
//!
//! RWR's product is a *ranking* (Figure 2); when comparing methods —
//! exact vs approximate, or across parameter choices — score-space error
//! can mislead. These metrics compare rankings directly: precision@k,
//! top-k overlap, and Kendall's tau. Used by the approximate-method tests
//! and available to library users evaluating their own trade-offs.

use bepi_sparse::vecops::top_k_indices;

/// Precision@k of `approx` against `truth` rankings derived from score
/// vectors: `|top_k(approx) ∩ top_k(truth)| / k`.
pub fn precision_at_k(truth: &[f64], approx: &[f64], k: usize) -> f64 {
    assert_eq!(truth.len(), approx.len(), "score vectors must align");
    let k = k.min(truth.len());
    if k == 0 {
        return 1.0;
    }
    let t: std::collections::HashSet<usize> = top_k_indices(truth, k).into_iter().collect();
    let hits = top_k_indices(approx, k)
        .into_iter()
        .filter(|i| t.contains(i))
        .count();
    hits as f64 / k as f64
}

/// Kendall's tau-a between the rankings induced by two score vectors,
/// restricted to the union of their top-`k` nodes (full-vector tau is
/// dominated by the zero-score tail). Returns a value in `[-1, 1]`;
/// 1 means identical order.
pub fn kendall_tau_top_k(truth: &[f64], approx: &[f64], k: usize) -> f64 {
    assert_eq!(truth.len(), approx.len(), "score vectors must align");
    let k = k.min(truth.len());
    let mut nodes: Vec<usize> = top_k_indices(truth, k);
    for i in top_k_indices(approx, k) {
        if !nodes.contains(&i) {
            nodes.push(i);
        }
    }
    let m = nodes.len();
    if m < 2 {
        return 1.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for a in 0..m {
        for b in a + 1..m {
            let (i, j) = (nodes[a], nodes[b]);
            let dt = truth[i] - truth[j];
            let da = approx[i] - approx[j];
            let prod = dt * da;
            if prod > 0.0 {
                concordant += 1;
            } else if prod < 0.0 {
                discordant += 1;
            }
            // Ties count as neither (tau-a denominator keeps all pairs).
        }
    }
    let pairs = (m * (m - 1) / 2) as f64;
    (concordant - discordant) as f64 / pairs
}

/// Mean absolute error restricted to the true top-`k` nodes — the region
/// applications actually consume.
pub fn top_k_mae(truth: &[f64], approx: &[f64], k: usize) -> f64 {
    assert_eq!(truth.len(), approx.len(), "score vectors must align");
    let idx = top_k_indices(truth, k.min(truth.len()));
    if idx.is_empty() {
        return 0.0;
    }
    idx.iter()
        .map(|&i| (truth[i] - approx[i]).abs())
        .sum::<f64>()
        / idx.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_rankings_are_perfect() {
        let s = vec![0.5, 0.3, 0.2, 0.1];
        assert_eq!(precision_at_k(&s, &s, 3), 1.0);
        assert_eq!(kendall_tau_top_k(&s, &s, 3), 1.0);
        assert_eq!(top_k_mae(&s, &s, 2), 0.0);
    }

    #[test]
    fn reversed_ranking_has_tau_minus_one() {
        let truth = vec![4.0, 3.0, 2.0, 1.0];
        let approx = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(kendall_tau_top_k(&truth, &approx, 4), -1.0);
        // Top-2 sets are disjoint.
        assert_eq!(precision_at_k(&truth, &approx, 2), 0.0);
    }

    #[test]
    fn partial_agreement() {
        let truth = vec![0.4, 0.3, 0.2, 0.1];
        let approx = vec![0.4, 0.2, 0.3, 0.1]; // swap ranks 2 and 3
        assert_eq!(precision_at_k(&truth, &approx, 2), 0.5);
        assert_eq!(precision_at_k(&truth, &approx, 3), 1.0);
        let tau = kendall_tau_top_k(&truth, &approx, 4);
        assert!((tau - (5.0 - 1.0) / 6.0).abs() < 1e-12, "tau {tau}");
    }

    #[test]
    fn mae_measures_only_top_region() {
        let truth = vec![1.0, 0.5, 0.0, 0.0];
        let approx = vec![0.9, 0.5, 0.0, 100.0];
        assert!((top_k_mae(&truth, &approx, 2) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn k_zero_and_oversized_k() {
        let s = vec![0.2, 0.1];
        assert_eq!(precision_at_k(&s, &s, 0), 1.0);
        assert_eq!(precision_at_k(&s, &s, 10), 1.0);
        assert_eq!(kendall_tau_top_k(&s, &s, 10), 1.0);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_lengths_panic() {
        precision_at_k(&[1.0], &[1.0, 2.0], 1);
    }
}
