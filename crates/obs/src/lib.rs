//! Observability layer for the BePI stack: structured logging, span
//! instrumentation, and lock-free telemetry primitives.
//!
//! Everything in this crate is std-only and safe to call from latency-critical
//! paths: level filtering is a single relaxed atomic load, phase accumulators
//! are plain atomic counters behind a lock-free registry, histograms are
//! fixed-bucket atomic arrays, and the slow-query ring buffer is a seqlock —
//! writers never block readers and readers never block writers.
//!
//! The pieces:
//!
//! - [`log`]: leveled `target=... key=value` line logger writing to stderr,
//!   level set programmatically, via `--log-level`, or the `BEPI_LOG`
//!   environment variable.
//! - [`span`]: [`Span::enter`] records wall-time into a process-global
//!   registry of named phase accumulators (count / total / max).
//! - [`telemetry`]: fixed-bucket [`Histogram`]s and float gauges, plus the
//!   process-global solver/WAL instruments shared by the server and CLI.
//! - [`ring`]: a seqlock ring buffer of fixed-width records used for the
//!   slow-query log and the trace rings.
//! - [`trace`]: 128-bit request ids for fleet-wide correlation, the
//!   process trace clock, and the Chrome trace-event exporter behind
//!   `--trace-export`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod log;
pub mod ring;
pub mod span;
pub mod telemetry;
pub mod trace;

pub use crate::log::{enabled, init_from_env, level, set_level, Level};
pub use crate::ring::SeqRing;
pub use crate::span::{record_duration, snapshot, PhaseSnapshot, Span};
pub use crate::telemetry::{format_le, F64Gauge, Histogram};
pub use crate::trace::{clock_us, RequestId, TraceEvent, TraceExporter};
