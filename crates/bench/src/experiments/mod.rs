//! One module per table/figure of the paper's evaluation. Each exposes a
//! `run()` returning a printable report; binaries and `run_all` wrap
//! these.

pub mod ablation;
pub mod approx_comparison;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod table2;
pub mod table34;
