//! Linear-operator and preconditioner abstractions.
//!
//! GMRES and the norm estimators only need `y = A x`; abstracting the
//! operator lets the same solver run on an explicit CSR matrix (BePI's
//! Schur complement) and on matrix-free compositions (`M^{-1}A` for the
//! eigenvalue study of Figure 7).

use bepi_sparse::Csr;

/// A real linear operator `R^ncols → R^nrows`.
pub trait LinOp {
    /// Output dimension.
    fn nrows(&self) -> usize;
    /// Input dimension.
    fn ncols(&self) -> usize;
    /// Computes `y = A x` (overwrites `y`; `x.len() == ncols`,
    /// `y.len() == nrows`).
    fn apply(&self, x: &[f64], y: &mut [f64]);
}

impl LinOp for Csr {
    fn nrows(&self) -> usize {
        Csr::nrows(self)
    }

    fn ncols(&self) -> usize {
        Csr::ncols(self)
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.mul_vec_into(x, y)
            .expect("dimension checked by caller");
    }
}

/// A left preconditioner: computes `z = M^{-1} r`.
pub trait Preconditioner {
    /// Applies the preconditioner (overwrites `z`).
    fn apply(&self, r: &[f64], z: &mut [f64]);
}

/// The trivial preconditioner `M = I`.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityPrecond;

impl Preconditioner for IdentityPrecond {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
    }
}

/// The preconditioned operator `M^{-1} A` as a [`LinOp`] — what GMRES
/// actually Arnoldi-izes, and what Figure 7 takes eigenvalues of.
pub struct PrecondOp<'a, A: LinOp, M: Preconditioner> {
    a: &'a A,
    m: &'a M,
    scratch: std::cell::RefCell<Vec<f64>>,
}

impl<'a, A: LinOp, M: Preconditioner> PrecondOp<'a, A, M> {
    /// Wraps `A` and `M` into the operator `M^{-1}A`.
    pub fn new(a: &'a A, m: &'a M) -> Self {
        let n = a.nrows();
        Self {
            a,
            m,
            scratch: std::cell::RefCell::new(vec![0.0; n]),
        }
    }
}

impl<A: LinOp, M: Preconditioner> LinOp for PrecondOp<'_, A, M> {
    fn nrows(&self) -> usize {
        self.a.nrows()
    }

    fn ncols(&self) -> usize {
        self.a.ncols()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let mut t = self.scratch.borrow_mut();
        self.a.apply(x, &mut t);
        self.m.apply(&t, y);
    }
}

/// The transpose-product operator `A^T A` as a [`LinOp`] (for the 2-norm
/// power method).
pub struct GramOp<'a> {
    a: &'a Csr,
    scratch: std::cell::RefCell<Vec<f64>>,
}

impl<'a> GramOp<'a> {
    /// Wraps `A` into `A^T A`.
    pub fn new(a: &'a Csr) -> Self {
        Self {
            a,
            scratch: std::cell::RefCell::new(vec![0.0; a.nrows()]),
        }
    }
}

impl LinOp for GramOp<'_> {
    fn nrows(&self) -> usize {
        self.a.ncols()
    }

    fn ncols(&self) -> usize {
        self.a.ncols()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let mut t = self.scratch.borrow_mut();
        self.a.mul_vec_into(x, &mut t).expect("shape ok");
        self.a.mul_vec_transposed_into(&t, y).expect("shape ok");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bepi_sparse::Coo;

    fn sample() -> Csr {
        let mut coo = Coo::new(2, 2).unwrap();
        coo.push(0, 0, 2.0).unwrap();
        coo.push(0, 1, 1.0).unwrap();
        coo.push(1, 1, 3.0).unwrap();
        coo.to_csr()
    }

    #[test]
    fn csr_linop_matches_mul_vec() {
        let a = sample();
        let x = [1.0, 2.0];
        let mut y = [0.0; 2];
        LinOp::apply(&a, &x, &mut y);
        assert_eq!(y.to_vec(), a.mul_vec(&x).unwrap());
    }

    #[test]
    fn identity_precond_copies() {
        let r = [1.0, -2.0];
        let mut z = [0.0; 2];
        IdentityPrecond.apply(&r, &mut z);
        assert_eq!(z, r);
    }

    #[test]
    fn precond_op_composes() {
        let a = sample();
        let m = IdentityPrecond;
        let op = PrecondOp::new(&a, &m);
        let x = [1.0, 1.0];
        let mut y = [0.0; 2];
        op.apply(&x, &mut y);
        assert_eq!(y, [3.0, 3.0]);
        assert_eq!(op.nrows(), 2);
    }

    #[test]
    fn gram_op_is_ata() {
        let a = sample();
        let g = GramOp::new(&a);
        let x = [1.0, 0.0];
        let mut y = [0.0; 2];
        g.apply(&x, &mut y);
        // A^T A e0 = A^T [2, 0] = [4, 2]
        assert_eq!(y, [4.0, 2.0]);
    }
}
