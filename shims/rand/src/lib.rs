//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the *small* slice of `rand`'s API it actually uses: a seedable
//! deterministic generator (`rngs::StdRng`), `random::<T>()`, and
//! `random_range(low..high)`. The generator is xoshiro256++ seeded via
//! SplitMix64 — statistically solid for graph generation and Monte-Carlo
//! estimation, deterministic across platforms (all arithmetic is
//! wrapping integer ops), and entirely dependency-free.
//!
//! This is NOT the real `rand` crate and produces a different stream
//! than upstream `StdRng` (which is ChaCha12). Everything in this
//! workspace treats RNG seeds as opaque reproducibility handles, never
//! as cross-crate fixtures, so the stream difference is unobservable to
//! the test suite.

#![forbid(unsafe_code)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds (the subset of `rand::SeedableRng` used here).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it to the full
    /// internal state deterministically.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling helpers over any [`RngCore`] (the subset of `rand`'s `Rng`
/// extension trait this workspace uses).
pub trait RngExt: RngCore {
    /// A uniform sample of `T` over its natural full range
    /// (`[0, 1)` for floats).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform sample from `range` (half-open or inclusive).
    /// Panics if the range is empty, like upstream `rand`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> RngExt for R {}

/// Alias kept because some call sites import `rand::Rng`.
pub use self::RngExt as Rng;

/// Types that can be sampled uniformly over their natural range.
pub trait Standard {
    /// Draws one sample.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with the standard 53-bit mantissa construction.
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Lemire-style unbiased bounded sampling on `u64`.
fn bounded_u64<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection sampling on the top bits: unbiased and branch-cheap.
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(bounded_u64(rng, span) as i64) as $t
            }
        }
    )*};
}

impl_signed_range!(i64, i32, i16, i8, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f32::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the workspace's standard
    /// RNG; upstream's `StdRng` is ChaCha12 — see the crate docs for why
    /// the stream difference is fine here).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zero outputs from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ by Blackman & Vigna (public domain reference).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_sampling_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        // Inclusive ranges include the upper bound.
        let mut hit_hi = false;
        for _ in 0..1000 {
            if rng.random_range(0usize..=3) == 3 {
                hit_hi = true;
            }
        }
        assert!(hit_hi);
        // Degenerate inclusive range.
        assert_eq!(rng.random_range(9usize..=9), 9);
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.random_range(0usize..10)] += 1;
        }
        for c in counts {
            // Each bucket within 10% of expectation.
            assert!(
                (c as f64 - n as f64 / 10.0).abs() < n as f64 / 100.0,
                "{counts:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.random_range(5usize..5);
    }
}
