//! Sparse matrix × sparse matrix multiplication (Gustavson's algorithm).
//!
//! The Schur complement `S = H22 − H21 (U1^{-1} (L1^{-1} H12))` of
//! Algorithms 1 and 3 is a chain of sparse products; this row-wise kernel
//! with a dense accumulator ("sparse accumulator" / SPA) is the standard
//! way to compute them in `O(Σ flops)`.
//!
//! The parallel variant partitions output rows by the left operand's nnz
//! prefix sums, runs the identical per-row Gustavson body on each range
//! with a thread-private accumulator, and concatenates the per-range
//! results in row order — so it is bit-identical to the serial kernel at
//! any thread count.

use crate::error::SparseError;
use crate::{Csr, Result};

/// Minimum `nnz(A)` before [`spgemm`] fans out to threads.
const PAR_SPGEMM_MIN_NNZ: usize = 8_192;

/// Computes `C = A * B` for CSR operands.
///
/// Entries that cancel to exactly zero are kept out of the output, so
/// `nnz(C)` reflects genuine structural fill.
///
/// Runs on [`bepi_par::get_threads`] threads when `A` is large enough to
/// amortize the spawns; see [`spgemm_threads`] to pin the count.
pub fn spgemm(a: &Csr, b: &Csr) -> Result<Csr> {
    let threads = if a.nnz() < PAR_SPGEMM_MIN_NNZ {
        1
    } else {
        bepi_par::get_threads()
    };
    spgemm_threads(a, b, threads)
}

/// [`spgemm`] with an explicit thread count, bypassing both the global
/// knob and the size threshold (tests and benchmarks pin thread counts
/// through this; `threads <= 1` is the serial kernel).
pub fn spgemm_threads(a: &Csr, b: &Csr, threads: usize) -> Result<Csr> {
    if a.ncols() != b.nrows() {
        return Err(SparseError::ShapeMismatch {
            left: a.shape(),
            right: b.shape(),
            op: "spgemm",
        });
    }
    let nrows = a.nrows();
    let ncols = b.ncols();
    if threads <= 1 || nrows <= 1 {
        let (row_ends, indices, values) = spgemm_rows(a, b, 0..nrows);
        let mut indptr = Vec::with_capacity(nrows + 1);
        indptr.push(0usize);
        indptr.extend(row_ends);
        return Ok(Csr::from_parts_unchecked(
            nrows, ncols, indptr, indices, values,
        ));
    }
    // Balance output rows by nnz(A) per row — a proxy for the flops each
    // row of the product costs.
    let ranges = bepi_par::balanced_ranges(a.indptr(), threads);
    let parts = bepi_par::par_join(
        ranges
            .iter()
            .map(|r| {
                let r = r.clone();
                move || spgemm_rows(a, b, r)
            })
            .collect::<Vec<_>>(),
    );
    // Concatenate in range order: offsets depend only on the partition,
    // never on completion order.
    let mut indptr = Vec::with_capacity(nrows + 1);
    indptr.push(0usize);
    let total: usize = parts.iter().map(|(_, idx, _)| idx.len()).sum();
    let mut indices: Vec<u32> = Vec::with_capacity(total);
    let mut values: Vec<f64> = Vec::with_capacity(total);
    for (row_ends, part_indices, part_values) in parts {
        let base = indices.len();
        indptr.extend(row_ends.iter().map(|e| base + e));
        indices.extend_from_slice(&part_indices);
        values.extend_from_slice(&part_values);
    }
    Ok(Csr::from_parts_unchecked(
        nrows, ncols, indptr, indices, values,
    ))
}

/// The Gustavson row body over `rows`, with a private sparse accumulator.
/// Returns per-row cumulative nnz (relative to the range start) plus the
/// concatenated column indices and values for those rows.
fn spgemm_rows(a: &Csr, b: &Csr, rows: std::ops::Range<usize>) -> (Vec<usize>, Vec<u32>, Vec<f64>) {
    let ncols = b.ncols();
    let mut row_ends = Vec::with_capacity(rows.len());
    let mut indices: Vec<u32> = Vec::new();
    let mut values: Vec<f64> = Vec::new();

    // Sparse accumulator: dense value array + occupancy marks + touched list.
    let mut acc = vec![0.0f64; ncols];
    let mut mark = vec![false; ncols];
    let mut touched: Vec<u32> = Vec::new();

    for i in rows {
        touched.clear();
        for (k, aik) in a.row_iter(i) {
            if aik == 0.0 {
                continue;
            }
            let (bc, bv) = b.row(k);
            for (idx, &j) in bc.iter().enumerate() {
                let ju = j as usize;
                if !mark[ju] {
                    mark[ju] = true;
                    touched.push(j);
                }
                acc[ju] += aik * bv[idx];
            }
        }
        touched.sort_unstable();
        for &j in &touched {
            let ju = j as usize;
            let v = acc[ju];
            acc[ju] = 0.0;
            mark[ju] = false;
            if v != 0.0 {
                indices.push(j);
                values.push(v);
            }
        }
        row_ends.push(indices.len());
    }
    (row_ends, indices, values)
}

/// Computes the triple product `A * B * C` left to right, returning the
/// intermediate `A * B` size alongside (useful for the |H21 H11^{-1} H12|
/// accounting in Figure 4).
pub fn spgemm3(a: &Csr, b: &Csr, c: &Csr) -> Result<(Csr, usize)> {
    let ab = spgemm(a, b)?;
    let nnz_ab = ab.nnz();
    Ok((spgemm(&ab, c)?, nnz_ab))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Coo, Dense};

    fn m(entries: &[(usize, usize, f64)], shape: (usize, usize)) -> Csr {
        let mut coo = Coo::new(shape.0, shape.1).unwrap();
        for &(r, c, v) in entries {
            coo.push(r, c, v).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn identity_is_neutral() {
        let a = m(&[(0, 1, 2.0), (1, 0, 3.0), (1, 1, -1.0)], (2, 2));
        let i = Csr::identity(2);
        assert_eq!(spgemm(&a, &i).unwrap(), a);
        assert_eq!(spgemm(&i, &a).unwrap(), a);
    }

    #[test]
    fn known_product() {
        let a = m(&[(0, 0, 1.0), (0, 1, 2.0), (1, 1, 3.0)], (2, 2));
        let b = m(&[(0, 1, 1.0), (1, 0, 4.0)], (2, 2));
        // A*B = [[8, 1], [12, 0]]
        let c = spgemm(&a, &b).unwrap();
        assert_eq!(c.get(0, 0), 8.0);
        assert_eq!(c.get(0, 1), 1.0);
        assert_eq!(c.get(1, 0), 12.0);
        assert_eq!(c.get(1, 1), 0.0);
        assert_eq!(c.nnz(), 3);
    }

    #[test]
    fn rectangular_shapes() {
        let a = m(&[(0, 2, 1.0), (1, 0, 2.0)], (2, 3));
        let b = m(&[(0, 0, 1.0), (2, 1, 5.0)], (3, 2));
        let c = spgemm(&a, &b).unwrap();
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.get(0, 1), 5.0);
        assert_eq!(c.get(1, 0), 2.0);
    }

    #[test]
    fn incompatible_shapes_rejected() {
        let a = m(&[], (2, 3));
        let b = m(&[], (2, 2));
        assert!(spgemm(&a, &b).is_err());
    }

    #[test]
    fn matches_dense_reference_on_random_like_pattern() {
        let a = m(
            &[
                (0, 0, 1.5),
                (0, 3, -2.0),
                (1, 1, 0.5),
                (2, 0, 1.0),
                (2, 2, 2.0),
                (3, 3, -1.0),
            ],
            (4, 4),
        );
        let b = m(
            &[
                (0, 1, 2.0),
                (1, 1, -1.0),
                (2, 3, 4.0),
                (3, 0, 0.5),
                (3, 2, 3.0),
            ],
            (4, 4),
        );
        let c = spgemm(&a, &b).unwrap();
        let dense_ref = dense_mul(&a.to_dense(), &b.to_dense());
        assert!(c.to_dense().max_abs_diff(&dense_ref).unwrap() < 1e-14);
        c.check_invariants().unwrap();
    }

    fn dense_mul(a: &Dense, b: &Dense) -> Dense {
        a.mul(b).unwrap()
    }

    #[test]
    fn cancellation_not_stored() {
        let a = m(&[(0, 0, 1.0), (0, 1, 1.0)], (1, 2));
        let b = m(&[(0, 0, 1.0), (1, 0, -1.0)], (2, 1));
        let c = spgemm(&a, &b).unwrap();
        assert_eq!(c.nnz(), 0);
    }

    #[test]
    fn triple_product_reports_intermediate() {
        let a = Csr::identity(3);
        let b = m(&[(0, 1, 1.0), (1, 2, 1.0)], (3, 3));
        let c = Csr::identity(3);
        let (abc, nnz_ab) = spgemm3(&a, &b, &c).unwrap();
        assert_eq!(nnz_ab, 2);
        assert_eq!(abc, b);
    }

    #[test]
    fn empty_operands() {
        let a = Csr::zeros(3, 3);
        let b = Csr::identity(3);
        assert_eq!(spgemm(&a, &b).unwrap().nnz(), 0);
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let a = m(
            &[
                (0, 0, 1.5),
                (0, 3, -2.0),
                (1, 1, 0.5),
                (2, 0, 1.0),
                (2, 2, 2.0),
                (3, 3, -1.0),
                (4, 0, 0.25),
                (4, 4, 1.0),
            ],
            (5, 5),
        );
        let b = m(
            &[
                (0, 1, 2.0),
                (1, 1, -1.0),
                (2, 3, 4.0),
                (3, 0, 0.5),
                (3, 2, 3.0),
                (4, 4, -2.5),
            ],
            (5, 5),
        );
        let serial = spgemm_threads(&a, &b, 1).unwrap();
        for t in [2, 3, 8] {
            assert_eq!(spgemm_threads(&a, &b, t).unwrap(), serial);
        }
        serial.check_invariants().unwrap();
    }
}
