//! Determinism guarantees of the approximate serving tier (`bepi-walk`):
//! for a fixed `(query seed, rng epoch, graph version)` both estimators
//! must return *bit-identical* scores at any kernel thread count and
//! over both owned and memory-mapped CSR storage. The daemon's response
//! cache and the `X-Approx` contract lean on exactly this — a cached
//! approximate body must be byte-for-byte what a fresh solve would
//! produce, no matter which worker or storage backing answered.

use bepi_core::prelude::*;
use bepi_graph::Graph;
use bepi_walk::{ApproxConfig, ApproxEngine, ApproxMethod};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// `bepi_par::set_threads` is a process-wide override; serialize every
/// test that flips it so concurrent test threads never observe a
/// mid-flight value. (The determinism property itself makes the thread
/// count invisible in the *scores* — the lock only keeps the tests'
/// base-vs-variant bookkeeping coherent.)
static THREADS: Mutex<()> = Mutex::new(());

fn engine(g: &Arc<Graph>, method: ApproxMethod) -> ApproxEngine {
    let cfg = ApproxConfig {
        method,
        // Small budgets keep proptest cases fast; determinism must hold
        // at any budget.
        walks: 2_000,
        ..ApproxConfig::default()
    };
    ApproxEngine::new(Arc::clone(g), 0.05, cfg).expect("engine build")
}

/// Round-trips `g` through the v6 on-disk format and returns the graph
/// as decoded from the shared read-only memory mapping, so its CSR
/// arrays borrow mapped storage instead of owned `Vec`s.
fn mmap_round_trip(g: &Graph) -> Graph {
    static UNIQ: AtomicU64 = AtomicU64::new(0);
    let bepi = BePi::preprocess(g, &BePiConfig::default()).expect("preprocess");
    let path = std::env::temp_dir().join(format!(
        "bepi_approx_det_{}_{}.v6",
        std::process::id(),
        UNIQ.fetch_add(1, Ordering::Relaxed)
    ));
    bepi_core::persist::save_file_v6(&bepi, Some(g), &path).expect("save v6");
    let (_, mapped) = bepi_core::persist::load_mapped_file(&path).expect("mmap open");
    std::fs::remove_file(&path).ok();
    mapped.expect("v6 file saved with graph must reload it")
}

/// The full determinism matrix for one graph: each method × thread
/// count × storage backing must reproduce the thread-1 owned-storage
/// scores bit-for-bit at a fixed `(seed, epoch)`.
fn assert_bit_identical_everywhere(g: &Graph, seed: usize, epoch: u64) {
    let _guard = THREADS.lock().unwrap();
    let owned = Arc::new(g.clone());
    let mapped = Arc::new(mmap_round_trip(g));
    for method in [ApproxMethod::Tpa, ApproxMethod::Walk] {
        bepi_par::set_threads(1);
        let base = engine(&owned, method).query(seed, epoch).unwrap();
        // Sanity on the base itself: a probability-mass vector.
        let total: f64 = base.scores.iter().sum();
        assert!(
            (0.0..=1.0 + 1e-9).contains(&total),
            "{method:?}: mass {total}"
        );
        assert!(base.scores[seed] > 0.0, "{method:?}: seed got no mass");
        for threads in [1usize, 2, 4, 8] {
            bepi_par::set_threads(threads);
            let o = engine(&owned, method).query(seed, epoch).unwrap();
            assert_eq!(
                o.scores, base.scores,
                "{method:?} owned storage drifted at {threads} threads"
            );
            let m = engine(&mapped, method).query(seed, epoch).unwrap();
            assert_eq!(
                m.scores, base.scores,
                "{method:?} mapped storage drifted at {threads} threads"
            );
        }
        bepi_par::set_threads(1);
    }
}

/// Random directed graphs with deadends allowed (self-loop-free, like
/// the pipeline proptests). Kept small: each case preprocesses an exact
/// index to produce the v6 mapping.
fn graph_strategy() -> impl Strategy<Value = Graph> {
    (5usize..40).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 1..(n * 3)).prop_map(move |pairs| {
            let edges: Vec<(usize, usize)> = pairs.into_iter().filter(|(u, v)| u != v).collect();
            Graph::from_edges(n, &edges).unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn approx_scores_identical_across_threads_and_storage(
        g in graph_strategy(),
        seed_frac in 0.0f64..1.0,
        epoch in 0u64..4,
    ) {
        let seed = ((g.n() - 1) as f64 * seed_frac) as usize;
        assert_bit_identical_everywhere(&g, seed, epoch);
    }
}

/// Every walk dies on its first step: the seed's only neighbors are
/// deadends, so the walk engine's surviving-walk batches empty out
/// immediately and TPA's iterate loses all mass after two products.
/// The degenerate schedule must still be deterministic everywhere.
#[test]
fn deadend_only_neighborhood_is_deterministic() {
    let g = Graph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]).unwrap();
    assert_bit_identical_everywhere(&g, 0, 0);
    // Starting *on* a deadend: all mass stays at the seed.
    assert_bit_identical_everywhere(&g, 3, 1);
}

/// A single hub both emits and absorbs every edge: the walk engine's
/// block re-grouping funnels every surviving walk into one CSR block,
/// the worst case for its scheduling to leak into the tallies.
#[test]
fn single_hub_star_is_deterministic() {
    let n = 32;
    let mut edges = Vec::new();
    for v in 1..n {
        edges.push((0, v));
        edges.push((v, 0));
    }
    let g = Graph::from_edges(n, &edges).unwrap();
    assert_bit_identical_everywhere(&g, 0, 0);
    assert_bit_identical_everywhere(&g, 7, 3);
}

/// Distinct epochs must *change* the walk engine's replicate (different
/// RNG streams) while TPA — which has no sampling — ignores the epoch.
/// Guards against the epoch being dropped somewhere in the plumbing,
/// which would make `approx` cache entries collide across epochs.
#[test]
fn epoch_selects_the_walk_replicate() {
    let g = Arc::new(
        bepi_graph::generators::rmat(7, 500, bepi_graph::generators::RmatParams::default(), 61)
            .unwrap(),
    );
    let walk = engine(&g, ApproxMethod::Walk);
    let e0 = walk.query(5, 0).unwrap();
    let e1 = walk.query(5, 1).unwrap();
    assert_ne!(
        e0.scores, e1.scores,
        "different epochs must draw different walk replicates"
    );
    let tpa = engine(&g, ApproxMethod::Tpa);
    assert_eq!(
        tpa.query(5, 0).unwrap().scores,
        tpa.query(5, 1).unwrap().scores,
        "TPA has no sampling; the epoch must not perturb it"
    );
}
