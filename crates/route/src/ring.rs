//! Deterministic seed-to-shard placement via rendezvous hashing.
//!
//! Every shard serves the *full* index (all processes mmap the same v6
//! file), so any shard can answer any seed correctly — the ring exists
//! for cache locality, not correctness. Pinning each seed to one
//! preferred shard makes the N per-process response caches behave like
//! one cache N times the size instead of N copies of the same hot set,
//! and gives every seed a *deterministic failover order*: when its
//! primary is down, the request goes to the same sibling every time, so
//! the sibling's cache warms for exactly the seeds it inherited.
//!
//! Rendezvous (highest-random-weight) hashing is used instead of a
//! modulo because it needs no stored state, is trivially deterministic
//! across processes, and yields a stable total order of shards per
//! seed — `order(seed)[0]` is the primary, `order(seed)[1]` the first
//! failover sibling, and so on.

/// Deterministic seed → shard placement over a fixed shard count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedRing {
    shards: usize,
}

impl SeedRing {
    /// A ring over `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(shards: usize) -> SeedRing {
        assert!(shards > 0, "a ring needs at least one shard");
        SeedRing { shards }
    }

    /// Number of shards on the ring.
    pub fn len(&self) -> usize {
        self.shards
    }

    /// True when the ring has no failover siblings (single shard).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The preferred shard for `seed`.
    pub fn primary(&self, seed: u64) -> usize {
        self.order(seed)[0]
    }

    /// All shards ranked for `seed`: primary first, then failover
    /// siblings in deterministic preference order. Ties in the
    /// rendezvous weight are impossible for distinct shard ids because
    /// the shard id is mixed into the weight.
    pub fn order(&self, seed: u64) -> Vec<usize> {
        let mut ranked: Vec<(u64, usize)> =
            (0..self.shards).map(|s| (mix(seed, s as u64), s)).collect();
        // Highest weight first; the weight already encodes the shard id,
        // so the sort is total and the secondary key is never consulted
        // for distinct shards.
        ranked.sort_by(|a, b| b.cmp(a));
        ranked.into_iter().map(|(_, s)| s).collect()
    }
}

/// SplitMix64-style mix of (seed, shard) into a rendezvous weight.
/// Chosen for determinism and diffusion, not cryptography.
fn mix(seed: u64, shard: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(shard.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(0x94d0_49bb_1331_11eb);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_is_a_permutation_and_deterministic() {
        let ring = SeedRing::new(5);
        for seed in 0..200u64 {
            let order = ring.order(seed);
            assert_eq!(order.len(), 5);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
            assert_eq!(order, ring.order(seed), "must be deterministic");
            assert_eq!(order[0], ring.primary(seed));
        }
    }

    #[test]
    fn placement_is_reasonably_balanced() {
        let ring = SeedRing::new(4);
        let mut counts = [0usize; 4];
        for seed in 0..4000u64 {
            counts[ring.primary(seed)] += 1;
        }
        for &c in &counts {
            // Perfect balance is 1000; accept anything within 2× of even.
            assert!((500..=2000).contains(&c), "skewed placement: {counts:?}");
        }
    }

    #[test]
    fn failover_sibling_is_stable_under_primary_loss() {
        // The rank-1 shard for a seed must not depend on anything but
        // the seed: two routers (or one router before/after a restart)
        // agree on where a seed fails over.
        let ring = SeedRing::new(3);
        for seed in 0..50u64 {
            let a = ring.order(seed);
            let b = ring.order(seed);
            assert_eq!(a[1], b[1]);
            assert_ne!(a[0], a[1]);
        }
    }

    #[test]
    fn single_shard_ring_routes_everything_to_zero() {
        let ring = SeedRing::new(1);
        for seed in 0..10u64 {
            assert_eq!(ring.order(seed), vec![0]);
        }
    }
}
