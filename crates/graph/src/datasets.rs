//! The synthetic dataset suite.
//!
//! The paper evaluates on eight real graphs (Table 2) plus four appendix
//! graphs (Table 5) and the tiny Physicians network (Appendix I). Those
//! range up to 2.6 B edges and require a 500 GB machine; per the
//! substitution rule in `DESIGN.md` §4 we generate R-MAT / Erdős–Rényi
//! stand-ins with matched *shape*: power-law hubs, the paper's per-dataset
//! deadend fractions, and geometrically increasing sizes, scaled so the
//! whole evaluation runs on a laptop. Names keep a `-like` suffix honest.
//!
//! Every spec is deterministic (fixed seed), so experiment tables are
//! reproducible bit-for-bit.

use crate::generators::{self, RmatParams};
use crate::graph::Graph;

/// How a dataset's underlying graph is generated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GraphKind {
    /// R-MAT with `2^scale` nodes and `m` sampled edges.
    Rmat {
        /// log2 of the node count.
        scale: u32,
        /// Number of edge samples (final m is slightly lower after dedup).
        m: usize,
    },
    /// Erdős–Rényi with exactly `m` distinct directed edges.
    ErdosRenyi {
        /// Node count.
        n: usize,
        /// Edge count.
        m: usize,
    },
}

/// A named synthetic dataset standing in for one of the paper's graphs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetSpec {
    /// Short name used in tables, e.g. `"slashdot-like"`.
    pub name: &'static str,
    /// The paper dataset this stands in for.
    pub paper_name: &'static str,
    /// Generator and size.
    pub kind: GraphKind,
    /// Fraction of nodes turned into deadends (Table 2's n3/n, approx).
    pub deadend_fraction: f64,
    /// Hub selection ratio `k` used by BePI-S / BePI (Table 2's k column).
    pub hub_ratio: f64,
    /// RNG seed (generation is deterministic).
    pub seed: u64,
}

impl DatasetSpec {
    /// Generates the graph (deterministic for a given spec).
    pub fn generate(&self) -> Graph {
        let base = match self.kind {
            GraphKind::Rmat { scale, m } => {
                generators::rmat(scale, m, RmatParams::default(), self.seed)
                    .expect("static spec is valid")
            }
            GraphKind::ErdosRenyi { n, m } => {
                generators::erdos_renyi(n, m, self.seed).expect("static spec is valid")
            }
        };
        if self.deadend_fraction > 0.0 {
            generators::inject_deadends(&base, self.deadend_fraction, self.seed ^ 0xDEAD)
                .expect("fraction in range")
        } else {
            base
        }
    }

    /// Nominal node count (before any isolated-node effects).
    pub fn nominal_n(&self) -> usize {
        match self.kind {
            GraphKind::Rmat { scale, .. } => 1usize << scale,
            GraphKind::ErdosRenyi { n, .. } => n,
        }
    }

    /// Nominal edge count requested from the generator.
    pub fn nominal_m(&self) -> usize {
        match self.kind {
            GraphKind::Rmat { m, .. } | GraphKind::ErdosRenyi { m, .. } => m,
        }
    }
}

/// The main evaluation suite — one entry per Table 2 dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Stand-in for Slashdot (79 K nodes, 516 K edges, 42 % deadends).
    Slashdot,
    /// Stand-in for Wikipedia (100 K nodes, 1.6 M edges).
    Wikipedia,
    /// Stand-in for Baidu (416 K nodes, 3.3 M edges).
    Baidu,
    /// Stand-in for Flickr (2.3 M nodes, 33 M edges).
    Flickr,
    /// Stand-in for LiveJournal (4.8 M nodes, 68 M edges).
    LiveJournal,
    /// Stand-in for WikiLink (11 M nodes, 340 M edges).
    WikiLink,
    /// Stand-in for Twitter (42 M nodes, 1.5 B edges).
    Twitter,
    /// Stand-in for Friendster (68 M nodes, 2.6 B edges).
    Friendster,
}

impl Dataset {
    /// All eight datasets in the paper's size order.
    pub fn all() -> [Dataset; 8] {
        [
            Dataset::Slashdot,
            Dataset::Wikipedia,
            Dataset::Baidu,
            Dataset::Flickr,
            Dataset::LiveJournal,
            Dataset::WikiLink,
            Dataset::Twitter,
            Dataset::Friendster,
        ]
    }

    /// The smaller datasets on which the Bear and LU baselines are
    /// feasible (the paper reports both failing beyond the two smallest).
    pub fn small() -> [Dataset; 3] {
        [Dataset::Slashdot, Dataset::Wikipedia, Dataset::Baidu]
    }

    /// The four datasets of Figures 4 and 8 (hub-ratio sweeps).
    pub fn sweep() -> [Dataset; 4] {
        [
            Dataset::Slashdot,
            Dataset::Wikipedia,
            Dataset::Flickr,
            Dataset::WikiLink,
        ]
    }

    /// The spec (generator parameters, deadend fraction, hub ratio `k`).
    ///
    /// Sizes are geometrically scaled-down versions of Table 2; deadend
    /// fractions and the `k` column follow the paper.
    pub fn spec(self) -> DatasetSpec {
        match self {
            Dataset::Slashdot => DatasetSpec {
                name: "slashdot-like",
                paper_name: "Slashdot",
                kind: GraphKind::Rmat {
                    scale: 11,
                    m: 14_000,
                },
                deadend_fraction: 0.42,
                hub_ratio: 0.30,
                seed: 0xBE9101,
            },
            Dataset::Wikipedia => DatasetSpec {
                name: "wikipedia-like",
                paper_name: "Wikipedia",
                kind: GraphKind::Rmat {
                    scale: 12,
                    m: 42_000,
                },
                deadend_fraction: 0.04,
                hub_ratio: 0.25,
                seed: 0xBE9102,
            },
            Dataset::Baidu => DatasetSpec {
                name: "baidu-like",
                paper_name: "Baidu",
                kind: GraphKind::Rmat {
                    scale: 13,
                    m: 70_000,
                },
                deadend_fraction: 0.05,
                hub_ratio: 0.20,
                seed: 0xBE9103,
            },
            Dataset::Flickr => DatasetSpec {
                name: "flickr-like",
                paper_name: "Flickr",
                kind: GraphKind::Rmat {
                    scale: 14,
                    m: 240_000,
                },
                deadend_fraction: 0.156,
                hub_ratio: 0.20,
                seed: 0xBE9104,
            },
            Dataset::LiveJournal => DatasetSpec {
                name: "livejournal-like",
                paper_name: "LiveJournal",
                kind: GraphKind::Rmat {
                    scale: 15,
                    m: 470_000,
                },
                deadend_fraction: 0.114,
                hub_ratio: 0.30,
                seed: 0xBE9105,
            },
            Dataset::WikiLink => DatasetSpec {
                name: "wikilink-like",
                paper_name: "WikiLink",
                kind: GraphKind::Rmat {
                    scale: 16,
                    m: 1_000_000,
                },
                deadend_fraction: 0.002,
                hub_ratio: 0.20,
                seed: 0xBE9106,
            },
            Dataset::Twitter => DatasetSpec {
                name: "twitter-like",
                paper_name: "Twitter",
                kind: GraphKind::Rmat {
                    scale: 18,
                    m: 3_200_000,
                },
                deadend_fraction: 0.037,
                hub_ratio: 0.20,
                seed: 0xBE9107,
            },
            Dataset::Friendster => DatasetSpec {
                name: "friendster-like",
                paper_name: "Friendster",
                kind: GraphKind::Rmat {
                    scale: 18,
                    m: 4_600_000,
                },
                deadend_fraction: 0.179,
                hub_ratio: 0.20,
                seed: 0xBE9108,
            },
        }
    }

    /// Generates the dataset's graph.
    pub fn generate(self) -> Graph {
        self.spec().generate()
    }
}

/// The appendix-J suite (Table 5: Gnutella, HepPH, Facebook, Digg) used for
/// the BePI-vs-Bear head-to-head of Figure 11: sizes where Bear succeeds.
pub fn appendix_suite() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            name: "gnutella-like",
            paper_name: "Gnutella",
            kind: GraphKind::ErdosRenyi { n: 3_000, m: 7_200 },
            deadend_fraction: 0.10,
            hub_ratio: 0.20,
            seed: 0xA9901,
        },
        DatasetSpec {
            name: "hepph-like",
            paper_name: "HepPH",
            kind: GraphKind::Rmat {
                scale: 11,
                m: 26_000,
            },
            deadend_fraction: 0.02,
            hub_ratio: 0.20,
            seed: 0xA9902,
        },
        DatasetSpec {
            name: "facebook-like",
            paper_name: "Facebook",
            kind: GraphKind::Rmat {
                scale: 12,
                m: 76_000,
            },
            deadend_fraction: 0.01,
            hub_ratio: 0.20,
            seed: 0xA9903,
        },
        DatasetSpec {
            name: "digg-like",
            paper_name: "Digg",
            kind: GraphKind::Rmat {
                scale: 13,
                m: 50_000,
            },
            deadend_fraction: 0.05,
            hub_ratio: 0.20,
            seed: 0xA9904,
        },
    ]
}

/// Stand-in for the 241-node Physicians network of Appendix I (exact-
/// solution accuracy experiment, Figure 10).
pub fn physicians_like() -> Graph {
    generators::erdos_renyi(241, 1_098, 0xF151C1A5).expect("static spec is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::graph_stats;

    #[test]
    fn all_specs_have_distinct_names_and_seeds() {
        let mut names = std::collections::HashSet::new();
        let mut seeds = std::collections::HashSet::new();
        for d in Dataset::all() {
            let s = d.spec();
            assert!(names.insert(s.name));
            assert!(seeds.insert(s.seed));
        }
    }

    #[test]
    fn sizes_are_monotonically_increasing() {
        let ms: Vec<usize> = Dataset::all()
            .iter()
            .map(|d| d.spec().nominal_m())
            .collect();
        for w in ms.windows(2) {
            assert!(w[0] < w[1], "suite sizes must increase: {ms:?}");
        }
    }

    #[test]
    fn slashdot_like_matches_spec() {
        let g = Dataset::Slashdot.generate();
        assert_eq!(g.n(), 2048);
        assert!(g.m() > 5_000, "m = {}", g.m());
        // ~42% of nodes should be deadends (isolated R-MAT nodes add more).
        let frac = g.deadend_count() as f64 / g.n() as f64;
        assert!(frac > 0.35, "deadend fraction {frac}");
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(Dataset::Wikipedia.generate(), Dataset::Wikipedia.generate());
    }

    #[test]
    fn hub_ratios_match_paper_table2() {
        assert_eq!(Dataset::Slashdot.spec().hub_ratio, 0.30);
        assert_eq!(Dataset::Wikipedia.spec().hub_ratio, 0.25);
        assert_eq!(Dataset::Baidu.spec().hub_ratio, 0.20);
        assert_eq!(Dataset::LiveJournal.spec().hub_ratio, 0.30);
    }

    #[test]
    fn suite_has_power_law_structure() {
        let g = Dataset::Baidu.generate();
        let s = graph_stats(&g);
        assert!(s.max_degree as f64 > 10.0 * s.mean_degree);
        assert!(s.power_law_alpha.is_some());
    }

    #[test]
    fn appendix_suite_is_small_enough_for_bear() {
        for spec in appendix_suite() {
            assert!(spec.nominal_n() <= 10_000, "{} too big", spec.name);
            let g = spec.generate();
            assert!(g.n() >= 1_000);
        }
    }

    #[test]
    fn physicians_like_matches_paper_scale() {
        let g = physicians_like();
        assert_eq!(g.n(), 241);
        assert_eq!(g.m(), 1_098);
    }
}
