//! Integration tests of the `bepi-route` scatter-gather front tier over
//! real in-process `bepi-server` shard daemons.
//!
//! Every test boots N shard servers over the *same* preprocessed solver
//! (the in-process analogue of N daemons mmapping one v6 index), puts a
//! router in front in attach mode, and drives the router over TCP. The
//! core contract under test: routed responses are **bit-identical** to
//! what a single daemon would have produced, healthy or degraded.

use bepi_core::prelude::*;
use bepi_route::router::{Router, RouterConfig, RouterHandle};
use bepi_route::shard::ShardState;
use bepi_route::supervisor::Supervisor;
use bepi_server::worker::render_query_body;
use bepi_server::{parse_metric, QueryKey, ResponseMode, Server, ServerConfig, ServerHandle};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// One shared preprocessed instance; preprocessing dominates test time
/// and neither the shards nor the router mutate it.
fn solver() -> Arc<BePi> {
    static SOLVER: OnceLock<Arc<BePi>> = OnceLock::new();
    Arc::clone(SOLVER.get_or_init(|| {
        let g =
            bepi_graph::generators::rmat(7, 500, bepi_graph::generators::RmatParams::default(), 61)
                .unwrap();
        Arc::new(BePi::preprocess(&g, &BePiConfig::default()).unwrap())
    }))
}

/// Boots `n` shard servers (ids 0..n) over the shared solver and a
/// router attached to them. The `ServerHandle`s must stay alive for the
/// duration of the test, so they are returned alongside the router.
fn boot_fleet(n: usize) -> (RouterHandle, Vec<ServerHandle>) {
    let shards: Vec<ServerHandle> = (0..n)
        .map(|id| {
            let config = ServerConfig {
                shard_id: Some(id as u64),
                ..ServerConfig::default()
            };
            Server::start(solver(), &config).expect("shard server must bind")
        })
        .collect();
    let states: Vec<Arc<ShardState>> = shards
        .iter()
        .enumerate()
        .map(|(id, h)| {
            Arc::new(ShardState::new(
                id,
                h.local_addr().to_string(),
                Duration::from_secs(10),
            ))
        })
        .collect();
    let supervisor = Supervisor::attach(states);
    let cfg = RouterConfig {
        health_interval: Duration::from_millis(50),
        ..RouterConfig::default()
    };
    let router = Router::start(supervisor, cfg).expect("router must bind");
    (router, shards)
}

struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

fn get(addr: SocketAddr, target: &str) -> Response {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.write_all(
        format!("GET {target} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n").as_bytes(),
    )
    .expect("send request");
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).expect("read response");
    let text = String::from_utf8(buf).expect("UTF-8 response");
    let (head, body) = text
        .split_once("\r\n\r\n")
        .expect("response must have a blank line");
    let mut lines = head.lines();
    let status: u16 = lines
        .next()
        .expect("status line")
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers = lines
        .map(|l| {
            let (k, v) = l.split_once(':').expect("header colon");
            (k.trim().to_ascii_lowercase(), v.trim().to_string())
        })
        .collect();
    Response {
        status,
        headers,
        body: body.to_string(),
    }
}

/// The exact body a single daemon would produce for `(seed, top_k)`.
fn oracle_body(seed: usize, top_k: usize) -> String {
    let scores = solver().query(seed).unwrap();
    render_query_body(
        QueryKey {
            seed,
            top_k,
            version: 1,
            mode: ResponseMode::Exact,
        },
        &scores,
    )
}

/// Extracts `(node, score_text)` pairs from a daemon query body.
fn parse_results(body: &str) -> Vec<(u64, String)> {
    let mut out = Vec::new();
    let Some(start) = body.find("\"results\":[") else {
        return out;
    };
    let mut rest = &body[start..];
    while let Some(n) = rest.find("\"node\":") {
        rest = &rest[n + 7..];
        let end = rest
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(rest.len());
        let node: u64 = rest[..end].parse().unwrap();
        let s = rest.find("\"score\":").expect("score after node") + 8;
        rest = &rest[s..];
        let end = rest.find([',', '}', ']']).unwrap_or(rest.len());
        out.push((node, rest[..end].to_string()));
        rest = &rest[end..];
    }
    out
}

#[test]
fn routed_queries_are_bit_identical_to_a_single_daemon() {
    let (router, _shards) = boot_fleet(3);
    let addr = router.local_addr();
    let n = solver().node_count();
    for i in 0..200 {
        let seed = (i * 17) % n;
        let top = (i % 8) + 1;
        let resp = get(addr, &format!("/query?seed={seed}&top={top}"));
        assert_eq!(resp.status, 200, "request {i}");
        assert_eq!(resp.body, oracle_body(seed, top), "request {i}");
        // Lineage headers pass through from the answering shard.
        assert!(resp.header("x-shard").is_some(), "request {i}");
        assert_eq!(resp.header("x-graph-version"), Some("1"), "request {i}");
    }
}

#[test]
fn queries_spread_across_every_shard() {
    let (router, _shards) = boot_fleet(3);
    let addr = router.local_addr();
    let n = solver().node_count();
    let mut seen = std::collections::BTreeSet::new();
    for seed in 0..n.min(64) {
        let resp = get(addr, &format!("/query?seed={seed}&top=3"));
        assert_eq!(resp.status, 200);
        seen.insert(resp.header("x-shard").expect("X-Shard").to_string());
    }
    assert_eq!(
        seen.len(),
        3,
        "rendezvous ring must use all shards: {seen:?}"
    );
}

#[test]
fn batch_gathers_verbatim_bodies_in_seed_order() {
    let (router, _shards) = boot_fleet(2);
    let addr = router.local_addr();
    let n = solver().node_count();
    let seeds: Vec<usize> = (0..10).map(|i| (i * 29) % n).collect();
    let list = seeds
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let resp = get(addr, &format!("/batch?seeds={list}&top=4"));
    assert_eq!(resp.status, 200);
    let mut expected = String::from("{\"results\":[");
    for (i, seed) in seeds.iter().enumerate() {
        if i > 0 {
            expected.push(',');
        }
        expected.push_str(&oracle_body(*seed, 4));
    }
    expected.push_str("]}");
    assert_eq!(resp.body, expected);
}

#[test]
fn merged_batch_is_the_fleet_wide_topk_with_verbatim_scores() {
    let (router, _shards) = boot_fleet(2);
    let addr = router.local_addr();
    let n = solver().node_count();
    let seeds: Vec<usize> = vec![1 % n, 7 % n, 23 % n];
    let list = seeds
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let top = 5usize;
    let resp = get(addr, &format!("/batch?seeds={list}&top={top}&merge=1"));
    assert_eq!(resp.status, 200);
    assert!(resp.body.contains("\"merged\":true"), "{}", resp.body);

    // Recompute the expected merge from single-daemon oracle bodies:
    // sort by score desc (ties by seed then node), keep verbatim text.
    let mut entries: Vec<(usize, u64, String, f64)> = Vec::new();
    for seed in &seeds {
        for (node, text) in parse_results(&oracle_body(*seed, top)) {
            let score: f64 = text.parse().expect("score parses");
            entries.push((*seed, node, text, score));
        }
    }
    entries.sort_by(|a, b| {
        b.3.partial_cmp(&a.3)
            .unwrap()
            .then_with(|| (a.0, a.1).cmp(&(b.0, b.1)))
    });
    entries.truncate(top);
    let expected: Vec<String> = entries
        .iter()
        .map(|(seed, node, text, _)| {
            format!("{{\"seed\":{seed},\"node\":{node},\"score\":{text}}}")
        })
        .collect();
    assert_eq!(
        resp.body,
        format!(
            "{{\"merged\":true,\"top\":{top},\"results\":[{}]}}",
            expected.join(",")
        )
    );
}

#[test]
fn dead_shard_fails_over_without_a_single_error() {
    // Shard 1's address has no listener (bind-then-drop), so every seed
    // whose primary is shard 1 must fail over to a sibling.
    let live: Vec<ServerHandle> = (0..2)
        .map(|id| {
            let config = ServerConfig {
                shard_id: Some(id as u64 * 2), // ids 0 and 2
                ..ServerConfig::default()
            };
            Server::start(solver(), &config).expect("shard server must bind")
        })
        .collect();
    let dead_addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let states = vec![
        Arc::new(ShardState::new(
            0,
            live[0].local_addr().to_string(),
            Duration::from_secs(10),
        )),
        Arc::new(ShardState::new(1, dead_addr, Duration::from_secs(10))),
        Arc::new(ShardState::new(
            2,
            live[1].local_addr().to_string(),
            Duration::from_secs(10),
        )),
    ];
    let supervisor = Supervisor::attach(states);
    let router = Router::start(supervisor, RouterConfig::default()).expect("router must bind");
    let addr = router.local_addr();
    let n = solver().node_count();
    for seed in 0..n.min(64) {
        let resp = get(addr, &format!("/query?seed={seed}&top=3"));
        assert_eq!(resp.status, 200, "seed {seed} must fail over, not fail");
        assert_eq!(resp.body, oracle_body(seed, 3), "seed {seed}");
    }
    let metrics = get(addr, "/metrics").body;
    assert_eq!(
        parse_metric(&metrics, "bepi_shard_healthy{shard=\"1\"}"),
        Some(0.0),
        "dead shard must be marked unhealthy"
    );
    assert!(
        parse_metric(&metrics, "bepi_route_failovers_total").unwrap() > 0.0,
        "some seed must have had the dead shard as primary"
    );
    assert_eq!(
        parse_metric(&metrics, "bepi_route_errors_total"),
        Some(0.0),
        "failover must be invisible to clients"
    );
}

#[test]
fn health_version_and_metrics_endpoints_describe_the_fleet() {
    let (router, _shards) = boot_fleet(3);
    let addr = router.local_addr();

    let health = get(addr, "/route/health");
    assert_eq!(health.status, 200);
    for id in 0..3 {
        assert!(
            health.body.contains(&format!("\"id\":{id}")),
            "{}",
            health.body
        );
    }
    assert!(health.body.contains("\"advertised_version\":1"));
    assert!(health.body.contains("\"quorum\":2"), "{}", health.body);

    let version = get(addr, "/version");
    assert_eq!(version.status, 200);
    assert_eq!(version.header("x-graph-version"), Some("1"));
    assert!(version.body.contains("\"shards\":3"), "{}", version.body);

    // Drive a few queries so counters move, then check the metric set.
    for seed in 0..8 {
        assert_eq!(get(addr, &format!("/query?seed={seed}&top=2")).status, 200);
    }
    let metrics = get(addr, "/metrics").body;
    for name in [
        "bepi_route_requests_total",
        "bepi_route_retries_total",
        "bepi_hedged_requests_total",
        "bepi_route_failovers_total",
        "bepi_route_errors_total",
        "bepi_route_advertised_version",
    ] {
        assert!(
            parse_metric(&metrics, name).is_some(),
            "missing {name} in:\n{metrics}"
        );
    }
    for id in 0..3 {
        assert_eq!(
            parse_metric(&metrics, &format!("bepi_shard_healthy{{shard=\"{id}\"}}")),
            Some(1.0)
        );
    }
    assert!(parse_metric(&metrics, "bepi_route_requests_total").unwrap() >= 8.0);
    assert!(
        metrics.contains("bepi_route_shard_latency_seconds_bucket"),
        "per-shard latency histograms must render"
    );
}
