//! Figure 7 — eigenvalue clustering under preconditioning: the top Ritz
//! values of the Schur complement `S` vs the preconditioned operator
//! `(L̂2Û2)^{-1} S`, on the Slashdot, Wikipedia, and Baidu stand-ins.
//!
//! The paper's scatter plots show the preconditioned spectrum collapsing
//! into a tight cluster near 1; we report the same top-eigenvalue sets
//! numerically (per-dataset summary + the leading values).

use crate::table::Table;
use bepi_core::prelude::*;
use bepi_graph::Dataset;
use bepi_solver::arnoldi::ritz_values;
use bepi_solver::eig::Complex;
use bepi_solver::linop::PrecondOp;
use std::fmt::Write as _;

/// How many top eigenvalues to report (the paper plots 200).
pub const TOP_K: usize = 200;

fn dispersion(eigs: &[Complex]) -> (f64, f64) {
    // GMRES converges fast when eigenvalues cluster tightly away from the
    // origin; for these systems the cluster point is 1. Report the mean
    // and max distance of the top Ritz values from (1, 0).
    let n = eigs.len().max(1) as f64;
    let dists: Vec<f64> = eigs
        .iter()
        .map(|e| ((e.0 - 1.0).powi(2) + e.1.powi(2)).sqrt())
        .collect();
    let mean = dists.iter().sum::<f64>() / n;
    let max = dists.iter().cloned().fold(0.0, f64::max);
    (mean, max)
}

/// Runs the eigenvalue study.
pub fn run() -> String {
    let mut out = String::new();
    let _ = std::fs::create_dir_all("experiments");
    let _ = writeln!(
        out,
        "Figure 7 — top-{TOP_K} Ritz values of S vs preconditioned S\n"
    );
    let mut t = Table::new(vec![
        "dataset",
        "operator",
        "mean dist to 1",
        "max dist to 1",
        "top eigenvalue",
    ]);
    for ds in [Dataset::Slashdot, Dataset::Wikipedia, Dataset::Baidu] {
        let spec = ds.spec();
        let g = ds.generate();
        eprintln!("[fig7] {}", spec.name);
        let bepi = BePi::preprocess(
            &g,
            &BePiConfig {
                hub_ratio: Some(spec.hub_ratio),
                ..BePiConfig::default()
            },
        )
        .expect("preprocess");
        let s = bepi.schur();
        let n2 = s.nrows();
        let m = TOP_K.min(n2);
        let v0 = vec![1.0; n2];
        let plain = ritz_values(s, &v0, m, m);
        let ilu = bepi.preconditioner().expect("full BePI has ILU factors");
        let op = PrecondOp::new(s, ilu);
        let pre = ritz_values(&op, &v0, m, m);
        // Dump the full top-k spectra for plotting (the paper's scatter).
        let csv_path = format!("experiments/fig7_{}_eigenvalues.csv", spec.name);
        if let Ok(mut csv) = std::fs::File::create(&csv_path) {
            use std::io::Write as _;
            let _ = writeln!(csv, "operator,re,im");
            for (label, eigs) in [("S", &plain), ("precond", &pre)] {
                for e in eigs.iter() {
                    let _ = writeln!(csv, "{label},{:.12e},{:.12e}", e.0, e.1);
                }
            }
        }
        for (label, eigs) in [("S", &plain), ("M^-1 S", &pre)] {
            let (mean_d, max_d) = dispersion(eigs);
            let top = eigs.first().copied().unwrap_or((0.0, 0.0));
            t.row(vec![
                spec.name.to_string(),
                label.to_string(),
                format!("{mean_d:.4}"),
                format!("{max_d:.4}"),
                format!("{:.4}{:+.4}i", top.0, top.1),
            ]);
        }
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "Expected shape: the preconditioned operator's eigenvalues cluster tightly\n\
         (small dispersion, moduli near 1), explaining the faster GMRES convergence of Table 4."
    );
    out
}
