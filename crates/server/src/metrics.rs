//! Request counters and a fixed-bucket latency histogram, rendered in
//! Prometheus text exposition format.
//!
//! Everything is lock-free `AtomicU64`s with relaxed ordering: metrics
//! tolerate slightly stale cross-thread reads, and the query hot path
//! must not serialize on a metrics lock.

use bepi_obs::telemetry::{format_le, render_f64};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Histogram bucket upper bounds, in seconds. Chosen to straddle the
/// observed per-query range: sub-millisecond cache hits up to multi-second
/// cold GMRES solves on large indices.
pub const LATENCY_BUCKETS_SECS: [f64; 12] = [
    0.000_25, 0.000_5, 0.001, 0.002_5, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
];

/// A fixed-bucket latency histogram (cumulative counts, Prometheus-style).
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    // One non-cumulative count per bucket, plus the overflow (+Inf) bucket.
    counts: [AtomicU64; LATENCY_BUCKETS_SECS.len() + 1],
    sum_micros: AtomicU64,
    count: AtomicU64,
}

impl LatencyHistogram {
    /// Records one observation.
    pub fn observe(&self, elapsed: Duration) {
        let secs = elapsed.as_secs_f64();
        let idx = LATENCY_BUCKETS_SECS
            .iter()
            .position(|&b| secs <= b)
            .unwrap_or(LATENCY_BUCKETS_SECS.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_micros
            .fetch_add(elapsed.as_micros() as u64, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    fn render_into(&self, out: &mut String, name: &str) {
        let mut cumulative = 0u64;
        for (i, &bound) in LATENCY_BUCKETS_SECS.iter().enumerate() {
            cumulative += self.counts[i].load(Ordering::Relaxed);
            // `le` labels must be plain decimal floats: Prometheus
            // scrapers reject exponent notation like 2.5e-4.
            out.push_str(&format!(
                "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                format_le(bound)
            ));
        }
        cumulative += self.counts[LATENCY_BUCKETS_SECS.len()].load(Ordering::Relaxed);
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
        let sum = self.sum_micros.load(Ordering::Relaxed) as f64 / 1e6;
        out.push_str(&format!("{name}_sum {}\n", render_f64(sum)));
        out.push_str(&format!("{name}_count {}\n", self.count()));
    }
}

/// All counters exported on `/metrics`.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Connections accepted (including ones later shed with 503).
    pub connections_total: AtomicU64,
    /// Requests whose head parsed successfully.
    pub requests_total: AtomicU64,
    /// `/query` requests answered with 200.
    pub queries_total: AtomicU64,
    /// `/query` responses served from the LRU cache.
    pub cache_hits_total: AtomicU64,
    /// `/query` responses that ran the solver.
    pub cache_misses_total: AtomicU64,
    /// `/query` responses answered by the approximate lane (any mode
    /// that resolved to approximate, cache hits included).
    pub approx_requests_total: AtomicU64,
    /// Connections admitted through the degraded overflow lane because
    /// the main admission queue was full.
    pub degraded_total: AtomicU64,
    /// Connections shed with 503 because the admission queue was full.
    pub rejected_total: AtomicU64,
    /// Requests shed with 504 because their deadline expired in queue.
    pub timeouts_total: AtomicU64,
    /// 4xx responses (malformed requests, unknown paths, bad seeds...).
    pub client_errors_total: AtomicU64,
    /// 5xx responses other than queue rejections (solver failures...).
    pub server_errors_total: AtomicU64,
    /// Requests currently being processed by workers.
    pub in_flight: AtomicU64,
    /// Connections admitted to the queue and not yet picked up by a
    /// worker.
    pub queue_depth: AtomicU64,
    /// End-to-end `/query` service time (dequeue to response written).
    pub query_latency: LatencyHistogram,
}

impl Metrics {
    /// Convenience relaxed increment.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Convenience relaxed read.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// Renders the Prometheus text exposition format (`text/plain;
    /// version=0.0.4`).
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(2048);
        let counters: [(&str, &str, &AtomicU64); 13] = [
            (
                "bepi_connections_total",
                "Connections accepted by the listener.",
                &self.connections_total,
            ),
            (
                "bepi_requests_total",
                "HTTP requests successfully parsed.",
                &self.requests_total,
            ),
            (
                "bepi_queries_total",
                "Successful /query responses (HTTP 200).",
                &self.queries_total,
            ),
            (
                "bepi_cache_hits_total",
                "/query responses served from the result cache.",
                &self.cache_hits_total,
            ),
            (
                "bepi_cache_misses_total",
                "/query responses that ran the RWR solver.",
                &self.cache_misses_total,
            ),
            (
                "bepi_approx_requests_total",
                "/query responses answered by the approximate lane.",
                &self.approx_requests_total,
            ),
            (
                "bepi_degraded_total",
                "Connections admitted through the degraded overflow lane.",
                &self.degraded_total,
            ),
            (
                "bepi_rejected_total",
                "Connections shed with 503 (admission queue full).",
                &self.rejected_total,
            ),
            (
                "bepi_timeouts_total",
                "Requests shed with 504 (deadline expired before service).",
                &self.timeouts_total,
            ),
            (
                "bepi_client_errors_total",
                "4xx responses.",
                &self.client_errors_total,
            ),
            (
                "bepi_server_errors_total",
                "5xx responses other than queue rejections.",
                &self.server_errors_total,
            ),
            (
                "bepi_inflight_requests",
                "Requests currently being processed.",
                &self.in_flight,
            ),
            (
                "bepi_queue_depth",
                "Connections waiting in the admission queue.",
                &self.queue_depth,
            ),
        ];
        for (name, help, counter) in counters {
            let kind = if matches!(name, "bepi_inflight_requests" | "bepi_queue_depth") {
                "gauge"
            } else {
                "counter"
            };
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
            out.push_str(&format!("{name} {}\n", Self::get(counter)));
        }
        out.push_str(
            "# HELP bepi_query_latency_seconds End-to-end /query service time.\n\
             # TYPE bepi_query_latency_seconds histogram\n",
        );
        self.query_latency
            .render_into(&mut out, "bepi_query_latency_seconds");
        out
    }
}

/// A point-in-time sample of the live engine's counters, rendered by
/// [`render_live_metrics`]. Grouping the values in a struct keeps the
/// sample site (`GET /metrics`) readable as the counter set grows.
#[derive(Debug, Clone, Copy, Default)]
pub struct LiveMetricsSample {
    /// Served snapshot version.
    pub version: u64,
    /// Buffered, not-yet-visible updates.
    pub pending: usize,
    /// Background rebuilds completed.
    pub rebuilds: u64,
    /// Edge updates accepted.
    pub updates: u64,
    /// Duration of the most recent rebuild, in seconds.
    pub last_rebuild_seconds: f64,
    /// Served index bytes on the process heap.
    pub index_heap_bytes: usize,
    /// Served index bytes backed by a shared file mapping.
    pub index_mapped_bytes: usize,
    /// Rebuilds served by the numeric-only refactorization path.
    pub numeric_rebuilds: u64,
    /// Rebuilds that ran the full preprocessing pipeline.
    pub structural_rebuilds: u64,
    /// Cumulative wall seconds spent in numeric-path rebuilds.
    pub numeric_rebuild_seconds: f64,
    /// Cumulative wall seconds spent in full-path rebuilds.
    pub full_rebuild_seconds: f64,
}

/// Renders the live-update metric block appended to `/metrics` by the
/// daemon. Unlike [`Metrics`], these values live in the
/// `bepi_live::LiveEngine` (version counters, pending buffer), so they
/// are sampled at render time rather than accumulated here.
pub fn render_live_metrics(s: &LiveMetricsSample) -> String {
    let LiveMetricsSample {
        version,
        pending,
        rebuilds,
        updates,
        last_rebuild_seconds,
        index_heap_bytes,
        index_mapped_bytes,
        numeric_rebuilds,
        structural_rebuilds,
        numeric_rebuild_seconds,
        full_rebuild_seconds,
    } = *s;
    format!(
        "# HELP bepi_graph_version Snapshot version currently served (bumped by each hot-swap).\n\
         # TYPE bepi_graph_version gauge\n\
         bepi_graph_version {version}\n\
         # HELP bepi_index_heap_bytes Served index bytes held on the process heap.\n\
         # TYPE bepi_index_heap_bytes gauge\n\
         bepi_index_heap_bytes {index_heap_bytes}\n\
         # HELP bepi_index_mapped_bytes Served index bytes backed by a shared file mapping (page cache).\n\
         # TYPE bepi_index_mapped_bytes gauge\n\
         bepi_index_mapped_bytes {index_mapped_bytes}\n\
         # HELP bepi_pending_updates Edge updates buffered but not yet visible to queries.\n\
         # TYPE bepi_pending_updates gauge\n\
         bepi_pending_updates {pending}\n\
         # HELP bepi_rebuilds_total Background index rebuilds completed.\n\
         # TYPE bepi_rebuilds_total counter\n\
         bepi_rebuilds_total {rebuilds}\n\
         # HELP bepi_numeric_rebuilds_total Rebuilds served by the numeric-only (plan-frozen) refactorization path.\n\
         # TYPE bepi_numeric_rebuilds_total counter\n\
         bepi_numeric_rebuilds_total {numeric_rebuilds}\n\
         # HELP bepi_structural_rebuilds_total Rebuilds that ran the full preprocessing pipeline.\n\
         # TYPE bepi_structural_rebuilds_total counter\n\
         bepi_structural_rebuilds_total {structural_rebuilds}\n\
         # HELP bepi_rebuild_path_seconds Cumulative rebuild wall time, split by rebuild path.\n\
         # TYPE bepi_rebuild_path_seconds counter\n\
         bepi_rebuild_path_seconds{{path=\"numeric\"}} {numeric_rebuild_seconds}\n\
         bepi_rebuild_path_seconds{{path=\"full\"}} {full_rebuild_seconds}\n\
         # HELP bepi_updates_total Edge updates accepted via POST /edges.\n\
         # TYPE bepi_updates_total counter\n\
         bepi_updates_total {updates}\n\
         # HELP bepi_last_rebuild_seconds Duration of the most recent rebuild.\n\
         # TYPE bepi_last_rebuild_seconds gauge\n\
         bepi_last_rebuild_seconds {last_rebuild_seconds}\n"
    )
}

/// Renders the process-global observability block: the GMRES iteration
/// histogram and residual gauge fed by `bepi_core`'s query path, the WAL
/// fsync latency histogram fed by `bepi_live`, and one
/// `bepi_phase_seconds_total{phase=...}` family per registered span phase
/// (preprocessing stages, WAL replay, rebuild, checkpoint, hot-swap).
///
/// These instruments live in `bepi-obs` statics rather than in
/// [`Metrics`], so every component of the process — batch queries
/// included — is accounted in one registry.
pub fn render_obs_metrics() -> String {
    let mut out = String::with_capacity(2048);
    bepi_obs::telemetry::gmres_iterations().render_into(
        &mut out,
        "bepi_gmres_iterations",
        "Inner-solver iterations per cache-missing query.",
    );
    out.push_str(&format!(
        "# HELP bepi_gmres_residual Final relative residual of the most recent solve.\n\
         # TYPE bepi_gmres_residual gauge\n\
         bepi_gmres_residual {}\n",
        render_f64(bepi_obs::telemetry::gmres_residual().get())
    ));
    bepi_obs::telemetry::wal_fsync_seconds().render_into(
        &mut out,
        "bepi_wal_fsync_seconds",
        "WAL append fsync latency.",
    );
    let phases = bepi_obs::snapshot();
    if !phases.is_empty() {
        out.push_str(
            "# HELP bepi_phase_seconds_total Cumulative wall time per instrumented phase.\n\
             # TYPE bepi_phase_seconds_total counter\n",
        );
        for p in &phases {
            out.push_str(&format!(
                "bepi_phase_seconds_total{{phase=\"{}\"}} {}\n",
                p.name,
                render_f64(p.total.as_secs_f64())
            ));
        }
        out.push_str(
            "# HELP bepi_phase_invocations_total Completed spans per instrumented phase.\n\
             # TYPE bepi_phase_invocations_total counter\n",
        );
        for p in &phases {
            out.push_str(&format!(
                "bepi_phase_invocations_total{{phase=\"{}\"}} {}\n",
                p.name, p.count
            ));
        }
        out.push_str(
            "# HELP bepi_phase_max_seconds Longest single span per instrumented phase.\n\
             # TYPE bepi_phase_max_seconds gauge\n",
        );
        for p in &phases {
            out.push_str(&format!(
                "bepi_phase_max_seconds{{phase=\"{}\"}} {}\n",
                p.name,
                render_f64(p.max.as_secs_f64())
            ));
        }
    }
    out
}

/// Parses one counter value back out of rendered metrics text — shared by
/// the integration tests and the CLI's shutdown summary.
pub fn parse_metric(rendered: &str, name: &str) -> Option<f64> {
    rendered.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        let rest = rest.strip_prefix(' ')?;
        rest.trim().parse().ok()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = LatencyHistogram::default();
        h.observe(Duration::from_micros(100)); // <= 0.25ms bucket
        h.observe(Duration::from_millis(3)); // <= 5ms bucket
        h.observe(Duration::from_secs(5)); // +Inf bucket
        let mut out = String::new();
        h.render_into(&mut out, "x");
        assert!(out.contains("x_bucket{le=\"0.00025\"} 1"));
        assert!(out.contains("x_bucket{le=\"0.005\"} 2"));
        assert!(out.contains("x_bucket{le=\"1\"} 2"));
        assert!(out.contains("x_bucket{le=\"+Inf\"} 3"));
        assert!(out.contains("x_count 3"));
        assert_eq!(h.count(), 3);
    }

    /// Satellite: every rendered line must parse, and every `le` label
    /// must be a plain decimal float — never scientific notation, which
    /// Prometheus scrapers reject.
    #[test]
    fn every_rendered_line_parses_and_le_is_decimal() {
        let m = Metrics::default();
        m.query_latency.observe(Duration::from_micros(80));
        m.query_latency.observe(Duration::from_millis(40));
        bepi_obs::telemetry::record_solve(17, 3.2e-10);
        bepi_obs::telemetry::wal_fsync_seconds().observe(0.00007);
        bepi_obs::record_duration("test.metrics_render", Duration::from_millis(5));
        let mut text = m.render();
        text.push_str(&render_live_metrics(&LiveMetricsSample {
            version: 1,
            ..LiveMetricsSample::default()
        }));
        text.push_str(&render_obs_metrics());
        let mut le_labels = 0;
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("name value");
            assert!(!series.is_empty());
            value
                .parse::<f64>()
                .unwrap_or_else(|_| panic!("unparseable value in {line:?}"));
            if let Some(idx) = series.find("le=\"") {
                let rest = &series[idx + 4..];
                let le = &rest[..rest.find('"').expect("closing quote")];
                le_labels += 1;
                if le != "+Inf" {
                    assert!(
                        !le.contains(['e', 'E']),
                        "scientific notation in le label: {line:?}"
                    );
                    le.parse::<f64>().expect("le parses as f64");
                }
            }
        }
        // All three histograms rendered their bucket lines.
        assert!(le_labels >= 3 * 13, "saw only {le_labels} le labels");
        assert!(
            text.contains("bepi_query_latency_seconds_bucket{le=\"0.00025\"}"),
            "sub-millisecond bounds render as plain decimals"
        );
        assert!(text.contains("bepi_wal_fsync_seconds_bucket{le=\"0.00005\"}"));
    }

    #[test]
    fn obs_block_exposes_solver_and_phase_series() {
        bepi_obs::telemetry::record_solve(9, 1.5e-10);
        bepi_obs::record_duration("test.obs_block", Duration::from_millis(3));
        let text = render_obs_metrics();
        assert!(text.contains("# TYPE bepi_gmres_iterations histogram"));
        assert!(text.contains("# TYPE bepi_gmres_residual gauge"));
        assert!(text.contains("# TYPE bepi_wal_fsync_seconds histogram"));
        assert!(text.contains("bepi_phase_seconds_total{phase=\"test.obs_block\"}"));
        assert!(text.contains("bepi_phase_invocations_total{phase=\"test.obs_block\"}"));
        assert!(text.contains("bepi_phase_max_seconds{phase=\"test.obs_block\"}"));
        assert!(parse_metric(&text, "bepi_gmres_iterations_count").unwrap() >= 1.0);
        // Histogram buckets are monotone cumulative.
        let mut last = 0.0;
        for line in text
            .lines()
            .filter(|l| l.starts_with("bepi_gmres_iterations_bucket"))
        {
            let v: f64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "{line}");
            last = v;
        }
    }

    #[test]
    fn inflight_and_queue_depth_gauges_render() {
        let m = Metrics::default();
        m.in_flight.fetch_add(3, Ordering::Relaxed);
        m.queue_depth.fetch_add(5, Ordering::Relaxed);
        let text = m.render();
        assert_eq!(parse_metric(&text, "bepi_inflight_requests"), Some(3.0));
        assert_eq!(parse_metric(&text, "bepi_queue_depth"), Some(5.0));
        assert!(text.contains("# TYPE bepi_inflight_requests gauge"));
        assert!(text.contains("# TYPE bepi_queue_depth gauge"));
    }

    #[test]
    fn render_and_parse_roundtrip() {
        let m = Metrics::default();
        Metrics::inc(&m.cache_hits_total);
        Metrics::inc(&m.cache_hits_total);
        Metrics::inc(&m.queries_total);
        let text = m.render();
        assert_eq!(parse_metric(&text, "bepi_cache_hits_total"), Some(2.0));
        assert_eq!(parse_metric(&text, "bepi_queries_total"), Some(1.0));
        assert_eq!(parse_metric(&text, "bepi_rejected_total"), Some(0.0));
        assert_eq!(parse_metric(&text, "bepi_nonexistent"), None);
        // Every metric family carries HELP and TYPE lines.
        assert_eq!(
            text.matches("# HELP").count(),
            text.matches("# TYPE").count()
        );
    }

    #[test]
    fn live_block_renders_and_parses() {
        let text = render_live_metrics(&LiveMetricsSample {
            version: 3,
            pending: 17,
            rebuilds: 2,
            updates: 40,
            last_rebuild_seconds: 0.125,
            index_heap_bytes: 1024,
            index_mapped_bytes: 4096,
            numeric_rebuilds: 1,
            structural_rebuilds: 1,
            numeric_rebuild_seconds: 0.025,
            full_rebuild_seconds: 0.1,
        });
        assert_eq!(parse_metric(&text, "bepi_graph_version"), Some(3.0));
        assert_eq!(parse_metric(&text, "bepi_index_heap_bytes"), Some(1024.0));
        assert_eq!(parse_metric(&text, "bepi_index_mapped_bytes"), Some(4096.0));
        assert!(text.contains("# TYPE bepi_index_heap_bytes gauge"));
        assert!(text.contains("# TYPE bepi_index_mapped_bytes gauge"));
        assert_eq!(parse_metric(&text, "bepi_pending_updates"), Some(17.0));
        assert_eq!(parse_metric(&text, "bepi_rebuilds_total"), Some(2.0));
        assert_eq!(parse_metric(&text, "bepi_updates_total"), Some(40.0));
        assert_eq!(
            parse_metric(&text, "bepi_last_rebuild_seconds"),
            Some(0.125)
        );
        assert!(text.contains("# TYPE bepi_graph_version gauge"));
        assert!(text.contains("# TYPE bepi_pending_updates gauge"));
        assert!(text.contains("# TYPE bepi_rebuilds_total counter"));
        assert_eq!(
            parse_metric(&text, "bepi_numeric_rebuilds_total"),
            Some(1.0)
        );
        assert_eq!(
            parse_metric(&text, "bepi_structural_rebuilds_total"),
            Some(1.0)
        );
        assert_eq!(
            parse_metric(&text, "bepi_rebuild_path_seconds{path=\"numeric\"}"),
            Some(0.025)
        );
        assert_eq!(
            parse_metric(&text, "bepi_rebuild_path_seconds{path=\"full\"}"),
            Some(0.1)
        );
        assert_eq!(
            text.matches("# HELP").count(),
            text.matches("# TYPE").count()
        );
    }

    #[test]
    fn parse_does_not_confuse_prefixes() {
        let text = "bepi_cache_hits_total 7\nbepi_cache 9\n";
        // "bepi_cache" must not match the "bepi_cache_hits_total" line.
        assert_eq!(parse_metric(text, "bepi_cache"), Some(9.0));
        assert_eq!(parse_metric(text, "bepi_cache_hits_total"), Some(7.0));
    }
}
