//! TPA-style cumulative power iteration.
//!
//! TPA (Yoon, Jung & Kang — see PAPERS.md) observes that the RWR vector
//! is the geometric series `r = c Σ_{i≥0} (1-c)^i (Ã^T)^i q`, and that a
//! short truncation of that series already ranks the top-k correctly:
//! the omitted tail `Σ_{i>S}` carries at most `(1-c)^{S+1}` of the walk
//! mass, spread thinly across the graph. This module computes exactly
//! that truncation with the workspace's deterministic SpMV kernel, so the
//! estimate is a pure function of `(seed, matrix)` — no sampling noise,
//! bit-identical at any thread count — and its accuracy knob (`terms`)
//! trades latency for tail mass in closed form.

use bepi_core::RwrScores;
use bepi_sparse::{Csr, Result, SparseError};

/// Computes the truncated cumulative power iteration for `seed` over
/// `at`, the **transpose of the row-normalized adjacency** `Ã^T`
/// (columns of `at` sum to 1 except for deadends, whose mass leaks —
/// the exact solvers' Equation 4 semantics).
///
/// Runs at most `terms` matrix-vector products, stopping early once the
/// undelivered tail mass falls below `tail_tol`. The returned `residual`
/// is that tail bound `(1-c)^{S+1}` — exact accounting of what the
/// truncation left out. Deterministic: `bepi_par`'s SpMV partitions rows
/// with fixed per-row dot products, so the scores are bit-identical to
/// the serial loop at any thread count.
pub fn tpa_scores(at: &Csr, c: f64, seed: usize, terms: usize, tail_tol: f64) -> Result<RwrScores> {
    tpa_scores_stable(at, c, seed, terms, tail_tol, 0, 0)
}

/// [`tpa_scores`] with an additional *ranking-stability* early stop:
/// besides the tail-mass tolerance, iteration also stops once the
/// top-`stable_k` node set has not changed for `stable_rounds`
/// consecutive terms (`stable_k = 0` disables this).
///
/// At serving restart probabilities (`c = 0.05`) the tail bound decays
/// slowly — `(1-c)^{S+1}` needs ~180 terms to reach 1e-4 — but the
/// top-k *ranking* typically freezes after a handful of terms because
/// later terms spread mass almost uniformly. The stability stop cuts
/// deep term budgets down to that freeze point; the survival-scaled
/// tail correction applied on exit (see the in-function comment) then
/// recovers most of the truncated mass, which is what lets a very
/// shallow series still rank top-20 accurately. Both are pure
/// functions of the score vector (score-descending, node-index
/// tie-break), so determinism is preserved; the reported `residual` is
/// still the honest tail bound at whatever term iteration stopped.
pub fn tpa_scores_stable(
    at: &Csr,
    c: f64,
    seed: usize,
    terms: usize,
    tail_tol: f64,
    stable_k: usize,
    stable_rounds: usize,
) -> Result<RwrScores> {
    if at.nrows() != at.ncols() {
        return Err(SparseError::ShapeMismatch {
            left: at.shape(),
            right: at.shape(),
            op: "tpa_scores (operator must be square)",
        });
    }
    let n = at.nrows();
    if !(c > 0.0 && c < 1.0) {
        return Err(SparseError::Numerical(format!(
            "restart probability must be in (0, 1), got {c}"
        )));
    }
    if seed >= n {
        return Err(SparseError::IndexOutOfBounds {
            index: (seed, 0),
            shape: (n, n),
        });
    }
    if terms == 0 {
        return Err(SparseError::Numerical(
            "tpa_scores needs at least one term".into(),
        ));
    }

    // x holds (Ã^T)^i q; r accumulates c (1-c)^i x.
    let mut x = vec![0.0f64; n];
    x[seed] = 1.0;
    let mut y = vec![0.0f64; n];
    let mut r = vec![0.0f64; n];
    r[seed] = c;
    let mut weight = 1.0f64; // (1-c)^i
    let mut ran = 0usize;
    let mut prev_top: Vec<usize> = Vec::new();
    let mut stable = 0usize;
    let mut mass_prev = 1.0f64; // ‖x_{i-1}‖₁ (walk survival, ≤ 1)
    let mut mass = 1.0f64; // ‖x_i‖₁
    for _ in 1..=terms {
        at.mul_vec_into(&x, &mut y)?;
        std::mem::swap(&mut x, &mut y);
        weight *= 1.0 - c;
        ran += 1;
        mass_prev = mass;
        mass = 0.0;
        let cw = c * weight;
        for (ri, xi) in r.iter_mut().zip(&x) {
            *ri += cw * xi;
            mass += xi;
        }
        // Tail bound after i terms: Σ_{j>i} c(1-c)^j = (1-c)^{i+1}.
        if weight * (1.0 - c) < tail_tol {
            break;
        }
        if stable_k > 0 {
            let top = top_set(&r, stable_k);
            if top == prev_top {
                stable += 1;
                if stable >= stable_rounds {
                    break;
                }
            } else {
                stable = 0;
                prev_top = top;
            }
        }
    }
    // Closed-form tail estimate: the truncated series Σ_{j>S} c(1-c)^j
    // (Ã^T)^j q is approximated by geometric continuation of the last
    // iterate — x_{S+j} ≈ ρ^j x_S, where ρ = ‖x_S‖₁/‖x_{S-1}‖₁ is the
    // observed per-step walk survival (deadends leak mass, so ρ < 1 on
    // leaky graphs and the tail correctly shrinks). Summing the
    // geometric series gives tail ≈ c(1-c)^S · q/(1-q) · x_S with
    // q = (1-c)ρ — one axpy instead of another hundred matrix products,
    // and exactly (1-c)^{S+1} x_S on deadend-free graphs (ρ = 1). A
    // pure function of x_S, so determinism is untouched. The reported
    // residual remains the honest bound on what the estimate replaced.
    let rho = if mass_prev > 0.0 {
        mass / mass_prev
    } else {
        0.0
    };
    let q = (1.0 - c) * rho.min(1.0);
    let coef = c * weight * q / (1.0 - q);
    for (ri, xi) in r.iter_mut().zip(&x) {
        *ri += coef * xi;
    }
    Ok(RwrScores {
        scores: r,
        iterations: ran,
        residual: weight * (1.0 - c),
    })
}

/// The top-`k` node ids of `scores` (score descending, node-index
/// tie-break), returned sorted by id so two calls compare as sets.
fn top_set(scores: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    if k < idx.len() {
        idx.select_nth_unstable_by(k, |&a, &b| {
            scores[b]
                .partial_cmp(&scores[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        idx.truncate(k);
    }
    idx.sort_unstable();
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use bepi_graph::{generators, Graph};

    fn operator(g: &Graph) -> Csr {
        g.row_normalized().transpose()
    }

    #[test]
    fn converges_to_the_exact_solution() {
        use bepi_core::prelude::*;
        let g = generators::rmat(7, 500, Default::default(), 61).unwrap();
        let c = 0.05;
        let exact = BePi::preprocess(
            &g,
            &BePiConfig {
                c,
                ..BePiConfig::default()
            },
        )
        .unwrap()
        .query(4)
        .unwrap();
        let at = operator(&g);
        let approx = tpa_scores(&at, c, 4, 2_000, 1e-12).unwrap();
        for (u, (&a, &e)) in approx.scores.iter().zip(&exact.scores).enumerate() {
            assert!((a - e).abs() < 1e-8, "node {u}: tpa {a} vs exact {e}");
        }
        assert!(approx.residual < 1e-12);
    }

    #[test]
    fn truncation_tail_is_the_reported_residual() {
        let g = generators::erdos_renyi(50, 300, 9).unwrap();
        let at = operator(&g);
        let c = 0.2f64;
        let r = tpa_scores(&at, c, 1, 10, 0.0).unwrap();
        assert_eq!(r.iterations, 10);
        let expected_tail = (1.0 - c).powi(11);
        assert!((r.residual - expected_tail).abs() < 1e-15);
        // On a deadend-free strongly-reachable graph the delivered mass
        // is 1 - tail (up to leaked deadend mass, absent here if any).
        let total: f64 = r.scores.iter().sum();
        assert!(total <= 1.0 + 1e-12);
    }

    #[test]
    fn early_stop_honors_tail_tolerance() {
        let g = generators::erdos_renyi(30, 120, 2).unwrap();
        let at = operator(&g);
        let r = tpa_scores(&at, 0.5, 0, 1_000, 1e-6).unwrap();
        assert!(r.iterations < 1_000, "must stop early at c=0.5");
        assert!(r.residual < 1e-6);
    }

    #[test]
    fn identical_across_thread_counts() {
        let g = generators::rmat(8, 2_000, Default::default(), 33).unwrap();
        let at = operator(&g);
        bepi_par::set_threads(1);
        let base = tpa_scores(&at, 0.05, 7, 64, 0.0).unwrap();
        for t in [2, 4, 8] {
            bepi_par::set_threads(t);
            let r = tpa_scores(&at, 0.05, 7, 64, 0.0).unwrap();
            assert_eq!(r.scores, base.scores, "thread count {t}");
        }
        bepi_par::set_threads(1);
    }

    #[test]
    fn stability_stop_freezes_top_k_early() {
        let g = generators::rmat(9, 4_000, Default::default(), 17).unwrap();
        let at = operator(&g);
        let c = 0.05;
        let full = tpa_scores(&at, c, 3, 64, 0.0).unwrap();
        let stopped = tpa_scores_stable(&at, c, 3, 64, 0.0, 20, 2).unwrap();
        assert!(
            stopped.iterations < full.iterations,
            "stability stop must cut terms ({} vs {})",
            stopped.iterations,
            full.iterations
        );
        // The stop fires only once the top-20 set stopped moving; ranks
        // can still drift slightly afterwards, but the stopped run must
        // recover nearly all of the deep run's top-20.
        let deep = super::top_set(&full.scores, 20);
        let overlap = super::top_set(&stopped.scores, 20)
            .iter()
            .filter(|n| deep.contains(n))
            .count();
        assert!(overlap >= 18, "only {overlap}/20 of the deep top-20 kept");
        // Residual stays the honest tail bound for the terms actually run.
        let expected = (1.0 - c).powi(stopped.iterations as i32 + 1);
        assert!((stopped.residual - expected).abs() < 1e-15);
        // stable_k = 0 disables the stop entirely.
        let off = tpa_scores_stable(&at, c, 3, 64, 0.0, 0, 2).unwrap();
        assert_eq!(off.iterations, full.iterations);
        assert_eq!(off.scores, full.scores);
    }

    #[test]
    fn input_validation() {
        let g = Graph::from_edges(4, &[(0, 1)]).unwrap();
        let at = operator(&g);
        assert!(tpa_scores(&at, 0.0, 0, 10, 0.0).is_err());
        assert!(tpa_scores(&at, 1.0, 0, 10, 0.0).is_err());
        assert!(tpa_scores(&at, 0.2, 9, 10, 0.0).is_err());
        assert!(tpa_scores(&at, 0.2, 0, 0, 0.0).is_err());
    }
}
