//! Extension experiment: exact BePI vs the approximate methods the
//! paper's related work surveys (Monte Carlo estimation, forward push).
//!
//! The paper excludes approximate methods from its evaluation because all
//! compared methods are exact; this table quantifies what that exactness
//! costs — per-query time vs maximum absolute error against the exact
//! solution, on a mid-size suite member.

use crate::table::{fmt_secs, Table};
use bepi_core::approx::{forward_push, monte_carlo};
use bepi_core::prelude::*;
use bepi_graph::Dataset;
use std::fmt::Write as _;
use std::time::Instant;

/// Seeds averaged per configuration.
const SEEDS: usize = 10;

/// Runs the exact-vs-approximate comparison.
pub fn run() -> String {
    let mut out = String::new();
    let ds = Dataset::Wikipedia;
    let spec = ds.spec();
    let g = ds.generate();
    let _ = writeln!(
        out,
        "Extension — exact BePI vs approximate RWR on {} ({} seeds)\n",
        spec.name, SEEDS
    );
    let bepi = BePi::preprocess(
        &g,
        &BePiConfig {
            hub_ratio: Some(spec.hub_ratio),
            ..BePiConfig::default()
        },
    )
    .expect("preprocess");
    let seeds: Vec<usize> = (0..SEEDS).map(|i| (i * 409 + 1) % g.n()).collect();
    // Exact references from BePI at tight tolerance.
    let truth: Vec<Vec<f64>> = seeds
        .iter()
        .map(|&s| bepi.query(s).expect("query").scores)
        .collect();

    let mut t = Table::new(vec!["method", "parameter", "avg query", "max |err|"]);
    // BePI itself (the exact row: error vs its own tight solve is ~0).
    {
        let t0 = Instant::now();
        for &s in &seeds {
            let _ = bepi.query(s).expect("query");
        }
        t.row(vec![
            "BePI (exact)".to_string(),
            "eps=1e-9".to_string(),
            fmt_secs(t0.elapsed().as_secs_f64() / SEEDS as f64),
            "0".to_string(),
        ]);
    }
    for walks in [10_000usize, 100_000] {
        let t0 = Instant::now();
        let mut max_err = 0.0f64;
        for (i, &s) in seeds.iter().enumerate() {
            let mc = monte_carlo(&g, 0.05, s, walks, 99).expect("mc");
            for (a, b) in mc.scores.iter().zip(&truth[i]) {
                max_err = max_err.max((a - b).abs());
            }
        }
        t.row(vec![
            "Monte Carlo".to_string(),
            format!("{walks} walks"),
            fmt_secs(t0.elapsed().as_secs_f64() / SEEDS as f64),
            format!("{max_err:.2e}"),
        ]);
    }
    for eps in [1e-5f64, 1e-7] {
        let t0 = Instant::now();
        let mut max_err = 0.0f64;
        let mut touched = 0usize;
        for (i, &s) in seeds.iter().enumerate() {
            let pr = forward_push(&g, 0.05, s, eps).expect("push");
            touched += pr.touched;
            for (a, b) in pr.scores.scores.iter().zip(&truth[i]) {
                max_err = max_err.max((a - b).abs());
            }
        }
        t.row(vec![
            "Forward push".to_string(),
            format!("eps={eps:.0e} (touch {})", touched / SEEDS),
            fmt_secs(t0.elapsed().as_secs_f64() / SEEDS as f64),
            format!("{max_err:.2e}"),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "Shape: approximate methods trade orders of magnitude of accuracy for locality/speed;\n\
         exact BePI answers at full precision in comparable time once preprocessed."
    );
    out
}
