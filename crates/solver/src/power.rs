//! Power iteration for RWR (Section 2.2 of the paper).
//!
//! Repeats `r ← (1−c) Ã^T r + c q` until `‖r_i − r_{i−1}‖₂ ≤ ε`. This is
//! the memory-light iterative baseline of Figures 1(c), 10 and 12; it
//! converges for any `0 < c < 1` because the iteration operator has
//! spectral radius at most `1 − c`.

use bepi_sparse::vecops::dist2;
use bepi_sparse::{Csr, Result, SparseError};

/// Configuration for power iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerConfig {
    /// Convergence tolerance ε on `‖r_i − r_{i−1}‖₂`.
    pub tol: f64,
    /// Iteration cap.
    pub max_iters: usize,
}

impl Default for PowerConfig {
    fn default() -> Self {
        Self {
            tol: 1e-9,
            max_iters: 10_000,
        }
    }
}

/// Outcome of a power-iteration run.
#[derive(Debug, Clone)]
pub struct PowerResult {
    /// The RWR score vector.
    pub r: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final update norm `‖r_i − r_{i−1}‖₂`.
    pub delta: f64,
    /// Whether the tolerance was reached.
    pub converged: bool,
    /// Snapshot of `r` after each iteration when requested (Figure 10
    /// plots the error trajectory); empty unless `track_history`.
    pub history: Vec<Vec<f64>>,
}

/// Runs power iteration with the row-normalized adjacency matrix `Ã`
/// (deadend rows all-zero), restart probability `c`, and starting vector
/// `q` (the seed indicator).
pub fn power_iteration(
    a_norm: &Csr,
    c: f64,
    q: &[f64],
    cfg: &PowerConfig,
    track_history: bool,
) -> Result<PowerResult> {
    let n = a_norm.nrows();
    if a_norm.ncols() != n {
        return Err(SparseError::ShapeMismatch {
            left: a_norm.shape(),
            right: (n, n),
            op: "power_iteration (matrix must be square)",
        });
    }
    if q.len() != n {
        return Err(SparseError::VectorLength {
            expected: n,
            actual: q.len(),
        });
    }
    if !(0.0..1.0).contains(&c) || c == 0.0 {
        return Err(SparseError::Numerical(format!(
            "restart probability must satisfy 0 < c < 1, got {c}"
        )));
    }
    let mut r: Vec<f64> = q.iter().map(|&v| c * v).collect();
    let mut next = vec![0.0; n];
    let mut history = Vec::new();
    let mut delta = f64::INFINITY;
    for it in 1..=cfg.max_iters {
        // next = (1-c) Ã^T r + c q
        a_norm.mul_vec_transposed_into(&r, &mut next)?;
        for ((nx, qi), _) in next.iter_mut().zip(q).zip(0..n) {
            *nx = (1.0 - c) * *nx + c * qi;
        }
        delta = dist2(&next, &r);
        std::mem::swap(&mut r, &mut next);
        if track_history {
            history.push(r.clone());
        }
        if delta <= cfg.tol {
            return Ok(PowerResult {
                r,
                iterations: it,
                delta,
                converged: true,
                history,
            });
        }
    }
    Ok(PowerResult {
        r,
        iterations: cfg.max_iters,
        delta,
        converged: false,
        history,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bepi_graph::generators;

    fn seed_vec(n: usize, s: usize) -> Vec<f64> {
        let mut q = vec![0.0; n];
        q[s] = 1.0;
        q
    }

    #[test]
    fn converges_on_cycle() {
        let g = generators::cycle(5);
        let a = g.row_normalized();
        let q = seed_vec(5, 0);
        let res = power_iteration(&a, 0.15, &q, &PowerConfig::default(), false).unwrap();
        assert!(res.converged);
        // On a deadend-free graph, RWR scores sum to 1.
        let sum: f64 = res.r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum {sum}");
        // Seed node has the highest score.
        assert!(res.r[0] > res.r[1]);
    }

    #[test]
    fn matches_linear_system_solution() {
        let g = generators::example_graph();
        let a = g.row_normalized();
        let c = 0.05;
        let q = seed_vec(8, 0);
        let res = power_iteration(&a, c, &q, &PowerConfig::default(), false).unwrap();
        // Verify H r = c q with H = I − (1−c)Ã^T.
        let atr = a.mul_vec_transposed(&res.r).unwrap();
        for i in 0..8 {
            let hr = res.r[i] - (1.0 - c) * atr[i];
            assert!((hr - c * q[i]).abs() < 1e-7, "row {i}");
        }
    }

    #[test]
    fn deadends_leak_mass() {
        let g = generators::path(3); // node 2 is a deadend
        let a = g.row_normalized();
        let q = seed_vec(3, 0);
        let res = power_iteration(&a, 0.2, &q, &PowerConfig::default(), false).unwrap();
        let sum: f64 = res.r.iter().sum();
        assert!(sum < 1.0, "deadend graphs have score sum < 1, got {sum}");
        assert!(res.r.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn history_tracks_iterations() {
        let g = generators::cycle(4);
        let a = g.row_normalized();
        let q = seed_vec(4, 1);
        let res = power_iteration(&a, 0.3, &q, &PowerConfig::default(), true).unwrap();
        assert_eq!(res.history.len(), res.iterations);
        assert_eq!(res.history.last().unwrap(), &res.r);
    }

    #[test]
    fn invalid_restart_probability_rejected() {
        let g = generators::cycle(3);
        let a = g.row_normalized();
        let q = seed_vec(3, 0);
        assert!(power_iteration(&a, 0.0, &q, &PowerConfig::default(), false).is_err());
        assert!(power_iteration(&a, 1.5, &q, &PowerConfig::default(), false).is_err());
    }

    #[test]
    fn iteration_cap() {
        let g = generators::cycle(50);
        let a = g.row_normalized();
        let q = seed_vec(50, 0);
        let cfg = PowerConfig {
            tol: 1e-30,
            max_iters: 7,
        };
        let res = power_iteration(&a, 0.05, &q, &cfg, false).unwrap();
        assert!(!res.converged);
        assert_eq!(res.iterations, 7);
    }

    #[test]
    fn higher_restart_prob_converges_faster() {
        let g = generators::erdos_renyi(100, 500, 3).unwrap();
        let a = g.row_normalized();
        let q = seed_vec(100, 5);
        let slow = power_iteration(&a, 0.05, &q, &PowerConfig::default(), false).unwrap();
        let fast = power_iteration(&a, 0.5, &q, &PowerConfig::default(), false).unwrap();
        assert!(fast.iterations < slow.iterations);
    }
}
