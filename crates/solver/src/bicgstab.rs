//! BiCGSTAB — an alternative Krylov solver for the Schur system.
//!
//! Section 2.2 of the paper: "Since the matrix H is non-singular and
//! non-symmetric, any Krylov subspace method, such as GMRES, which handles
//! a non-symmetric matrix, can be applied." BiCGSTAB (van der Vorst 1992)
//! is the other standard choice: short recurrences (O(1) vectors instead
//! of GMRES's O(restart)), at the cost of a less smooth residual. The
//! ablation benches compare both as BePI's inner solver.

use crate::linop::{LinOp, Preconditioner};
use bepi_sparse::vecops::{axpy, dot, norm2};
use bepi_sparse::{Result, SparseError};

/// BiCGSTAB configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BiCgStabConfig {
    /// Relative residual tolerance.
    pub tol: f64,
    /// Cap on iterations (each iteration is two operator applications).
    pub max_iters: usize,
}

impl Default for BiCgStabConfig {
    fn default() -> Self {
        Self {
            tol: 1e-9,
            max_iters: 10_000,
        }
    }
}

/// Outcome of a BiCGSTAB run.
#[derive(Debug, Clone)]
pub struct BiCgStabResult {
    /// Solution estimate.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative residual.
    pub residual: f64,
    /// Whether the tolerance was reached.
    pub converged: bool,
}

/// Solves `A x = b` by right-preconditioned BiCGSTAB
/// (`A M^{-1} y = b`, `x = M^{-1} y`); pass `None` for unpreconditioned.
pub fn bicgstab<A: LinOp>(
    a: &A,
    b: &[f64],
    precond: Option<&dyn Preconditioner>,
    cfg: &BiCgStabConfig,
) -> Result<BiCgStabResult> {
    let n = a.nrows();
    if a.ncols() != n {
        return Err(SparseError::ShapeMismatch {
            left: (a.nrows(), a.ncols()),
            right: (n, n),
            op: "bicgstab (operator must be square)",
        });
    }
    if b.len() != n {
        return Err(SparseError::VectorLength {
            expected: n,
            actual: b.len(),
        });
    }
    let bnorm = norm2(b);
    if bnorm == 0.0 {
        return Ok(BiCgStabResult {
            x: vec![0.0; n],
            iterations: 0,
            residual: 0.0,
            converged: true,
        });
    }
    let apply_m = |r: &[f64], z: &mut [f64]| match precond {
        Some(m) => m.apply(r, z),
        None => z.copy_from_slice(r),
    };

    let mut x = vec![0.0; n];
    let mut r = b.to_vec(); // r = b − A x₀ = b
    let r_hat = r.clone();
    let mut rho = 1.0f64;
    let mut alpha = 1.0f64;
    let mut omega = 1.0f64;
    let mut v = vec![0.0; n];
    let mut p = vec![0.0; n];
    let mut phat = vec![0.0; n];
    let mut shat = vec![0.0; n];
    let mut t = vec![0.0; n];

    for it in 1..=cfg.max_iters {
        let rho_new = dot(&r_hat, &r);
        if rho_new.abs() < 1e-300 {
            // Breakdown: restart from the current residual.
            return Ok(BiCgStabResult {
                x,
                iterations: it,
                residual: norm2(&r) / bnorm,
                converged: norm2(&r) / bnorm <= cfg.tol,
            });
        }
        let beta = (rho_new / rho) * (alpha / omega);
        rho = rho_new;
        // p = r + beta (p − omega v)
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        apply_m(&p, &mut phat);
        a.apply(&phat, &mut v);
        alpha = rho / dot(&r_hat, &v);
        // s = r − alpha v (reuse r)
        axpy(-alpha, &v, &mut r);
        let s_norm = norm2(&r);
        if s_norm / bnorm <= cfg.tol {
            axpy(alpha, &phat, &mut x);
            return Ok(BiCgStabResult {
                x,
                iterations: it,
                residual: s_norm / bnorm,
                converged: true,
            });
        }
        apply_m(&r, &mut shat);
        a.apply(&shat, &mut t);
        let tt = dot(&t, &t);
        omega = if tt > 0.0 { dot(&t, &r) / tt } else { 0.0 };
        // x += alpha p̂ + omega ŝ
        axpy(alpha, &phat, &mut x);
        axpy(omega, &shat, &mut x);
        // r = s − omega t
        axpy(-omega, &t, &mut r);
        let res = norm2(&r) / bnorm;
        if res <= cfg.tol {
            return Ok(BiCgStabResult {
                x,
                iterations: it,
                residual: res,
                converged: true,
            });
        }
        if omega == 0.0 {
            return Ok(BiCgStabResult {
                x,
                iterations: it,
                residual: res,
                converged: false,
            });
        }
    }
    let res = norm2(&r) / bnorm;
    Ok(BiCgStabResult {
        x,
        iterations: cfg.max_iters,
        residual: res,
        converged: res <= cfg.tol,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ilu0::Ilu0;
    use bepi_sparse::{Coo, Csr};

    fn dd_matrix(n: usize) -> Csr {
        let mut coo = Coo::new(n, n).unwrap();
        for i in 0..n {
            let mut off = 0.0;
            for d in [1usize, 5, 11] {
                let j = (i + d) % n;
                if j != i {
                    let v = 0.2 + ((i * 7 + j * 3) % 5) as f64 * 0.1;
                    coo.push(i, j, -v).unwrap();
                    off += v;
                }
            }
            coo.push(i, i, off + 0.4).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn solves_dd_system() {
        let a = dd_matrix(70);
        let x_true: Vec<f64> = (0..70).map(|i| (i as f64 * 0.13).sin()).collect();
        let b = a.mul_vec(&x_true).unwrap();
        let r = bicgstab(&a, &b, None, &BiCgStabConfig::default()).unwrap();
        assert!(r.converged, "residual {}", r.residual);
        for (g, w) in r.x.iter().zip(&x_true) {
            assert!((g - w).abs() < 1e-6, "{g} vs {w}");
        }
    }

    #[test]
    fn agrees_with_gmres() {
        let a = dd_matrix(50);
        let b: Vec<f64> = (0..50).map(|i| ((i + 1) as f64).recip()).collect();
        let bi = bicgstab(&a, &b, None, &BiCgStabConfig::default()).unwrap();
        let gm = crate::gmres(&a, &b, None, None, &crate::GmresConfig::default()).unwrap();
        for (x, y) in bi.x.iter().zip(&gm.x) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn preconditioning_reduces_iterations() {
        let a = dd_matrix(150);
        // Non-constant rhs: the all-ones vector is an eigenvector of the
        // constant-row-sum test matrix and would converge in one step.
        let b: Vec<f64> = (0..150).map(|i| (i as f64 * 0.31).sin() + 0.1).collect();
        let plain = bicgstab(&a, &b, None, &BiCgStabConfig::default()).unwrap();
        let ilu = Ilu0::factor(&a).unwrap();
        let pre = bicgstab(
            &a,
            &b,
            Some(&ilu as &dyn Preconditioner),
            &BiCgStabConfig::default(),
        )
        .unwrap();
        assert!(plain.converged && pre.converged);
        assert!(
            pre.iterations <= plain.iterations,
            "precond {} vs plain {}",
            pre.iterations,
            plain.iterations
        );
        for (x, y) in pre.x.iter().zip(&plain.x) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn zero_rhs() {
        let a = dd_matrix(10);
        let r = bicgstab(&a, &[0.0; 10], None, &BiCgStabConfig::default()).unwrap();
        assert!(r.converged);
        assert_eq!(r.iterations, 0);
        assert_eq!(r.x, vec![0.0; 10]);
    }

    #[test]
    fn iteration_cap() {
        let a = dd_matrix(60);
        let cfg = BiCgStabConfig {
            tol: 1e-30,
            max_iters: 5,
        };
        let r = bicgstab(&a, &vec![1.0; 60], None, &cfg).unwrap();
        assert!(!r.converged);
        assert_eq!(r.iterations, 5);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = dd_matrix(5);
        assert!(bicgstab(&a, &[1.0; 4], None, &BiCgStabConfig::default()).is_err());
    }
}
