//! Degree-distribution and connectivity statistics.
//!
//! Used by the dataset registry to verify the synthetic suite has the
//! structural properties (power-law degrees, deadend fraction, GCC size)
//! that the paper's real graphs have, and by `table2_datasets` to print the
//! analogue of Table 2.

use crate::graph::Graph;

/// Summary statistics of a graph, mirroring what Table 2 reports plus the
/// structural properties the substitution argument relies on.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of nodes.
    pub n: usize,
    /// Number of edges.
    pub m: usize,
    /// Number of deadend nodes (no out-edges).
    pub deadends: usize,
    /// Maximum total degree.
    pub max_degree: usize,
    /// Mean total degree.
    pub mean_degree: f64,
    /// MLE power-law exponent of the total-degree distribution
    /// (`None` if the graph is too small or degenerate).
    pub power_law_alpha: Option<f64>,
    /// Size of the largest weakly connected component.
    pub gcc_size: usize,
}

/// Computes summary statistics.
pub fn graph_stats(g: &Graph) -> GraphStats {
    let degs = g.total_degrees();
    let max_degree = degs.iter().copied().max().unwrap_or(0);
    let mean_degree = if degs.is_empty() {
        0.0
    } else {
        degs.iter().sum::<usize>() as f64 / degs.len() as f64
    };
    GraphStats {
        n: g.n(),
        m: g.m(),
        deadends: g.deadend_count(),
        max_degree,
        mean_degree,
        power_law_alpha: power_law_alpha(&degs, 1),
        gcc_size: weakly_connected_components(g)
            .1
            .into_iter()
            .max()
            .unwrap_or(0),
    }
}

/// Continuous MLE estimate of the power-law exponent
/// `α = 1 + n / Σ ln(d_i / d_min)` over degrees `≥ d_min`.
pub fn power_law_alpha(degrees: &[usize], d_min: usize) -> Option<f64> {
    let d_min = d_min.max(1) as f64;
    let tail: Vec<f64> = degrees
        .iter()
        .filter(|&&d| d as f64 >= d_min)
        .map(|&d| d as f64)
        .collect();
    if tail.len() < 10 {
        return None;
    }
    let log_sum: f64 = tail.iter().map(|d| (d / d_min).ln()).sum();
    if log_sum <= 0.0 {
        return None;
    }
    Some(1.0 + tail.len() as f64 / log_sum)
}

/// Weakly connected components via union-find on the symmetrized structure.
/// Returns `(component_id_per_node, component_sizes)`.
pub fn weakly_connected_components(g: &Graph) -> (Vec<usize>, Vec<usize>) {
    let n = g.n();
    let mut parent: Vec<u32> = (0..n as u32).collect();

    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize]; // path halving
            x = parent[x as usize];
        }
        x
    }

    for u in 0..n {
        for v in g.out_neighbors(u) {
            let ru = find(&mut parent, u as u32);
            let rv = find(&mut parent, v as u32);
            if ru != rv {
                // Union by index keeps it deterministic.
                let (lo, hi) = if ru < rv { (ru, rv) } else { (rv, ru) };
                parent[hi as usize] = lo;
            }
        }
    }
    let mut comp_of_root = std::collections::HashMap::new();
    let mut ids = vec![0usize; n];
    let mut sizes: Vec<usize> = Vec::new();
    for u in 0..n {
        let root = find(&mut parent, u as u32);
        let next_id = sizes.len();
        let id = *comp_of_root.entry(root).or_insert(next_id);
        if id == sizes.len() {
            sizes.push(0);
        }
        ids[u] = id;
        sizes[id] += 1;
    }
    (ids, sizes)
}

/// Degree histogram: `hist[d] = number of nodes with total degree d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let degs = g.total_degrees();
    let max = degs.iter().copied().max().unwrap_or(0);
    let mut hist = vec![0usize; max + 1];
    for d in degs {
        hist[d] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn stats_on_cycle() {
        let g = generators::cycle(10);
        let s = graph_stats(&g);
        assert_eq!(s.n, 10);
        assert_eq!(s.m, 10);
        assert_eq!(s.deadends, 0);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.gcc_size, 10);
    }

    #[test]
    fn components_of_disconnected_graph() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let (ids, sizes) = weakly_connected_components(&g);
        assert_eq!(sizes.iter().sum::<usize>(), 6);
        assert_eq!(sizes.len(), 3); // {0,1,2}, {3,4}, {5}
        assert_eq!(ids[0], ids[2]);
        assert_eq!(ids[3], ids[4]);
        assert_ne!(ids[0], ids[3]);
        assert_ne!(ids[5], ids[0]);
    }

    #[test]
    fn components_treat_direction_as_undirected() {
        // 0→1, 2→1: all weakly connected.
        let g = Graph::from_edges(3, &[(0, 1), (2, 1)]).unwrap();
        let (_, sizes) = weakly_connected_components(&g);
        assert_eq!(sizes, vec![3]);
    }

    #[test]
    fn power_law_alpha_on_rmat_is_plausible() {
        let g = generators::rmat(11, 20_000, generators::RmatParams::default(), 3).unwrap();
        let alpha = graph_stats(&g).power_law_alpha.unwrap();
        assert!(
            (1.2..4.0).contains(&alpha),
            "alpha {alpha} outside plausible power-law range"
        );
    }

    #[test]
    fn power_law_alpha_degenerate_cases() {
        assert_eq!(power_law_alpha(&[], 1), None);
        // All-equal degrees: log_sum = 0.
        assert_eq!(power_law_alpha(&[1; 20], 1), None);
    }

    #[test]
    fn degree_histogram_sums_to_n() {
        let g = generators::star(7);
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), 7);
        assert_eq!(h[12], 1); // hub: 6 out + 6 in
        assert_eq!(h[2], 6); // leaves: 1 out + 1 in
    }
}
