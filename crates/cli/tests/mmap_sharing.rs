//! Cross-process mmap sharing: two `bepi serve --mmap` daemons over the
//! *same* v6 index must (a) serve bit-identical bytes and (b) actually
//! share the index pages through the page cache — which is the whole
//! premise of `bepi route` scale-out (N shard caches, one index).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const BIN: &str = env!("CARGO_BIN_EXE_bepi");
const N: usize = 80;

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bepi_mmap_sharing_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn preprocess(dir: &Path) -> PathBuf {
    let edges: String = (0..N)
        .flat_map(|i| [(i, (i + 1) % N), (i, (i + 7) % N)])
        .map(|(u, v)| format!("{u} {v}\n"))
        .collect();
    let edges_path = dir.join("edges.txt");
    std::fs::write(&edges_path, edges).unwrap();
    let index = dir.join("graph.bepi");
    let out = Command::new(BIN)
        .args([
            "preprocess",
            edges_path.to_str().unwrap(),
            index.to_str().unwrap(),
            "--format",
            "v6",
            "--embed-graph",
        ])
        .output()
        .expect("run bepi preprocess");
    assert!(
        out.status.success(),
        "preprocess failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    index
}

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn(index: &Path, shard_id: u64) -> Self {
        let errlog = std::fs::File::create(
            index
                .parent()
                .unwrap()
                .join(format!("daemon{shard_id}.err")),
        )
        .unwrap();
        let mut child = Command::new(BIN)
            .args([
                "serve",
                index.to_str().unwrap(),
                "--listen",
                "127.0.0.1:0",
                "--mmap",
                "--shard-id",
                &shard_id.to_string(),
            ])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::from(errlog))
            .spawn()
            .expect("spawn bepi serve daemon");
        let stdout = child.stdout.take().expect("daemon stdout");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("daemon exited before announcing its address")
                .expect("read daemon stdout");
            if let Some(rest) = line.split("http://").nth(1) {
                break rest
                    .split_whitespace()
                    .next()
                    .expect("address token")
                    .to_string();
            }
        };
        Daemon { child, addr }
    }

    fn get(&self, target: &str) -> (u16, Vec<(String, String)>, String) {
        let mut s = TcpStream::connect(&self.addr).expect("connect to daemon");
        s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        s.write_all(
            format!("GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf)
            .unwrap_or_else(|e| panic!("read response for {target} from {}: {e:?}", self.addr));
        let (head, body) = buf.split_once("\r\n\r\n").expect("header terminator");
        let mut lines = head.lines();
        let status = lines
            .next()
            .unwrap()
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        let headers = lines
            .map(|l| {
                let (k, v) = l.split_once(':').expect("header colon");
                (k.trim().to_ascii_lowercase(), v.trim().to_string())
            })
            .collect();
        (status, headers, body.to_string())
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn two_mmap_daemons_over_one_index_serve_identical_bytes_and_share_pages() {
    let dir = temp_dir();
    let index = preprocess(&dir);
    let a = Daemon::spawn(&index, 0);
    let b = Daemon::spawn(&index, 1);

    // (a) Bit-identity: every (seed, top) answer must match byte for
    // byte across the two processes — the mmap'd index is the same
    // bytes, so the responses must be too. Only the X-Shard header may
    // differ, which is exactly why it is a header and not body content.
    for seed in (0..N).step_by(7) {
        for top in [1, 5, 12] {
            let target = format!("/query?seed={seed}&top={top}");
            let (sa, ha, body_a) = a.get(&target);
            let (sb, hb, body_b) = b.get(&target);
            assert_eq!((sa, sb), (200, 200), "{target}");
            assert_eq!(body_a, body_b, "bodies must be bit-identical: {target}");
            let shard = |h: &[(String, String)]| {
                h.iter()
                    .find(|(k, _)| k == "x-shard")
                    .map(|(_, v)| v.clone())
            };
            assert_eq!(shard(&ha).as_deref(), Some("0"));
            assert_eq!(shard(&hb).as_deref(), Some("1"));
        }
    }

    // (b) Page sharing: /proc/<pid>/smaps must show the index file
    // mapped into both processes, and the queries above touched those
    // pages in both, so the kernel accounts them as shared — Pss (the
    // proportional share) drops below Rss for the index mapping.
    // Graceful skip on kernels without /proc/<pid>/smaps.
    let index_name = index.file_name().unwrap().to_str().unwrap();
    let mut sharing_checked = false;
    for daemon in [&a, &b] {
        let smaps = match std::fs::read_to_string(format!("/proc/{}/smaps", daemon.child.id())) {
            Ok(s) => s,
            Err(_) => {
                eprintln!("skipping smaps check: /proc/<pid>/smaps unavailable");
                return;
            }
        };
        let (rss, pss) = index_mapping_stats(&smaps, index_name).unwrap_or_else(|| {
            panic!(
                "index {index_name} must be mapped in pid {}",
                daemon.child.id()
            )
        });
        assert!(rss > 0, "index mapping must be resident after queries");
        // Two processes touching the same file-backed pages: each one's
        // proportional share is strictly less than its resident size.
        if pss < rss {
            sharing_checked = true;
        }
    }
    assert!(
        sharing_checked,
        "at least one daemon must account the index pages as shared (Pss < Rss)"
    );
}

/// Sums `Rss:`/`Pss:` (in KiB) over every smaps mapping whose path line
/// mentions `file_name`.
fn index_mapping_stats(smaps: &str, file_name: &str) -> Option<(u64, u64)> {
    let mut in_index_mapping = false;
    let mut found = false;
    let (mut rss, mut pss) = (0u64, 0u64);
    for line in smaps.lines() {
        // Mapping header lines look like "7f.. r--s .. /path/graph.bepi";
        // stat lines look like "Rss:        128 kB".
        let is_header = line
            .split_whitespace()
            .next()
            .is_some_and(|tok| tok.contains('-') && tok.split('-').count() == 2);
        if is_header {
            in_index_mapping = line.contains(file_name);
            found |= in_index_mapping;
        } else if in_index_mapping {
            let parse = |prefix: &str| -> u64 {
                line.strip_prefix(prefix)
                    .and_then(|r| r.split_whitespace().next())
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0)
            };
            rss += parse("Rss:");
            pss += parse("Pss:");
        }
    }
    found.then_some((rss, pss))
}
