//! Array storage abstraction: owned heap vectors or zero-copy views of
//! a memory-mapped index file.
//!
//! Every array inside [`crate::Csr`] and [`crate::Permutation`] is a
//! [`Storage<T>`]. On the owned path nothing changes: storage derefs to
//! the same slices as before, so every kernel (`mul_vec_into`, the
//! triangular solves, the `bepi-par` partitioned paths) runs unchanged
//! and stays bit-identical. On the mapped path the storage borrows a
//! 64-byte-aligned section of a v6 index file through a
//! [`bepi_map::Section`] handle, which keeps the whole file mapping
//! alive and costs no copy.
//!
//! Mutation goes through [`Storage::to_mut`], which is copy-on-write: a
//! mapped array is copied to the heap the first time something writes to
//! it (e.g. [`crate::Csr::row_normalize`]). Read-mostly serving never
//! triggers the copy.

use crate::mem::MemBytes;
use bepi_map::{Pod, Section};

/// An immutable-by-default array that is either heap-owned or a
/// zero-copy view of a mapped index section.
pub enum Storage<T: Pod> {
    /// A heap-owned vector (the default everywhere data is computed).
    Owned(Vec<T>),
    /// A borrowed slice of a memory-mapped v6 index section.
    Mapped(Section<T>),
}

impl<T: Pod> Storage<T> {
    /// The contents as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match self {
            Storage::Owned(v) => v,
            Storage::Mapped(s) => s,
        }
    }

    /// Element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when no elements are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// True when the data lives in a mapped file rather than the heap.
    #[inline]
    pub fn is_mapped(&self) -> bool {
        matches!(self, Storage::Mapped(_))
    }

    /// Mutable access, copying mapped data to the heap first
    /// (copy-on-write). After this call the storage is `Owned`.
    pub fn to_mut(&mut self) -> &mut Vec<T> {
        if let Storage::Mapped(s) = self {
            *self = Storage::Owned(s.as_slice().to_vec());
        }
        match self {
            Storage::Owned(v) => v,
            Storage::Mapped(_) => unreachable!("converted to Owned above"),
        }
    }

    /// Copies the contents into a fresh heap vector.
    pub fn to_vec(&self) -> Vec<T> {
        self.as_slice().to_vec()
    }

    /// Bytes of heap memory held (zero for mapped storage).
    pub fn heap_bytes(&self) -> usize {
        match self {
            Storage::Owned(v) => std::mem::size_of_val(v.as_slice()),
            Storage::Mapped(_) => 0,
        }
    }

    /// Bytes served from the mapped file (zero for owned storage).
    pub fn mapped_bytes(&self) -> usize {
        match self {
            Storage::Owned(_) => 0,
            Storage::Mapped(s) => s.byte_len(),
        }
    }
}

impl<T: Pod> std::ops::Deref for Storage<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Pod> From<Vec<T>> for Storage<T> {
    fn from(v: Vec<T>) -> Self {
        Storage::Owned(v)
    }
}

impl<T: Pod> From<Section<T>> for Storage<T> {
    fn from(s: Section<T>) -> Self {
        Storage::Mapped(s)
    }
}

impl<T: Pod> Clone for Storage<T> {
    fn clone(&self) -> Self {
        match self {
            Storage::Owned(v) => Storage::Owned(v.clone()),
            // Cloning a mapped storage clones the cheap section handle
            // (an Arc bump), not the data.
            Storage::Mapped(s) => Storage::Mapped(s.clone()),
        }
    }
}

impl<T: Pod + std::fmt::Debug> std::fmt::Debug for Storage<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Equal contents print equally, regardless of backing.
        std::fmt::Debug::fmt(self.as_slice(), f)
    }
}

impl<T: Pod + PartialEq> PartialEq for Storage<T> {
    /// Content equality: an owned array equals a mapped array holding
    /// the same elements (backing is a serving detail, not identity).
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Pod> MemBytes for Storage<T> {
    /// Logical bytes, matching `Vec<T>`'s accounting — mapped storage
    /// reports the same logical size so the paper's Table 5 memory
    /// numbers are backing-independent. Use [`Storage::heap_bytes`] /
    /// [`Storage::mapped_bytes`] for the physical split.
    fn mem_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_roundtrip_and_accounting() {
        let mut s: Storage<u32> = vec![1, 2, 3].into();
        assert!(!s.is_mapped());
        assert_eq!(&*s, &[1, 2, 3]);
        assert_eq!(s.heap_bytes(), 12);
        assert_eq!(s.mapped_bytes(), 0);
        assert_eq!(s.mem_bytes(), 12);
        s.to_mut().push(4);
        assert_eq!(s.len(), 4);
        assert_eq!(s.to_vec(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn equality_ignores_backing() {
        let a: Storage<f64> = vec![1.0, 2.0].into();
        let b: Storage<f64> = vec![1.0, 2.0].into();
        let c: Storage<f64> = vec![1.0, 2.5].into();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(format!("{a:?}"), "[1.0, 2.0]");
    }

    #[test]
    fn storage_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Storage<f64>>();
        assert_send_sync::<Storage<usize>>();
    }
}
