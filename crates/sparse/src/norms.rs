//! Matrix norms.
//!
//! Theorem 4's accuracy bound is stated in terms of `‖H12‖₂`, `‖H31‖₂`,
//! `‖H32‖₂` and smallest singular values; the exact 1/∞/Frobenius norms
//! here are cheap, while the 2-norm is estimated by the power method in
//! `bepi-solver` (it needs repeated SpMV, which lives above this crate).

use crate::Csr;

/// Frobenius norm `sqrt(Σ a_ij²)`.
pub fn frobenius(a: &Csr) -> f64 {
    a.values().iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Induced 1-norm: maximum absolute column sum.
pub fn norm1(a: &Csr) -> f64 {
    let mut col_sums = vec![0.0f64; a.ncols()];
    for (_, c, v) in a.iter() {
        col_sums[c] += v.abs();
    }
    col_sums.into_iter().fold(0.0, f64::max)
}

/// Induced ∞-norm: maximum absolute row sum.
pub fn norm_inf(a: &Csr) -> f64 {
    (0..a.nrows())
        .map(|r| a.row(r).1.iter().map(|v| v.abs()).sum())
        .fold(0.0, f64::max)
}

/// Upper bound on the spectral norm: `‖A‖₂ ≤ sqrt(‖A‖₁ ‖A‖∞)`.
///
/// Used as a cheap, always-safe stand-in when the power-method estimate
/// has not converged.
pub fn norm2_upper_bound(a: &Csr) -> f64 {
    (norm1(a) * norm_inf(a)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    fn sample() -> Csr {
        // [1 -2]
        // [0  3]
        let mut coo = Coo::new(2, 2).unwrap();
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 1, -2.0).unwrap();
        coo.push(1, 1, 3.0).unwrap();
        coo.to_csr()
    }

    #[test]
    fn frobenius_known() {
        assert!((frobenius(&sample()) - 14.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn one_norm_is_max_col_sum() {
        assert_eq!(norm1(&sample()), 5.0);
    }

    #[test]
    fn inf_norm_is_max_row_sum() {
        assert_eq!(norm_inf(&sample()), 3.0);
    }

    #[test]
    fn two_norm_bound_dominates_true_norm() {
        // ‖A‖₂ of the sample is ~3.58; bound is sqrt(5*3) ≈ 3.87.
        let bound = norm2_upper_bound(&sample());
        assert!(bound >= 3.58);
    }

    #[test]
    fn zero_matrix_norms() {
        let z = Csr::zeros(3, 3);
        assert_eq!(frobenius(&z), 0.0);
        assert_eq!(norm1(&z), 0.0);
        assert_eq!(norm_inf(&z), 0.0);
    }
}
