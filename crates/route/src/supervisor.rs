//! Shard process supervision: spawning `bepi serve` children, health
//! probing, crash detection, respawn, and epoch-gated re-admission.
//!
//! The supervisor owns the fleet's failure story:
//!
//! * **Detection** — a periodic `/version` probe per shard; a probe
//!   failure (or, in spawn mode, the child process having exited) takes
//!   the shard out of rotation immediately.
//! * **Restart** — in spawn mode a dead child is relaunched; the
//!   replacement binds a fresh ephemeral port, so the shard's address
//!   and connection pool are swapped wholesale
//!   ([`ShardState::replace_process`]).
//! * **Re-admission** — a shard re-enters rotation only once it answers
//!   `/version` with a graph version at or beyond the fleet's expected
//!   epoch. For a static index every process reports version 1 and the
//!   gate reduces to "answers at all"; in a live fleet mid-rollout it
//!   keeps a restarted shard that came back on the *old* epoch from
//!   serving stale answers as if nothing happened.

use crate::shard::{quorum_version, ShardState};
use std::io::BufRead;
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How to launch one shard daemon.
#[derive(Debug, Clone)]
pub struct SpawnSpec {
    /// The `bepi` binary.
    pub program: PathBuf,
    /// The index every shard serves (all share it via `--mmap`).
    pub index: PathBuf,
    /// Extra `bepi serve` flags appended verbatim (e.g. `--mmap`,
    /// `--cache-entries N`).
    pub extra_args: Vec<String>,
}

/// A spawned shard child plus the stdin handle whose EOF is the
/// daemon's graceful-shutdown signal. The stdout pipe is kept open so
/// the child's few post-announce startup prints land in the (never
/// read again) pipe buffer instead of hitting EPIPE.
struct ChildProc {
    child: Child,
    stdin: Option<ChildStdin>,
    #[allow(dead_code)]
    stdout: std::process::ChildStdout,
}

/// Fleet supervisor: health loop plus (in spawn mode) process lifecycle.
pub struct Supervisor {
    shards: Vec<Arc<ShardState>>,
    /// `Some` in spawn mode; `None` when attached to externally managed
    /// daemons (attach mode never restarts anything).
    spec: Option<SpawnSpec>,
    children: Mutex<Vec<Option<ChildProc>>>,
    /// The graph version a (re)joining shard must reach before it is
    /// re-admitted. Set to the fleet quorum version after boot and
    /// ratcheted up as rollouts complete.
    expected_epoch: AtomicU64,
    stop: AtomicBool,
}

impl Supervisor {
    /// Supervisor over already-running daemons (attach mode).
    pub fn attach(shards: Vec<Arc<ShardState>>) -> Supervisor {
        let n = shards.len();
        Supervisor {
            shards,
            spec: None,
            children: Mutex::new((0..n).map(|_| None).collect()),
            expected_epoch: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        }
    }

    /// Spawns `count` shard daemons and returns the supervisor over
    /// them. Fails if any child cannot be launched or never reports a
    /// listen address.
    pub fn spawn(
        spec: SpawnSpec,
        count: usize,
        per_request_timeout: Duration,
    ) -> std::io::Result<Supervisor> {
        let mut shards = Vec::with_capacity(count);
        let mut children = Vec::with_capacity(count);
        for id in 0..count {
            let (proc_, addr) = launch(&spec, id)?;
            shards.push(Arc::new(ShardState::new(id, addr, per_request_timeout)));
            children.push(Some(proc_));
        }
        Ok(Supervisor {
            shards,
            spec: Some(spec),
            children: Mutex::new(children),
            expected_epoch: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        })
    }

    /// The supervised shards (shared with the router's request paths).
    pub fn shards(&self) -> &[Arc<ShardState>] {
        &self.shards
    }

    /// OS process ids of the spawned children (empty in attach mode).
    /// Drills use these to SIGKILL a shard mid-load.
    pub fn child_pids(&self) -> Vec<u32> {
        self.lock_children()
            .iter()
            .flatten()
            .map(|c| c.child.id())
            .collect()
    }

    /// The epoch gate for re-admission.
    pub fn expected_epoch(&self) -> u64 {
        self.expected_epoch.load(Ordering::SeqCst)
    }

    /// One supervision pass: crash detection + respawn (spawn mode),
    /// then a `/version` probe per shard deciding health and epoch
    /// re-admission. Called by the health thread every interval, and
    /// once synchronously at router boot.
    pub fn tick(&self) {
        if self.spec.is_some() {
            self.reap_and_respawn();
        }
        for shard in &self.shards {
            self.probe(shard);
        }
        // Ratchet the gate to the fleet quorum: once a rollout completes
        // on a majority, a shard restarting on the *previous* epoch is
        // no longer good enough to rejoin.
        self.expected_epoch
            .fetch_max(quorum_version(&self.shards), Ordering::SeqCst);
    }

    /// Probes one shard's `/version`; marks it healthy iff the probe
    /// answers 200 with a graph version at or beyond the expected epoch.
    fn probe(&self, shard: &ShardState) {
        match shard.client().get("/version") {
            Ok(resp) if resp.status == 200 => {
                shard.record_probe();
                if let Some(v) = resp.graph_version() {
                    shard.observe_version(v);
                }
                shard.mark(shard.version() >= self.expected_epoch());
            }
            Ok(_) | Err(_) => shard.mark(false),
        }
    }

    /// Detects exited children (a SIGKILLed shard shows up here) and
    /// relaunches them. The replacement is *not* marked healthy — the
    /// next probe re-admits it once it answers with the expected epoch.
    fn reap_and_respawn(&self) {
        let Some(spec) = &self.spec else { return };
        for (id, slot) in self.lock_children().iter_mut().enumerate() {
            let exited = match slot {
                Some(proc_) => proc_.child.try_wait().map(|s| s.is_some()).unwrap_or(true),
                None => true,
            };
            if !exited {
                continue;
            }
            self.shards[id].mark(false);
            bepi_obs::warn!("route", "shard process exited; respawning", shard = id);
            match launch(spec, id) {
                Ok((proc_, addr)) => {
                    bepi_obs::info!("route", "shard respawned", shard = id, addr = addr);
                    self.shards[id].replace_process(addr);
                    *slot = Some(proc_);
                }
                Err(e) => {
                    bepi_obs::warn!(
                        "route",
                        "shard respawn failed; will retry",
                        shard = id,
                        error = e
                    );
                    *slot = None;
                }
            }
        }
    }

    /// Runs the supervision loop until [`Supervisor::shutdown`].
    pub fn run(&self, interval: Duration) {
        while !self.stop.load(Ordering::SeqCst) {
            self.tick();
            // Sleep in small slices so shutdown is prompt even with a
            // long probe interval.
            let mut remaining = interval;
            while !self.stop.load(Ordering::SeqCst) && remaining > Duration::ZERO {
                let slice = remaining.min(Duration::from_millis(25));
                std::thread::sleep(slice);
                remaining = remaining.saturating_sub(slice);
            }
        }
    }

    /// Stops the supervision loop and shuts the children down
    /// gracefully (stdin EOF, then a bounded wait, then SIGKILL).
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        for slot in self.lock_children().iter_mut() {
            let Some(mut proc_) = slot.take() else {
                continue;
            };
            // Closing stdin is the daemon's SIGTERM equivalent.
            drop(proc_.stdin.take());
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            loop {
                match proc_.child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if std::time::Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    _ => {
                        let _ = proc_.child.kill();
                        let _ = proc_.child.wait();
                        break;
                    }
                }
            }
        }
    }

    fn lock_children(&self) -> std::sync::MutexGuard<'_, Vec<Option<ChildProc>>> {
        self.children.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// Launches one shard daemon and waits for its "listening on" line.
fn launch(spec: &SpawnSpec, id: usize) -> std::io::Result<(ChildProc, String)> {
    let mut cmd = Command::new(&spec.program);
    cmd.arg("serve")
        .arg(&spec.index)
        .arg("--listen")
        .arg("127.0.0.1:0")
        .arg("--shard-id")
        .arg(id.to_string())
        .args(&spec.extra_args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    let mut child = cmd.spawn()?;
    let stdin = child.stdin.take();
    let stdout = child.stdout.take().expect("stdout was piped");
    match read_listen_addr(stdout) {
        Ok((addr, stdout)) => Ok((
            ChildProc {
                child,
                stdin,
                stdout,
            },
            addr,
        )),
        Err(e) => {
            let _ = child.kill();
            let _ = child.wait();
            Err(e)
        }
    }
}

/// Reads the child's stdout until the daemon's
/// `... listening on http://ADDR ...` startup line and extracts `ADDR`,
/// handing the stdout pipe back so the caller keeps it open. A child
/// that exits without printing it (bad flags, unreadable index) yields
/// an error at EOF.
fn read_listen_addr(
    stdout: std::process::ChildStdout,
) -> std::io::Result<(String, std::process::ChildStdout)> {
    let mut reader = std::io::BufReader::new(stdout);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "shard exited before reporting a listen address",
            ));
        }
        if let Some(addr) = parse_listen_line(&line) {
            // The child prints a few more startup lines and then goes
            // quiet; the pipe stays open but is never read again.
            return Ok((addr, reader.into_inner()));
        }
    }
}

/// Extracts `ADDR` from a `... listening on http://ADDR ...` line.
fn parse_listen_line(line: &str) -> Option<String> {
    let rest = line.split("listening on http://").nth(1)?;
    let addr: String = rest
        .chars()
        .take_while(|c| !c.is_whitespace() && *c != '/' && *c != '(')
        .collect();
    if addr.is_empty() {
        None
    } else {
        Some(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listen_line_parsing() {
        assert_eq!(
            parse_listen_line(
                "bepi-server listening on http://127.0.0.1:7462 (100 nodes, heap index)"
            ),
            Some("127.0.0.1:7462".to_string())
        );
        assert_eq!(parse_listen_line("endpoints: /query ..."), None);
        assert_eq!(parse_listen_line("listening on http://"), None);
    }

    #[test]
    fn attach_mode_has_no_children() {
        let shards = vec![Arc::new(ShardState::new(
            0,
            "127.0.0.1:1",
            Duration::from_millis(50),
        ))];
        let sup = Supervisor::attach(shards);
        assert!(sup.child_pids().is_empty());
        // A tick against a dead address marks the shard unhealthy and
        // never panics.
        sup.tick();
        assert!(!sup.shards()[0].is_healthy());
        sup.shutdown();
    }
}
