//! Compressed sparse column format.
//!
//! The LU and triangular-solve kernels in `bepi-solver` are column-oriented
//! (left-looking), so they consume CSC. Structurally a CSC matrix is the
//! CSR of its transpose; we reuse [`Csr`]'s compression machinery.

use crate::mem::MemBytes;
use crate::{Coo, Csr, Result};

/// A sparse matrix in compressed sparse column format.
///
/// Invariants mirror [`Csr`]: `indptr` is non-decreasing with
/// `ncols + 1` entries, and row indices within each column are strictly
/// increasing.
#[derive(Debug, Clone, PartialEq)]
pub struct Csc {
    nrows: usize,
    ncols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl Csc {
    /// Creates an all-zero matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            indptr: vec![0; ncols + 1],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Creates the `n × n` identity.
    pub fn identity(n: usize) -> Self {
        Self {
            nrows: n,
            ncols: n,
            indptr: (0..=n).collect(),
            indices: (0..n as u32).collect(),
            values: vec![1.0; n],
        }
    }

    /// Compresses a COO matrix into CSC (duplicates summed).
    pub fn from_coo(coo: &Coo) -> Self {
        // CSC(A) has the same arrays as CSR(A^T).
        let t = Csr::from_coo(&coo.clone().transpose());
        Self::from_csr_transpose(t)
    }

    /// Converts a CSR matrix into CSC format (same logical matrix).
    pub fn from_csr(csr: &Csr) -> Self {
        Self::from_csr_transpose(csr.transpose())
    }

    /// Interprets `t = A^T` stored as CSR as `A` stored as CSC.
    fn from_csr_transpose(t: Csr) -> Self {
        let (nrows, ncols) = (t.ncols(), t.nrows());
        let indptr = t.indptr().to_vec();
        let indices = t.indices().to_vec();
        let values = t.values().to_vec();
        Self {
            nrows,
            ncols,
            indptr,
            indices,
            values,
        }
    }

    /// Converts to CSR format (same logical matrix).
    pub fn to_csr(&self) -> Csr {
        // Our arrays are CSR(A^T); transposing that CSR yields CSR(A).
        self.as_csr_of_transpose().transpose()
    }

    /// Views the internal arrays as the CSR representation of `A^T`.
    fn as_csr_of_transpose(&self) -> Csr {
        Csr::from_parts(
            self.ncols,
            self.nrows,
            self.indptr.clone(),
            self.indices.clone(),
            self.values.clone(),
        )
        .expect("CSC invariants imply valid CSR of transpose")
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The column-pointer array (`ncols + 1` entries).
    #[inline]
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// The row-index array.
    #[inline]
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// The value array.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The row indices and values of column `j`.
    #[inline]
    pub fn col(&self, j: usize) -> (&[u32], &[f64]) {
        let (s, e) = (self.indptr[j], self.indptr[j + 1]);
        (&self.indices[s..e], &self.values[s..e])
    }

    /// Iterates over the `(row, value)` pairs of column `j`.
    pub fn col_iter(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (rows, vals) = self.col(j);
        rows.iter().zip(vals).map(|(&r, &v)| (r as usize, v))
    }

    /// Value at `(row, col)`, 0.0 if absent.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        let (rows, vals) = self.col(col);
        match rows.binary_search(&(row as u32)) {
            Ok(pos) => vals[pos],
            Err(_) => 0.0,
        }
    }

    /// Dense `y = A x`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.ncols {
            return Err(crate::SparseError::VectorLength {
                expected: self.ncols,
                actual: x.len(),
            });
        }
        let mut y = vec![0.0; self.nrows];
        for (j, &xj) in x.iter().enumerate() {
            if xj == 0.0 {
                continue;
            }
            for (i, v) in self.col_iter(j) {
                y[i] += v * xj;
            }
        }
        Ok(y)
    }
}

impl MemBytes for Csc {
    fn mem_bytes(&self) -> usize {
        self.indptr.mem_bytes() + self.indices.mem_bytes() + self.values.mem_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_coo() -> Coo {
        // [1 0 2]
        // [0 0 3]
        // [4 5 0]
        let mut coo = Coo::new(3, 3).unwrap();
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 2, 2.0).unwrap();
        coo.push(1, 2, 3.0).unwrap();
        coo.push(2, 0, 4.0).unwrap();
        coo.push(2, 1, 5.0).unwrap();
        coo
    }

    #[test]
    fn from_coo_columns_sorted() {
        let m = Csc::from_coo(&sample_coo());
        let (rows, vals) = m.col(0);
        assert_eq!(rows, &[0, 2]);
        assert_eq!(vals, &[1.0, 4.0]);
        let (rows, vals) = m.col(2);
        assert_eq!(rows, &[0, 1]);
        assert_eq!(vals, &[2.0, 3.0]);
    }

    #[test]
    fn csr_roundtrip() {
        let coo = sample_coo();
        let csr = coo.to_csr();
        let csc = Csc::from_csr(&csr);
        assert_eq!(csc.to_csr(), csr);
        assert_eq!(csc.get(2, 1), 5.0);
        assert_eq!(csc.get(1, 1), 0.0);
    }

    #[test]
    fn mul_vec_matches_csr() {
        let coo = sample_coo();
        let csr = coo.to_csr();
        let csc = Csc::from_coo(&coo);
        let x = [1.0, 2.0, 3.0];
        assert_eq!(csc.mul_vec(&x).unwrap(), csr.mul_vec(&x).unwrap());
    }

    #[test]
    fn identity_columns() {
        let i = Csc::identity(4);
        assert_eq!(i.nnz(), 4);
        assert_eq!(i.get(3, 3), 1.0);
        assert_eq!(
            i.mul_vec(&[1.0, 2.0, 3.0, 4.0]).unwrap(),
            vec![1.0, 2.0, 3.0, 4.0]
        );
    }

    #[test]
    fn zeros_have_no_entries() {
        let z = Csc::zeros(3, 2);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.col(1).0.len(), 0);
    }

    #[test]
    fn mem_bytes_exact() {
        let m = Csc::from_coo(&sample_coo()); // 5 nnz, 4 indptr
        assert_eq!(m.mem_bytes(), 4 * 8 + 5 * 4 + 5 * 8);
    }

    #[test]
    fn mul_vec_rejects_bad_length() {
        let m = Csc::identity(3);
        assert!(m.mul_vec(&[1.0]).is_err());
    }
}
