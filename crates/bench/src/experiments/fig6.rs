//! Figure 6 — effect of the two optimizations: BePI-B vs BePI-S vs BePI
//! on (a) preprocessing time, (b) preprocessed memory, (c) query time,
//! across the dataset suite.

use crate::harness::{query_seeds, run_method, seed_count, suite, Budget, Method, Metric, Status};
use crate::table::Table;
use bepi_core::prelude::BePiVariant;
use std::fmt::Write as _;

/// Per-dataset outcomes of the three variants.
pub struct VariantRow {
    /// Dataset name.
    pub name: &'static str,
    /// `[BePI-B, BePI-S, BePI]` outcomes.
    pub outcomes: [Status; 3],
}

/// Measures all three variants on the suite.
pub fn measure() -> Vec<VariantRow> {
    let budget = Budget::default();
    let mut rows = Vec::new();
    for ds in suite() {
        let spec = ds.spec();
        let g = ds.generate();
        let seeds = query_seeds(&g, seed_count(), 0xF166 ^ spec.seed);
        eprintln!("[fig6] {}", spec.name);
        let run = |v: BePiVariant| {
            eprintln!("[fig6]   {}", v.name());
            run_method(Method::BePi(v), &g, spec.hub_ratio, &seeds, &budget)
        };
        rows.push(VariantRow {
            name: spec.name,
            outcomes: [
                run(BePiVariant::Basic),
                run(BePiVariant::Sparse),
                run(BePiVariant::Full),
            ],
        });
    }
    rows
}

/// Renders the three sub-figures.
pub fn render(rows: &[VariantRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 6 — effect of Schur sparsification and preconditioning ({} seeds)\n",
        seed_count()
    );
    for (title, metric) in [
        ("(a) Preprocessing time", Metric::Preprocess),
        ("(b) Memory for preprocessed data", Metric::Memory),
        ("(c) Query time", Metric::Query),
    ] {
        let _ = writeln!(out, "{title}");
        let mut t = Table::new(vec!["dataset", "BePI-B", "BePI-S", "BePI"]);
        for row in rows {
            t.row(vec![
                row.name.to_string(),
                row.outcomes[0].cell(metric),
                row.outcomes[1].cell(metric),
                row.outcomes[2].cell(metric),
            ]);
        }
        let _ = writeln!(out, "{}", t.render());
    }
    let _ = writeln!(
        out,
        "Expected shape: BePI-S beats BePI-B on all three metrics (sparsified S);\n\
         BePI slightly exceeds BePI-S in preprocessing/memory (ILU factors) but wins query time."
    );
    out
}

/// Runs and renders Figure 6.
pub fn run() -> String {
    render(&measure())
}
