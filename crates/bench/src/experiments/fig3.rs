//! Figure 3 — the effect of node reordering on the structure of `H`,
//! reported as per-block non-zero counts ("spy plot by numbers") on the
//! Slashdot stand-in, exactly the dataset the paper's figure uses.

use crate::table::Table;
use bepi_core::hmatrix::HPartition;
use bepi_core::DEFAULT_RESTART_PROB;
use bepi_graph::Dataset;
use std::fmt::Write as _;

/// Reports the partition structure of the reordered `H`.
pub fn run() -> String {
    let mut out = String::new();
    let ds = Dataset::Slashdot;
    let spec = ds.spec();
    let g = ds.generate();
    let p = HPartition::build(&g, DEFAULT_RESTART_PROB, spec.hub_ratio).expect("partition");

    let _ = writeln!(
        out,
        "Figure 3 — reordered H structure on {} (deadend + hub-and-spoke reordering)\n",
        spec.name
    );
    let _ = writeln!(
        out,
        "n = {}, n1 (spokes) = {}, n2 (hubs) = {}, n3 (deadends) = {}\n",
        p.n(),
        p.n1,
        p.n2,
        p.n3
    );
    let mut t = Table::new(vec!["block", "shape", "nnz", "density"]);
    let blocks: [(&str, &bepi_sparse::Csr); 6] = [
        ("H11", &p.h11),
        ("H12", &p.h12),
        ("H21", &p.h21),
        ("H22", &p.h22),
        ("H31", &p.h31),
        ("H32", &p.h32),
    ];
    for (name, m) in blocks {
        let cells = (m.nrows() * m.ncols()).max(1) as f64;
        t.row(vec![
            name.to_string(),
            format!("{}x{}", m.nrows(), m.ncols()),
            m.nnz().to_string(),
            format!("{:.2e}", m.nnz() as f64 / cells),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    let largest = p.block_sizes.iter().copied().max().unwrap_or(0);
    let _ = writeln!(
        out,
        "H11 is block diagonal: b = {} blocks, sizes 1..{} (mean {:.1}); upper-right block of H is exactly 0.",
        p.block_sizes.len(),
        largest,
        p.n1 as f64 / p.block_sizes.len().max(1) as f64
    );
    out
}
