//! End-to-end distributed-tracing tests: request-id minting, adoption,
//! and propagation; the daemon's `?trace=1` body; the router's spliced
//! `route` block with per-attempt detail; and the `/debug/trace` rings
//! on both tiers — all driven over real TCP and parsed as full JSON
//! documents (via the bench crate's in-tree parser), not substring
//! checks.

use bepi_bench::perf::json::{self, Value};
use bepi_core::prelude::*;
use bepi_route::router::{Router, RouterConfig, RouterHandle};
use bepi_route::shard::ShardState;
use bepi_route::supervisor::Supervisor;
use bepi_server::{Server, ServerConfig, ServerHandle};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

fn solver() -> Arc<BePi> {
    static SOLVER: OnceLock<Arc<BePi>> = OnceLock::new();
    Arc::clone(SOLVER.get_or_init(|| {
        let g =
            bepi_graph::generators::rmat(7, 500, bepi_graph::generators::RmatParams::default(), 29)
                .unwrap();
        Arc::new(BePi::preprocess(&g, &BePiConfig::default()).unwrap())
    }))
}

struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    fn request_id(&self) -> &str {
        self.header("x-request-id").expect("X-Request-Id echoed")
    }

    fn json(&self) -> Value {
        json::parse(&self.body).unwrap_or_else(|e| panic!("bad JSON ({e}): {}", self.body))
    }
}

fn get_with_headers(addr: SocketAddr, target: &str, extra: &[(&str, &str)]) -> Response {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut req = format!("GET {target} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n");
    for (k, v) in extra {
        req.push_str(&format!("{k}: {v}\r\n"));
    }
    req.push_str("\r\n");
    s.write_all(req.as_bytes()).expect("send request");
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).expect("read response");
    let text = String::from_utf8(buf).expect("UTF-8 response");
    let (head, body) = text.split_once("\r\n\r\n").expect("blank line");
    let mut lines = head.lines();
    let status: u16 = lines
        .next()
        .expect("status line")
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers = lines
        .map(|l| {
            let (k, v) = l.split_once(':').expect("header colon");
            (k.trim().to_ascii_lowercase(), v.trim().to_string())
        })
        .collect();
    Response {
        status,
        headers,
        body: body.to_string(),
    }
}

fn get(addr: SocketAddr, target: &str) -> Response {
    get_with_headers(addr, target, &[])
}

/// Navigates `value.key1.key2...`, panicking with context on a miss.
fn field<'a>(value: &'a Value, path: &[&str]) -> &'a Value {
    let mut cur = value;
    for key in path {
        let obj = cur
            .as_object()
            .unwrap_or_else(|| panic!("{path:?}: not an object at {key}"));
        cur = json::get(obj, key).unwrap_or_else(|| panic!("{path:?}: missing {key}"));
    }
    cur
}

fn str_field<'a>(value: &'a Value, path: &[&str]) -> &'a str {
    field(value, path)
        .as_str()
        .unwrap_or_else(|| panic!("{path:?}: not a string"))
}

fn num_field(value: &Value, path: &[&str]) -> f64 {
    field(value, path)
        .as_f64()
        .unwrap_or_else(|| panic!("{path:?}: not a number"))
}

fn is_hex_id(s: &str) -> bool {
    s.len() == 32 && s.chars().all(|c| c.is_ascii_hexdigit())
}

/// A server config whose trace ring and slowlog record everything.
fn traced_server(shard_id: Option<u64>) -> ServerConfig {
    ServerConfig {
        slow_query: Duration::ZERO,
        shard_id,
        ..ServerConfig::default()
    }
}

/// Boots `n` shard servers plus an attached router that traces and
/// slow-logs every request.
fn boot_fleet(n: usize) -> (RouterHandle, Vec<ServerHandle>) {
    let shards: Vec<ServerHandle> = (0..n)
        .map(|id| {
            Server::start(solver(), &traced_server(Some(id as u64))).expect("shard must bind")
        })
        .collect();
    let states: Vec<Arc<ShardState>> = shards
        .iter()
        .enumerate()
        .map(|(id, h)| {
            Arc::new(ShardState::new(
                id,
                h.local_addr().to_string(),
                Duration::from_secs(10),
            ))
        })
        .collect();
    let cfg = RouterConfig {
        health_interval: Duration::from_millis(50),
        slow_query: Duration::ZERO,
        ..RouterConfig::default()
    };
    let router = Router::start(Supervisor::attach(states), cfg).expect("router must bind");
    (router, shards)
}

#[test]
fn daemon_trace_body_and_ring_share_the_echoed_request_id() {
    let handle = Server::start(solver(), &traced_server(None)).expect("bind");
    let addr = handle.local_addr();

    // Cache miss, then hit on the same key.
    let miss = get(addr, "/query?seed=11&top=5&trace=1");
    assert_eq!(miss.status, 200);
    let hit = get(addr, "/query?seed=11&top=5&trace=1");
    assert_eq!(hit.status, 200);

    for (resp, label) in [(&miss, "miss"), (&hit, "hit")] {
        let rid = resp.request_id();
        assert!(is_hex_id(rid), "{label}: bad id {rid:?}");
        let doc = resp.json();
        assert_eq!(str_field(&doc, &["trace", "request_id"]), rid, "{label}");
        let total = num_field(&doc, &["trace", "total_us"]);
        let queue = num_field(&doc, &["trace", "queue_us"]);
        assert!(total >= queue, "{label}");
    }
    // The miss solved; the hit served the cached body with zero stages.
    assert!(num_field(&miss.json(), &["trace", "solve_us"]) > 0.0);
    assert_eq!(num_field(&hit.json(), &["trace", "solve_us"]), 0.0);
    assert_eq!(hit.header("x-cache"), Some("hit"));
    // Two requests, two distinct ids.
    assert_ne!(miss.request_id(), hit.request_id());

    // Both land in the trace ring, newest first, hit-flagged.
    let ring = get(addr, "/debug/trace");
    assert_eq!(ring.status, 200);
    let doc = ring.json();
    let entries = field(&doc, &["entries"]).as_array().expect("entries array");
    assert!(entries.len() >= 2, "{}", ring.body);
    assert_eq!(str_field(&entries[0], &["request_id"]), hit.request_id());
    assert_eq!(field(&entries[0], &["cache_hit"]).as_bool(), Some(true));
    assert_eq!(str_field(&entries[1], &["request_id"]), miss.request_id());
    assert_eq!(field(&entries[1], &["cache_hit"]).as_bool(), Some(false));
    for e in &entries[..2] {
        assert_eq!(num_field(e, &["seed"]), 11.0);
        assert!(field(e, &["shard"]).as_f64().is_none(), "standalone: null");
    }

    // The slowlog (threshold 0) carries the same correlation ids.
    let slow = get(addr, "/debug/slow");
    assert!(slow.body.contains(miss.request_id()), "{}", slow.body);
    assert!(slow.body.contains(hit.request_id()), "{}", slow.body);
    handle.shutdown();
}

#[test]
fn valid_ingress_ids_are_adopted_and_malformed_ones_reminted() {
    let handle = Server::start(solver(), &traced_server(None)).expect("bind");
    let addr = handle.local_addr();

    let supplied = "00112233445566778899aabbccddeeff";
    let resp = get_with_headers(
        addr,
        "/query?seed=3&top=2&trace=1",
        &[("X-Request-Id", supplied)],
    );
    assert_eq!(resp.status, 200);
    assert_eq!(resp.request_id(), supplied, "valid ids are adopted");
    assert_eq!(str_field(&resp.json(), &["trace", "request_id"]), supplied);

    // Malformed ids (wrong length, non-hex, injection attempts) are
    // replaced, never echoed back.
    for bad in ["deadbeef", "zz112233445566778899aabbccddeeff", "a\r\nX:1"] {
        let resp = get_with_headers(addr, "/query?seed=3&top=2", &[("X-Request-Id", bad)]);
        assert_eq!(resp.status, 200);
        let rid = resp.request_id();
        assert!(is_hex_id(rid), "reminted id must be canonical: {rid:?}");
        assert_ne!(rid, bad);
    }
    handle.shutdown();
}

#[test]
fn routed_trace_wraps_the_shard_trace_with_attempt_detail() {
    let (router, shards) = boot_fleet(2);
    let addr = router.local_addr();

    let resp = get(addr, "/query?seed=9&top=4&trace=1");
    assert_eq!(resp.status, 200);
    let rid = resp.request_id().to_string();
    assert!(is_hex_id(&rid));

    let doc = resp.json();
    // One id correlates the route block, the shard's trace block (the
    // id crossed the process boundary), and the response header.
    assert_eq!(str_field(&doc, &["route", "request_id"]), rid);
    assert_eq!(str_field(&doc, &["trace", "request_id"]), rid);

    let answering = num_field(&doc, &["route", "shard"]);
    let attempts = field(&doc, &["route", "attempts"])
        .as_array()
        .expect("attempts");
    assert!(!attempts.is_empty());
    let first = &attempts[0];
    assert_eq!(str_field(first, &["kind"]), "primary");
    assert_eq!(str_field(first, &["outcome"]), "200");
    assert_eq!(num_field(first, &["shard"]), answering);
    for key in ["connect_us", "send_us", "wait_us"] {
        assert!(num_field(first, &[key]) >= 0.0);
    }
    // The header-level shard attribution agrees with the route block.
    assert_eq!(
        resp.header("x-shard"),
        Some((answering as u64).to_string().as_str())
    );

    // The same id is in the router's trace ring and slowlog...
    for endpoint in ["/debug/trace", "/debug/slow"] {
        let ring = get(addr, endpoint);
        assert_eq!(ring.status, 200);
        assert!(ring.body.contains(&rid), "router {endpoint}: {}", ring.body);
    }
    // ...and in the answering shard's rings, closing the cross-process loop.
    let shard_addr = shards[answering as usize].local_addr();
    for endpoint in ["/debug/trace", "/debug/slow"] {
        let ring = get(shard_addr, endpoint);
        assert!(ring.body.contains(&rid), "shard {endpoint}: {}", ring.body);
    }
    // The shard ring entry carries its shard id.
    let shard_ring = get(shard_addr, "/debug/trace").json();
    let entries = field(&shard_ring, &["entries"]).as_array().unwrap();
    let mine = entries
        .iter()
        .find(|e| str_field(e, &["request_id"]) == rid)
        .expect("shard ring entry");
    assert_eq!(num_field(mine, &["shard"]), answering);

    // Untraced routed queries stay clean: no route or trace block.
    let plain = get(addr, "/query?seed=9&top=4");
    assert_eq!(plain.status, 200);
    assert!(!plain.body.contains("\"route\""), "{}", plain.body);
    assert!(!plain.body.contains("\"trace\""), "{}", plain.body);
    assert!(
        is_hex_id(plain.request_id()),
        "plain requests still get ids"
    );
}

#[test]
fn merged_batch_trace_tags_attempts_by_seed() {
    let (router, _shards) = boot_fleet(2);
    let addr = router.local_addr();
    let n = solver().node_count();
    let seeds: Vec<usize> = vec![2 % n, 31 % n, 77 % n];
    let list = seeds
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>()
        .join(",");

    let resp = get(addr, &format!("/batch?seeds={list}&top=4&merge=1&trace=1"));
    assert_eq!(resp.status, 200);
    let rid = resp.request_id().to_string();
    assert!(is_hex_id(&rid));

    let doc = resp.json();
    assert_eq!(field(&doc, &["merged"]).as_bool(), Some(true));
    assert_eq!(str_field(&doc, &["route", "request_id"]), rid);
    let attempts = field(&doc, &["route", "attempts"])
        .as_array()
        .expect("attempts");
    // Every member of the batch shows up, seed-tagged, served under the
    // one batch-wide request id.
    for &seed in &seeds {
        let mine: Vec<_> = attempts
            .iter()
            .filter(|a| num_field(a, &["seed"]) == seed as f64)
            .collect();
        assert!(
            !mine.is_empty(),
            "no attempts for seed {seed}: {}",
            resp.body
        );
        assert!(mine.iter().any(|a| str_field(a, &["outcome"]) == "200"));
    }
    // The batch id correlates in the router slowlog too — one record
    // per attempt, all under the same id.
    let slow = get(addr, "/debug/slow");
    assert!(slow.body.contains(&rid), "{}", slow.body);
}
