//! Counter-based per-walk random streams.
//!
//! The walk engine's determinism contract — bit-identical scores for a
//! fixed `(seed, epoch)` at *any* thread count — rules out one shared
//! RNG: the interleaving of draws across walks would depend on
//! scheduling. Instead every walk owns an independent SplitMix64 stream
//! whose initial state is a hash of `(seed, epoch, walk_id)`. A walk's
//! entire trajectory is then a pure function of those three values, so
//! the engine is free to batch, reorder, and partition walks however it
//! likes without changing a single draw.

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixing function
/// (Steele et al., "Fast splittable pseudorandom number generators").
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z ^= z >> 30;
    z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Weyl-sequence increment (the golden-ratio constant), coprime with
/// 2^64 so the counter visits every state before repeating.
const GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// One walk's private SplitMix64 stream.
#[derive(Debug, Clone, Copy)]
pub struct WalkRng {
    state: u64,
}

impl WalkRng {
    /// Derives the stream for walk `walk_id` of query `(seed, epoch)`.
    /// Distinct triples get statistically independent streams.
    #[inline]
    pub fn for_walk(seed: u64, epoch: u64, walk_id: u64) -> WalkRng {
        let state = mix64(seed ^ mix64(epoch ^ mix64(walk_id.wrapping_add(GAMMA))));
        WalkRng { state }
    }

    /// Next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GAMMA);
        mix64(self.state)
    }

    /// Next uniform draw in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let mut a = WalkRng::for_walk(3, 0, 7);
        let mut b = WalkRng::for_walk(3, 0, 7);
        let mut c = WalkRng::for_walk(3, 0, 8);
        let mut d = WalkRng::for_walk(3, 1, 7);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        let sd: Vec<u64> = (0..8).map(|_| d.next_u64()).collect();
        assert_eq!(sa, sb, "same triple, same stream");
        assert_ne!(sa, sc, "walk id must decorrelate");
        assert_ne!(sa, sd, "epoch must decorrelate");
    }

    #[test]
    fn f64_draws_are_in_unit_interval() {
        let mut rng = WalkRng::for_walk(0, 0, 0);
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn f64_draws_look_uniform() {
        let mut rng = WalkRng::for_walk(42, 9, 1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
