//! Corrupt v6 payloads under `--mmap` must surface as clean typed
//! errors on the one-shot CLI path — the zero-copy open skips payload
//! CRCs by design, so `bepi serve <index> <seed> --mmap` runs the full
//! check before querying instead of letting the solver panic on
//! garbage indices.

use std::path::Path;
use std::process::Command;

fn bepi() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bepi"))
}

#[test]
fn one_shot_mmap_query_rejects_corrupt_payload_without_panicking() {
    let dir = std::env::temp_dir().join(format!("bepi-mmap-corrupt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let edges = dir.join("edges.txt");
    let good = dir.join("good.bepi");
    let bad = dir.join("bad.bepi");

    let mut text = String::new();
    for v in 0..120u32 {
        text.push_str(&format!("{} {}\n", v, (v + 1) % 120));
        text.push_str(&format!("{} {}\n", v, (v * 7 + 3) % 120));
    }
    std::fs::write(&edges, text).unwrap();
    let status = bepi()
        .args([
            "preprocess",
            edges.to_str().unwrap(),
            good.to_str().unwrap(),
        ])
        .args(["--format", "v6"])
        .status()
        .expect("run bepi preprocess");
    assert!(status.success(), "preprocess failed");

    // Flip one byte in the middle of the file: the section table lives
    // at the end, so this lands in a payload the mapped open does not
    // CRC eagerly.
    let mut data = std::fs::read(&good).unwrap();
    let mid = data.len() / 2;
    data[mid] ^= 0x40;
    std::fs::write(&bad, &data).unwrap();

    let run = |index: &Path| {
        bepi()
            .args(["serve", index.to_str().unwrap(), "5", "--mmap"])
            .output()
            .expect("run bepi serve one-shot")
    };

    let ok = run(&good);
    assert!(
        ok.status.success(),
        "one-shot query on the intact index failed"
    );

    let corrupt = run(&bad);
    let stderr = String::from_utf8_lossy(&corrupt.stderr);
    assert!(!corrupt.status.success(), "corrupt index was served");
    assert!(
        !stderr.contains("panicked"),
        "corrupt payload panicked instead of erroring:\n{stderr}"
    );
    assert!(
        stderr.contains("checksum") || stderr.contains("section") || stderr.contains("corrupt"),
        "error does not describe the corruption:\n{stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
