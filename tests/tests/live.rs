//! End-to-end tests of the live-update path: concurrent query load while
//! edges are posted and the index is hot-swapped, staleness semantics,
//! and WAL-backed durability — all over real TCP sockets.
//!
//! The consistency oracle relies on BePI preprocessing being
//! deterministic: rebuilding the same graph with the same config yields
//! bit-identical scores, so the body the server must produce for each
//! `(version, seed)` pair can be computed independently here and compared
//! byte-for-byte.

use bepi_core::dynamic::apply_updates;
use bepi_core::prelude::*;
use bepi_core::EdgeUpdate;
use bepi_live::{LiveConfig, LiveEngine};
use bepi_server::worker::render_query_body;
use bepi_server::{parse_metric, QueryKey, ResponseMode, Server, ServerConfig, ServerHandle};
use std::collections::HashMap;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const TOP_K: usize = 10;
const SEEDS: std::ops::Range<usize> = 0..8;

fn base_graph() -> bepi_graph::Graph {
    bepi_graph::generators::rmat(7, 400, bepi_graph::generators::RmatParams::default(), 17).unwrap()
}

struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    fn version(&self) -> u64 {
        self.header("x-graph-version")
            .expect("response must carry X-Graph-Version")
            .parse()
            .expect("numeric version")
    }
}

fn raw_request(addr: SocketAddr, bytes: &[u8]) -> Response {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    s.write_all(bytes).expect("send request");
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).expect("read response");
    parse_response(&String::from_utf8(buf).expect("UTF-8 response"))
}

fn get(addr: SocketAddr, target: &str) -> Response {
    raw_request(
        addr,
        format!("GET {target} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n").as_bytes(),
    )
}

fn post(addr: SocketAddr, target: &str, body: &str) -> Response {
    raw_request(
        addr,
        format!(
            "POST {target} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\
             Connection: close\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

fn parse_response(text: &str) -> Response {
    let (head, body) = text
        .split_once("\r\n\r\n")
        .expect("response must have a blank line");
    let mut lines = head.lines();
    let status: u16 = lines
        .next()
        .expect("status line")
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers = lines
        .map(|l| {
            let (k, v) = l.split_once(':').expect("header colon");
            (k.trim().to_ascii_lowercase(), v.trim().to_string())
        })
        .collect();
    Response {
        status,
        headers,
        body: body.to_string(),
    }
}

fn edges_body(updates: &[EdgeUpdate]) -> String {
    updates
        .iter()
        .map(|u| match u {
            EdgeUpdate::Insert(a, b) => format!("{{\"op\":\"insert\",\"u\":{a},\"v\":{b}}}\n"),
            EdgeUpdate::Remove(a, b) => format!("{{\"op\":\"remove\",\"u\":{a},\"v\":{b}}}\n"),
        })
        .collect()
}

/// The exact body the server must serve for `seed` at `version`, built
/// from an independently preprocessed copy of that version's graph.
fn expected_bodies(graph: &bepi_graph::Graph, version: u64) -> HashMap<usize, String> {
    let bepi = BePi::preprocess(graph, &BePiConfig::default()).unwrap();
    SEEDS
        .map(|seed| {
            let scores = bepi.query(seed).unwrap();
            let key = QueryKey {
                seed,
                top_k: TOP_K,
                version,
                mode: ResponseMode::Exact,
            };
            (seed, render_query_body(key, &scores))
        })
        .collect()
}

fn start_live(engine: Arc<LiveEngine>) -> ServerHandle {
    Server::start_live(
        engine,
        &ServerConfig {
            timeout: Duration::from_secs(60),
            ..ServerConfig::default()
        },
    )
    .expect("server must bind an ephemeral port")
}

/// The tentpole acceptance test: sustained concurrent query load while
/// edges are posted and the index hot-swaps twice. Every single response
/// must be internally consistent with exactly one snapshot version — the
/// one echoed in its `X-Graph-Version` header — and nothing may be
/// dropped or torn.
#[test]
fn concurrent_queries_during_hot_swap_are_single_version_consistent() {
    let g1 = base_graph();
    let batch1 = vec![
        EdgeUpdate::Insert(0, 100),
        EdgeUpdate::Insert(100, 3),
        EdgeUpdate::Insert(5, 77),
    ];
    let batch2 = vec![EdgeUpdate::Remove(0, 100), EdgeUpdate::Insert(2, 90)];
    let g2 = apply_updates(&g1, &batch1).unwrap();
    let g3 = apply_updates(&g2, &batch2).unwrap();

    // Independently derived oracle: version -> seed -> exact body.
    let expected: HashMap<u64, HashMap<usize, String>> = [
        (1, expected_bodies(&g1, 1)),
        (2, expected_bodies(&g2, 2)),
        (3, expected_bodies(&g3, 3)),
    ]
    .into_iter()
    .collect();
    // The updates must actually move the scores, or "reflects the
    // inserts" would be vacuous.
    assert_ne!(expected[&1][&0], expected[&2][&0]);

    let bepi = Arc::new(BePi::preprocess(&g1, &BePiConfig::default()).unwrap());
    let engine = LiveEngine::start(bepi, g1, BePiConfig::default(), LiveConfig::default()).unwrap();
    let handle = start_live(engine);
    let addr = handle.local_addr();

    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..4)
        .map(|c| {
            let stop = Arc::clone(&stop);
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut served = 0u64;
                let mut versions_seen = std::collections::HashSet::new();
                while !stop.load(Ordering::Relaxed) {
                    for seed in SEEDS.skip(c % 2) {
                        let r = get(addr, &format!("/query?seed={seed}&top={TOP_K}"));
                        // No dropped queries: every request must be
                        // answered, and answered consistently.
                        assert_eq!(r.status, 200, "client {c}: {}", r.body);
                        let v = r.version();
                        let want = &expected
                            .get(&v)
                            .unwrap_or_else(|| panic!("unknown version {v}"))[&seed];
                        assert_eq!(
                            &r.body, want,
                            "client {c}: body for seed {seed} must match version {v} exactly"
                        );
                        served += 1;
                        versions_seen.insert(v);
                    }
                }
                (served, versions_seen)
            })
        })
        .collect();

    // Let the clients hammer version 1 for a moment, then swap twice.
    std::thread::sleep(Duration::from_millis(100));
    let r = post(addr, "/edges", &edges_body(&batch1));
    assert_eq!(r.status, 200, "{}", r.body);
    assert!(r.body.contains("\"accepted\":3"), "{}", r.body);
    assert!(r.body.contains("\"version\":1"), "{}", r.body);
    let r = post(addr, "/rebuild", "");
    assert_eq!(r.status, 200, "{}", r.body);
    assert_eq!(r.version(), 2);
    assert!(r.body.contains("\"pending\":0"), "{}", r.body);

    std::thread::sleep(Duration::from_millis(100));
    let r = post(addr, "/edges", &edges_body(&batch2));
    assert_eq!(r.status, 200, "{}", r.body);
    let r = post(addr, "/rebuild", "");
    assert_eq!(r.status, 200, "{}", r.body);
    assert_eq!(r.version(), 3);

    std::thread::sleep(Duration::from_millis(100));
    stop.store(true, Ordering::Relaxed);
    let mut total = 0;
    let mut all_versions = std::collections::HashSet::new();
    for client in clients {
        let (served, versions) = client.join().expect("client thread must not panic");
        total += served;
        all_versions.extend(versions);
    }
    assert!(total > 0);
    assert!(
        all_versions.contains(&3),
        "clients must observe the final version, saw {all_versions:?}"
    );

    // Post-swap: a fresh query reflects the inserts, byte-for-byte.
    let r = get(addr, &format!("/query?seed=0&top={TOP_K}"));
    assert_eq!(r.status, 200);
    assert_eq!(r.version(), 3);
    assert_eq!(r.body, expected[&3][&0]);

    // The metrics surface tracks the swaps.
    let m = get(addr, "/metrics").body;
    assert_eq!(parse_metric(&m, "bepi_graph_version"), Some(3.0));
    assert_eq!(parse_metric(&m, "bepi_pending_updates"), Some(0.0));
    assert_eq!(parse_metric(&m, "bepi_rebuilds_total"), Some(2.0));
    assert_eq!(parse_metric(&m, "bepi_updates_total"), Some(5.0));

    handle.shutdown();
}

/// Staleness contract: buffered updates are invisible until a rebuild
/// completes; `/version` reports them as pending.
#[test]
fn queries_serve_last_completed_rebuild_not_wal_tip() {
    let g = base_graph();
    let bepi = Arc::new(BePi::preprocess(&g, &BePiConfig::default()).unwrap());
    let engine = LiveEngine::start(
        bepi,
        g.clone(),
        BePiConfig::default(),
        LiveConfig::default(),
    )
    .unwrap();
    let handle = start_live(engine);
    let addr = handle.local_addr();

    let before = get(addr, "/query?seed=1&top=5");
    assert_eq!(before.status, 200);
    assert_eq!(before.version(), 1);

    let r = post(addr, "/edges", &edges_body(&[EdgeUpdate::Insert(1, 99)]));
    assert_eq!(r.status, 200, "{}", r.body);
    assert!(r.body.contains("\"rebuild_triggered\":false"), "{}", r.body);

    // Still version 1, byte-identical to the pre-update response.
    let during = get(addr, "/query?seed=1&top=5");
    assert_eq!(during.version(), 1);
    assert_eq!(during.body, before.body);
    let v = get(addr, "/version");
    assert_eq!(v.status, 200);
    assert!(v.body.contains("\"version\":1"), "{}", v.body);
    assert!(v.body.contains("\"pending\":1"), "{}", v.body);
    assert!(v.body.contains("\"live\":true"), "{}", v.body);

    let r = post(addr, "/rebuild", "");
    assert_eq!(r.status, 200, "{}", r.body);
    let after = get(addr, "/query?seed=1&top=5");
    assert_eq!(after.version(), 2);
    assert_ne!(after.body, before.body);
    handle.shutdown();
}

/// `--auto-flush`-style threshold rebuilds work end-to-end over HTTP.
#[test]
fn auto_flush_threshold_rebuilds_in_background() {
    let g = base_graph();
    let bepi = Arc::new(BePi::preprocess(&g, &BePiConfig::default()).unwrap());
    let engine = LiveEngine::start(
        bepi,
        g,
        BePiConfig::default(),
        LiveConfig {
            auto_flush_threshold: 2,
            ..LiveConfig::default()
        },
    )
    .unwrap();
    let handle = start_live(engine);
    let addr = handle.local_addr();

    let r = post(
        addr,
        "/edges",
        &edges_body(&[EdgeUpdate::Insert(0, 50), EdgeUpdate::Insert(0, 51)]),
    );
    assert_eq!(r.status, 200, "{}", r.body);
    assert!(r.body.contains("\"rebuild_triggered\":true"), "{}", r.body);

    // The rebuild is asynchronous: poll until the served version bumps.
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        let r = get(addr, "/query?seed=0&top=5");
        assert_eq!(r.status, 200);
        if r.version() == 2 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "background rebuild never landed"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    handle.shutdown();
}

/// A frozen daemon (index without graph) keeps serving queries but
/// rejects the live-update surface with clear errors.
#[test]
fn frozen_server_rejects_updates_but_serves_queries() {
    let g = base_graph();
    let bepi = Arc::new(BePi::preprocess(&g, &BePiConfig::default()).unwrap());
    let handle = Server::start(
        bepi,
        &ServerConfig {
            timeout: Duration::from_secs(60),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr();

    let r = get(addr, "/query?seed=0&top=5");
    assert_eq!(r.status, 200);
    assert_eq!(r.version(), 1);

    let v = get(addr, "/version");
    assert!(v.body.contains("\"live\":false"), "{}", v.body);

    let r = post(addr, "/edges", &edges_body(&[EdgeUpdate::Insert(0, 1)]));
    assert_eq!(r.status, 503, "{}", r.body);
    assert!(r.body.contains("live updates disabled"), "{}", r.body);
    let r = post(addr, "/rebuild", "");
    assert_eq!(r.status, 503, "{}", r.body);

    // Malformed bodies and wrong methods are client errors, not 500s.
    let r = post(addr, "/edges", "not json");
    assert_eq!(r.status, 400, "{}", r.body);
    let r = post(addr, "/edges", "");
    assert_eq!(r.status, 400, "{}", r.body);
    let r = get(addr, "/edges");
    assert_eq!(r.status, 405, "{}", r.body);
    assert_eq!(r.header("allow"), Some("POST"));
    let r = post(addr, "/query?seed=0", "");
    assert_eq!(r.status, 405, "{}", r.body);
    assert_eq!(r.header("allow"), Some("GET"));
    handle.shutdown();
}

/// Out-of-range edges are rejected atomically with 422 — nothing from the
/// batch is buffered.
#[test]
fn out_of_range_edge_batch_is_rejected_as_a_unit() {
    let g = base_graph();
    let n = g.n();
    let bepi = Arc::new(BePi::preprocess(&g, &BePiConfig::default()).unwrap());
    let engine = LiveEngine::start(bepi, g, BePiConfig::default(), LiveConfig::default()).unwrap();
    let handle = start_live(engine);
    let addr = handle.local_addr();

    let r = post(
        addr,
        "/edges",
        &edges_body(&[EdgeUpdate::Insert(0, 1), EdgeUpdate::Insert(0, n)]),
    );
    assert_eq!(r.status, 422, "{}", r.body);
    let v = get(addr, "/version");
    assert!(v.body.contains("\"pending\":0"), "{}", v.body);
    handle.shutdown();
}

/// Durability through the full server stack: updates posted over HTTP
/// land in the WAL; a new engine over the same WAL (the crash-restart
/// path — the first server is dropped without flushing) serves scores
/// byte-for-byte equal to a from-scratch preprocess of the updated graph.
#[test]
fn wal_backed_server_replays_unflushed_updates_on_restart() {
    let dir = std::env::temp_dir().join("bepi_live_http_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let wal = dir.join(format!("restart_{}.wal", std::process::id()));
    std::fs::remove_file(&wal).ok();

    let g = base_graph();
    let updates = vec![
        EdgeUpdate::Insert(0, 60),
        EdgeUpdate::Remove(0, 60),
        EdgeUpdate::Insert(4, 80),
    ];
    let bepi = Arc::new(BePi::preprocess(&g, &BePiConfig::default()).unwrap());
    let config = LiveConfig {
        wal_path: Some(wal.clone()),
        ..LiveConfig::default()
    };
    let engine = LiveEngine::start(
        Arc::clone(&bepi),
        g.clone(),
        BePiConfig::default(),
        config.clone(),
    )
    .unwrap();
    let handle = start_live(engine);
    let r = post(handle.local_addr(), "/edges", &edges_body(&updates));
    assert_eq!(r.status, 200, "{}", r.body);
    // "Crash": tear the server down with the updates unflushed.
    handle.shutdown();

    let engine = LiveEngine::start(bepi, g.clone(), BePiConfig::default(), config).unwrap();
    let handle = start_live(engine);
    let r = get(handle.local_addr(), &format!("/query?seed=4&top={TOP_K}"));
    assert_eq!(r.status, 200);

    let expected_graph = apply_updates(&g, &updates).unwrap();
    let expected = expected_bodies(&expected_graph, r.version());
    assert_eq!(r.body, expected[&4]);
    handle.shutdown();
    std::fs::remove_file(&wal).ok();
}
