//! # bepi-core
//!
//! **BePI: Fast and Memory-Efficient Method for Billion-Scale Random Walk
//! with Restart** — a from-scratch Rust reproduction of Jung, Park, Sael &
//! Kang (SIGMOD 2017).
//!
//! Random walk with restart (RWR) scores the proximity of every node to a
//! seed node `s` as the solution of `H r = c q` with
//! `H = I − (1−c)Ã^T` (Equation 2 of the paper). BePI answers such
//! queries quickly *and* scales to huge graphs by combining:
//!
//! 1. deadend + hub-and-spoke (SlashBurn) node reordering ([`hmatrix`]),
//! 2. block elimination through the Schur complement of the block-diagonal
//!    `H11` ([`schur`]),
//! 3. an iterative (GMRES) inner solver instead of inverting the Schur
//!    complement ([`bepi`], variant `BePI-B`),
//! 4. a hub ratio chosen to *sparsify* the Schur complement (`BePI-S`),
//! 5. an ILU(0) preconditioner on the Schur system (full `BePI`).
//!
//! The crate also implements every baseline of the paper's evaluation:
//! [`bear`] (block elimination with explicit `S^{-1}`), [`lu_method`]
//! (Fujiwara-style inverted sparse LU factors), [`iterative`] (power
//! iteration and plain GMRES on `H`), and [`exact`] (dense `H^{-1}`,
//! small graphs). [`accuracy`] evaluates the Theorem 4 error bound.
//!
//! ## Quickstart
//!
//! ```
//! use bepi_core::prelude::*;
//! use bepi_graph::generators;
//!
//! let graph = generators::example_graph(); // Figure 2 of the paper
//! let solver = BePi::preprocess(&graph, &BePiConfig::default()).unwrap();
//! let scores = solver.query(0).unwrap();
//! let ranking = bepi_sparse::vecops::top_k_indices(&scores.scores, 3);
//! assert_eq!(ranking[0], 0); // the seed ranks first
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Index-based loops over multiple parallel arrays are the clearest (and
// often fastest) idiom in the numerical kernels here; the iterator
// rewrites clippy suggests obscure the subscript structure of the math.
#![allow(clippy::needless_range_loop)]

pub mod accuracy;
pub mod approx;
pub mod batch;
pub mod bear;
pub mod bepi;
pub mod community;
pub mod dynamic;
pub mod exact;
pub mod hmatrix;
pub mod iterative;
pub mod lu_method;
pub mod metrics;
pub mod persist;
pub mod rwr;
pub mod schur;

pub use bear::Bear;
pub use bepi::{
    BePi, BePiConfig, BePiVariant, InnerSolver, MemorySection, PhaseTiming, PrecondKind,
};
pub use bepi_incr::{classify, Classification, DirtySet, SymbolicPlan};
pub use dynamic::{DynamicBePi, EdgeUpdate, RebuildKind};
pub use exact::DenseExact;
pub use hmatrix::HPartition;
pub use iterative::{GmresSolver, PowerSolver};
pub use lu_method::{LuDecomp, LuOrdering};
pub use rwr::{RwrScores, RwrSolver};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::bear::Bear;
    pub use crate::bepi::{BePi, BePiConfig, BePiVariant, InnerSolver, PhaseTiming, PrecondKind};
    pub use crate::exact::DenseExact;
    pub use crate::iterative::{GmresSolver, PowerSolver};
    pub use crate::lu_method::LuDecomp;
    pub use crate::rwr::{RwrScores, RwrSolver};
}

/// The paper's default restart probability (`c = 0.05`, Section 4.1).
pub const DEFAULT_RESTART_PROB: f64 = 0.05;

/// The paper's default error tolerance (`ε = 10^{-9}`, Section 4.1).
pub const DEFAULT_TOLERANCE: f64 = 1e-9;
