//! Per-shard runtime state shared between the router's request paths
//! and the supervisor's health loop.

use crate::client::ShardClient;
use bepi_obs::telemetry::Histogram;
use bepi_obs::trace::clock_us;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Latency buckets for the per-shard request histograms (seconds).
pub const LATENCY_BOUNDS: &[f64] = &[
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
];

/// The mutable part of a shard that changes when its process is
/// replaced: the address (respawned shards bind a fresh ephemeral port)
/// and the connection pool pointing at it.
struct ShardRuntime {
    addr: String,
    client: Arc<ShardClient>,
}

/// One shard as the router sees it.
pub struct ShardState {
    /// Stable shard id (also the daemon's `--shard-id` / `X-Shard`).
    pub id: usize,
    runtime: Mutex<ShardRuntime>,
    /// Serving state: `true` once the shard answers probes, `false`
    /// after a request or probe failure. Request routing prefers
    /// healthy shards; the supervisor flips this back on re-admission.
    healthy: AtomicBool,
    /// Highest `X-Graph-Version` seen from this shard.
    version: AtomicU64,
    /// Process generation: bumped by every respawn, so request paths
    /// can tell "same process recovered" from "replacement process".
    generation: AtomicU64,
    /// Trace-clock millisecond of the last completed health probe,
    /// biased by one so `0` means "never probed".
    last_probe: AtomicU64,
    /// Latency of successful requests to this shard.
    pub latency: Histogram,
    /// Requests answered by this shard (any status).
    pub requests_total: AtomicU64,
    /// Transport failures talking to this shard.
    pub errors_total: AtomicU64,
    per_request_timeout: Duration,
}

impl ShardState {
    /// A shard at `addr`, initially unhealthy until the first probe or
    /// successful request proves otherwise.
    pub fn new(id: usize, addr: impl Into<String>, per_request_timeout: Duration) -> ShardState {
        let addr = addr.into();
        let client = Arc::new(ShardClient::new(addr.clone(), per_request_timeout));
        ShardState {
            id,
            runtime: Mutex::new(ShardRuntime { addr, client }),
            healthy: AtomicBool::new(false),
            version: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            last_probe: AtomicU64::new(0),
            latency: Histogram::new(LATENCY_BOUNDS),
            requests_total: AtomicU64::new(0),
            errors_total: AtomicU64::new(0),
            per_request_timeout,
        }
    }

    /// The pooled client for the shard's *current* process.
    pub fn client(&self) -> Arc<ShardClient> {
        Arc::clone(&self.lock().client)
    }

    /// The shard's current address.
    pub fn addr(&self) -> String {
        self.lock().addr.clone()
    }

    /// Swaps in a replacement process at `addr`: the old connection
    /// pool is dropped wholesale (its sockets point at a dead process)
    /// and the generation is bumped. The shard stays unhealthy until
    /// the supervisor re-admits it.
    pub fn replace_process(&self, addr: impl Into<String>) {
        let addr = addr.into();
        let client = Arc::new(ShardClient::new(addr.clone(), self.per_request_timeout));
        let mut rt = self.lock();
        rt.client.clear();
        rt.addr = addr;
        rt.client = client;
        drop(rt);
        self.generation.fetch_add(1, Ordering::SeqCst);
        self.healthy.store(false, Ordering::SeqCst);
    }

    /// Serving state (see [`ShardState::mark`]).
    pub fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::SeqCst)
    }

    /// Flips the health bit.
    pub fn mark(&self, healthy: bool) {
        self.healthy.store(healthy, Ordering::SeqCst);
    }

    /// Highest graph version observed from this shard.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::SeqCst)
    }

    /// Records an observed `X-Graph-Version` (kept monotone: a late
    /// response from before a rollout cannot roll the shard back).
    pub fn observe_version(&self, v: u64) {
        self.version.fetch_max(v, Ordering::SeqCst);
    }

    /// Process generation (0 = the original process).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// Stamps "a health probe just completed against this shard".
    pub fn record_probe(&self) {
        self.last_probe
            .store(clock_us() / 1000 + 1, Ordering::Relaxed);
    }

    /// Milliseconds since the last completed health probe, or `None` if
    /// the shard has never been probed.
    pub fn last_probe_age_ms(&self) -> Option<u64> {
        let stamped = self.last_probe.load(Ordering::Relaxed).checked_sub(1)?;
        Some((clock_us() / 1000).saturating_sub(stamped))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ShardRuntime> {
        self.runtime.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// The advertised fleet version: the highest graph version that a
/// *quorum* (strict majority) of shards has reached. During an epoch
/// rollout the advertised version switches only once most of the fleet
/// serves the new epoch, so a router client never sees the fleet
/// version flap as individual shards rebuild.
pub fn quorum_version(shards: &[Arc<ShardState>]) -> u64 {
    let mut versions: Vec<u64> = shards.iter().map(|s| s.version()).collect();
    versions.sort_unstable_by(|a, b| b.cmp(a));
    let quorum = shards.len() / 2 + 1;
    versions.get(quorum - 1).copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(id: usize) -> Arc<ShardState> {
        Arc::new(ShardState::new(
            id,
            "127.0.0.1:1",
            Duration::from_millis(100),
        ))
    }

    #[test]
    fn replace_process_bumps_generation_and_resets_health() {
        let s = shard(0);
        s.mark(true);
        assert_eq!(s.generation(), 0);
        s.replace_process("127.0.0.1:2");
        assert_eq!(s.generation(), 1);
        assert!(!s.is_healthy());
        assert_eq!(s.addr(), "127.0.0.1:2");
    }

    #[test]
    fn probe_age_is_none_until_first_probe() {
        let s = shard(0);
        assert_eq!(s.last_probe_age_ms(), None);
        s.record_probe();
        assert!(s.last_probe_age_ms().unwrap() < 1000);
    }

    #[test]
    fn version_is_monotone() {
        let s = shard(0);
        s.observe_version(5);
        s.observe_version(3);
        assert_eq!(s.version(), 5);
    }

    #[test]
    fn quorum_version_needs_a_majority() {
        let shards: Vec<Arc<ShardState>> = (0..3).map(shard).collect();
        shards[0].observe_version(2);
        // 1 of 3 on the new epoch: still advertising the old one.
        assert_eq!(quorum_version(&shards), 0);
        shards[1].observe_version(2);
        // 2 of 3: quorum reached.
        assert_eq!(quorum_version(&shards), 2);
        // A straggler cannot drag the version back down.
        assert_eq!(shards[2].version(), 0);
        assert_eq!(quorum_version(&shards), 2);
    }

    #[test]
    fn quorum_version_single_shard_is_its_version() {
        let shards = vec![shard(0)];
        shards[0].observe_version(9);
        assert_eq!(quorum_version(&shards), 9);
    }
}
