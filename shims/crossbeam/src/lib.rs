//! Offline stand-in for the `crossbeam` facade crate.
//!
//! The workspace uses exactly one crossbeam feature — `thread::scope` for
//! fork-join fan-out over borrowed data. Since Rust 1.63 the standard
//! library ships scoped threads, so this shim adapts `std::thread::scope`
//! to crossbeam's `scope(...) -> Result<R>` signature (crossbeam reports
//! child panics as an `Err`; std re-raises them as a panic, which this
//! shim catches and converts).

#![forbid(unsafe_code)]

/// Scoped threads (the `crossbeam::thread` module subset in use).
pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A scope handle: spawn borrows-allowed threads that all join before
    /// `scope` returns.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the
        /// scope again (crossbeam's signature) for nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope; every spawned thread is joined before this
    /// returns. A panic in any child surfaces as `Err`, exactly like
    /// crossbeam's `scope`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1usize, 2, 3, 4];
            let sum = AtomicUsize::new(0);
            let result = super::scope(|s| {
                for chunk in data.chunks(2) {
                    s.spawn(|_| {
                        sum.fetch_add(chunk.iter().sum::<usize>(), Ordering::SeqCst);
                    });
                }
                7usize
            })
            .unwrap();
            assert_eq!(result, 7);
            assert_eq!(sum.load(Ordering::SeqCst), 10);
        }

        #[test]
        fn child_panic_becomes_err() {
            let r = super::scope(|s| {
                s.spawn(|_| panic!("boom"));
            });
            assert!(r.is_err());
        }

        #[test]
        fn nested_spawn_through_scope_arg() {
            let hits = AtomicUsize::new(0);
            super::scope(|s| {
                s.spawn(|s2| {
                    s2.spawn(|_| {
                        hits.fetch_add(1, Ordering::SeqCst);
                    });
                });
            })
            .unwrap();
            assert_eq!(hits.load(Ordering::SeqCst), 1);
        }
    }
}
