//! Criterion ablation microbenchmarks for BePI's discretionary design
//! choices: GMRES restart length, inner Krylov solver, and preconditioner
//! kind (backing the `ablation_solvers` experiment).

use bepi_core::prelude::*;
use bepi_graph::Dataset;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_restart_length(c: &mut Criterion) {
    let ds = Dataset::Wikipedia;
    let g = ds.generate();
    let k = ds.spec().hub_ratio;
    let seed = 777 % g.n();
    let mut group = c.benchmark_group("ablation/gmres_restart");
    group.sample_size(20);
    for restart in [5usize, 20, 50, 100] {
        let cfg = BePiConfig {
            gmres_restart: restart,
            hub_ratio: Some(k),
            ..BePiConfig::default()
        };
        let solver = BePi::preprocess(&g, &cfg).unwrap();
        group.bench_function(format!("m{restart}"), |b| {
            b.iter(|| black_box(solver.query(black_box(seed)).unwrap()))
        });
    }
    group.finish();
}

fn bench_inner_and_precond(c: &mut Criterion) {
    let ds = Dataset::Wikipedia;
    let g = ds.generate();
    let k = ds.spec().hub_ratio;
    let seed = 777 % g.n();
    let mut group = c.benchmark_group("ablation/inner_precond");
    group.sample_size(20);
    let combos: [(&str, InnerSolver, BePiVariant, PrecondKind); 6] = [
        (
            "gmres_plain",
            InnerSolver::Gmres,
            BePiVariant::Sparse,
            PrecondKind::Ilu0,
        ),
        (
            "gmres_ilu0",
            InnerSolver::Gmres,
            BePiVariant::Full,
            PrecondKind::Ilu0,
        ),
        (
            "gmres_jacobi",
            InnerSolver::Gmres,
            BePiVariant::Full,
            PrecondKind::Jacobi,
        ),
        (
            "bicgstab_plain",
            InnerSolver::BiCgStab,
            BePiVariant::Sparse,
            PrecondKind::Ilu0,
        ),
        (
            "bicgstab_ilu0",
            InnerSolver::BiCgStab,
            BePiVariant::Full,
            PrecondKind::Ilu0,
        ),
        (
            "gmres_neumann3",
            InnerSolver::Gmres,
            BePiVariant::Full,
            PrecondKind::Neumann(3),
        ),
    ];
    for (name, inner, variant, precond) in combos {
        let cfg = BePiConfig {
            variant,
            inner,
            precond,
            hub_ratio: Some(k),
            ..BePiConfig::default()
        };
        let solver = BePi::preprocess(&g, &cfg).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| black_box(solver.query(black_box(seed)).unwrap()))
        });
    }
    group.finish();
}

fn bench_parallel_batch(c: &mut Criterion) {
    let ds = Dataset::Wikipedia;
    let g = ds.generate();
    let solver = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
    let seeds: Vec<usize> = (0..16).map(|i| (i * 211) % g.n()).collect();
    let mut group = c.benchmark_group("ablation/batch_threads");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_function(format!("t{threads}"), |b| {
            b.iter(|| {
                black_box(
                    solver
                        .query_batch_parallel(black_box(&seeds), threads)
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_restart_length,
    bench_inner_and_precond,
    bench_parallel_batch
);
criterion_main!(benches);
