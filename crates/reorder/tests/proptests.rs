//! Property-based tests for the reordering methods on random graphs.

use bepi_graph::Graph;
use bepi_reorder::{
    blocks, degree_order, rcm_order, reorder_deadends, slashburn, DegreeOrder, SlashBurnConfig,
};
use proptest::prelude::*;

fn graph_strategy() -> impl Strategy<Value = Graph> {
    (4usize..80).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..(n * 3)).prop_map(move |pairs| {
            let edges: Vec<(usize, usize)> = pairs.into_iter().filter(|(u, v)| u != v).collect();
            Graph::from_edges(n, &edges).unwrap()
        })
    })
}

fn is_permutation(p: &bepi_sparse::Permutation, n: usize) -> bool {
    if p.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for u in 0..n {
        let l = p.apply(u);
        if l >= n || seen[l] {
            return false;
        }
        seen[l] = true;
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn slashburn_output_is_valid(g in graph_strategy(), k_idx in 0usize..3) {
        let k = [0.05, 0.2, 0.5][k_idx];
        let sym = g.undirected_structure();
        let r = slashburn(&sym, &SlashBurnConfig::with_ratio(k));
        prop_assert!(is_permutation(&r.perm, g.n()));
        prop_assert_eq!(r.n_spokes + r.n_hubs, g.n());
        prop_assert_eq!(r.block_sizes.iter().sum::<usize>(), r.n_spokes);
        // Defining property: reordered spoke region is block diagonal.
        let b = r.perm.permute_symmetric(&sym).unwrap();
        let spoke_block = b.slice_block(0..r.n_spokes, 0..r.n_spokes).unwrap();
        prop_assert!(blocks::is_block_diagonal(&spoke_block, &r.block_sizes));
    }

    #[test]
    fn deadend_reorder_splits_cleanly(g in graph_strategy()) {
        let r = reorder_deadends(&g);
        prop_assert!(is_permutation(&r.perm, g.n()));
        prop_assert_eq!(r.n_deadend, g.deadend_count());
        let a = r.perm.permute_symmetric(g.adjacency()).unwrap();
        for row in r.n_non_deadend..g.n() {
            prop_assert_eq!(a.row_nnz(row), 0);
        }
        for row in 0..r.n_non_deadend {
            prop_assert!(a.row_nnz(row) > 0);
        }
    }

    #[test]
    fn degree_order_is_monotone(g in graph_strategy()) {
        let p = degree_order(&g, DegreeOrder::Ascending);
        prop_assert!(is_permutation(&p, g.n()));
        let degs = g.total_degrees();
        let by_label: Vec<usize> = (0..g.n()).map(|l| degs[p.apply_inverse(l)]).collect();
        for w in by_label.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn rcm_is_valid_permutation(g in graph_strategy()) {
        let p = rcm_order(&g);
        prop_assert!(is_permutation(&p, g.n()));
    }

    #[test]
    fn diagonal_blocks_tile_any_square_matrix(g in graph_strategy()) {
        let sym = g.undirected_structure();
        let bs = blocks::diagonal_blocks(&sym);
        prop_assert_eq!(bs.iter().sum::<usize>(), g.n());
        prop_assert!(blocks::is_block_diagonal(&sym, &bs));
    }
}
