//! Approximate RWR methods (Section 5 of the paper, "Approximate and
//! top-k methods for RWR").
//!
//! The paper's evaluation excludes approximate methods because all
//! compared methods are exact, but its related-work section surveys them;
//! a usable RWR library should offer the two standard ones:
//!
//! * [`monte_carlo`] — simulate random walks with restart and estimate
//!   scores by visit frequencies (the Fast-PPR / Bahmani et al. family's
//!   basic building block). Unbiased; error shrinks as `O(1/√walks)`.
//! * [`forward_push`] — Andersen, Chung & Lang's local push: maintain
//!   per-node (estimate, residual) pairs and push residual mass along
//!   out-edges until every residual is below `epsilon · deg(u)`. The
//!   work is *local* — independent of graph size for small ε-communities.
//!
//! Both return scores in the same normalization as the exact solvers
//! (`Σ r ≤ 1`, `= 1` on deadend-free graphs), so they are directly
//! comparable against [`crate::BePi`] in the tests.
//!
//! For *serving*, the `bepi-walk` crate supersedes [`monte_carlo`]: its
//! step-interleaved batch walk engine and truncated cumulative power
//! iteration are deterministic per `(seed, epoch)` at any thread count,
//! which the daemon's response cache requires. The implementations here
//! remain the readable reference versions (and [`forward_push`] backs
//! `bepi query --method push`, which has no `bepi-walk` counterpart).

use crate::rwr::{check_restart_prob, check_seed, RwrScores};
use bepi_graph::Graph;
use bepi_sparse::{Csr, Result, SparseError};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Estimates RWR scores by simulating `walks` random walks with restart
/// from `seed` and counting terminal-state visits.
///
/// Each walk steps to a uniform out-neighbor with probability `1 − c` and
/// terminates (restart event) with probability `c`; walks that reach a
/// deadend terminate there *without* contributing (matching the linear
/// system's leaked mass). The estimate of `r_u` is the fraction of walks
/// terminating at `u`, which converges to the exact solution scaled to
/// the same total mass.
pub fn monte_carlo(
    g: &Graph,
    c: f64,
    seed: usize,
    walks: usize,
    rng_seed: u64,
) -> Result<RwrScores> {
    check_restart_prob(c)?;
    check_seed(seed, g.n())?;
    if walks == 0 {
        return Err(SparseError::Numerical(
            "monte_carlo needs at least one walk".into(),
        ));
    }
    let adj: &Csr = g.adjacency();
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let mut hits = vec![0u64; g.n()];
    let mut leaked = 0u64;
    for _ in 0..walks {
        let mut u = seed;
        loop {
            if rng.random::<f64>() < c {
                hits[u] += 1;
                break;
            }
            let (cols, weights) = adj.row(u);
            if cols.is_empty() {
                // Deadend: the surfer's mass leaks (Equation 4 semantics).
                leaked += 1;
                break;
            }
            // Weighted neighbor choice (uniform when weights are equal).
            let total: f64 = weights.iter().sum();
            let mut pick = rng.random::<f64>() * total;
            let mut next = cols[cols.len() - 1] as usize;
            for (&col, &w) in cols.iter().zip(weights) {
                if pick < w {
                    next = col as usize;
                    break;
                }
                pick -= w;
            }
            u = next;
        }
    }
    let _ = leaked;
    let scores: Vec<f64> = hits.into_iter().map(|h| h as f64 / walks as f64).collect();
    Ok(RwrScores {
        scores,
        iterations: walks,
        residual: 0.0,
    })
}

/// Result of a forward-push run.
#[derive(Debug, Clone)]
pub struct PushResult {
    /// The approximate scores (lower bounds on the exact scores).
    pub scores: RwrScores,
    /// Number of push operations performed (the method's work measure).
    pub pushes: usize,
    /// Nodes with a non-zero estimate or residual (locality measure).
    pub touched: usize,
}

/// Andersen–Chung–Lang forward push with threshold `epsilon`.
///
/// Maintains estimates `p` and residuals `r` with the invariant
/// `r_exact = p + (walk operator applied to r)`; repeatedly pushes any
/// node whose residual exceeds `epsilon · out_degree`. The returned `p`
/// underestimates the exact scores by at most `epsilon · vol` in total.
pub fn forward_push(g: &Graph, c: f64, seed: usize, epsilon: f64) -> Result<PushResult> {
    check_restart_prob(c)?;
    check_seed(seed, g.n())?;
    if epsilon <= 0.0 {
        return Err(SparseError::Numerical(
            "forward_push needs epsilon > 0".into(),
        ));
    }
    let adj: &Csr = g.adjacency();
    let n = g.n();
    let mut p = vec![0.0f64; n];
    let mut r = vec![0.0f64; n];
    r[seed] = 1.0;
    let mut queue: Vec<u32> = vec![seed as u32];
    let mut queued = vec![false; n];
    queued[seed] = true;
    let mut pushes = 0usize;

    while let Some(u) = queue.pop() {
        let u = u as usize;
        queued[u] = false;
        let deg = adj.row_nnz(u);
        let threshold = epsilon * (deg.max(1) as f64);
        if r[u] < threshold {
            continue;
        }
        let mass = r[u];
        r[u] = 0.0;
        p[u] += c * mass;
        pushes += 1;
        if deg == 0 {
            continue; // deadend: the (1−c) share leaks, as in the exact model
        }
        let (cols, weights) = adj.row(u);
        let total: f64 = weights.iter().sum();
        for (&col, &w) in cols.iter().zip(weights) {
            let v = col as usize;
            r[v] += (1.0 - c) * mass * (w / total);
            let vdeg = adj.row_nnz(v).max(1) as f64;
            if !queued[v] && r[v] >= epsilon * vdeg {
                queued[v] = true;
                queue.push(col);
            }
        }
    }
    let touched = (0..n).filter(|&u| p[u] > 0.0 || r[u] > 0.0).count();
    Ok(PushResult {
        scores: RwrScores {
            scores: p,
            iterations: pushes,
            residual: 0.0,
        },
        pushes,
        touched,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use bepi_graph::generators;

    fn exact(g: &Graph, seed: usize) -> Vec<f64> {
        DenseExact::with_defaults(g)
            .unwrap()
            .query(seed)
            .unwrap()
            .scores
    }

    #[test]
    fn monte_carlo_converges_with_walks() {
        let g = generators::erdos_renyi(60, 300, 3).unwrap();
        let truth = exact(&g, 5);
        let coarse = monte_carlo(&g, 0.05, 5, 2_000, 1).unwrap();
        let fine = monte_carlo(&g, 0.05, 5, 60_000, 1).unwrap();
        let err = |approx: &RwrScores| -> f64 {
            approx
                .scores
                .iter()
                .zip(&truth)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max)
        };
        assert!(
            err(&fine) < err(&coarse),
            "more walks must reduce error: {} vs {}",
            err(&fine),
            err(&coarse)
        );
        assert!(err(&fine) < 0.02, "fine error {}", err(&fine));
    }

    #[test]
    fn monte_carlo_mass_conservation() {
        // Deadend-free graph: all walks terminate via restart → sum = 1.
        let g = generators::cycle(10);
        let mc = monte_carlo(&g, 0.2, 0, 10_000, 7).unwrap();
        let sum: f64 = mc.scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // Deadend graph: some walks leak → sum < 1.
        let g = generators::path(5);
        let mc = monte_carlo(&g, 0.2, 0, 10_000, 7).unwrap();
        let sum: f64 = mc.scores.iter().sum();
        assert!(sum < 1.0);
    }

    #[test]
    fn monte_carlo_deterministic_per_seed() {
        let g = generators::erdos_renyi(40, 160, 9).unwrap();
        let a = monte_carlo(&g, 0.1, 3, 5_000, 42).unwrap();
        let b = monte_carlo(&g, 0.1, 3, 5_000, 42).unwrap();
        assert_eq!(a.scores, b.scores);
    }

    #[test]
    fn forward_push_underestimates_and_converges() {
        let g = generators::erdos_renyi(80, 400, 5).unwrap();
        let truth = exact(&g, 7);
        let coarse = forward_push(&g, 0.05, 7, 1e-4).unwrap();
        let fine = forward_push(&g, 0.05, 7, 1e-8).unwrap();
        // Push estimates are lower bounds.
        for (a, b) in coarse.scores.scores.iter().zip(&truth) {
            assert!(*a <= b + 1e-12, "push must underestimate: {a} vs {b}");
        }
        let max_err = |pr: &PushResult| -> f64 {
            pr.scores
                .scores
                .iter()
                .zip(&truth)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max)
        };
        assert!(max_err(&fine) < max_err(&coarse).max(1e-9));
        assert!(max_err(&fine) < 1e-5, "fine error {}", max_err(&fine));
        assert!(fine.pushes > coarse.pushes);
    }

    #[test]
    fn forward_push_is_local() {
        // Two islands: pushing from island A never touches island B.
        let g = bepi_graph::Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
            .unwrap();
        let pr = forward_push(&g, 0.1, 0, 1e-10).unwrap();
        assert!(pr.scores.scores[3..].iter().all(|&v| v == 0.0));
        assert!(pr.touched <= 3);
    }

    #[test]
    fn forward_push_on_weighted_graph_matches_exact() {
        let mut coo = bepi_sparse::Coo::new(3, 3).unwrap();
        coo.push(0, 1, 9.0).unwrap();
        coo.push(0, 2, 1.0).unwrap();
        coo.push(1, 0, 1.0).unwrap();
        coo.push(2, 0, 1.0).unwrap();
        let g = bepi_graph::Graph::from_adjacency(coo.to_csr()).unwrap();
        let truth = exact(&g, 0);
        let pr = forward_push(&g, 0.05, 0, 1e-12).unwrap();
        for (a, b) in pr.scores.scores.iter().zip(&truth) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn invalid_parameters_rejected() {
        let g = generators::cycle(5);
        assert!(monte_carlo(&g, 0.0, 0, 100, 1).is_err());
        assert!(monte_carlo(&g, 0.1, 9, 100, 1).is_err());
        assert!(monte_carlo(&g, 0.1, 0, 0, 1).is_err());
        assert!(forward_push(&g, 0.1, 0, 0.0).is_err());
        assert!(forward_push(&g, 0.1, 9, 1e-6).is_err());
    }
}
