//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! Supports the API the workspace's benches use — `criterion_group!` /
//! `criterion_main!`, `Criterion::benchmark_group`, `sample_size`,
//! `bench_function`, `Bencher::iter` / `iter_batched`, `BatchSize` —
//! and measures wall-clock time with `std::time::Instant`, reporting
//! min / mean / median per benchmark to stdout.
//!
//! No statistical regression analysis, warm-up tuning, or HTML reports:
//! this shim exists so `cargo bench` stays runnable (and the bench
//! targets stay compiling) in an offline build environment.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost (accepted for API parity; the
/// shim always re-runs setup per measured batch of one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs (setup dominates; batch of one).
    LargeInput,
    /// One setup per measured call.
    PerIteration,
}

/// Re-export for call sites that import `criterion::black_box`.
pub use std::hint::black_box;

/// The benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbenchmark group: {name}");
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            sample_size,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name.as_ref(), self.default_sample_size, &mut f);
        self
    }

    /// Sets the default sample count for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.default_sample_size = n.max(1);
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for benchmarks registered after this call.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measures one named benchmark.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name.as_ref(), self.sample_size, &mut f);
        self
    }

    /// Ends the group (printing is already done incrementally).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, f: &mut F) {
    let mut b = Bencher {
        samples,
        timings: Vec::with_capacity(samples),
    };
    f(&mut b);
    let mut t = b.timings;
    if t.is_empty() {
        println!("  {name:<40} (no samples)");
        return;
    }
    t.sort_unstable();
    let total: Duration = t.iter().sum();
    let mean = total / t.len() as u32;
    let median = t[t.len() / 2];
    println!(
        "  {name:<40} min {:>12?}  mean {:>12?}  median {:>12?}  ({} samples)",
        t[0],
        mean,
        median,
        t.len()
    );
}

/// Passed to the benchmark closure; records one timing per sample.
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.timings.push(start.elapsed());
        }
    }

    /// Times `routine` on inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.timings.push(start.elapsed());
        }
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_each_sample() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-self-test");
        group.sample_size(5);
        let mut runs = 0usize;
        group.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.finish();
        assert_eq!(runs, 5);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut setups = 0usize;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 16]
                },
                |v| v.len(),
                BatchSize::LargeInput,
            )
        });
        assert_eq!(setups, 3);
    }
}
