//! The `bepi bench` driver: thread-scaling measurements with a
//! machine-readable `BENCH_*.json` artifact.
//!
//! For each anchor graph and each thread count this runs three workloads:
//!
//! 1. **preprocess** — `BePi::preprocess` (SlashBurn + block LU + Schur),
//!    where the parallel SpGEMM and per-block LU apply;
//! 2. **single-seed query** — one preconditioned-GMRES solve per seed
//!    with kernel-level parallelism (row-partitioned SpMV, chunked
//!    reductions);
//! 3. **batch query** — all seeds through [`bepi_core::BePi`]'s batch
//!    path with *seed-level* parallelism and serial kernels, the same
//!    composition the daemon uses.
//!
//! Each dataset additionally gets a **precision@k** pass over the
//! approximate serving lane ([`bepi_walk::ApproxEngine`], TPA and walk
//! engines at epoch 0): top-20 overlap against the exact solver plus
//! median approximate latency vs the exact-lane p50. Both engines are
//! deterministic for fixed `(seed, epoch)`, so the reported precision is
//! reproducible and CI can gate on it (`bench_check --min-precision`).
//!
//! Results are printed as a table and serialized to JSON
//! (`schema: "bepi-bench/v1"`). The JSON is hand-rolled and validated by
//! [`validate_json`] — also used by the `bench_check` binary that CI runs
//! on the smoke artifact — so the schema cannot silently drift.

use crate::harness::query_seeds;
use bepi_core::prelude::*;
use bepi_graph::Dataset;
use bepi_walk::{ApproxConfig, ApproxEngine, ApproxMethod};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Schema tag stamped into (and required from) every bench artifact.
pub const SCHEMA: &str = "bepi-bench/v1";

/// `k` for the approximate-lane precision@k measurement.
pub const PRECISION_K: usize = 20;

/// Configuration for a [`run`].
#[derive(Debug, Clone)]
pub struct PerfConfig {
    /// Anchor graphs to measure.
    pub datasets: Vec<Dataset>,
    /// Thread counts to sweep (should include 1 for the speedup base).
    pub thread_counts: Vec<usize>,
    /// Query seeds per dataset.
    pub seeds: usize,
    /// Marks the artifact as a reduced smoke run.
    pub quick: bool,
}

impl PerfConfig {
    /// The CI smoke configuration: smallest anchor graph, 1 and 2
    /// threads, few seeds.
    pub fn quick() -> Self {
        Self {
            datasets: vec![Dataset::Slashdot],
            thread_counts: vec![1, 2],
            seeds: 5,
            quick: true,
        }
    }

    /// The full configuration: the Bear-feasible anchor graphs across
    /// 1/2/4/8 threads (the EXPERIMENTS.md scaling table).
    pub fn full() -> Self {
        Self {
            datasets: Dataset::small().to_vec(),
            thread_counts: vec![1, 2, 4, 8],
            seeds: 10,
            quick: false,
        }
    }
}

/// Measurements for one thread count on one dataset.
#[derive(Debug, Clone)]
pub struct ThreadRun {
    /// Kernel threads used.
    pub threads: usize,
    /// Preprocessing wall time, seconds.
    pub preprocess_s: f64,
    /// Mean single-seed query wall time, seconds.
    pub query_s: f64,
    /// Wall time for the whole seed batch, seconds.
    pub batch_s: f64,
    /// Mean GMRES inner iterations per query (thread-count invariant —
    /// the kernels are bit-identical, so this catches determinism bugs).
    pub gmres_iters: f64,
    /// Process peak RSS (`VmHWM`) after this run, bytes; 0 where
    /// unavailable. Monotonic over the process lifetime.
    ///
    /// Caveat: under `--mmap` serving this **over-reports** the index's
    /// real memory cost. `VmHWM` is the high-water mark of resident
    /// pages and counts file-backed mapped pages the same as heap pages,
    /// even though the kernel can drop mapped pages at any time and
    /// share them across processes. For mapped indexes prefer the RSS
    /// *delta* across the load (`bepi stats <index> --mmap`) or the
    /// `bepi_index_mapped_bytes` vs `bepi_index_heap_bytes` gauges.
    pub peak_rss_bytes: u64,
}

/// Open→first-query latency of one index-loading mode (heap or mapped).
#[derive(Debug, Clone)]
pub struct ColdStartMode {
    /// Opening + decoding the index file, seconds. For the mapped path
    /// this is `mmap` + section-table validation — O(#sections), not
    /// O(index bytes) — so it stays flat as the index grows.
    pub open_s: f64,
    /// The first query on the freshly opened index, seconds. The mapped
    /// path pays its page faults here.
    pub first_query_s: f64,
}

/// Cold-start comparison for one dataset: the same v6 index opened on
/// the heap vs memory-mapped (paper §Memory Efficiency — serving without
/// materializing the index). Measured in-process right after writing the
/// file, so the page cache is warm: this isolates decode/validation cost
/// from disk I/O.
#[derive(Debug, Clone)]
pub struct ColdStart {
    /// Size of the measured v6 index file, bytes.
    pub index_bytes: u64,
    /// Full heap load (every payload CRC verified, arrays copied out).
    pub heap: ColdStartMode,
    /// Zero-copy mapped open (table + META validated eagerly, payload
    /// pages faulted in on first use).
    pub mmap: ColdStartMode,
}

/// Precision@k and latency of one approximate engine on one dataset.
#[derive(Debug, Clone)]
pub struct ApproxLane {
    /// Mean fraction of the exact top-k recovered, over all seeds.
    pub precision_at_k: f64,
    /// Median per-query wall time, seconds (one warmup query excluded,
    /// matching how `exact_p50_s` is measured on a warm index).
    pub latency_p50_s: f64,
}

/// The approximate-serving measurement for one dataset: both engines at
/// epoch 0, scored against the exact solver's top-k.
#[derive(Debug, Clone)]
pub struct ApproxReport {
    /// Ranking depth compared (`min(PRECISION_K, n)`).
    pub k: usize,
    /// TPA series terms used (the engine's `max_terms`).
    pub max_terms: usize,
    /// Walks per query used by the walk engine.
    pub walks: usize,
    /// Truncated cumulative power iteration lane.
    pub tpa: ApproxLane,
    /// Step-interleaved batch walk lane.
    pub walk: ApproxLane,
    /// Median exact single-seed query wall time, seconds — the latency
    /// bar the approximate lanes must beat to be worth degrading to.
    pub exact_p50_s: f64,
}

/// All thread runs for one dataset.
#[derive(Debug, Clone)]
pub struct DatasetReport {
    /// Dataset name (the `*-like` anchor-graph label).
    pub dataset: String,
    /// Nodes in the generated graph.
    pub n: usize,
    /// Edges in the generated graph.
    pub m: usize,
    /// One entry per configured thread count, in order.
    pub runs: Vec<ThreadRun>,
    /// Cold-start (open→first-query) comparison over a persisted v6
    /// index, heap vs mapped. `None` in artifacts from older drivers.
    pub cold_start: Option<ColdStart>,
    /// Approximate-lane precision@k vs exact. `None` in artifacts from
    /// drivers that predate the serving lane.
    pub approx: Option<ApproxReport>,
}

impl DatasetReport {
    /// Single-seed query speedup of `run` relative to the 1-thread run.
    pub fn query_speedup(&self, run: &ThreadRun) -> f64 {
        match self.runs.iter().find(|r| r.threads == 1) {
            Some(base) if run.query_s > 0.0 => base.query_s / run.query_s,
            _ => 1.0,
        }
    }

    /// Batch-workload speedup of `run` relative to the 1-thread run.
    pub fn batch_speedup(&self, run: &ThreadRun) -> f64 {
        match self.runs.iter().find(|r| r.threads == 1) {
            Some(base) if run.batch_s > 0.0 => base.batch_s / run.batch_s,
            _ => 1.0,
        }
    }
}

/// A complete bench run.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Whether this was the reduced smoke configuration.
    pub quick: bool,
    /// Cores visible to the process when the run started.
    pub available_parallelism: usize,
    /// Query seeds per dataset.
    pub seeds: usize,
    /// Per-dataset measurements.
    pub datasets: Vec<DatasetReport>,
}

/// Process peak RSS from `/proc/self/status` (`VmHWM`, kB → bytes);
/// 0 on platforms without procfs.
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Runs the configured workloads. Sets the global kernel-thread knob per
/// run and restores it to "auto" before returning.
pub fn run(cfg: &PerfConfig) -> bepi_sparse::Result<PerfReport> {
    let mut datasets = Vec::with_capacity(cfg.datasets.len());
    for &ds in &cfg.datasets {
        let spec = ds.spec();
        let g = spec.generate();
        let seeds = query_seeds(&g, cfg.seeds, 0xBE9C4);
        let bepi_cfg = BePiConfig {
            hub_ratio: Some(spec.hub_ratio),
            ..BePiConfig::default()
        };
        let mut runs = Vec::with_capacity(cfg.thread_counts.len());
        let mut last_bepi = None;
        for &t in &cfg.thread_counts {
            bepi_par::set_threads(t);

            let t0 = Instant::now();
            let bepi = BePi::preprocess(&g, &bepi_cfg)?;
            let preprocess_s = t0.elapsed().as_secs_f64();

            // Single-seed queries: kernel threads = t.
            let t1 = Instant::now();
            let mut iter_sum = 0usize;
            for &s in &seeds {
                iter_sum += bepi.query_with_stats(s)?.iterations;
            }
            let query_s = t1.elapsed().as_secs_f64() / seeds.len().max(1) as f64;
            let gmres_iters = iter_sum as f64 / seeds.len().max(1) as f64;

            // Batch: seed-level parallelism with serial kernels — the
            // daemon's composition (t workers × 1 kernel thread).
            bepi_par::set_threads(1);
            let t2 = Instant::now();
            let batch = bepi.query_batch_parallel(&seeds, t)?;
            let batch_s = t2.elapsed().as_secs_f64();
            debug_assert_eq!(batch.len(), seeds.len());

            runs.push(ThreadRun {
                threads: t,
                preprocess_s,
                query_s,
                batch_s,
                gmres_iters,
                peak_rss_bytes: peak_rss_bytes(),
            });
            last_bepi = Some(bepi);
        }
        // Preprocessing is thread-count-deterministic, so any run's
        // index stands in for all of them in the cold-start comparison.
        bepi_par::set_threads(1);
        let cold_start = match &last_bepi {
            Some(bepi) => Some(measure_cold_start(
                bepi,
                seeds.first().copied().unwrap_or(0),
            )?),
            None => None,
        };
        let approx = match &last_bepi {
            Some(bepi) => Some(measure_approx(bepi, &g, bepi_cfg.c, &seeds)?),
            None => None,
        };
        datasets.push(DatasetReport {
            dataset: spec.name.to_string(),
            n: g.n(),
            m: g.m(),
            runs,
            cold_start,
            approx,
        });
    }
    bepi_par::set_threads(0);
    Ok(PerfReport {
        quick: cfg.quick,
        available_parallelism: bepi_par::available(),
        seeds: cfg.seeds,
        datasets,
    })
}

/// Writes `bepi` to a temporary v6 index and times open→first-query for
/// the heap loader and the mapped loader, verifying along the way that
/// the two paths return bit-identical scores (the `--mmap` acceptance
/// bar). The temp file is removed before returning.
fn measure_cold_start(bepi: &BePi, seed: usize) -> bepi_sparse::Result<ColdStart> {
    use bepi_core::persist;
    let tmp =
        std::env::temp_dir().join(format!("bepi-bench-coldstart-{}.bepi", std::process::id()));
    let result = (|| {
        persist::save_file_v6(bepi, None, &tmp)?;
        let index_bytes = std::fs::metadata(&tmp)?.len();

        let t0 = Instant::now();
        let (heap_bepi, _) = persist::load_file_with_graph(&tmp)?;
        let heap_open_s = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let heap_scores = heap_bepi.query(seed)?.scores;
        let heap_query_s = t1.elapsed().as_secs_f64();
        drop(heap_bepi);

        let t2 = Instant::now();
        let (mapped_bepi, _) = persist::load_mapped_file(&tmp)?;
        let mmap_open_s = t2.elapsed().as_secs_f64();
        let t3 = Instant::now();
        let mmap_scores = mapped_bepi.query(seed)?.scores;
        let mmap_query_s = t3.elapsed().as_secs_f64();

        if heap_scores != mmap_scores {
            return Err(bepi_sparse::SparseError::Parse(
                "cold-start check: mapped index scores diverge from heap load".to_string(),
            ));
        }
        Ok(ColdStart {
            index_bytes,
            heap: ColdStartMode {
                open_s: heap_open_s,
                first_query_s: heap_query_s,
            },
            mmap: ColdStartMode {
                open_s: mmap_open_s,
                first_query_s: mmap_query_s,
            },
        })
    })();
    std::fs::remove_file(&tmp).ok();
    result
}

/// Top-`k` nodes of a score vector, ranked by score descending with
/// node index as the tie-break — the daemon's response ranking.
fn top_k_nodes(scores: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

/// Measures both approximate engines against the exact solver: mean
/// precision@k of the top-k sets over `seeds` (epoch 0) plus mean
/// approximate latency and the exact-lane p50. Runs with whatever
/// kernel-thread setting is in effect — both engines are thread-count
/// deterministic, so precision cannot flake.
fn measure_approx(
    bepi: &BePi,
    g: &bepi_graph::Graph,
    c: f64,
    seeds: &[usize],
) -> bepi_sparse::Result<ApproxReport> {
    let k = PRECISION_K.min(g.n());
    let cfg = ApproxConfig::default();
    let shared = Arc::new(g.clone());
    let tpa_engine = ApproxEngine::new(
        Arc::clone(&shared),
        c,
        ApproxConfig {
            method: ApproxMethod::Tpa,
            ..cfg
        },
    )?;
    let walk_engine = ApproxEngine::new(
        shared,
        c,
        ApproxConfig {
            method: ApproxMethod::Walk,
            ..cfg
        },
    )?;

    let mut exact_tops = Vec::with_capacity(seeds.len());
    let mut exact_lat = Vec::with_capacity(seeds.len());
    for &s in seeds {
        let t = Instant::now();
        let scores = bepi.query(s)?.scores;
        exact_lat.push(t.elapsed().as_secs_f64());
        exact_tops.push(top_k_nodes(&scores, k));
    }
    exact_lat.sort_by(f64::total_cmp);
    let exact_p50_s = exact_lat.get(exact_lat.len() / 2).copied().unwrap_or(0.0);

    let measure_lane = |engine: &ApproxEngine| -> bepi_sparse::Result<ApproxLane> {
        let mut hits = 0usize;
        let mut lat = Vec::with_capacity(seeds.len());
        // Warm the engine's operator (the exact side is warm too: the
        // thread sweep already queried these seeds).
        if let Some(&s) = seeds.first() {
            engine.query(s, 0)?;
        }
        for (i, &s) in seeds.iter().enumerate() {
            let t = Instant::now();
            let est = engine.query(s, 0)?;
            lat.push(t.elapsed().as_secs_f64());
            let top = top_k_nodes(&est.scores, k);
            hits += top.iter().filter(|n| exact_tops[i].contains(n)).count();
        }
        lat.sort_by(f64::total_cmp);
        let denom = (k * seeds.len()).max(1) as f64;
        Ok(ApproxLane {
            precision_at_k: hits as f64 / denom,
            latency_p50_s: lat.get(lat.len() / 2).copied().unwrap_or(0.0),
        })
    };

    Ok(ApproxReport {
        k,
        max_terms: cfg.max_terms,
        walks: cfg.walks,
        tpa: measure_lane(&tpa_engine)?,
        walk: measure_lane(&walk_engine)?,
        exact_p50_s,
    })
}

/// Renders the human-readable scaling table.
pub fn render_table(report: &PerfReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "bepi bench ({} cores visible, {} seeds{})",
        report.available_parallelism,
        report.seeds,
        if report.quick { ", quick" } else { "" }
    );
    for ds in &report.datasets {
        let _ = writeln!(out, "\n{} (n = {}, m = {})", ds.dataset, ds.n, ds.m);
        let mut table = crate::table::Table::new(vec![
            "threads",
            "preprocess",
            "query",
            "speedup",
            "batch",
            "speedup",
            "iters",
            "peak RSS",
        ]);
        for run in &ds.runs {
            table.row(vec![
                run.threads.to_string(),
                crate::table::fmt_secs(run.preprocess_s),
                crate::table::fmt_secs(run.query_s),
                format!("{:.2}x", ds.query_speedup(run)),
                crate::table::fmt_secs(run.batch_s),
                format!("{:.2}x", ds.batch_speedup(run)),
                format!("{:.1}", run.gmres_iters),
                bepi_sparse::mem::format_bytes(run.peak_rss_bytes as usize),
            ]);
        }
        out.push_str(&table.render());
        if let Some(cs) = &ds.cold_start {
            let _ = writeln!(
                out,
                "cold start (v6 index, {}): heap open {} + query {}; \
                 mmap open {} + query {}",
                bepi_sparse::mem::format_bytes(cs.index_bytes as usize),
                crate::table::fmt_secs(cs.heap.open_s),
                crate::table::fmt_secs(cs.heap.first_query_s),
                crate::table::fmt_secs(cs.mmap.open_s),
                crate::table::fmt_secs(cs.mmap.first_query_s),
            );
        }
        if let Some(ap) = &ds.approx {
            let _ = writeln!(
                out,
                "approx (k = {}): tpa precision {:.3} @ {}; \
                 walk precision {:.3} @ {}; exact p50 {}",
                ap.k,
                ap.tpa.precision_at_k,
                crate::table::fmt_secs(ap.tpa.latency_p50_s),
                ap.walk.precision_at_k,
                crate::table::fmt_secs(ap.walk.latency_p50_s),
                crate::table::fmt_secs(ap.exact_p50_s),
            );
        }
    }
    out
}

/// Serializes a report to the `bepi-bench/v1` JSON document.
pub fn to_json(report: &PerfReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(out, "  \"quick\": {},", report.quick);
    let _ = writeln!(
        out,
        "  \"available_parallelism\": {},",
        report.available_parallelism
    );
    let _ = writeln!(out, "  \"seeds\": {},", report.seeds);
    out.push_str("  \"datasets\": [\n");
    for (i, ds) in report.datasets.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"dataset\": \"{}\",", ds.dataset);
        let _ = writeln!(out, "      \"n\": {},", ds.n);
        let _ = writeln!(out, "      \"m\": {},", ds.m);
        out.push_str("      \"runs\": [\n");
        for (j, run) in ds.runs.iter().enumerate() {
            out.push_str("        {");
            let _ = write!(
                out,
                "\"threads\": {}, \"preprocess_s\": {:.6}, \"query_s\": {:.9}, \
                 \"batch_s\": {:.6}, \"gmres_iters\": {:.2}, \"peak_rss_bytes\": {}, \
                 \"query_speedup_vs_1\": {:.4}, \"batch_speedup_vs_1\": {:.4}",
                run.threads,
                run.preprocess_s,
                run.query_s,
                run.batch_s,
                run.gmres_iters,
                run.peak_rss_bytes,
                ds.query_speedup(run),
                ds.batch_speedup(run)
            );
            out.push_str(if j + 1 < ds.runs.len() { "},\n" } else { "}\n" });
        }
        out.push_str("      ]");
        if let Some(cs) = &ds.cold_start {
            out.push_str(",\n      \"cold_start\": {");
            let _ = write!(
                out,
                "\"index_bytes\": {}, \
                 \"heap_open_s\": {:.9}, \"heap_first_query_s\": {:.9}, \
                 \"mmap_open_s\": {:.9}, \"mmap_first_query_s\": {:.9}",
                cs.index_bytes,
                cs.heap.open_s,
                cs.heap.first_query_s,
                cs.mmap.open_s,
                cs.mmap.first_query_s
            );
            out.push('}');
        }
        if let Some(ap) = &ds.approx {
            out.push_str(",\n      \"approx\": {");
            let _ = write!(
                out,
                "\"k\": {}, \"max_terms\": {}, \"walks\": {}, \"epoch\": 0, \
                 \"tpa_precision_at_k\": {:.6}, \"tpa_p50_s\": {:.9}, \
                 \"walk_precision_at_k\": {:.6}, \"walk_p50_s\": {:.9}, \
                 \"exact_p50_s\": {:.9}",
                ap.k,
                ap.max_terms,
                ap.walks,
                ap.tpa.precision_at_k,
                ap.tpa.latency_p50_s,
                ap.walk.precision_at_k,
                ap.walk.latency_p50_s,
                ap.exact_p50_s
            );
            out.push('}');
        }
        out.push('\n');
        out.push_str(if i + 1 < report.datasets.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Validates a `bepi-bench/v1` document: well-formed JSON, correct
/// schema tag, non-empty datasets, every run carrying the required
/// numeric fields, and a 1-thread base run per dataset.
pub fn validate_json(text: &str) -> std::result::Result<(), String> {
    let value = json::parse(text)?;
    let obj = value.as_object().ok_or("top level must be an object")?;
    match json::get(obj, "schema").and_then(|v| v.as_str()) {
        Some(s) if s == SCHEMA => {}
        Some(s) => return Err(format!("unknown schema {s:?}, expected {SCHEMA:?}")),
        None => return Err("missing \"schema\" tag".into()),
    }
    for key in ["available_parallelism", "seeds"] {
        json::get(obj, key)
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("missing numeric \"{key}\""))?;
    }
    json::get(obj, "quick")
        .and_then(|v| v.as_bool())
        .ok_or("missing boolean \"quick\"")?;
    let datasets = json::get(obj, "datasets")
        .and_then(|v| v.as_array())
        .ok_or("missing \"datasets\" array")?;
    if datasets.is_empty() {
        return Err("\"datasets\" must be non-empty".into());
    }
    for (i, ds) in datasets.iter().enumerate() {
        let ds = ds
            .as_object()
            .ok_or_else(|| format!("dataset {i} must be an object"))?;
        json::get(ds, "dataset")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("dataset {i}: missing \"dataset\" name"))?;
        for key in ["n", "m"] {
            json::get(ds, key)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("dataset {i}: missing numeric \"{key}\""))?;
        }
        let runs = json::get(ds, "runs")
            .and_then(|v| v.as_array())
            .ok_or_else(|| format!("dataset {i}: missing \"runs\" array"))?;
        if runs.is_empty() {
            return Err(format!("dataset {i}: \"runs\" must be non-empty"));
        }
        let mut has_base = false;
        for (j, run) in runs.iter().enumerate() {
            let run = run
                .as_object()
                .ok_or_else(|| format!("dataset {i} run {j} must be an object"))?;
            let threads = json::get(run, "threads")
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("dataset {i} run {j}: missing \"threads\""))?;
            if threads < 1.0 {
                return Err(format!("dataset {i} run {j}: threads must be >= 1"));
            }
            has_base |= threads == 1.0;
            for key in [
                "preprocess_s",
                "query_s",
                "batch_s",
                "gmres_iters",
                "peak_rss_bytes",
                "query_speedup_vs_1",
                "batch_speedup_vs_1",
            ] {
                let v = json::get(run, key)
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| format!("dataset {i} run {j}: missing numeric \"{key}\""))?;
                if !v.is_finite() || v < 0.0 {
                    return Err(format!(
                        "dataset {i} run {j}: \"{key}\" must be finite and non-negative"
                    ));
                }
            }
        }
        if !has_base {
            return Err(format!(
                "dataset {i}: no 1-thread base run (speedups need a base)"
            ));
        }
        // cold_start is optional (absent in artifacts from drivers that
        // predate the v6 format) but must be complete when present.
        if let Some(cs) = json::get(ds, "cold_start") {
            let cs = cs
                .as_object()
                .ok_or_else(|| format!("dataset {i}: \"cold_start\" must be an object"))?;
            for key in [
                "index_bytes",
                "heap_open_s",
                "heap_first_query_s",
                "mmap_open_s",
                "mmap_first_query_s",
            ] {
                let v = json::get(cs, key)
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| format!("dataset {i}: cold_start missing numeric \"{key}\""))?;
                if !v.is_finite() || v < 0.0 {
                    return Err(format!(
                        "dataset {i}: cold_start \"{key}\" must be finite and non-negative"
                    ));
                }
            }
        }
        // approx is optional (absent in artifacts that predate the
        // serving lane) but must be complete and sane when present.
        if let Some(ap) = json::get(ds, "approx") {
            let ap = ap
                .as_object()
                .ok_or_else(|| format!("dataset {i}: \"approx\" must be an object"))?;
            for key in [
                "k",
                "max_terms",
                "walks",
                "epoch",
                "tpa_precision_at_k",
                "tpa_p50_s",
                "walk_precision_at_k",
                "walk_p50_s",
                "exact_p50_s",
            ] {
                let v = json::get(ap, key)
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| format!("dataset {i}: approx missing numeric \"{key}\""))?;
                if !v.is_finite() || v < 0.0 {
                    return Err(format!(
                        "dataset {i}: approx \"{key}\" must be finite and non-negative"
                    ));
                }
            }
            for key in ["k", "max_terms", "walks"] {
                if json::get(ap, key).and_then(|v| v.as_f64()) < Some(1.0) {
                    return Err(format!("dataset {i}: approx \"{key}\" must be >= 1"));
                }
            }
            for key in ["tpa_precision_at_k", "walk_precision_at_k"] {
                let v = json::get(ap, key).and_then(|v| v.as_f64()).unwrap_or(0.0);
                if v > 1.0 {
                    return Err(format!("dataset {i}: approx \"{key}\" must be <= 1"));
                }
            }
        }
    }
    Ok(())
}

/// The CI precision gate: requires every dataset in a valid
/// `bepi-bench/v1` document to carry an `approx` block whose TPA *and*
/// walk precision@k are at least `min`. Used by
/// `bench_check --min-precision` so a regression in either approximate
/// engine fails the build. Both engines are deterministic for fixed
/// `(seed, epoch)`, so this gate cannot flake.
pub fn check_min_precision(text: &str, min: f64) -> std::result::Result<(), String> {
    validate_json(text)?;
    let value = json::parse(text)?;
    let obj = value.as_object().ok_or("top level must be an object")?;
    let datasets = json::get(obj, "datasets")
        .and_then(|v| v.as_array())
        .ok_or("missing \"datasets\" array")?;
    for ds in datasets {
        let ds = ds.as_object().ok_or("dataset must be an object")?;
        let name = json::get(ds, "dataset")
            .and_then(|v| v.as_str())
            .unwrap_or("?");
        let ap = json::get(ds, "approx")
            .and_then(|v| v.as_object())
            .ok_or_else(|| format!("{name}: no \"approx\" block — cannot gate precision"))?;
        for key in ["tpa_precision_at_k", "walk_precision_at_k"] {
            let v = json::get(ap, key).and_then(|v| v.as_f64()).unwrap_or(0.0);
            if v < min {
                return Err(format!("{name}: {key} = {v:.4} is below the {min} gate"));
            }
        }
    }
    Ok(())
}

/// A minimal recursive-descent JSON parser — just enough to validate
/// bench artifacts offline (no serde in the dependency budget).
pub mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any JSON number (kept as f64).
        Number(f64),
        /// A string (escapes decoded).
        String(String),
        /// An array.
        Array(Vec<Value>),
        /// An object as ordered key/value pairs (duplicate keys kept;
        /// [`get`] returns the first).
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// The object entries, if this is an object.
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Object(o) => Some(o),
                _ => None,
            }
        }

        /// The elements, if this is an array.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(a) => Some(a),
                _ => None,
            }
        }

        /// The string contents, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }

        /// The numeric value, if this is a number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Number(n) => Some(*n),
                _ => None,
            }
        }

        /// The boolean, if this is a boolean.
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }
    }

    /// First value under `key` in an object's entries.
    pub fn get<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
        obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
        if *pos < bytes.len() && bytes[*pos] == b {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, *pos))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => parse_object(bytes, pos),
            Some(b'[') => parse_array(bytes, pos),
            Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
            Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
            Some(_) => parse_number(bytes, pos),
            None => Err("unexpected end of input".into()),
        }
    }

    fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
        if bytes[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", *pos))
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < bytes.len()
            && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            *pos += 1;
        }
        std::str::from_utf8(&bytes[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(bytes, pos, b'"')?;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = bytes
                                .get(*pos + 1..*pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("invalid \\u escape")?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            *pos += 4;
                        }
                        _ => return Err(format!("invalid escape at byte {}", *pos)),
                    }
                    *pos += 1;
                }
                Some(&b) => {
                    // Multi-byte UTF-8 passes through unchanged.
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = bytes
                        .get(*pos..*pos + len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or("invalid UTF-8 in string")?;
                    out.push_str(chunk);
                    *pos += len;
                }
            }
        }
    }

    fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
            }
        }
    }

    fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'{')?;
        let mut entries = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            skip_ws(bytes, pos);
            let key = parse_string(bytes, pos)?;
            skip_ws(bytes, pos);
            expect(bytes, pos, b':')?;
            let value = parse_value(bytes, pos)?;
            entries.push((key, value));
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> PerfReport {
        PerfReport {
            quick: true,
            available_parallelism: 1,
            seeds: 2,
            datasets: vec![DatasetReport {
                dataset: "slashdot-like".into(),
                n: 100,
                m: 500,
                runs: vec![
                    ThreadRun {
                        threads: 1,
                        preprocess_s: 0.5,
                        query_s: 0.002,
                        batch_s: 0.004,
                        gmres_iters: 9.0,
                        peak_rss_bytes: 1 << 20,
                    },
                    ThreadRun {
                        threads: 2,
                        preprocess_s: 0.4,
                        query_s: 0.001,
                        batch_s: 0.002,
                        gmres_iters: 9.0,
                        peak_rss_bytes: 1 << 20,
                    },
                ],
                cold_start: Some(ColdStart {
                    index_bytes: 4096,
                    heap: ColdStartMode {
                        open_s: 0.010,
                        first_query_s: 0.002,
                    },
                    mmap: ColdStartMode {
                        open_s: 0.0001,
                        first_query_s: 0.003,
                    },
                }),
                approx: Some(ApproxReport {
                    k: 20,
                    max_terms: 64,
                    walks: 20_000,
                    tpa: ApproxLane {
                        precision_at_k: 0.97,
                        latency_p50_s: 0.0005,
                    },
                    walk: ApproxLane {
                        precision_at_k: 0.95,
                        latency_p50_s: 0.0004,
                    },
                    exact_p50_s: 0.002,
                }),
            }],
        }
    }

    #[test]
    fn json_roundtrip_validates() {
        let text = to_json(&tiny_report());
        validate_json(&text).unwrap();
    }

    #[test]
    fn speedups_computed_against_one_thread() {
        let report = tiny_report();
        let ds = &report.datasets[0];
        assert!((ds.query_speedup(&ds.runs[1]) - 2.0).abs() < 1e-12);
        assert!((ds.batch_speedup(&ds.runs[1]) - 2.0).abs() < 1e-12);
        assert!((ds.query_speedup(&ds.runs[0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn validator_rejects_missing_fields() {
        assert!(validate_json("{}").is_err());
        assert!(validate_json("not json").is_err());
        let wrong_schema = to_json(&tiny_report()).replace(SCHEMA, "bepi-bench/v999");
        assert!(validate_json(&wrong_schema).is_err());
        let no_base = to_json(&tiny_report()).replace("\"threads\": 1,", "\"threads\": 3,");
        assert!(validate_json(&no_base).is_err());
        let dropped = to_json(&tiny_report()).replace("\"gmres_iters\": 9.00, ", "");
        assert!(validate_json(&dropped).is_err());
        // cold_start is optional as a whole but all-or-nothing inside.
        let mut no_cold = tiny_report();
        no_cold.datasets[0].cold_start = None;
        validate_json(&to_json(&no_cold)).unwrap();
        let partial = to_json(&tiny_report()).replace("\"mmap_open_s\": 0.000100000, ", "");
        assert!(validate_json(&partial).is_err());
        // Same for approx: optional as a whole, all-or-nothing inside,
        // precisions bounded to [0, 1].
        let mut no_approx = tiny_report();
        no_approx.datasets[0].approx = None;
        validate_json(&to_json(&no_approx)).unwrap();
        let partial = to_json(&tiny_report()).replace("\"walk_precision_at_k\": 0.950000, ", "");
        assert!(validate_json(&partial).is_err());
        let over_one = to_json(&tiny_report()).replace(
            "\"tpa_precision_at_k\": 0.970000",
            "\"tpa_precision_at_k\": 1.5",
        );
        assert!(validate_json(&over_one).is_err());
    }

    #[test]
    fn precision_gate_checks_both_engines_on_every_dataset() {
        let text = to_json(&tiny_report());
        check_min_precision(&text, 0.9).unwrap();
        // The walk lane (0.95) fails a 0.96 gate even though TPA passes.
        let err = check_min_precision(&text, 0.96).unwrap_err();
        assert!(err.contains("walk_precision_at_k"), "{err}");
        // A dataset without an approx block cannot be gated at all.
        let mut no_approx = tiny_report();
        no_approx.datasets[0].approx = None;
        let err = check_min_precision(&to_json(&no_approx), 0.5).unwrap_err();
        assert!(err.contains("no \"approx\" block"), "{err}");
    }

    #[test]
    fn json_parser_handles_basics() {
        let v = json::parse(r#"{"a": [1, 2.5, -3e2], "b": "x\ny", "c": null, "d": true}"#).unwrap();
        let obj = v.as_object().unwrap();
        let arr = json::get(obj, "a").unwrap().as_array().unwrap();
        assert_eq!(arr[2].as_f64(), Some(-300.0));
        assert_eq!(json::get(obj, "b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(json::get(obj, "d").unwrap().as_bool(), Some(true));
        assert!(json::parse("[1,]").is_err());
        assert!(json::parse("{} garbage").is_err());
    }

    #[test]
    fn table_renders_speedup_columns() {
        let s = render_table(&tiny_report());
        assert!(s.contains("slashdot-like"));
        assert!(s.contains("2.00x"));
        assert!(s.contains("threads"));
    }

    #[test]
    fn quick_run_end_to_end() {
        // A real (tiny) measurement pass over the smallest anchor graph.
        let cfg = PerfConfig {
            datasets: vec![Dataset::Slashdot],
            thread_counts: vec![1, 2],
            seeds: 2,
            quick: true,
        };
        let report = run(&cfg).unwrap();
        assert_eq!(report.datasets.len(), 1);
        assert_eq!(report.datasets[0].runs.len(), 2);
        let cs = report.datasets[0]
            .cold_start
            .as_ref()
            .expect("cold-start measured");
        assert!(cs.index_bytes > 0);
        assert!(cs.heap.open_s > 0.0 && cs.mmap.open_s > 0.0);
        let ap = report.datasets[0].approx.as_ref().expect("approx measured");
        assert_eq!(ap.k, PRECISION_K);
        assert!((0.0..=1.0).contains(&ap.tpa.precision_at_k));
        assert!((0.0..=1.0).contains(&ap.walk.precision_at_k));
        assert!(ap.exact_p50_s > 0.0);
        // Iterations must not depend on the thread count (determinism).
        let iters: Vec<f64> = report.datasets[0]
            .runs
            .iter()
            .map(|r| r.gmres_iters)
            .collect();
        assert_eq!(iters[0], iters[1]);
        validate_json(&to_json(&report)).unwrap();
    }
}
