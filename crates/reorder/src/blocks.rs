//! Diagonal-block detection and verification.
//!
//! `H11`'s block-diagonal structure is what makes its LU factors cheap
//! (per-block factorization, Theorems 1–3 depend on the `n1i`). SlashBurn
//! reports its block sizes directly; this module re-derives and verifies
//! them from the matrix itself, which both guards the pipeline and serves
//! matrices reordered by other means.

use bepi_sparse::Csr;

/// Partitions a square sparse matrix into the finest contiguous diagonal
/// blocks such that no stored entry crosses a block boundary.
///
/// Returns the block sizes in order; they always sum to `n`. A diagonal
/// matrix yields all-1 blocks; a fully coupled matrix yields one block.
///
/// Note this requires blocks to be *contiguous* in the current ordering —
/// exactly what SlashBurn produces for `H11`.
pub fn diagonal_blocks(a: &Csr) -> Vec<usize> {
    assert_eq!(
        a.nrows(),
        a.ncols(),
        "diagonal_blocks needs a square matrix"
    );
    let n = a.nrows();
    if n == 0 {
        return Vec::new();
    }
    // reach[i] = furthest row/col index coupled to any row ≤ i.
    let mut blocks = Vec::new();
    let mut block_start = 0usize;
    let mut reach = 0usize;
    for row in 0..n {
        reach = reach.max(row);
        let (cols, _) = a.row(row);
        if let Some(&max_col) = cols.last() {
            reach = reach.max(max_col as usize);
        }
        if let Some(&min_col) = cols.first() {
            // Entries below the current block start would merge blocks
            // retroactively; the "finest contiguous" semantics require
            // extending the block backwards, which contiguity forbids —
            // instead we conservatively treat everything from min_col on
            // as one block by keeping reach ≥ row until closure.
            if (min_col as usize) < block_start {
                // Merge: rewind to the block containing min_col.
                let mut acc = 0usize;
                while let Some(&last) = blocks.last() {
                    if block_start - acc > min_col as usize {
                        acc += last;
                        blocks.pop();
                    } else {
                        break;
                    }
                }
                block_start -= acc;
            }
        }
        if reach == row {
            blocks.push(row + 1 - block_start);
            block_start = row + 1;
        }
    }
    debug_assert_eq!(blocks.iter().sum::<usize>(), n);
    blocks
}

/// Verifies that `a` is block diagonal with the *given* block sizes:
/// every stored entry must fall inside one of the blocks.
pub fn is_block_diagonal(a: &Csr, block_sizes: &[usize]) -> bool {
    if a.nrows() != a.ncols() || block_sizes.iter().sum::<usize>() != a.nrows() {
        return false;
    }
    let mut block_of = vec![0u32; a.nrows()];
    let mut start = 0usize;
    for (bi, &size) in block_sizes.iter().enumerate() {
        for i in start..start + size {
            block_of[i] = bi as u32;
        }
        start += size;
    }
    a.iter().all(|(r, c, _)| block_of[r] == block_of[c])
}

#[cfg(test)]
mod tests {
    use super::*;
    use bepi_sparse::Coo;

    fn m(n: usize, entries: &[(usize, usize)]) -> Csr {
        let mut coo = Coo::new(n, n).unwrap();
        for &(r, c) in entries {
            coo.push(r, c, 1.0).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn diagonal_matrix_gives_unit_blocks() {
        let a = Csr::identity(4);
        assert_eq!(diagonal_blocks(&a), vec![1, 1, 1, 1]);
    }

    #[test]
    fn two_by_two_blocks() {
        let a = m(4, &[(0, 1), (1, 0), (2, 3), (3, 2)]);
        assert_eq!(diagonal_blocks(&a), vec![2, 2]);
    }

    #[test]
    fn coupling_merges_blocks() {
        let a = m(4, &[(0, 1), (1, 0), (2, 3), (3, 2), (0, 3)]);
        assert_eq!(diagonal_blocks(&a), vec![4]);
    }

    #[test]
    fn lower_entry_merges_backwards() {
        // Entry (3, 0) links row 3 back to the first block.
        let a = m(4, &[(0, 0), (1, 1), (2, 2), (3, 0)]);
        assert_eq!(diagonal_blocks(&a), vec![4]);
    }

    #[test]
    fn empty_matrix() {
        assert_eq!(diagonal_blocks(&Csr::zeros(0, 0)), Vec::<usize>::new());
        assert_eq!(diagonal_blocks(&Csr::zeros(3, 3)), vec![1, 1, 1]);
    }

    #[test]
    fn is_block_diagonal_checks() {
        let a = m(4, &[(0, 1), (1, 0), (2, 3), (3, 2)]);
        assert!(is_block_diagonal(&a, &[2, 2]));
        assert!(is_block_diagonal(&a, &[4]));
        assert!(!is_block_diagonal(&a, &[1, 3]));
        assert!(!is_block_diagonal(&a, &[2, 1])); // doesn't sum to n
    }

    #[test]
    fn mixed_block_sizes() {
        let a = m(6, &[(0, 0), (1, 2), (2, 1), (3, 4), (4, 5), (5, 3)]);
        assert_eq!(diagonal_blocks(&a), vec![1, 2, 3]);
    }
}
