#!/usr/bin/env bash
# The one CI entry point, runnable locally: formatting, lints, release
# build, full test suite. CI (.github/workflows/ci.yml) calls exactly
# this script so the two can't drift.
set -euo pipefail
cd "$(dirname "$0")/.."

# The workspace vendors its dependencies in-tree (shims/), so every cargo
# invocation works offline; --offline makes that a hard guarantee.
CARGO_FLAGS=(--offline --workspace)

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy"
cargo clippy "${CARGO_FLAGS[@]}" --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build "${CARGO_FLAGS[@]}" --release

echo "==> cargo test"
cargo test "${CARGO_FLAGS[@]}" -q

# Documentation gates: the numeric substrate (bepi-sparse, bepi-solver)
# denies missing docs at compile time; this step additionally fails on
# rustdoc warnings (broken intra-doc links etc.) and runs every doctest,
# so the examples on Csr/Gmres/Ilu0/BlockLu can't rot.
echo "==> cargo doc (warnings denied) + doctests"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps -p bepi-sparse -p bepi-solver
cargo test --offline --workspace --doc -q

# The WAL crash-recovery contract is load-bearing for the live-update
# subsystem, so CI exercises it explicitly (SIGKILL mid-stream + restart
# on the same --wal, and the corrupted-trailer fixture) even though it is
# part of the suite above — a name filter keeps a failure here loud and
# attributable.
echo "==> crash-recovery tests (bepi serve --wal)"
cargo test --offline -p bepi-cli --test live_recovery -q

# Observability end-to-end gate: start a real daemon, drive traced
# queries through it, and validate the /metrics exposition with the
# in-tree checker (the wire format an external Prometheus scraper sees).
echo "==> /metrics exposition check (bepi serve + metrics_check)"
OBS_TMP=$(mktemp -d)
OBS_FIFO="$OBS_TMP/stdin"
OBS_LOG="$OBS_TMP/serve.log"
cleanup_obs() {
  exec 9>&- 2>/dev/null || true
  [ -n "${OBS_PID:-}" ] && kill "$OBS_PID" 2>/dev/null || true
  rm -rf "$OBS_TMP"
}
trap cleanup_obs EXIT
python3 - "$OBS_TMP/edges.txt" <<'EOF'
import sys
with open(sys.argv[1], "w") as f:
    n = 64
    for i in range(n):
        f.write(f"{i} {(i + 1) % n}\n")
        f.write(f"{i} {(i * 7 + 3) % n}\n")
EOF
./target/release/bepi preprocess "$OBS_TMP/edges.txt" "$OBS_TMP/index.bepi"
mkfifo "$OBS_FIFO"
# Hold a write end open on fd 9: the daemon treats stdin EOF as its
# shutdown signal, so closing fd 9 later is the graceful stop. Opened
# read-write because a write-only open of a fifo blocks until a reader
# (the daemon, which starts next) shows up.
exec 9<> "$OBS_FIFO"
# 9>&- keeps the daemon from inheriting the fifo's write end — otherwise
# it would hold its own stdin open and never see EOF.
./target/release/bepi serve "$OBS_TMP/index.bepi" --listen 127.0.0.1:0 \
  --slow-query-ms 0 --log-level info < "$OBS_FIFO" > "$OBS_LOG" 2>&1 9>&- &
OBS_PID=$!
OBS_ADDR=""
for _ in $(seq 1 100); do
  OBS_ADDR=$(sed -n 's#.*listening on http://\([0-9.:]*\).*#\1#p' "$OBS_LOG" | head -n1)
  [ -n "$OBS_ADDR" ] && break
  kill -0 "$OBS_PID" 2>/dev/null || { cat "$OBS_LOG"; exit 1; }
  sleep 0.1
done
[ -n "$OBS_ADDR" ] || { echo "daemon never reported its address"; cat "$OBS_LOG"; exit 1; }
./target/release/metrics_check "$OBS_ADDR" --warm-queries 8
exec 9>&-   # stdin EOF → graceful shutdown
wait "$OBS_PID"
OBS_PID=""

# Memory-mapped serving gate: preprocess to the streamed v5 format,
# convert to the mappable v6 container, boot one daemon on the heap and
# one on the mapping, and require byte-identical top-k responses. This
# is the --mmap acceptance bar run against real HTTP, not just the unit
# suite.
echo "==> mmap serving check (convert v5 -> v6 + heap/mmap daemon diff)"
MMAP_TMP=$(mktemp -d)
cleanup_mmap() {
  exec 8>&- 2>/dev/null || true
  exec 7>&- 2>/dev/null || true
  [ -n "${HEAP_PID:-}" ] && kill "$HEAP_PID" 2>/dev/null || true
  [ -n "${MMAP_PID:-}" ] && kill "$MMAP_PID" 2>/dev/null || true
  rm -rf "$MMAP_TMP"
}
trap 'cleanup_obs; cleanup_mmap' EXIT
python3 - "$MMAP_TMP/edges.txt" <<'EOF'
import sys
with open(sys.argv[1], "w") as f:
    n = 96
    for i in range(n):
        f.write(f"{i} {(i + 1) % n}\n")
        f.write(f"{i} {(i * 5 + 2) % n}\n")
EOF
./target/release/bepi preprocess "$MMAP_TMP/edges.txt" "$MMAP_TMP/v5.bepi" --format v5
./target/release/bepi convert "$MMAP_TMP/v5.bepi" "$MMAP_TMP/v6.bepi"
# Runs in the *current* shell (no command substitution) so the fifo fd
# and the daemon pid survive; results land in DAEMON_ADDR / DAEMON_PID.
start_daemon() { # fifo_fd index log flags...
  local fd=$1 index=$2 log=$3; shift 3
  mkfifo "$MMAP_TMP/fifo$fd"
  eval "exec $fd<> '$MMAP_TMP/fifo$fd'"
  # 7>&- 8>&- 9>&-: a daemon must not inherit any fifo write end, its
  # own included, or stdin EOF (the shutdown signal) can never arrive.
  ./target/release/bepi serve "$index" --listen 127.0.0.1:0 "$@" \
    < "$MMAP_TMP/fifo$fd" > "$log" 2>&1 7>&- 8>&- 9>&- &
  DAEMON_PID=$!
  DAEMON_ADDR=""
  for _ in $(seq 1 100); do
    DAEMON_ADDR=$(sed -n 's#.*listening on http://\([0-9.:]*\).*#\1#p' "$log" | head -n1)
    [ -n "$DAEMON_ADDR" ] && break
    kill -0 "$DAEMON_PID" 2>/dev/null || { cat "$log" >&2; return 1; }
    sleep 0.1
  done
  [ -n "$DAEMON_ADDR" ] || { echo "daemon never reported its address" >&2; cat "$log" >&2; return 1; }
}
start_daemon 7 "$MMAP_TMP/v5.bepi" "$MMAP_TMP/heap.log"
HEAP_ADDR=$DAEMON_ADDR HEAP_PID=$DAEMON_PID
start_daemon 8 "$MMAP_TMP/v6.bepi" "$MMAP_TMP/mmap.log" --mmap
MMAP_ADDR=$DAEMON_ADDR MMAP_PID=$DAEMON_PID
grep -q "memory-mapped index" "$MMAP_TMP/mmap.log" \
  || { echo "--mmap daemon did not report a mapped index"; cat "$MMAP_TMP/mmap.log"; exit 1; }
for seed in 0 17 42 95; do
  curl -sf "http://$HEAP_ADDR/query?seed=$seed&top=10" > "$MMAP_TMP/heap.json"
  curl -sf "http://$MMAP_ADDR/query?seed=$seed&top=10" > "$MMAP_TMP/mmap.json"
  cmp "$MMAP_TMP/heap.json" "$MMAP_TMP/mmap.json" \
    || { echo "seed $seed: mmap daemon response differs from heap daemon"; exit 1; }
done
exec 7>&-
exec 8>&-
wait "$HEAP_PID" "$MMAP_PID"
HEAP_PID=""; MMAP_PID=""
echo "mmap responses byte-identical to heap responses"

# Approximate-serving degradation gate: boot a daemon whose index embeds
# its graph (so the approximate lane is live), saturate the admission
# queue (one idle connection parks the lone worker, a second fills the
# queue-depth-1 admission queue), and require that `mode=auto` degrades
# to a 200 + `X-Approx: 1` approximate answer while `mode=exact` sheds
# with 503 — the graceful-degradation contract, exercised over real TCP.
echo "==> approx degradation check (bepi serve saturation: auto=200+X-Approx, exact=503)"
SAT_TMP=$(mktemp -d)
cleanup_sat() {
  exec 6>&- 2>/dev/null || true
  [ -n "${SAT_PID:-}" ] && kill "$SAT_PID" 2>/dev/null || true
  rm -rf "$SAT_TMP"
}
trap 'cleanup_obs; cleanup_mmap; cleanup_sat' EXIT
python3 - "$SAT_TMP/edges.txt" <<'EOF'
import sys
with open(sys.argv[1], "w") as f:
    n = 64
    for i in range(n):
        f.write(f"{i} {(i + 1) % n}\n")
        f.write(f"{i} {(i * 7 + 3) % n}\n")
EOF
./target/release/bepi preprocess "$SAT_TMP/edges.txt" "$SAT_TMP/index.bepi" --embed-graph
mkfifo "$SAT_TMP/fifo"
exec 6<> "$SAT_TMP/fifo"
./target/release/bepi serve "$SAT_TMP/index.bepi" --listen 127.0.0.1:0 \
  --threads 1 --queue-depth 1 --timeout-ms 5000 \
  < "$SAT_TMP/fifo" > "$SAT_TMP/serve.log" 2>&1 6>&- &
SAT_PID=$!
SAT_ADDR=""
for _ in $(seq 1 100); do
  SAT_ADDR=$(sed -n 's#.*listening on http://\([0-9.:]*\).*#\1#p' "$SAT_TMP/serve.log" | head -n1)
  [ -n "$SAT_ADDR" ] && break
  kill -0 "$SAT_PID" 2>/dev/null || { cat "$SAT_TMP/serve.log"; exit 1; }
  sleep 0.1
done
[ -n "$SAT_ADDR" ] || { echo "daemon never reported its address"; cat "$SAT_TMP/serve.log"; exit 1; }
python3 - "$SAT_ADDR" <<'EOF'
import socket, sys, time
from http.client import HTTPConnection

host, port = sys.argv[1].rsplit(":", 1)
port = int(port)

def req(mode):
    c = HTTPConnection(host, port, timeout=30)
    c.request("GET", f"/query?seed=3&top=5&mode={mode}")
    r = c.getresponse()
    r.read()
    status, approx = r.status, r.getheader("X-Approx")
    c.close()
    return status, approx

# One idle connection occupies the lone worker (blocked reading a request
# that never comes), a second fills the depth-1 admission queue.
holds = []
for _ in range(2):
    holds.append(socket.create_connection((host, port)))
    time.sleep(0.3)

status, approx = req("auto")
assert status == 200, f"saturated mode=auto must degrade, not shed: got {status}"
assert approx == "1", "degraded auto response must carry X-Approx: 1"
status, approx = req("exact")
assert status == 503, f"saturated mode=exact must shed with 503: got {status}"

for s in holds:
    s.close()
time.sleep(0.5)
status, approx = req("exact")
assert (status, approx) == (200, None), f"exact lane must recover: {status} {approx}"
print("saturation: auto degraded (200 + X-Approx: 1), exact shed (503), then recovered")
EOF
# grep reads the whole stream (no -q): with pipefail, an early-exit grep
# would SIGPIPE curl and fail the pipeline even on a match.
curl -sf "http://$SAT_ADDR/metrics" | grep -E '^bepi_degraded_total [1-9]' > /dev/null \
  || { echo "bepi_degraded_total did not count the degraded admissions"; exit 1; }
exec 6>&-
wait "$SAT_PID"
SAT_PID=""

# Sharded-serving drill: boot `bepi route` over two spawned shard
# daemons, SIGKILL one under load, and require that not a single
# `mode=auto` request fails — the router must hide the crash behind
# failover, then respawn the shard and re-admit it once it answers
# `/version` at the expected epoch (bepi_shard_healthy back to 1).
echo "==> shard-kill drill (bepi route: SIGKILL one shard under load)"
RT_TMP=$(mktemp -d)
cleanup_rt() {
  exec 5>&- 2>/dev/null || true
  [ -n "${RT_PID:-}" ] && kill "$RT_PID" 2>/dev/null || true
  rm -rf "$RT_TMP"
}
trap 'cleanup_obs; cleanup_mmap; cleanup_sat; cleanup_rt' EXIT
python3 - "$RT_TMP/edges.txt" <<'EOF'
import sys
with open(sys.argv[1], "w") as f:
    n = 64
    for i in range(n):
        f.write(f"{i} {(i + 1) % n}\n")
        f.write(f"{i} {(i * 7 + 3) % n}\n")
EOF
# --mmap serving needs the mappable v6 container; --embed-graph keeps the
# approximate lane live so mode=auto can degrade instead of shedding.
./target/release/bepi preprocess "$RT_TMP/edges.txt" "$RT_TMP/index.bepi" \
  --format v6 --embed-graph
mkfifo "$RT_TMP/fifo"
exec 5<> "$RT_TMP/fifo"
./target/release/bepi route "$RT_TMP/index.bepi" --shards 2 --mmap \
  --health-interval-ms 50 --hedge-ms 25 \
  < "$RT_TMP/fifo" > "$RT_TMP/route.log" 2>&1 5>&- &
RT_PID=$!
RT_ADDR=""
for _ in $(seq 1 100); do
  RT_ADDR=$(sed -n 's#^bepi-route listening on http://\([0-9.:]*\).*#\1#p' "$RT_TMP/route.log" | head -n1)
  [ -n "$RT_ADDR" ] && break
  kill -0 "$RT_PID" 2>/dev/null || { cat "$RT_TMP/route.log"; exit 1; }
  sleep 0.1
done
[ -n "$RT_ADDR" ] || { echo "router never reported its address"; cat "$RT_TMP/route.log"; exit 1; }
VICTIM=$(sed -n 's/^shard 0: .* pid=\([0-9]*\).*/\1/p' "$RT_TMP/route.log" | head -n1)
[ -n "$VICTIM" ] || { echo "router never reported shard pids"; cat "$RT_TMP/route.log"; exit 1; }
python3 - "$RT_ADDR" "$VICTIM" <<'EOF'
import os, signal, sys, time, urllib.request

addr, victim = sys.argv[1], int(sys.argv[2])

def get(target):
    with urllib.request.urlopen(f"http://{addr}{target}", timeout=30) as r:
        return r.status, r.read().decode()

def metric(name):
    _, body = get("/metrics")
    for line in body.splitlines():
        if line.startswith(name + " "):
            return float(line.split()[-1])
    return None

# Warm-up, then a load loop with the SIGKILL in the middle: every single
# mode=auto request must come back 200 (urlopen raises on non-2xx).
get("/query?seed=0&top=5&mode=auto")
for i in range(120):
    if i == 30:
        os.kill(victim, signal.SIGKILL)
    get(f"/query?seed={(i * 7) % 64}&top=5&mode=auto")

# Crash visible to the fleet, invisible to clients.
assert metric("bepi_route_errors_total") == 0.0, "client-visible errors"
assert metric("bepi_route_failovers_total") >= 1.0, "failover never happened"

# The supervisor respawns the shard and re-admits it at the expected
# epoch: bepi_shard_healthy{shard="0"} returns to 1.
deadline = time.time() + 30
while metric('bepi_shard_healthy{shard="0"}') != 1.0:
    assert time.time() < deadline, "killed shard never re-admitted"
    time.sleep(0.1)
_, fleet = get("/route/health")
assert '"generation":1' in fleet, f"respawn must bump the generation: {fleet}"
print("shard kill: 0 failed requests, failover counted, shard respawned + re-admitted")
EOF
exec 5>&-
wait "$RT_PID"
RT_PID=""

# Trace-propagation drill: boot the router over two shards with tracing
# fully open (slowlog threshold 0 on both tiers, Chrome trace export on),
# force one traced request onto the failover path by SIGKILLing its
# primary shard, and require the *same* request id to surface in the
# router's slowlog, the answering shard's slowlog, and the exported
# trace file — the cross-process correlation contract, end to end. The
# router's /metrics must also pass the exposition checker with both
# shards' series merged under shard= labels.
echo "==> trace-propagation drill (request id across router, shard, slowlog, export)"
TR_TMP=$(mktemp -d)
cleanup_tr() {
  exec 4>&- 2>/dev/null || true
  [ -n "${TR_PID:-}" ] && kill "$TR_PID" 2>/dev/null || true
  rm -rf "$TR_TMP"
}
trap 'cleanup_obs; cleanup_mmap; cleanup_sat; cleanup_rt; cleanup_tr' EXIT
python3 - "$TR_TMP/edges.txt" <<'EOF'
import sys
with open(sys.argv[1], "w") as f:
    n = 64
    for i in range(n):
        f.write(f"{i} {(i + 1) % n}\n")
        f.write(f"{i} {(i * 7 + 3) % n}\n")
EOF
./target/release/bepi preprocess "$TR_TMP/edges.txt" "$TR_TMP/index.bepi" \
  --format v6 --embed-graph
mkfifo "$TR_TMP/fifo"
exec 4<> "$TR_TMP/fifo"
./target/release/bepi route "$TR_TMP/index.bepi" --shards 2 --mmap \
  --health-interval-ms 50 --slow-query-ms 0 --trace-export "$TR_TMP/trace.json" \
  < "$TR_TMP/fifo" > "$TR_TMP/route.log" 2>&1 4>&- &
TR_PID=$!
TR_ADDR=""
for _ in $(seq 1 100); do
  TR_ADDR=$(sed -n 's#^bepi-route listening on http://\([0-9.:]*\).*#\1#p' "$TR_TMP/route.log" | head -n1)
  [ -n "$TR_ADDR" ] && break
  kill -0 "$TR_PID" 2>/dev/null || { cat "$TR_TMP/route.log"; exit 1; }
  sleep 0.1
done
[ -n "$TR_ADDR" ] || { echo "router never reported its address"; cat "$TR_TMP/route.log"; exit 1; }
# Fleet-aggregated exposition: warmed through the router, validated with
# the same checker a shard gets, plus the shard-label coverage check.
./target/release/metrics_check "$TR_ADDR" --warm-queries 8 --expect-shards 2
python3 - "$TR_ADDR" "$TR_TMP/route.log" "$TR_TMP/trace.json" <<'EOF'
import json, os, re, signal, sys, time, urllib.request

addr, log_path, export_path = sys.argv[1], sys.argv[2], sys.argv[3]

shards = {}  # id -> (addr, pid)
with open(log_path) as f:
    for line in f:
        m = re.match(r"shard (\d+): http://([0-9.:]+) healthy=\S+ pid=(\d+)", line)
        if m:
            shards[int(m.group(1))] = (m.group(2), int(m.group(3)))
assert len(shards) == 2, f"expected 2 shard announce lines, got {shards}"

def get(base, target):
    with urllib.request.urlopen(f"http://{base}{target}", timeout=30) as r:
        return r.status, dict(r.headers), r.read().decode()

# A traced query through the healthy fleet identifies the seed's primary
# shard, and its body already correlates header, route block, and the
# shard's own trace block under one id.
_, hdrs, body = get(addr, "/query?seed=5&top=4&trace=1")
doc = json.loads(body)
primary = int(doc["route"]["shard"])
rid0 = hdrs["X-Request-Id"]
assert doc["route"]["request_id"] == rid0 == doc["trace"]["request_id"], body
assert doc["route"]["attempts"][0]["kind"] == "primary", body

# SIGKILL the answering shard and re-issue immediately — before the
# supervisor can respawn it and the 50ms probe re-admit it — so the
# sibling must answer, with the failover visible in the per-attempt
# trace. (The respawn path itself is the previous drill's assertion.)
os.kill(shards[primary][1], signal.SIGKILL)
status, hdrs, body = get(addr, "/query?seed=5&top=4&trace=1")
assert status == 200, f"failover must be invisible: {status}"
doc = json.loads(body)
rid = hdrs["X-Request-Id"]
assert doc["route"]["request_id"] == rid == doc["trace"]["request_id"], body
survivor = int(doc["route"]["shard"])
assert survivor != primary, f"dead shard {primary} cannot have answered: {body}"
kinds = [a["kind"] for a in doc["route"]["attempts"]]
assert any(k in ("failover", "retry", "hedge") for k in kinds), kinds

# The one id correlates the router slowlog, the answering shard's
# slowlog, and the Chrome trace export — three processes, one story.
_, _, router_slow = get(addr, "/debug/slow")
assert rid in router_slow, f"router slowlog missing {rid}: {router_slow}"
_, _, shard_slow = get(shards[survivor][0], "/debug/slow")
assert rid in shard_slow, f"shard {survivor} slowlog missing {rid}: {shard_slow}"
with open(export_path) as f:
    assert rid in f.read(), f"trace export missing {rid}"
print(f"trace propagation: id {rid} in router slowlog, shard {survivor} slowlog, and export")
EOF
exec 4>&-
wait "$TR_PID"
TR_PID=""

# Incremental-rebuild drill: boot a live daemon with a WAL, push a
# numeric-safe edge batch through an explicit rebuild, and require the
# symbolic/numeric split to fire — bepi_numeric_rebuilds_total up by one,
# /version reporting rebuild_kind=numeric + rebuild_trigger=explicit.
# Then acknowledge a second batch, SIGKILL before its rebuild, restart on
# the same WAL, and require the replayed daemon (whose replay must also
# take the numeric path) to answer byte-for-byte like a daemon cleanly
# preprocessed from the same final edge list: the second batch undoes the
# first, so two chained refactorizations under the checkpoint's frozen
# plan must land exactly back on the from-scratch index.
echo "==> incremental-rebuild drill (numeric path + SIGKILL + WAL replay oracle)"
IR_TMP=$(mktemp -d)
cleanup_ir() {
  exec 3>&- 2>/dev/null || true
  [ -n "${IR_OFD:-}" ] && eval "exec $IR_OFD>&-" 2>/dev/null || true
  [ -n "${IR_PID:-}" ] && kill "$IR_PID" 2>/dev/null || true
  [ -n "${IR_ORACLE_PID:-}" ] && kill "$IR_ORACLE_PID" 2>/dev/null || true
  rm -rf "$IR_TMP"
}
trap 'cleanup_obs; cleanup_mmap; cleanup_sat; cleanup_rt; cleanup_tr; cleanup_ir' EXIT
python3 - "$IR_TMP/edges.txt" <<'EOF'
import sys
with open(sys.argv[1], "w") as f:
    n = 64
    for i in range(n):
        f.write(f"{i} {(i + 1) % n}\n")
        f.write(f"{i} {(i * 7 + 3) % n}\n")
EOF
./target/release/bepi preprocess "$IR_TMP/edges.txt" "$IR_TMP/index.bepi" --embed-graph
mkfifo "$IR_TMP/fifo"
exec 3<> "$IR_TMP/fifo"
./target/release/bepi serve "$IR_TMP/index.bepi" --listen 127.0.0.1:0 \
  --wal "$IR_TMP/updates.wal" --log-level info \
  < "$IR_TMP/fifo" > "$IR_TMP/serve.log" 2>&1 3>&- &
IR_PID=$!
IR_ADDR=""
for _ in $(seq 1 100); do
  IR_ADDR=$(sed -n 's#.*listening on http://\([0-9.:]*\).*#\1#p' "$IR_TMP/serve.log" | head -n1)
  [ -n "$IR_ADDR" ] && break
  kill -0 "$IR_PID" 2>/dev/null || { cat "$IR_TMP/serve.log"; exit 1; }
  sleep 0.1
done
[ -n "$IR_ADDR" ] || { echo "daemon never reported its address"; cat "$IR_TMP/serve.log"; exit 1; }
python3 - "$IR_ADDR" <<'EOF'
import json, sys, urllib.request

addr = sys.argv[1]

def get(target):
    with urllib.request.urlopen(f"http://{addr}{target}", timeout=30) as r:
        return r.read().decode()

def post(target, body):
    req = urllib.request.Request(f"http://{addr}{target}", data=body.encode(), method="POST")
    with urllib.request.urlopen(req, timeout=30) as r:
        return r.read().decode()

def metric(name):
    for line in get("/metrics").splitlines():
        if line.startswith(name + " "):
            return float(line.split()[-1])
    return None

assert metric("bepi_numeric_rebuilds_total") == 0.0, "counter must start at 0"

# Node 0's edges are (0,1) and (0,3); removing (0,3) leaves out-degree 1,
# so no deadend flips and the batch must classify numeric-only.
post("/edges", '{"op":"remove","u":0,"v":3}\n')
post("/rebuild", "")
assert metric("bepi_numeric_rebuilds_total") == 1.0, "numeric path never fired"
assert metric("bepi_structural_rebuilds_total") == 0.0, "batch misclassified structural"
assert metric('bepi_rebuild_path_seconds{path="numeric"}') > 0.0, "numeric path time missing"
v = json.loads(get("/version"))
assert v["version"] == 2, v
assert v["rebuild_kind"] == "numeric", v
assert v["rebuild_trigger"] == "explicit", v

# Second batch undoes the first; acknowledge it into the WAL and leave it
# pending — the SIGKILL below lands before any rebuild of it.
post("/edges", '{"op":"insert","u":0,"v":3}\n')
print("numeric rebuild counted; second batch acknowledged, ready for SIGKILL")
EOF
kill -9 "$IR_PID"
wait "$IR_PID" 2>/dev/null || true
IR_PID=""
# Restart on the same WAL: the pending insert replays on top of the
# checkpointed (refactored) index.
./target/release/bepi serve "$IR_TMP/index.bepi" --listen 127.0.0.1:0 \
  --wal "$IR_TMP/updates.wal" --log-level info \
  < "$IR_TMP/fifo" > "$IR_TMP/replay.log" 2>&1 3>&- &
IR_PID=$!
IR_ADDR=""
for _ in $(seq 1 100); do
  IR_ADDR=$(sed -n 's#.*listening on http://\([0-9.:]*\).*#\1#p' "$IR_TMP/replay.log" | head -n1)
  [ -n "$IR_ADDR" ] && break
  kill -0 "$IR_PID" 2>/dev/null || { cat "$IR_TMP/replay.log"; exit 1; }
  sleep 0.1
done
[ -n "$IR_ADDR" ] || { echo "restarted daemon never reported its address"; cat "$IR_TMP/replay.log"; exit 1; }
grep -q "WAL replay complete.*path=numeric" "$IR_TMP/replay.log" \
  || { echo "WAL replay did not take the numeric path"; cat "$IR_TMP/replay.log"; exit 1; }
# Oracle: a clean preprocess of the same final edge list (the insert
# undid the remove, so that is the original list). Its fifo gets its own
# auto-allocated fd — fd 3 still holds the replayed daemon's stdin open.
./target/release/bepi preprocess "$IR_TMP/edges.txt" "$IR_TMP/oracle.bepi" --embed-graph
mkfifo "$IR_TMP/fifo_oracle"
exec {IR_OFD}<> "$IR_TMP/fifo_oracle"
./target/release/bepi serve "$IR_TMP/oracle.bepi" --listen 127.0.0.1:0 \
  < "$IR_TMP/fifo_oracle" > "$IR_TMP/oracle.log" 2>&1 3>&- {IR_OFD}>&- &
IR_ORACLE_PID=$!
IR_ORACLE_ADDR=""
for _ in $(seq 1 100); do
  IR_ORACLE_ADDR=$(sed -n 's#.*listening on http://\([0-9.:]*\).*#\1#p' "$IR_TMP/oracle.log" | head -n1)
  [ -n "$IR_ORACLE_ADDR" ] && break
  kill -0 "$IR_ORACLE_PID" 2>/dev/null || { cat "$IR_TMP/oracle.log"; exit 1; }
  sleep 0.1
done
[ -n "$IR_ORACLE_ADDR" ] || { echo "oracle daemon never reported its address"; cat "$IR_TMP/oracle.log"; exit 1; }
for seed in 0 3 17 42 63; do
  curl -sf "http://$IR_ADDR/query?seed=$seed&top=10" > "$IR_TMP/replayed.json"
  curl -sf "http://$IR_ORACLE_ADDR/query?seed=$seed&top=10" > "$IR_TMP/oracle.json"
  cmp "$IR_TMP/replayed.json" "$IR_TMP/oracle.json" \
    || { echo "seed $seed: replayed daemon differs from clean preprocess"; exit 1; }
done
kill "$IR_PID" "$IR_ORACLE_PID" 2>/dev/null || true
wait "$IR_PID" "$IR_ORACLE_PID" 2>/dev/null || true
IR_PID=""; IR_ORACLE_PID=""
exec 3>&-
eval "exec $IR_OFD>&-"
echo "incremental rebuild: numeric path fired, replay survived SIGKILL byte-for-byte"

# Bench-harness smoke: the quick presets must run end to end and emit
# schema-valid artifacts — bepi-bench/v1 clearing the approximate-lane
# quality bar (both engines at precision@20 >= 0.9 on every dataset;
# deterministic scores, so this gate cannot flake), and the route bench's
# bepi-route-bench/v1, whose validation also requires the router bodies
# to be bit-identical to the single-daemon oracle.
echo "==> bench smoke (bepi bench --quick + bench_check --min-precision 0.9)"
BENCH_TMP=$(mktemp -d)
./target/release/bepi bench --quick --out "$BENCH_TMP/BENCH_PR6.json"
./target/release/bench_check --min-precision 0.9 "$BENCH_TMP/BENCH_PR6.json"
echo "==> route bench smoke (bepi bench --route --quick)"
./target/release/bepi bench --route --quick --out "$BENCH_TMP/BENCH_PR7.json"
./target/release/bench_check "$BENCH_TMP/BENCH_PR7.json"
# The trace bench's validation is the tracing-overhead gate itself:
# traced p50 within 5% of untraced, every traced body id-consistent.
echo "==> trace bench smoke (bepi bench --trace --quick)"
./target/release/bepi bench --trace --quick --out "$BENCH_TMP/BENCH_PR8.json"
./target/release/bench_check "$BENCH_TMP/BENCH_PR8.json"
# The rebuild bench's validation is the incremental gate itself: every
# batch on the numeric fast path, arms agreeing, incremental p50 beating
# the from-scratch preprocess.
echo "==> rebuild bench smoke (bepi bench --rebuild --quick)"
./target/release/bepi bench --rebuild --quick --out "$BENCH_TMP/BENCH_PR10.json"
./target/release/bench_check "$BENCH_TMP/BENCH_PR10.json"
rm -rf "$BENCH_TMP"

echo "==> ci OK"
