//! Criterion microbenchmarks for the reordering methods (the SlashBurn
//! iteration count drives Theorem 1's preprocessing complexity).

use bepi_graph::Dataset;
use bepi_reorder::{degree_order, reorder_deadends, slashburn, DegreeOrder, SlashBurnConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_reorder(c: &mut Criterion) {
    let g = Dataset::Wikipedia.generate();
    let sym = g.undirected_structure();

    let mut group = c.benchmark_group("reorder/wikipedia-like");
    group.sample_size(10);
    for k in [0.01, 0.1, 0.2, 0.5] {
        group.bench_function(format!("slashburn_k{k}"), |b| {
            let cfg = SlashBurnConfig::with_ratio(k);
            b.iter(|| black_box(slashburn(black_box(&sym), &cfg)))
        });
    }
    group.bench_function("deadend_reorder", |b| {
        b.iter(|| black_box(reorder_deadends(black_box(&g))))
    });
    group.bench_function("degree_order", |b| {
        b.iter(|| black_box(degree_order(black_box(&g), DegreeOrder::Ascending)))
    });
    group.finish();
}

criterion_group!(benches, bench_reorder);
criterion_main!(benches);
