//! Shared experiment machinery: dataset loading, seed selection, method
//! execution with budget gates, and outcome bookkeeping.

use bepi_core::bear::BearConfig;
use bepi_core::lu_method::LuDecompConfig;
use bepi_core::prelude::*;
use bepi_graph::{Dataset, Graph};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::{Duration, Instant};

/// Outcome of one method on one dataset — either measurements or the
/// "bar omitted" states of the paper's figures.
#[derive(Debug, Clone)]
pub enum Status {
    /// Completed with measurements.
    Done {
        /// Preprocessing wall-clock time.
        preprocess: Duration,
        /// Bytes of preprocessed data.
        bytes: usize,
        /// Average query wall-clock time.
        query: Duration,
        /// Average inner iterations per query.
        iterations: f64,
    },
    /// Out of memory budget (preprocessing refused).
    Oom(String),
    /// Out of time budget.
    Oot,
}

impl Status {
    /// Preprocessing seconds, if completed.
    pub fn preprocess_secs(&self) -> Option<f64> {
        match self {
            Status::Done { preprocess, .. } => Some(preprocess.as_secs_f64()),
            _ => None,
        }
    }

    /// Preprocessed bytes, if completed.
    pub fn bytes(&self) -> Option<usize> {
        match self {
            Status::Done { bytes, .. } => Some(*bytes),
            _ => None,
        }
    }

    /// Average query seconds, if completed.
    pub fn query_secs(&self) -> Option<f64> {
        match self {
            Status::Done { query, .. } => Some(query.as_secs_f64()),
            _ => None,
        }
    }

    /// Cell text for tables (`o.o.m.` / `o.o.t.` markers as in Figure 1).
    pub fn cell(&self, which: Metric) -> String {
        match self {
            Status::Done {
                preprocess,
                bytes,
                query,
                iterations,
            } => match which {
                Metric::Preprocess => crate::table::fmt_secs(preprocess.as_secs_f64()),
                Metric::Memory => bepi_sparse::mem::format_bytes(*bytes),
                Metric::Query => crate::table::fmt_secs(query.as_secs_f64()),
                Metric::Iterations => format!("{iterations:.1}"),
            },
            Status::Oom(_) => "o.o.m.".to_string(),
            Status::Oot => "o.o.t.".to_string(),
        }
    }
}

/// Which measurement a table cell shows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Preprocessing time.
    Preprocess,
    /// Preprocessed-data bytes.
    Memory,
    /// Average query time.
    Query,
    /// Average inner iterations.
    Iterations,
}

/// Query-seed count (paper: 30 random seeds), overridable via
/// `BEPI_SEEDS`.
pub fn seed_count() -> usize {
    std::env::var("BEPI_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30)
}

/// Deterministic pseudo-random query seeds for a graph.
pub fn query_seeds(g: &Graph, count: usize, rng_seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(rng_seed);
    (0..count).map(|_| rng.random_range(0..g.n())).collect()
}

/// The evaluation suite, possibly truncated by `BEPI_SUITE_MAX`.
pub fn suite() -> Vec<Dataset> {
    let max = std::env::var("BEPI_SUITE_MAX")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8usize);
    Dataset::all().into_iter().take(max.max(1)).collect()
}

/// The methods compared in Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// BePI (a specific variant).
    BePi(BePiVariant),
    /// The Bear baseline.
    Bear,
    /// The LU-decomposition baseline.
    Lu,
    /// Power iteration.
    Power,
    /// Plain GMRES on `H`.
    Gmres,
}

impl Method {
    /// Figure label.
    pub fn name(self) -> &'static str {
        match self {
            Method::BePi(v) => v.name(),
            Method::Bear => "Bear",
            Method::Lu => "LU",
            Method::Power => "Power",
            Method::Gmres => "GMRES",
        }
    }
}

/// Budget gates standing in for the paper's 24 h / 500 GB limits
/// (documented in DESIGN.md §4).
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Bear: refuse when `n2` exceeds this (dense `S^{-1}` is `8·n2²` B).
    pub bear_max_hubs: usize,
    /// LU: refuse when the non-deadend dimension exceeds this.
    pub lu_max_dim: usize,
}

impl Default for Budget {
    fn default() -> Self {
        Self {
            bear_max_hubs: 2_000,
            lu_max_dim: 10_000,
        }
    }
}

/// Runs one method on one graph: preprocess once, then average query time
/// over the given seeds.
pub fn run_method(
    method: Method,
    g: &Graph,
    hub_ratio: f64,
    seeds: &[usize],
    budget: &Budget,
) -> Status {
    let t0 = Instant::now();
    let solver: Box<dyn RwrSolver> = match method {
        Method::BePi(variant) => {
            let cfg = BePiConfig {
                variant,
                hub_ratio: match variant {
                    BePiVariant::Basic => None, // 0.001, as in the paper
                    _ => Some(hub_ratio),
                },
                ..BePiConfig::default()
            };
            match BePi::preprocess(g, &cfg) {
                Ok(s) => Box::new(s),
                Err(e) => return Status::Oom(e.to_string()),
            }
        }
        Method::Bear => {
            let cfg = BearConfig {
                max_hub_count: budget.bear_max_hubs,
                ..BearConfig::default()
            };
            match Bear::preprocess(g, &cfg) {
                Ok(s) => Box::new(s),
                Err(e) => return Status::Oom(e.to_string()),
            }
        }
        Method::Lu => {
            let cfg = LuDecompConfig {
                max_dimension: budget.lu_max_dim,
                ..LuDecompConfig::default()
            };
            match LuDecomp::preprocess(g, &cfg) {
                Ok(s) => Box::new(s),
                Err(e) => return Status::Oom(e.to_string()),
            }
        }
        Method::Power => match PowerSolver::with_defaults(g) {
            Ok(s) => Box::new(s),
            Err(e) => return Status::Oom(e.to_string()),
        },
        Method::Gmres => match GmresSolver::with_defaults(g) {
            Ok(s) => Box::new(s),
            Err(e) => return Status::Oom(e.to_string()),
        },
    };
    let preprocess = t0.elapsed();

    let t1 = Instant::now();
    let mut iter_sum = 0usize;
    for &s in seeds {
        match solver.query(s) {
            Ok(r) => iter_sum += r.iterations,
            Err(e) => return Status::Oom(e.to_string()),
        }
    }
    let query = t1.elapsed() / seeds.len().max(1) as u32;
    Status::Done {
        preprocess,
        bytes: solver.preprocessed_bytes(),
        query,
        iterations: iter_sum as f64 / seeds.len().max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bepi_graph::generators;

    #[test]
    fn run_method_measures_bepi() {
        let g = generators::erdos_renyi(200, 1000, 5).unwrap();
        let seeds = query_seeds(&g, 3, 7);
        let s = run_method(
            Method::BePi(BePiVariant::Full),
            &g,
            0.2,
            &seeds,
            &Budget::default(),
        );
        match s {
            Status::Done { bytes, .. } => assert!(bytes > 0),
            other => panic!("expected Done, got {other:?}"),
        }
    }

    #[test]
    fn budget_gate_produces_oom() {
        let g = generators::erdos_renyi(300, 1500, 5).unwrap();
        let seeds = query_seeds(&g, 2, 7);
        let budget = Budget {
            bear_max_hubs: 0,
            lu_max_dim: 1,
        };
        assert!(matches!(
            run_method(Method::Bear, &g, 0.2, &seeds, &budget),
            Status::Oom(_)
        ));
        assert!(matches!(
            run_method(Method::Lu, &g, 0.2, &seeds, &budget),
            Status::Oom(_)
        ));
    }

    #[test]
    fn seeds_are_deterministic_and_in_range() {
        let g = generators::cycle(50);
        let a = query_seeds(&g, 10, 3);
        let b = query_seeds(&g, 10, 3);
        assert_eq!(a, b);
        assert!(a.iter().all(|&s| s < 50));
    }

    #[test]
    fn status_cells() {
        let s = Status::Oom("x".into());
        assert_eq!(s.cell(Metric::Preprocess), "o.o.m.");
        let d = Status::Done {
            preprocess: Duration::from_millis(1500),
            bytes: 2048,
            query: Duration::from_micros(250),
            iterations: 7.5,
        };
        assert_eq!(d.cell(Metric::Preprocess), "1.50 s");
        assert_eq!(d.cell(Metric::Memory), "2.00 KiB");
        assert_eq!(d.cell(Metric::Query), "250 µs");
        assert_eq!(d.cell(Metric::Iterations), "7.5");
    }
}
