//! Local community detection from RWR scores (sweep cut).
//!
//! One of the applications motivating the paper (Andersen, Chung & Lang,
//! FOCS 2006, reference 1 of the paper; Gleich & Seshadhri; Whang et al.):
//! a random-walk score vector from a seed, swept in degree-normalized
//! order, yields a low-conductance community around the seed. BePI makes
//! the score computation fast; this module implements the sweep.

use crate::rwr::RwrScores;
use bepi_graph::Graph;
use bepi_sparse::{Csr, Result, SparseError};

/// A community produced by a sweep cut.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCut {
    /// Member nodes, in sweep (score/degree) order.
    pub nodes: Vec<usize>,
    /// Conductance `φ(S) = cut(S) / min(vol(S), vol(V∖S))` of the cut.
    pub conductance: f64,
}

/// Computes the conductance of a node set in the symmetrized structure.
pub fn conductance(g: &Graph, set: &[usize]) -> Result<f64> {
    let sym = g.undirected_structure();
    let member = membership(&sym, set)?;
    let (cut, vol_s) = cut_and_volume(&sym, &member);
    let total_vol = sym.nnz() as f64;
    let denom = vol_s.min(total_vol - vol_s);
    if denom <= 0.0 {
        return Ok(1.0);
    }
    Ok(cut / denom)
}

/// Sweeps the RWR scores in degree-normalized order and returns the
/// prefix with minimal conductance (at most `max_size` nodes when given).
///
/// Zero-score nodes never enter the sweep; the seed is always first on
/// connected graphs (its score dominates). Returns an error on an empty
/// or all-zero score vector.
pub fn sweep_cut(g: &Graph, scores: &RwrScores, max_size: Option<usize>) -> Result<SweepCut> {
    let n = g.n();
    if scores.scores.len() != n {
        return Err(SparseError::VectorLength {
            expected: n,
            actual: scores.scores.len(),
        });
    }
    let sym = g.undirected_structure();
    let degree: Vec<usize> = (0..n).map(|u| sym.row_nnz(u)).collect();
    let total_vol = sym.nnz() as f64;

    // Degree-normalized sweep order (Andersen et al.), zero scores dropped.
    let mut order: Vec<usize> = (0..n)
        .filter(|&u| scores.scores[u] > 0.0 && degree[u] > 0)
        .collect();
    if order.is_empty() {
        return Err(SparseError::Numerical(
            "sweep cut needs at least one positive-score non-isolated node".into(),
        ));
    }
    order.sort_by(|&a, &b| {
        let sa = scores.scores[a] / degree[a] as f64;
        let sb = scores.scores[b] / degree[b] as f64;
        sb.partial_cmp(&sa)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let cap = max_size.unwrap_or(order.len()).min(order.len());

    // Incremental cut/volume maintenance: adding u adds deg(u) to the
    // volume and flips each (u, v) edge between cut and interior.
    let mut in_set = vec![false; n];
    let mut cut = 0.0f64;
    let mut vol = 0.0f64;
    let mut best = (f64::INFINITY, 0usize);
    for (i, &u) in order.iter().enumerate().take(cap) {
        in_set[u] = true;
        vol += degree[u] as f64;
        for (v, _) in sym.row_iter(u) {
            if v == u {
                continue;
            }
            if in_set[v] {
                cut -= 1.0; // edge absorbed into the set (counted once before)
            } else {
                cut += 1.0;
            }
        }
        let denom = vol.min(total_vol - vol);
        let phi = if denom > 0.0 { cut / denom } else { 1.0 };
        if phi < best.0 {
            best = (phi, i + 1);
        }
    }
    let nodes = order[..best.1].to_vec();
    Ok(SweepCut {
        nodes,
        conductance: best.0,
    })
}

fn membership(sym: &Csr, set: &[usize]) -> Result<Vec<bool>> {
    let n = sym.nrows();
    let mut member = vec![false; n];
    for &u in set {
        if u >= n {
            return Err(SparseError::IndexOutOfBounds {
                index: (u, 0),
                shape: (n, n),
            });
        }
        member[u] = true;
    }
    Ok(member)
}

fn cut_and_volume(sym: &Csr, member: &[bool]) -> (f64, f64) {
    let mut cut = 0.0;
    let mut vol = 0.0;
    for (r, c, _) in sym.iter() {
        if member[r] {
            vol += 1.0;
            if !member[c] {
                cut += 1.0;
            }
        }
    }
    (cut, vol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use bepi_graph::generators;

    /// Two 10-cliques joined by a single bridge edge.
    fn barbell() -> Graph {
        let mut edges = Vec::new();
        for base in [0usize, 10] {
            for i in 0..10 {
                for j in i + 1..10 {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.push((0, 10)); // the bridge
        Graph::from_undirected_edges(20, &edges).unwrap()
    }

    #[test]
    fn conductance_of_known_cut() {
        let g = barbell();
        // One clique: cut = 1 (the bridge), vol = 10*9 + 1 = 91.
        let set: Vec<usize> = (0..10).collect();
        let phi = conductance(&g, &set).unwrap();
        assert!((phi - 1.0 / 91.0).abs() < 1e-12, "phi {phi}");
    }

    #[test]
    fn conductance_of_everything_is_one() {
        let g = generators::cycle(6);
        let all: Vec<usize> = (0..6).collect();
        assert_eq!(conductance(&g, &all).unwrap(), 1.0);
        assert_eq!(conductance(&g, &[]).unwrap(), 1.0);
    }

    #[test]
    fn sweep_recovers_planted_clique() {
        let g = barbell();
        let solver = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        let scores = solver.query(3).unwrap(); // seed inside clique 0
        let cut = sweep_cut(&g, &scores, None).unwrap();
        let mut nodes = cut.nodes.clone();
        nodes.sort_unstable();
        assert_eq!(
            nodes,
            (0..10).collect::<Vec<_>>(),
            "must recover the clique"
        );
        assert!(cut.conductance < 0.05);
    }

    #[test]
    fn sweep_respects_max_size() {
        let g = barbell();
        let solver = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        let scores = solver.query(0).unwrap();
        let cut = sweep_cut(&g, &scores, Some(4)).unwrap();
        assert!(cut.nodes.len() <= 4);
    }

    #[test]
    fn sweep_on_random_graph_is_sane() {
        let g = generators::erdos_renyi(100, 600, 3).unwrap();
        let solver = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        let scores = solver.query(7).unwrap();
        let cut = sweep_cut(&g, &scores, None).unwrap();
        assert!(!cut.nodes.is_empty());
        assert!((0.0..=1.0 + 1e-12).contains(&cut.conductance));
        // Reported conductance must match the standalone computation.
        let phi = conductance(&g, &cut.nodes).unwrap();
        assert!(
            (phi - cut.conductance).abs() < 1e-9,
            "{phi} vs {}",
            cut.conductance
        );
    }

    #[test]
    fn sweep_rejects_bad_inputs() {
        let g = generators::cycle(5);
        let bad = RwrScores {
            scores: vec![0.0; 3],
            iterations: 0,
            residual: 0.0,
        };
        assert!(sweep_cut(&g, &bad, None).is_err());
        let zeros = RwrScores {
            scores: vec![0.0; 5],
            iterations: 0,
            residual: 0.0,
        };
        assert!(sweep_cut(&g, &zeros, None).is_err());
    }

    #[test]
    fn conductance_rejects_out_of_range() {
        let g = generators::cycle(4);
        assert!(conductance(&g, &[9]).is_err());
    }
}
