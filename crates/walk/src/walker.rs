//! ThunderRW-style step-interleaved batch walk engine.
//!
//! A single random walk is a pointer chase: every step gathers one CSR
//! row picked by the previous step, so the memory system sees a fully
//! serial dependence chain and the walk runs at DRAM latency. ThunderRW
//! (Sun et al., VLDB 2021 — see PAPERS.md) hides that latency by running
//! a large *batch* of walks and interleaving their steps: while one
//! walk's row gather is in flight the engine advances other walks whose
//! rows are already cached.
//!
//! This engine keeps the batch in a flat array and, between rounds,
//! re-groups the still-active walks by their current node id. Walks
//! sitting in the same CSR region then step together, so one fetched
//! block serves many walks (the gather-locality trick; with the hub-first
//! SlashBurn numbering, hub rows — where skewed walks concentrate — stay
//! resident across rounds). The grouping is pure scheduling: each walk's
//! trajectory is a function of its private [`WalkRng`] stream only
//! (see [`crate::rng`]), and terminal visits are tallied as integer
//! counts, so the scores are **bit-identical** for a fixed
//! `(seed, epoch)` at any thread count, any batch order, and over both
//! owned and memory-mapped [`Csr`] storage.

use crate::rng::WalkRng;
use bepi_core::RwrScores;
use bepi_sparse::{Csr, Result, SparseError};

/// Steps each active walk advances between two re-grouping passes.
/// Larger values amortize the sort; smaller values keep the batch packed
/// tightly around the blocks it is currently visiting.
const INTERLEAVE_STEPS: usize = 8;

/// Hard cap on total steps per walk. With restart probability `c` the
/// odds of a single walk surviving `max(4096, 256/c)` steps are below
/// `(1-c)^(256/c) ≈ e^-256` — unreachable in practice; the cap exists so
/// a corrupted input cannot loop forever. A capped walk is tallied at
/// its current node (deterministic either way).
fn step_cap(c: f64) -> usize {
    (256.0 / c).max(4096.0) as usize
}

/// One in-flight walk: where it is and its private stream.
#[derive(Clone, Copy)]
struct WalkState {
    node: u32,
    rng: WalkRng,
}

/// Estimates RWR scores for `seed` by running `walks` random walks with
/// restart probability `c` over the adjacency matrix `adj` (raw weights;
/// neighbor choice is weight-proportional). A walk terminates where its
/// restart fires and tallies that node; walks that reach a deadend
/// terminate without contributing — the same leaked-mass semantics as
/// the exact solvers, so `Σ scores ≤ 1` with equality on deadend-free
/// graphs (in expectation).
///
/// Deterministic per `(seed, epoch)`: the returned scores are
/// bit-identical at any `bepi_par` thread count and over owned or
/// memory-mapped storage. `epoch` selects an independent replicate —
/// bump it to re-draw every walk without touching the query seed.
pub fn walk_scores(adj: &Csr, c: f64, seed: usize, walks: usize, epoch: u64) -> Result<RwrScores> {
    if adj.nrows() != adj.ncols() {
        return Err(SparseError::ShapeMismatch {
            left: adj.shape(),
            right: adj.shape(),
            op: "walk_scores (adjacency must be square)",
        });
    }
    let n = adj.nrows();
    if !(c > 0.0 && c < 1.0) {
        return Err(SparseError::Numerical(format!(
            "restart probability must be in (0, 1), got {c}"
        )));
    }
    if seed >= n {
        return Err(SparseError::IndexOutOfBounds {
            index: (seed, 0),
            shape: (n, n),
        });
    }
    if walks == 0 {
        return Err(SparseError::Numerical(
            "walk_scores needs at least one walk".into(),
        ));
    }

    let cap = step_cap(c);
    let mut active: Vec<WalkState> = (0..walks)
        .map(|w| WalkState {
            node: seed as u32,
            rng: WalkRng::for_walk(seed as u64, epoch, w as u64),
        })
        .collect();
    let mut hits = vec![0u64; n];
    let mut total_steps = 0u64;
    let mut steps_taken = 0usize;

    while !active.is_empty() {
        let remaining_budget = cap - steps_taken;
        let stride = INTERLEAVE_STEPS.min(remaining_budget);
        let threads = bepi_par::get_threads().clamp(1, active.len());
        let ranges = bepi_par::even_ranges(active.len(), threads);

        // Hand each thread a disjoint window of the batch. Every walk is
        // self-contained, so the partition affects scheduling only.
        let mut tasks = Vec::with_capacity(ranges.len());
        let mut rest: &mut [WalkState] = &mut active;
        let mut consumed = 0usize;
        for r in &ranges {
            let (chunk, tail) = rest.split_at_mut(r.end - consumed);
            consumed = r.end;
            rest = tail;
            tasks.push(move || step_chunk(adj, c, chunk, stride));
        }
        let outcomes = bepi_par::par_join(tasks);
        // Tally in window order; u64 additions make any order equivalent.
        for (terminated, steps) in outcomes {
            for node in terminated {
                hits[node as usize] += 1;
            }
            total_steps += steps;
        }
        steps_taken += stride;
        if steps_taken >= cap {
            // Unreachable for sane `c` (see `step_cap`); tally stragglers
            // where they stand so the walk count stays exact.
            for w in &active {
                hits[w.node as usize] += 1;
            }
            break;
        }
        // Compact, then re-group by current node so next round's gathers
        // cluster per CSR block. Both passes are order-deterministic.
        active.retain(|w| w.node != u32::MAX);
        active.sort_unstable_by_key(|w| w.node);
    }

    let inv = 1.0 / walks as f64;
    let scores: Vec<f64> = hits.into_iter().map(|h| h as f64 * inv).collect();
    Ok(RwrScores {
        scores,
        iterations: total_steps as usize,
        // Monte-Carlo standard-error scale: per-score error is
        // O(sqrt(r_u / walks)) ≤ this bound.
        residual: (walks as f64).sqrt().recip(),
    })
}

/// Advances every walk in `chunk` by up to `stride` steps. Terminated
/// walks are marked with `node == u32::MAX`; restart terminations are
/// returned (in chunk order) for the caller to tally, deadend
/// terminations just die. Returns `(terminated_nodes, steps_executed)`.
fn step_chunk(adj: &Csr, c: f64, chunk: &mut [WalkState], stride: usize) -> (Vec<u32>, u64) {
    let mut terminated = Vec::new();
    let mut steps = 0u64;
    for w in chunk.iter_mut() {
        for _ in 0..stride {
            steps += 1;
            if w.rng.next_f64() < c {
                terminated.push(w.node);
                w.node = u32::MAX;
                break;
            }
            let (cols, weights) = adj.row(w.node as usize);
            if cols.is_empty() {
                // Deadend: the surfer's mass leaks (Equation 4 semantics).
                w.node = u32::MAX;
                break;
            }
            w.node = pick_neighbor(cols, weights, w.rng.next_f64());
        }
    }
    (terminated, steps)
}

/// Weight-proportional neighbor choice (uniform when weights are equal).
/// The linear scan over the row is the gather the batching optimizes for.
#[inline]
fn pick_neighbor(cols: &[u32], weights: &[f64], u: f64) -> u32 {
    let total: f64 = weights.iter().sum();
    let mut pick = u * total;
    for (&col, &w) in cols.iter().zip(weights) {
        if pick < w {
            return col;
        }
        pick -= w;
    }
    cols[cols.len() - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use bepi_graph::{generators, Graph};

    fn scores_of(g: &Graph, seed: usize, walks: usize, epoch: u64) -> RwrScores {
        walk_scores(g.adjacency(), 0.15, seed, walks, epoch).unwrap()
    }

    #[test]
    fn mass_accounting_and_seed_dominance() {
        let g = generators::erdos_renyi(60, 400, 7).unwrap();
        let r = scores_of(&g, 3, 20_000, 0);
        let total: f64 = r.scores.iter().sum();
        assert!(total <= 1.0 + 1e-12, "total {total}");
        assert!(total > 0.9, "walk mass vanished: {total}");
        let max = r
            .scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(max, 3, "the seed dominates its own ranking");
    }

    #[test]
    fn deadend_only_graph_leaks_all_non_restart_mass() {
        // No edges at all: every walk either restarts on its first draw
        // (probability c, tallied at the seed) or dies at the deadend.
        let g = Graph::from_edges(5, &[]).unwrap();
        let r = walk_scores(g.adjacency(), 0.2, 2, 50_000, 0).unwrap();
        for (u, &s) in r.scores.iter().enumerate() {
            if u != 2 {
                assert_eq!(s, 0.0);
            }
        }
        let est = r.scores[2];
        assert!((est - 0.2).abs() < 0.01, "restart mass at seed: {est}");
    }

    #[test]
    fn matches_exact_solution_on_a_cycle() {
        // 4-cycle: symmetric, exact scores are easy to sanity-check —
        // the walk estimate must approach them as walks grow.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let r = walk_scores(g.adjacency(), 0.3, 0, 200_000, 1).unwrap();
        // Exact: r_k = c (1-c)^k / (1 - (1-c)^4) for distance k.
        let c = 0.3f64;
        let z = 1.0 - (1.0f64 - c).powi(4);
        for k in 0..4 {
            let exact = c * (1.0 - c).powi(k as i32) / z;
            let got = r.scores[k];
            assert!(
                (got - exact).abs() < 0.005,
                "node {k}: got {got}, exact {exact}"
            );
        }
    }

    #[test]
    fn epoch_changes_the_replicate() {
        let g = generators::erdos_renyi(40, 160, 3).unwrap();
        let a = scores_of(&g, 1, 2_000, 0);
        let b = scores_of(&g, 1, 2_000, 1);
        assert_ne!(a.scores, b.scores, "epochs must be independent draws");
    }

    #[test]
    fn identical_across_thread_counts() {
        let g = generators::rmat(7, 600, Default::default(), 5).unwrap();
        let baseline = {
            bepi_par::set_threads(1);
            scores_of(&g, 2, 5_000, 3)
        };
        for t in [2, 3, 8] {
            bepi_par::set_threads(t);
            let r = scores_of(&g, 2, 5_000, 3);
            assert_eq!(
                r.scores, baseline.scores,
                "thread count {t} changed the walk scores"
            );
            assert_eq!(r.iterations, baseline.iterations);
        }
        bepi_par::set_threads(1);
    }

    #[test]
    fn input_validation() {
        let g = Graph::from_edges(4, &[(0, 1)]).unwrap();
        assert!(walk_scores(g.adjacency(), 0.0, 0, 10, 0).is_err());
        assert!(walk_scores(g.adjacency(), 1.0, 0, 10, 0).is_err());
        assert!(walk_scores(g.adjacency(), 0.2, 4, 10, 0).is_err());
        assert!(walk_scores(g.adjacency(), 0.2, 0, 0, 0).is_err());
    }
}
