//! Logical memory accounting.
//!
//! The BePI paper's headline comparison (Figures 1(b), 5(b), 6(b)) is the
//! memory occupied by *preprocessed data*. We report the exact number of
//! bytes held by index and value arrays — the same quantity one would get
//! from serializing the compressed storage — so the harness can reproduce
//! those figures without depending on allocator behaviour.

/// Types that can report the logical size in bytes of their payload.
pub trait MemBytes {
    /// Exact number of bytes of index + value storage (not allocator
    /// capacity, not struct overhead).
    fn mem_bytes(&self) -> usize;
}

impl MemBytes for Vec<f64> {
    fn mem_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<f64>()
    }
}

impl MemBytes for Vec<u32> {
    fn mem_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<u32>()
    }
}

impl MemBytes for Vec<usize> {
    fn mem_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<usize>()
    }
}

impl<T: MemBytes> MemBytes for Option<T> {
    fn mem_bytes(&self) -> usize {
        self.as_ref().map_or(0, MemBytes::mem_bytes)
    }
}

impl<T: MemBytes> MemBytes for [T] {
    fn mem_bytes(&self) -> usize {
        self.iter().map(MemBytes::mem_bytes).sum()
    }
}

impl<T: MemBytes> MemBytes for Vec<T> {
    fn mem_bytes(&self) -> usize {
        self.as_slice().mem_bytes()
    }
}

/// Formats a byte count with binary units, e.g. `"1.50 MiB"`.
pub fn format_bytes(bytes: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.2} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_f64_bytes() {
        let v = vec![0.0f64; 10];
        assert_eq!(v.mem_bytes(), 80);
    }

    #[test]
    fn vec_u32_bytes() {
        let v = vec![0u32; 10];
        assert_eq!(v.mem_bytes(), 40);
    }

    #[test]
    fn option_bytes() {
        let some: Option<Vec<f64>> = Some(vec![0.0; 4]);
        let none: Option<Vec<f64>> = None;
        assert_eq!(some.mem_bytes(), 32);
        assert_eq!(none.mem_bytes(), 0);
    }

    #[test]
    fn nested_vec_bytes() {
        let v: Vec<Vec<u32>> = vec![vec![0; 2], vec![0; 3]];
        assert_eq!(v.mem_bytes(), 20);
    }

    #[test]
    fn format_small_and_large() {
        assert_eq!(format_bytes(12), "12 B");
        assert_eq!(format_bytes(1536), "1.50 KiB");
        assert_eq!(format_bytes(3 * 1024 * 1024), "3.00 MiB");
    }
}
