//! Regenerates the paper artifact; see `bepi_bench::experiments::fig11`.

fn main() {
    print!("{}", bepi_bench::experiments::fig11::run());
}
