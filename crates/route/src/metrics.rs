//! Router-level metrics in Prometheus exposition format.
//!
//! The fleet-facing series the ISSUE names — `bepi_shard_healthy`,
//! `bepi_route_retries_total`, `bepi_hedged_requests_total` — plus the
//! per-shard latency histograms, rendered with a `shard` label (the
//! shared [`bepi_obs::telemetry::Histogram`] renderer is label-free, so
//! the labeled exposition is assembled here from its raw buckets).

use crate::shard::{quorum_version, ShardState};
use bepi_obs::telemetry::{format_le, render_f64};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Router-wide counters.
#[derive(Debug, Default)]
pub struct RouteMetrics {
    /// Requests accepted by the router (any endpoint).
    pub requests_total: AtomicU64,
    /// Retries after a failed shard attempt (`bepi_route_retries_total`).
    pub retries_total: AtomicU64,
    /// Hedge requests launched (`bepi_hedged_requests_total`).
    pub hedged_total: AtomicU64,
    /// Requests answered by a non-primary shard after its primary
    /// failed or was unhealthy.
    pub failovers_total: AtomicU64,
    /// Requests the router could not answer from any shard.
    pub errors_total: AtomicU64,
}

impl RouteMetrics {
    /// Relaxed add-one; counters are monotonic and independent.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// Renders the full router exposition: router counters, per-shard
/// health gauges, versions, request/error counters, and latency
/// histograms.
pub fn render(metrics: &RouteMetrics, shards: &[Arc<ShardState>]) -> String {
    let mut out = String::with_capacity(2048);
    let counter = |out: &mut String, name: &str, help: &str, v: u64| {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {v}");
    };
    counter(
        &mut out,
        "bepi_route_requests_total",
        "Requests accepted by the router.",
        metrics.requests_total.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "bepi_route_retries_total",
        "Shard attempts retried on a sibling after a failure.",
        metrics.retries_total.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "bepi_hedged_requests_total",
        "Hedge requests launched against a sibling for tail latency.",
        metrics.hedged_total.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "bepi_route_failovers_total",
        "Requests answered by a non-primary shard.",
        metrics.failovers_total.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "bepi_route_errors_total",
        "Requests no shard could answer.",
        metrics.errors_total.load(Ordering::Relaxed),
    );

    let _ = writeln!(
        out,
        "# HELP bepi_shard_healthy Shard serving state (1 healthy, 0 out of rotation)."
    );
    let _ = writeln!(out, "# TYPE bepi_shard_healthy gauge");
    for s in shards {
        let _ = writeln!(
            out,
            "bepi_shard_healthy{{shard=\"{}\"}} {}",
            s.id,
            u8::from(s.is_healthy())
        );
    }
    let _ = writeln!(
        out,
        "# HELP bepi_shard_graph_version Highest graph version observed per shard."
    );
    let _ = writeln!(out, "# TYPE bepi_shard_graph_version gauge");
    for s in shards {
        let _ = writeln!(
            out,
            "bepi_shard_graph_version{{shard=\"{}\"}} {}",
            s.id,
            s.version()
        );
    }
    let _ = writeln!(
        out,
        "# HELP bepi_route_advertised_version Quorum-advertised fleet graph version."
    );
    let _ = writeln!(out, "# TYPE bepi_route_advertised_version gauge");
    let _ = writeln!(
        out,
        "bepi_route_advertised_version {}",
        quorum_version(shards)
    );

    let _ = writeln!(
        out,
        "# HELP bepi_route_shard_requests_total Requests answered per shard."
    );
    let _ = writeln!(out, "# TYPE bepi_route_shard_requests_total counter");
    for s in shards {
        let _ = writeln!(
            out,
            "bepi_route_shard_requests_total{{shard=\"{}\"}} {}",
            s.id,
            s.requests_total.load(Ordering::Relaxed)
        );
    }
    let _ = writeln!(
        out,
        "# HELP bepi_route_shard_errors_total Transport failures per shard."
    );
    let _ = writeln!(out, "# TYPE bepi_route_shard_errors_total counter");
    for s in shards {
        let _ = writeln!(
            out,
            "bepi_route_shard_errors_total{{shard=\"{}\"}} {}",
            s.id,
            s.errors_total.load(Ordering::Relaxed)
        );
    }

    let _ = writeln!(
        out,
        "# HELP bepi_route_shard_latency_seconds Successful request latency per shard."
    );
    let _ = writeln!(out, "# TYPE bepi_route_shard_latency_seconds histogram");
    for s in shards {
        let cumulative = s.latency.cumulative();
        for (i, &bound) in s.latency.bounds().iter().enumerate() {
            let _ = writeln!(
                out,
                "bepi_route_shard_latency_seconds_bucket{{shard=\"{}\",le=\"{}\"}} {}",
                s.id,
                format_le(bound),
                cumulative[i]
            );
        }
        let total = *cumulative.last().unwrap_or(&0);
        let _ = writeln!(
            out,
            "bepi_route_shard_latency_seconds_bucket{{shard=\"{}\",le=\"+Inf\"}} {}",
            s.id, total
        );
        let _ = writeln!(
            out,
            "bepi_route_shard_latency_seconds_sum{{shard=\"{}\"}} {}",
            s.id,
            render_f64(s.latency.sum())
        );
        let _ = writeln!(
            out,
            "bepi_route_shard_latency_seconds_count{{shard=\"{}\"}} {}",
            s.id, total
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn exposition_carries_the_issue_series() {
        let m = RouteMetrics::default();
        RouteMetrics::inc(&m.retries_total);
        RouteMetrics::inc(&m.hedged_total);
        let shards: Vec<Arc<ShardState>> = (0..2)
            .map(|i| Arc::new(ShardState::new(i, "127.0.0.1:1", Duration::from_millis(10))))
            .collect();
        shards[0].mark(true);
        shards[0].latency.observe(0.002);
        shards[0].observe_version(3);
        shards[1].observe_version(3);
        let text = render(&m, &shards);
        assert!(text.contains("bepi_route_retries_total 1"), "{text}");
        assert!(text.contains("bepi_hedged_requests_total 1"));
        assert!(text.contains("bepi_shard_healthy{shard=\"0\"} 1"));
        assert!(text.contains("bepi_shard_healthy{shard=\"1\"} 0"));
        assert!(text.contains("bepi_route_advertised_version 3"));
        assert!(
            text.contains("bepi_route_shard_latency_seconds_bucket{shard=\"0\",le=\"0.0025\"} 1")
        );
        assert!(text.contains("bepi_route_shard_latency_seconds_count{shard=\"0\"} 1"));
        // Every sample line parses via the server's metric scraper.
        assert_eq!(
            bepi_server::parse_metric(&text, "bepi_route_retries_total"),
            Some(1.0)
        );
    }
}
