//! # bepi-graph
//!
//! Directed graph type, random-graph generators, and the synthetic dataset
//! suite used by the BePI reproduction (Jung et al., SIGMOD 2017).
//!
//! The paper evaluates on eight real-world graphs (Slashdot … Friendster,
//! Table 2) whose defining structural properties are (a) power-law degree
//! distributions — the *hub-and-spoke* structure SlashBurn exploits — and
//! (b) substantial fractions of *deadend* nodes (no out-edges). The
//! [`datasets`] module generates a scaled-down synthetic suite with those
//! properties (R-MAT + deadend injection); see `DESIGN.md` §4 for the
//! substitution rationale.
//!
//! ```
//! use bepi_graph::{generators, Graph};
//!
//! let g = generators::rmat(8, 1000, generators::RmatParams::default(), 42)?;
//! assert_eq!(g.n(), 256);
//! let deadends = g.deadend_count();
//! let a_norm = g.row_normalized(); // Ã of Equation (1); deadend rows stay zero
//! assert_eq!((0..g.n()).filter(|&u| a_norm.row_nnz(u) == 0).count(), deadends);
//! # Ok::<(), bepi_sparse::SparseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Index-based loops over multiple parallel arrays are the clearest (and
// often fastest) idiom in the numerical kernels here; the iterator
// rewrites clippy suggests obscure the subscript structure of the math.
#![allow(clippy::needless_range_loop)]

pub mod datasets;
pub mod generators;
pub mod graph;
pub mod io;
pub mod stats;

pub use datasets::{Dataset, DatasetSpec};
pub use graph::Graph;
pub use io::NodeIndexer;
