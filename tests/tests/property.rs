//! Property-based cross-crate tests: random graphs through the whole
//! pipeline.

use bepi_core::prelude::*;
use bepi_graph::Graph;
use bepi_tests::{assert_scores_close, reference_scores};
use proptest::prelude::*;

/// Strategy: a random directed graph with n in [5, 60] and some edges,
/// possibly with deadends and self-loop-free.
fn graph_strategy() -> impl Strategy<Value = Graph> {
    (5usize..60).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 1..(n * 4)).prop_map(move |pairs| {
            let edges: Vec<(usize, usize)> = pairs.into_iter().filter(|(u, v)| u != v).collect();
            Graph::from_edges(n, &edges).unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bepi_matches_power_on_random_graphs(g in graph_strategy(), seed_frac in 0.0f64..1.0) {
        let seed = ((g.n() - 1) as f64 * seed_frac) as usize;
        let solver = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        let got = solver.query(seed).unwrap();
        let want = reference_scores(&g, 0.05, seed);
        assert_scores_close("random", &got.scores, &want, 1e-6);
    }

    #[test]
    fn variants_agree_on_random_graphs(g in graph_strategy()) {
        let seed = g.n() / 2;
        let full = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        let basic = BePi::preprocess(&g, &BePiConfig::for_variant(BePiVariant::Basic)).unwrap();
        let a = full.query(seed).unwrap();
        let b = basic.query(seed).unwrap();
        assert_scores_close("variants", &a.scores, &b.scores, 1e-6);
    }

    #[test]
    fn scores_nonnegative_and_bounded(g in graph_strategy(), c in 0.05f64..0.9) {
        let solver = BePi::preprocess(&g, &BePiConfig { c, ..BePiConfig::default() }).unwrap();
        let r = solver.query(0).unwrap();
        prop_assert!(r.scores.iter().all(|&v| v >= -1e-9));
        let sum: f64 = r.scores.iter().sum();
        prop_assert!(sum <= 1.0 + 1e-8, "sum {sum}");
        prop_assert!(r.scores[0] >= c - 1e-9, "seed score below restart mass");
    }

    #[test]
    fn restart_prob_one_limit(g in graph_strategy()) {
        // As c → 1, scores concentrate on the seed.
        let solver = BePi::preprocess(&g, &BePiConfig { c: 0.99, ..BePiConfig::default() }).unwrap();
        let r = solver.query(1).unwrap();
        prop_assert!(r.scores[1] > 0.98);
    }
}
