//! Minimal aligned-column table rendering for experiment reports.

use std::fmt::Write as _;

/// A simple text table with a header row, rendered with aligned columns
/// (first column left-aligned, the rest right-aligned) — the same layout
/// the paper's tables use.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; shorter rows are padded with empty cells.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned plain-text columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                if i == 0 {
                    let _ = write!(out, "{:<width$}", cell, width = widths[i]);
                } else {
                    let _ = write!(out, "{:>width$}", cell, width = widths[i]);
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders as a GitHub-flavored markdown table.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.header.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.header
                .iter()
                .enumerate()
                .map(|(i, _)| if i == 0 { ":---" } else { "---:" })
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }
}

/// Formats seconds compactly (`ms` below 1 s, three significant digits).
pub fn fmt_secs(s: f64) -> String {
    if s < 0.001 {
        format!("{:.0} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.2} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["longer", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].ends_with(" 1"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["x"]);
        assert_eq!(t.len(), 1);
        assert!(t.render().contains('x'));
    }

    #[test]
    fn markdown_has_separator() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1", "2"]);
        let md = t.render_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|:---|---:|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn fmt_secs_ranges() {
        assert_eq!(fmt_secs(0.000001), "1 µs");
        assert_eq!(fmt_secs(0.5), "500.00 ms");
        assert_eq!(fmt_secs(2.345), "2.35 s");
    }
}
