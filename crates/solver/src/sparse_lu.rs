//! Sparse LU factorization without pivoting, plus sparse triangular-factor
//! inversion.
//!
//! The paper (following Fujiwara et al. and Bear) computes `L1^{-1}` and
//! `U1^{-1}` explicitly: "we invert the LU factors of H11 since this
//! approach is more efficient in terms of time and space than directly
//! inverting H11" (Section 3.3). No pivoting is needed anywhere because
//! `H` and all its principal sub-blocks are strictly diagonally dominant
//! for `0 < c < 1`; this keeps the factors triangular in the original row
//! order, which the block-diagonal assembly in [`crate::block_lu`]
//! requires.
//!
//! The factorization is left-looking (Gilbert–Peierls flavor): column `j`
//! of the factors comes from the sparse triangular solve
//! `L x = A[:, j]` over the already-built columns. We process the fill
//! pattern with an ordered worklist — for a lower-triangular solve the
//! dependency order *is* ascending row order, so a binary heap of pending
//! rows replaces the usual DFS reach computation at `O(flops · log n)`.

use bepi_sparse::{Coo, Csc, Result, SparseError};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A sparse LU factorization `A = L U` (unit-diagonal `L`, both factors
/// column-compressed with sorted row indices).
#[derive(Debug, Clone)]
pub struct SparseLu {
    /// Unit lower-triangular factor (diagonal 1.0 stored explicitly).
    pub l: Csc,
    /// Upper-triangular factor (diagonal stored).
    pub u: Csc,
}

/// Sparse column accumulator reused across columns.
struct Spa {
    values: Vec<f64>,
    marked: Vec<bool>,
    heap: BinaryHeap<Reverse<u32>>,
}

impl Spa {
    fn new(n: usize) -> Self {
        Self {
            values: vec![0.0; n],
            marked: vec![false; n],
            heap: BinaryHeap::new(),
        }
    }

    fn add(&mut self, row: u32, v: f64) {
        let r = row as usize;
        if !self.marked[r] {
            self.marked[r] = true;
            self.heap.push(Reverse(row));
        }
        self.values[r] += v;
    }
}

impl SparseLu {
    /// Factors a square CSC matrix without pivoting.
    ///
    /// # Errors
    /// [`SparseError::ZeroDiagonal`] when a pivot vanishes (the matrix is
    /// not diagonally dominant / is singular in this ordering).
    pub fn factor(a: &Csc) -> Result<Self> {
        if a.nrows() != a.ncols() {
            return Err(SparseError::ShapeMismatch {
                left: (a.nrows(), a.ncols()),
                right: (a.nrows(), a.ncols()),
                op: "SparseLu::factor (matrix must be square)",
            });
        }
        let n = a.ncols();
        // Factor columns built incrementally; assembled into CSC at the end.
        let mut l_cols: Vec<Vec<(u32, f64)>> = Vec::with_capacity(n);
        let mut u_cols: Vec<Vec<(u32, f64)>> = Vec::with_capacity(n);
        let mut spa = Spa::new(n);

        for j in 0..n {
            // Load A[:, j] into the accumulator.
            for (r, v) in a.col_iter(j) {
                spa.add(r as u32, v);
            }
            let mut u_col: Vec<(u32, f64)> = Vec::new();
            let mut l_col: Vec<(u32, f64)> = Vec::new();
            // Pop pending rows in ascending order; rows < j trigger
            // elimination updates through the finished L columns.
            while let Some(Reverse(row)) = spa.heap.pop() {
                let r = row as usize;
                spa.marked[r] = false;
                let x = spa.values[r];
                spa.values[r] = 0.0;
                if x == 0.0 {
                    continue;
                }
                if r < j {
                    u_col.push((row, x));
                    // Scatter: x * L[k, r] for k > r.
                    for &(k, lv) in &l_cols[r] {
                        if k as usize > r {
                            spa.add(k, -lv * x);
                        }
                    }
                } else {
                    l_col.push((row, x));
                }
            }
            // First entry of l_col is the diagonal (pivot).
            let (pivot_row, pivot) = match l_col.first() {
                Some(&(r, v)) if r as usize == j && v != 0.0 => (r, v),
                _ => return Err(SparseError::ZeroDiagonal { row: j }),
            };
            debug_assert_eq!(pivot_row as usize, j);
            u_col.push((pivot_row, pivot));
            let mut out_l = Vec::with_capacity(l_col.len());
            out_l.push((pivot_row, 1.0));
            for &(r, v) in &l_col[1..] {
                out_l.push((r, v / pivot));
            }
            u_cols.push(u_col);
            l_cols.push(out_l);
        }

        Ok(Self {
            l: cols_to_csc(n, &l_cols),
            u: cols_to_csc(n, &u_cols),
        })
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.l.ncols()
    }

    /// Solves `A x = b` via forward/backward substitution.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = b.to_vec();
        crate::triangular::solve_lower_csc(&self.l, &mut x, true)?;
        crate::triangular::solve_upper_csc(&self.u, &mut x)?;
        Ok(x)
    }

    /// Computes the explicit sparse inverses `(L^{-1}, U^{-1})`.
    ///
    /// Exact zeros arising from cancellation are dropped; everything else
    /// is kept, so the result density reflects true structural fill (the
    /// quantity the paper's memory accounting measures).
    pub fn invert_factors(&self) -> (Csc, Csc) {
        (invert_unit_lower_csc(&self.l), invert_upper_csc(&self.u))
    }

    /// Total stored entries in both factors.
    pub fn nnz(&self) -> usize {
        self.l.nnz() + self.u.nnz()
    }
}

fn cols_to_csc(n: usize, cols: &[Vec<(u32, f64)>]) -> Csc {
    let nnz = cols.iter().map(Vec::len).sum();
    let mut coo = Coo::with_capacity(n, n, nnz).expect("dims fit");
    for (j, col) in cols.iter().enumerate() {
        for &(r, v) in col {
            coo.push(r as usize, j, v).expect("in range");
        }
    }
    Csc::from_coo(&coo)
}

/// Inverts a unit-lower-triangular CSC matrix, column by column, via the
/// same heap-ordered sparse solve as the factorization.
pub fn invert_unit_lower_csc(l: &Csc) -> Csc {
    let n = l.ncols();
    let mut inv_cols: Vec<Vec<(u32, f64)>> = Vec::with_capacity(n);
    let mut spa = Spa::new(n);
    for j in 0..n {
        spa.add(j as u32, 1.0);
        let mut col = Vec::new();
        while let Some(Reverse(row)) = spa.heap.pop() {
            let r = row as usize;
            spa.marked[r] = false;
            let x = spa.values[r];
            spa.values[r] = 0.0;
            if x == 0.0 {
                continue;
            }
            col.push((row, x));
            for (k, lv) in l.col_iter(r) {
                if k > r {
                    spa.add(k as u32, -lv * x);
                }
            }
        }
        inv_cols.push(col);
    }
    cols_to_csc(n, &inv_cols)
}

/// Inverts an upper-triangular CSC matrix (non-zero diagonal required —
/// guaranteed for factors produced by [`SparseLu::factor`]).
pub fn invert_upper_csc(u: &Csc) -> Csc {
    let n = u.ncols();
    let mut inv_cols: Vec<Vec<(u32, f64)>> = Vec::with_capacity(n);
    // For an upper solve, dependencies run downward: use a max-heap.
    let mut values = vec![0.0f64; n];
    let mut marked = vec![false; n];
    let mut heap: BinaryHeap<u32> = BinaryHeap::new();
    for j in 0..n {
        values[j] = 1.0;
        marked[j] = true;
        heap.push(j as u32);
        let mut col = Vec::new();
        while let Some(row) = heap.pop() {
            let r = row as usize;
            marked[r] = false;
            let x = values[r];
            values[r] = 0.0;
            if x == 0.0 {
                continue;
            }
            // Divide by the diagonal of U at row r.
            let (rows, vals) = u.col(r);
            let diag = match rows.last() {
                Some(&rr) if rr as usize == r => vals[vals.len() - 1],
                _ => unreachable!("upper factor has full diagonal"),
            };
            let xr = x / diag;
            col.push((row, xr));
            for (&k, &uv) in rows[..rows.len() - 1].iter().zip(vals) {
                let ku = k as usize;
                if !marked[ku] {
                    marked[ku] = true;
                    heap.push(k);
                }
                values[ku] -= uv * xr;
            }
        }
        col.reverse(); // heap pops descending; CSC wants ascending rows
        inv_cols.push(col);
    }
    cols_to_csc(n, &inv_cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bepi_sparse::{Coo, Dense};

    /// A diagonally dominant test matrix (like a small H).
    fn sample_csc() -> Csc {
        let entries = [
            (0usize, 0usize, 4.0),
            (0, 1, -1.0),
            (1, 1, 5.0),
            (1, 3, -1.5),
            (2, 0, -0.5),
            (2, 2, 3.0),
            (3, 1, -2.0),
            (3, 3, 6.0),
        ];
        let mut coo = Coo::new(4, 4).unwrap();
        for (r, c, v) in entries {
            coo.push(r, c, v).unwrap();
        }
        Csc::from_coo(&coo)
    }

    fn to_dense(c: &Csc) -> Dense {
        c.to_csr().to_dense()
    }

    #[test]
    fn factors_multiply_back() {
        let a = sample_csc();
        let lu = SparseLu::factor(&a).unwrap();
        let prod = to_dense(&lu.l).mul(&to_dense(&lu.u)).unwrap();
        assert!(prod.max_abs_diff(&to_dense(&a)).unwrap() < 1e-12);
    }

    #[test]
    fn l_is_unit_lower_u_is_upper() {
        let lu = SparseLu::factor(&sample_csc()).unwrap();
        for (r, c, v) in lu.l.to_csr().iter() {
            assert!(r >= c);
            if r == c {
                assert_eq!(v, 1.0);
            }
        }
        for (r, c, _) in lu.u.to_csr().iter() {
            assert!(r <= c);
        }
    }

    #[test]
    fn solve_matches_dense_reference() {
        let a = sample_csc();
        let lu = SparseLu::factor(&a).unwrap();
        let x_true = vec![1.0, -0.5, 2.0, 0.25];
        let b = a.mul_vec(&x_true).unwrap();
        let x = lu.solve(&b).unwrap();
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        }
    }

    #[test]
    fn inverted_factors_reconstruct_inverse() {
        let a = sample_csc();
        let lu = SparseLu::factor(&a).unwrap();
        let (linv, uinv) = lu.invert_factors();
        // A^{-1} = U^{-1} L^{-1}
        let inv = to_dense(&uinv).mul(&to_dense(&linv)).unwrap();
        let ident = to_dense(&a).mul(&inv).unwrap();
        assert!(ident.max_abs_diff(&Dense::identity(4)).unwrap() < 1e-12);
    }

    #[test]
    fn identity_factors_trivially() {
        let i = Csc::identity(5);
        let lu = SparseLu::factor(&i).unwrap();
        assert_eq!(lu.l.nnz(), 5);
        assert_eq!(lu.u.nnz(), 5);
        let (linv, uinv) = lu.invert_factors();
        assert_eq!(linv.nnz(), 5);
        assert_eq!(uinv.nnz(), 5);
    }

    #[test]
    fn zero_pivot_rejected() {
        // [[0, 1], [1, 0]] has a structurally zero pivot without pivoting.
        let mut coo = Coo::new(2, 2).unwrap();
        coo.push(0, 1, 1.0).unwrap();
        coo.push(1, 0, 1.0).unwrap();
        let a = Csc::from_coo(&coo);
        assert!(matches!(
            SparseLu::factor(&a),
            Err(SparseError::ZeroDiagonal { .. })
        ));
    }

    #[test]
    fn fill_in_is_produced_where_expected() {
        // Arrow matrix pointing down-right: dense last row/col, diagonal
        // elsewhere; elimination fills nothing extra with this orientation.
        let n = 6;
        let mut coo = Coo::new(n, n).unwrap();
        for i in 0..n {
            coo.push(i, i, 10.0).unwrap();
            if i + 1 < n {
                coo.push(n - 1, i, 1.0).unwrap();
                coo.push(i, n - 1, 1.0).unwrap();
            }
        }
        let a = Csc::from_coo(&coo);
        let lu = SparseLu::factor(&a).unwrap();
        // No fill: L has diagonal + last row, U diagonal + last column.
        assert_eq!(lu.l.nnz(), n + (n - 1));
        assert_eq!(lu.u.nnz(), n + (n - 1));

        // Reverse arrow (dense first row/col) fills in completely.
        let mut coo = Coo::new(n, n).unwrap();
        for i in 0..n {
            coo.push(i, i, 10.0).unwrap();
            if i > 0 {
                coo.push(0, i, 1.0).unwrap();
                coo.push(i, 0, 1.0).unwrap();
            }
        }
        let a = Csc::from_coo(&coo);
        let lu = SparseLu::factor(&a).unwrap();
        assert!(
            lu.u.nnz() > n + (n - 1),
            "expected fill-in, got {}",
            lu.u.nnz()
        );
    }

    #[test]
    fn larger_random_diagonally_dominant_system() {
        // Build a strictly diagonally dominant matrix deterministically.
        let n = 50;
        let mut coo = Coo::new(n, n).unwrap();
        for i in 0..n {
            let mut off = 0.0;
            for d in [1usize, 7, 13] {
                let j = (i * d + 3) % n;
                if j != i {
                    let v = ((i * 31 + j * 17) % 10) as f64 / 10.0 + 0.1;
                    coo.push(i, j, -v).unwrap();
                    off += v;
                }
            }
            coo.push(i, i, off + 1.0).unwrap();
        }
        let a = Csc::from_coo(&coo);
        let lu = SparseLu::factor(&a).unwrap();
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        let b = a.mul_vec(&x_true).unwrap();
        let x = lu.solve(&b).unwrap();
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-10);
        }
        // Inverted factors agree with solve on a probe vector.
        let (linv, uinv) = lu.invert_factors();
        let probe = lu.solve(&b).unwrap();
        let via_inv = uinv.mul_vec(&linv.mul_vec(&b).unwrap()).unwrap();
        for (got, want) in via_inv.iter().zip(&probe) {
            assert!((got - want).abs() < 1e-10);
        }
    }
}
