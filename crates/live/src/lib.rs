//! # bepi-live
//!
//! Live-update subsystem for the BePI query daemon: a durable
//! write-ahead log of edge updates, a background worker that rebuilds
//! the index off the serving path, and an atomic hot-swap of the served
//! index.
//!
//! The design follows the paper's observation (Section 5) that BePI's
//! preprocessing is cheap enough to re-run for *batches* of graph
//! changes. On top of that, the worker exploits the symbolic/numeric
//! split of `bepi-incr`: a batch that provably preserves the frozen
//! SlashBurn ordering takes a KLU-style numeric-only refactorization
//! (only touched `H11` blocks, Schur rows, and ILU values recomputed),
//! while structural batches fall back to the full pipeline. Queries
//! always see exactly one consistent snapshot — the last *completed*
//! rebuild, never the WAL tip.
//!
//! - [`wal`] — the on-disk log: length-validated, CRC-32-trailed
//!   segments, replay-on-restart with truncated-tail tolerance.
//! - [`engine`] — [`LiveEngine`]: buffering + dedup, rebuild scheduling,
//!   epoch-counted snapshot swap, checkpoint + WAL compaction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod wal;

pub use engine::{
    LiveConfig, LiveEngine, RebuildTrigger, SubmitOutcome, VersionInfo, VersionedIndex,
};
pub use wal::{ReplayReport, Wal};
