//! Per-attempt observability for the front tier.
//!
//! The router's unit of failure is the *shard attempt* — a `/query` can
//! fan into a primary attempt, retries, a hedge, and failovers, and the
//! interesting story ("which shard was slow, which died, who answered")
//! lives at that granularity. So the router's slowlog and trace ring
//! both record one fixed-width seqlock record per attempt, correlated
//! by the request id that is also propagated to the shards.

use bepi_obs::ring::{SeqRing, RECORD_FIELDS};
use bepi_obs::trace::RequestId;
use std::time::Duration;

/// Why an attempt was launched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptKind {
    /// First launch, on the seed's ring-primary shard.
    Primary,
    /// First launch, but on a sibling because the primary was unhealthy.
    Failover,
    /// Relaunch after a failed earlier attempt.
    Retry,
    /// Tail-latency duplicate launched while the first was in flight.
    Hedge,
}

impl AttemptKind {
    /// Stable wire name (used in trace splices and `/debug/slow`).
    pub fn name(self) -> &'static str {
        match self {
            AttemptKind::Primary => "primary",
            AttemptKind::Failover => "failover",
            AttemptKind::Retry => "retry",
            AttemptKind::Hedge => "hedge",
        }
    }

    fn code(self) -> u64 {
        match self {
            AttemptKind::Primary => 0,
            AttemptKind::Failover => 1,
            AttemptKind::Retry => 2,
            AttemptKind::Hedge => 3,
        }
    }

    fn from_code(code: u64) -> AttemptKind {
        match code {
            1 => AttemptKind::Failover,
            2 => AttemptKind::Retry,
            3 => AttemptKind::Hedge,
            _ => AttemptKind::Primary,
        }
    }
}

/// How an attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// The shard answered with this HTTP status.
    Status(u16),
    /// Transport failure (connect, send, or read).
    IoError,
    /// A sibling won the race; this attempt's answer was discarded.
    Abandoned,
}

impl AttemptOutcome {
    /// Stable wire text: the status digits, `io-error`, or `abandoned`.
    pub fn name(self) -> String {
        match self {
            AttemptOutcome::Status(s) => s.to_string(),
            AttemptOutcome::IoError => "io-error".to_string(),
            AttemptOutcome::Abandoned => "abandoned".to_string(),
        }
    }

    fn code(self) -> u64 {
        match self {
            // Statuses are ≥ 100, so the small codes cannot collide.
            AttemptOutcome::Status(s) => u64::from(s),
            AttemptOutcome::IoError => 1,
            AttemptOutcome::Abandoned => 2,
        }
    }

    fn from_code(code: u64) -> AttemptOutcome {
        match code {
            1 => AttemptOutcome::IoError,
            2 => AttemptOutcome::Abandoned,
            s => AttemptOutcome::Status(s as u16),
        }
    }
}

/// One retained shard attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttemptEntry {
    /// Correlation id of the request this attempt served.
    pub request_id: RequestId,
    /// Seed of the `/query` (or the batch member) being fetched.
    pub seed: u64,
    /// Launch index within the request (0 = first attempt).
    pub attempt: u64,
    /// Shard the attempt was sent to.
    pub shard: u64,
    /// Why the attempt was launched.
    pub kind: AttemptKind,
    /// TCP connect time in microseconds (0 on a pooled socket).
    pub connect_us: u64,
    /// Request write time in microseconds.
    pub send_us: u64,
    /// Time waiting on the shard's response in microseconds.
    pub wait_us: u64,
    /// How the attempt ended.
    pub outcome: AttemptOutcome,
    /// End-to-end latency of the *request* (all attempts) in µs.
    pub total_us: u64,
}

/// Seqlock ring of recent shard attempts; with a threshold it is the
/// router's slowlog, with `Duration::ZERO` it retains everything (the
/// shape the router's `/debug/trace` ring uses for traced requests).
#[derive(Debug)]
pub struct AttemptLog {
    ring: SeqRing,
    threshold: Duration,
}

impl AttemptLog {
    /// A ring of `entries` attempts recording requests whose end-to-end
    /// latency met `threshold` (zero records every request).
    pub fn new(entries: usize, threshold: Duration) -> AttemptLog {
        AttemptLog {
            ring: SeqRing::new(entries.max(1)),
            threshold,
        }
    }

    /// The configured latency threshold.
    pub fn threshold(&self) -> Duration {
        self.threshold
    }

    /// Records one attempt if its request met the threshold. Lock-free.
    pub fn record(&self, e: &AttemptEntry) {
        if Duration::from_micros(e.total_us) < self.threshold {
            return;
        }
        let mut fields = [0u64; RECORD_FIELDS];
        fields[0] = e.request_id.hi;
        fields[1] = e.request_id.lo;
        fields[2] = e.seed;
        fields[3] = e.attempt;
        fields[4] = e.shard;
        fields[5] = e.kind.code();
        fields[6] = e.connect_us;
        fields[7] = e.send_us;
        fields[8] = e.wait_us;
        fields[9] = e.outcome.code();
        fields[10] = e.total_us;
        self.ring.push(fields);
    }

    /// The retained attempts, newest first.
    pub fn entries(&self) -> Vec<AttemptEntry> {
        self.ring
            .snapshot()
            .into_iter()
            .map(|f| AttemptEntry {
                request_id: RequestId { hi: f[0], lo: f[1] },
                seed: f[2],
                attempt: f[3],
                shard: f[4],
                kind: AttemptKind::from_code(f[5]),
                connect_us: f[6],
                send_us: f[7],
                wait_us: f[8],
                outcome: AttemptOutcome::from_code(f[9]),
                total_us: f[10],
            })
            .collect()
    }

    /// Renders the debug JSON body, newest attempt first.
    pub fn render_json(&self) -> String {
        let entries = self.entries();
        let mut body = format!(
            "{{\"threshold_us\":{},\"capacity\":{},\"entries\":[",
            self.threshold.as_micros(),
            self.ring.capacity()
        );
        for (i, e) in entries.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(&format!(
                "{{\"request_id\":\"{}\",\"seed\":{},\"attempt\":{},\"shard\":{},\
                 \"kind\":\"{}\",\"connect_us\":{},\"send_us\":{},\"wait_us\":{},\
                 \"outcome\":\"{}\",\"total_us\":{}}}",
                e.request_id.to_hex(),
                e.seed,
                e.attempt,
                e.shard,
                e.kind.name(),
                e.connect_us,
                e.send_us,
                e.wait_us,
                e.outcome.name(),
                e.total_us
            ));
        }
        body.push_str("]}");
        body
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seed: u64) -> AttemptEntry {
        AttemptEntry {
            request_id: RequestId {
                hi: seed,
                lo: seed.wrapping_mul(13),
            },
            seed,
            attempt: seed % 4,
            shard: seed % 3,
            kind: AttemptKind::from_code(seed % 4),
            connect_us: seed,
            send_us: seed * 2,
            wait_us: seed * 5,
            outcome: if seed % 2 == 0 {
                AttemptOutcome::Status(200)
            } else {
                AttemptOutcome::IoError
            },
            total_us: seed * 9,
        }
    }

    #[test]
    fn kind_and_outcome_codes_round_trip() {
        for kind in [
            AttemptKind::Primary,
            AttemptKind::Failover,
            AttemptKind::Retry,
            AttemptKind::Hedge,
        ] {
            assert_eq!(AttemptKind::from_code(kind.code()), kind);
        }
        for outcome in [
            AttemptOutcome::Status(200),
            AttemptOutcome::Status(503),
            AttemptOutcome::IoError,
            AttemptOutcome::Abandoned,
        ] {
            assert_eq!(AttemptOutcome::from_code(outcome.code()), outcome);
        }
    }

    #[test]
    fn threshold_filters_and_json_renders_attempt_detail() {
        let log = AttemptLog::new(8, Duration::from_micros(50));
        log.record(&entry(2)); // total 18µs: dropped
        log.record(&entry(7)); // total 63µs: kept
        let entries = log.entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0], entry(7));
        let json = log.render_json();
        assert!(json.starts_with("{\"threshold_us\":50,\"capacity\":8,"));
        assert!(json.contains(&format!(
            "\"request_id\":\"{}\"",
            entry(7).request_id.to_hex()
        )));
        assert!(json.contains("\"kind\":\"hedge\""));
        assert!(json.contains("\"outcome\":\"io-error\""));
        assert!(json.contains("\"total_us\":63"));
    }

    #[test]
    fn concurrent_writers_never_surface_a_torn_attempt() {
        use std::sync::Arc;
        let log = Arc::new(AttemptLog::new(16, Duration::ZERO));
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    for i in 1..=500u64 {
                        log.record(&entry(w * 1000 + i));
                    }
                })
            })
            .collect();
        let reader = {
            let log = Arc::clone(&log);
            std::thread::spawn(move || {
                for _ in 0..200 {
                    for e in log.entries() {
                        // Every field derives from the seed; a mix of
                        // two records breaks one of the equalities.
                        assert_eq!(e, entry(e.seed), "torn attempt record surfaced");
                    }
                }
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        reader.join().unwrap();
        assert!(!log.entries().is_empty());
    }
}
