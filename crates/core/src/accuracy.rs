//! The accuracy guarantees of Section 3.6.3 (Lemmas 2–4, Theorem 4).
//!
//! Theorem 4: with GMRES tolerance ε on the Schur system,
//!
//! ```text
//! ‖r* − r‖₂ ≤ sqrt((α‖H31‖₂ + ‖H32‖₂)² + α² + 1) · ‖q̂2‖₂/σ_min(S) · ε
//! ```
//!
//! with `α = ‖H12‖₂ / σ_min(H11)`. This module evaluates the bound's
//! constants for a preprocessed [`BePi`] instance (norms by the power
//! method, smallest singular values by inverse iteration through the
//! method's own solvers) and inverts it to pick an ε for a target
//! accuracy, as the end of Section 3.6.3 describes.

use crate::bepi::BePi;
use bepi_solver::norm_est::{norm2_est, sigma_min_est};
use bepi_solver::{gmres, GmresConfig, Preconditioner};
use bepi_sparse::vecops::dist2;
use bepi_sparse::Result;

/// The constants of the Theorem 4 bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Theorem4Bound {
    /// `‖H12‖₂`.
    pub h12_norm: f64,
    /// `‖H31‖₂`.
    pub h31_norm: f64,
    /// `‖H32‖₂`.
    pub h32_norm: f64,
    /// `σ_min(H11)`.
    pub sigma_min_h11: f64,
    /// `σ_min(S)`.
    pub sigma_min_s: f64,
    /// `α = ‖H12‖₂ / σ_min(H11)`.
    pub alpha: f64,
    /// `sqrt((α‖H31‖₂ + ‖H32‖₂)² + α² + 1)`.
    pub prefactor: f64,
}

impl Theorem4Bound {
    /// The bound `‖r* − r‖₂ ≤ prefactor · ‖q̂2‖₂ / σ_min(S) · ε`.
    pub fn error_bound(&self, q2_hat_norm: f64, eps: f64) -> f64 {
        self.prefactor * q2_hat_norm / self.sigma_min_s * eps
    }

    /// The largest ε guaranteeing a target accuracy ε_T (the inequality at
    /// the end of Section 3.6.3).
    pub fn tolerance_for_target(&self, q2_hat_norm: f64, target: f64) -> f64 {
        if q2_hat_norm == 0.0 {
            return target;
        }
        target * self.sigma_min_s / (self.prefactor * q2_hat_norm)
    }
}

/// Estimates the Theorem 4 constants for a preprocessed BePI instance.
///
/// Norm estimates use the power method; `σ_min(H11)` uses the inverted
/// block factors, `σ_min(S)` uses (preconditioned) GMRES solves — all
/// machinery BePI already has. Intended for the small/mid graphs of the
/// accuracy experiments; cost grows with GMRES solve cost.
pub fn theorem4_bound(bepi: &BePi) -> Result<Theorem4Bound> {
    let (h12, _h21, h31, h32) = bepi.coupling_blocks();
    let tol = 1e-8;
    let iters = 2_000;
    let h12_norm = norm2_est(h12, tol, iters).value;
    let h31_norm = norm2_est(h31, tol, iters).value;
    let h32_norm = norm2_est(h32, tol, iters).value;

    // σ_min(H11) via the explicit inverse factors.
    let blu = bepi.h11_factors();
    let n1 = blu.n();
    let sigma_min_h11 = if n1 == 0 {
        1.0
    } else {
        sigma_min_est(
            n1,
            |b| blu.solve_vec(b).expect("dimension fixed"),
            |b| {
                // H11^{-T} b = L1^{-T} (U1^{-T} b)
                let t = blu.u_inv.mul_vec_transposed(b).expect("dimension fixed");
                blu.l_inv.mul_vec_transposed(&t).expect("dimension fixed")
            },
            tol,
            iters,
        )
        .value
    };

    // σ_min(S) via GMRES solves on S and S^T.
    let s = bepi.schur();
    let st = s.transpose();
    let cfg = GmresConfig {
        tol: 1e-10,
        ..GmresConfig::default()
    };
    let precond = bepi.preconditioner();
    let sigma_min_s = if s.nrows() == 0 {
        1.0
    } else {
        sigma_min_est(
            s.nrows(),
            |b| {
                gmres(s, b, None, precond.map(|m| m as &dyn Preconditioner), &cfg)
                    .expect("gmres on S")
                    .x
            },
            |b| gmres(&st, b, None, None, &cfg).expect("gmres on S^T").x,
            1e-6,
            200,
        )
        .value
    };

    let alpha = if sigma_min_h11 > 0.0 {
        h12_norm / sigma_min_h11
    } else {
        f64::INFINITY
    };
    let prefactor = ((alpha * h31_norm + h32_norm).powi(2) + alpha * alpha + 1.0).sqrt();
    Ok(Theorem4Bound {
        h12_norm,
        h31_norm,
        h32_norm,
        sigma_min_h11,
        sigma_min_s,
        alpha,
        prefactor,
    })
}

/// `‖a − b‖₂` — the error metric of Figure 10 and Theorem 4.
pub fn l2_error(a: &[f64], b: &[f64]) -> f64 {
    dist2(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bepi::{BePiConfig, BePiVariant};
    use crate::exact::DenseExact;
    use crate::rwr::RwrSolver;
    use bepi_graph::generators;

    #[test]
    fn bound_constants_are_finite_and_positive() {
        let g = generators::rmat(7, 400, generators::RmatParams::default(), 3).unwrap();
        let bepi = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        let bound = theorem4_bound(&bepi).unwrap();
        assert!(bound.sigma_min_s > 0.0 && bound.sigma_min_s.is_finite());
        assert!(bound.sigma_min_h11 > 0.0);
        assert!(bound.prefactor >= 1.0);
        assert!(bound.alpha.is_finite());
    }

    #[test]
    fn empirical_error_within_bound() {
        let g = generators::erdos_renyi(150, 700, 11).unwrap();
        let eps = 1e-6;
        let cfg = BePiConfig {
            tol: eps,
            variant: BePiVariant::Full,
            ..BePiConfig::default()
        };
        let bepi = BePi::preprocess(&g, &cfg).unwrap();
        let exact = DenseExact::with_defaults(&g).unwrap();
        let bound = theorem4_bound(&bepi).unwrap();
        for seed in [0usize, 75, 149] {
            let approx = bepi.query(seed).unwrap();
            let truth = exact.query(seed).unwrap();
            let err = l2_error(&approx.scores, &truth.scores);
            // ‖q̂2‖₂ ≤ c + ‖H21 H11^{-1} c q1‖; c·1 is a safe small probe —
            // use the generous upper bound ‖q̂2‖ ≤ 1 for the check.
            let theoretical = bound.error_bound(1.0, eps);
            assert!(
                err <= theoretical,
                "seed {seed}: empirical {err} exceeds bound {theoretical}"
            );
        }
    }

    #[test]
    fn tolerance_inversion_roundtrip() {
        let b = Theorem4Bound {
            h12_norm: 1.0,
            h31_norm: 0.5,
            h32_norm: 0.5,
            sigma_min_h11: 0.9,
            sigma_min_s: 0.1,
            alpha: 1.0 / 0.9,
            prefactor: 2.0,
        };
        let target = 1e-6;
        let eps = b.tolerance_for_target(0.7, target);
        let achieved = b.error_bound(0.7, eps);
        assert!((achieved - target).abs() < 1e-18);
    }

    #[test]
    fn l2_error_basics() {
        assert_eq!(l2_error(&[0.0, 3.0], &[4.0, 0.0]), 5.0);
        assert_eq!(l2_error(&[1.0], &[1.0]), 0.0);
    }
}
