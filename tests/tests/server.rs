//! End-to-end tests of the `bepi-server` daemon over real TCP sockets:
//! every test binds an ephemeral port, drives the server with a plain
//! `TcpStream` client, and checks responses against `BePi::query` output.

use bepi_core::prelude::*;
use bepi_server::worker::render_query_body;
use bepi_server::{parse_metric, QueryKey, ResponseMode, Server, ServerConfig, ServerHandle};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// One shared preprocessed instance: preprocessing dominates test time and
/// the server never mutates it, so every test can reuse it.
fn solver() -> Arc<BePi> {
    static SOLVER: OnceLock<Arc<BePi>> = OnceLock::new();
    Arc::clone(SOLVER.get_or_init(|| {
        let g =
            bepi_graph::generators::rmat(7, 500, bepi_graph::generators::RmatParams::default(), 61)
                .unwrap();
        Arc::new(BePi::preprocess(&g, &BePiConfig::default()).unwrap())
    }))
}

fn start(config: &ServerConfig) -> ServerHandle {
    Server::start(solver(), config).expect("server must bind an ephemeral port")
}

struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Sends raw bytes and reads until the server closes the connection.
fn raw_request(addr: SocketAddr, bytes: &[u8]) -> Response {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.write_all(bytes).expect("send request");
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).expect("read response");
    parse_response(&String::from_utf8(buf).expect("UTF-8 response"))
}

fn get(addr: SocketAddr, target: &str) -> Response {
    raw_request(
        addr,
        format!("GET {target} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n").as_bytes(),
    )
}

fn parse_response(text: &str) -> Response {
    let (head, body) = text
        .split_once("\r\n\r\n")
        .expect("response must have a blank line");
    let mut lines = head.lines();
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers = lines
        .map(|l| {
            let (k, v) = l.split_once(':').expect("header colon");
            (k.trim().to_ascii_lowercase(), v.trim().to_string())
        })
        .collect();
    Response {
        status,
        headers,
        body: body.to_string(),
    }
}

/// The body the server must produce for `(seed, top_k)`, derived from a
/// direct `BePi::query` call through the same renderer.
fn expected_body(seed: usize, top_k: usize) -> String {
    let scores = solver().query(seed).unwrap();
    render_query_body(
        QueryKey {
            seed,
            top_k,
            version: 1,
            mode: ResponseMode::Exact,
        },
        &scores,
    )
}

#[test]
fn a_thousand_sequential_queries_are_byte_identical_to_direct_calls() {
    let handle = start(&ServerConfig::default());
    let addr = handle.local_addr();
    let n = solver().node_count();
    for i in 0..1000 {
        // seed repeats every n requests and top every 8, so the key
        // space cycles well inside 1000 requests and the cache gets hits.
        let seed = (i * 13) % n;
        let top = (i % 8) + 1;
        let resp = get(addr, &format!("/query?seed={seed}&top={top}"));
        assert_eq!(resp.status, 200, "request {i}");
        assert_eq!(resp.body, expected_body(seed, top), "request {i}");
    }
    // With 1000 requests over at most n * 8 distinct keys, some repeated
    // and must have come from the cache.
    let metrics = get(addr, "/metrics").body;
    assert!(parse_metric(&metrics, "bepi_cache_hits_total").unwrap() > 0.0);
    assert_eq!(
        parse_metric(&metrics, "bepi_queries_total").unwrap(),
        1000.0
    );
    handle.shutdown();
}

#[test]
fn concurrent_clients_get_exact_results() {
    let handle = start(&ServerConfig {
        threads: 4,
        ..ServerConfig::default()
    });
    let addr = handle.local_addr();
    let n = solver().node_count();
    std::thread::scope(|scope| {
        for t in 0..8usize {
            scope.spawn(move || {
                for i in 0..25usize {
                    let seed = (t * 31 + i * 7) % n;
                    let top = (i % 9) + 1;
                    let resp = get(addr, &format!("/query?seed={seed}&top={top}"));
                    assert_eq!(resp.status, 200, "client {t} request {i}");
                    assert_eq!(resp.body, expected_body(seed, top));
                }
            });
        }
    });
    handle.shutdown();
}

#[test]
fn repeated_seed_is_served_from_the_cache() {
    let handle = start(&ServerConfig::default());
    let addr = handle.local_addr();
    let first = get(addr, "/query?seed=3&top=5");
    assert_eq!(first.status, 200);
    assert_eq!(first.header("x-cache"), Some("miss"));
    let second = get(addr, "/query?seed=3&top=5");
    assert_eq!(second.status, 200);
    assert_eq!(second.header("x-cache"), Some("hit"));
    assert_eq!(first.body, second.body, "cache hits must be byte-identical");
    let metrics = get(addr, "/metrics").body;
    assert!(parse_metric(&metrics, "bepi_cache_hits_total").unwrap() >= 1.0);
    assert!(parse_metric(&metrics, "bepi_cache_misses_total").unwrap() >= 1.0);
    handle.shutdown();
}

#[test]
fn malformed_requests_get_4xx_and_the_worker_survives() {
    let handle = start(&ServerConfig {
        threads: 1, // one worker: if anything kills it, the follow-ups hang
        ..ServerConfig::default()
    });
    let addr = handle.local_addr();

    let garbage = raw_request(addr, b"THIS IS NOT HTTP\r\n\r\n");
    assert_eq!(garbage.status, 400);
    let bad_query = get(addr, "/query?seed=not-a-number");
    assert_eq!(bad_query.status, 400);
    let missing_seed = get(addr, "/query");
    assert_eq!(missing_seed.status, 400);
    let out_of_range = get(addr, &format!("/query?seed={}", solver().node_count()));
    assert_eq!(out_of_range.status, 400);
    let not_found = get(addr, "/nope");
    assert_eq!(not_found.status, 404);
    let post = raw_request(addr, b"POST /query HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(post.status, 405);

    // The same single worker must still answer real queries.
    let ok = get(addr, "/query?seed=1&top=3");
    assert_eq!(ok.status, 200);
    assert_eq!(ok.body, expected_body(1, 3));
    let metrics = get(addr, "/metrics").body;
    assert!(parse_metric(&metrics, "bepi_client_errors_total").unwrap() >= 5.0);
    handle.shutdown();
}

#[test]
fn saturated_queue_sheds_load_with_503() {
    let handle = start(&ServerConfig {
        threads: 1,
        queue_depth: 1,
        timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    });
    let addr = handle.local_addr();

    // Two idle connections: the first occupies the lone worker (blocked
    // reading a request that never comes), the second fills the queue.
    let hold1 = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(200));
    let hold2 = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(200));

    // Everything beyond the queue must now be shed.
    let shed = get(addr, "/query?seed=1");
    assert_eq!(shed.status, 503);
    assert_eq!(shed.header("retry-after"), Some("1"));

    assert!(parse_metric(&handle.metrics().render(), "bepi_rejected_total").unwrap() >= 1.0);

    // Releasing the held connections lets the worker recover.
    drop(hold1);
    drop(hold2);
    std::thread::sleep(Duration::from_millis(200));
    let ok = get(addr, "/query?seed=1&top=3");
    assert_eq!(ok.status, 200);
    handle.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let handle = start(&ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    });
    let addr = handle.local_addr();
    let n = solver().node_count();

    // Write requests so they are accepted and queued, but don't read yet.
    let mut in_flight = Vec::new();
    for i in 0..6usize {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let seed = (i * 11) % n;
        write!(
            s,
            "GET /query?seed={seed}&top=4 HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        in_flight.push((s, seed));
    }
    // Give the acceptor time to admit all of them, then pull the plug.
    std::thread::sleep(Duration::from_millis(300));
    let trigger = handle.trigger();
    trigger.fire();

    // Every admitted request must still receive its complete answer.
    for (mut s, seed) in in_flight {
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).expect("drained response");
        let resp = parse_response(&String::from_utf8(buf).unwrap());
        assert_eq!(resp.status, 200, "seed {seed}");
        assert_eq!(resp.body, expected_body(seed, 4));
    }

    handle.join();
    // After the drain the listener is gone: new connections fail outright
    // or are closed without a response.
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(mut s) => {
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let _ = s.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
            let mut buf = Vec::new();
            let n = s.read_to_end(&mut buf).unwrap_or(0);
            assert_eq!(n, 0, "a post-shutdown connection must get no response");
        }
    }
}

#[test]
fn healthz_and_metrics_endpoints_answer() {
    let handle = start(&ServerConfig::default());
    let addr = handle.local_addr();
    let health = get(addr, "/healthz");
    assert_eq!(health.status, 200);
    assert_eq!(health.body, "ok\n");
    let metrics = get(addr, "/metrics");
    assert_eq!(metrics.status, 200);
    assert!(metrics
        .header("content-type")
        .unwrap()
        .starts_with("text/plain"));
    for counter in [
        "bepi_connections_total",
        "bepi_requests_total",
        "bepi_queries_total",
        "bepi_cache_hits_total",
        "bepi_rejected_total",
        "bepi_query_latency_seconds_count",
    ] {
        assert!(
            parse_metric(&metrics.body, counter).is_some(),
            "missing {counter}"
        );
    }
    handle.shutdown();
}
