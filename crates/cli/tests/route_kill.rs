//! The shard-kill drill, end to end over real processes: boot
//! `bepi route` over two spawned shard daemons, SIGKILL one mid-load,
//! and require **zero** failed `mode=auto` requests — the router must
//! absorb the crash with failover, then respawn the shard and re-admit
//! it once it answers `/version` at the expected epoch.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_bepi");
const N: usize = 60;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bepi_route_kill_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn preprocess(dir: &Path) -> PathBuf {
    let edges: String = (0..N).map(|i| format!("{} {}\n", i, (i + 1) % N)).collect();
    let edges_path = dir.join("edges.txt");
    std::fs::write(&edges_path, edges).unwrap();
    let index = dir.join("graph.bepi");
    let out = Command::new(BIN)
        .args([
            "preprocess",
            edges_path.to_str().unwrap(),
            index.to_str().unwrap(),
            "--format",
            "v6",
            "--embed-graph",
        ])
        .output()
        .expect("run bepi preprocess");
    assert!(
        out.status.success(),
        "preprocess failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    index
}

/// A running `bepi route` front tier plus the shard pids it announced.
struct RouterProc {
    child: Child,
    addr: String,
    shard_pids: Vec<u32>,
}

impl RouterProc {
    fn spawn(index: &Path) -> Self {
        let mut child = Command::new(BIN)
            .args([
                "route",
                index.to_str().unwrap(),
                "--shards",
                "2",
                "--mmap",
                "--health-interval-ms",
                "50",
                "--hedge-ms",
                "25",
            ])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn bepi route");
        let stdout = child.stdout.take().expect("router stdout");
        let mut lines = BufReader::new(stdout).lines();
        let mut addr = None;
        let mut shard_pids = Vec::new();
        // The router prints its own address first, then one line per
        // shard (`shard N: http://ADDR healthy=true pid=P`).
        for line in lines.by_ref() {
            let line = line.expect("read router stdout");
            if line.starts_with("bepi-route listening on http://") {
                addr = Some(
                    line.split("http://")
                        .nth(1)
                        .unwrap()
                        .split_whitespace()
                        .next()
                        .unwrap()
                        .to_string(),
                );
            } else if let Some(pid) = line.split(" pid=").nth(1) {
                shard_pids.push(pid.trim().parse().expect("numeric shard pid"));
            }
            if line.starts_with("endpoints:") {
                break;
            }
        }
        RouterProc {
            child,
            addr: addr.expect("router must announce its address"),
            shard_pids,
        }
    }

    fn get(&self, target: &str) -> (u16, String) {
        let mut s = TcpStream::connect(&self.addr).expect("connect to router");
        s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        s.write_all(
            format!("GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).expect("read response");
        let status = buf
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        let body = buf
            .split_once("\r\n\r\n")
            .expect("header terminator")
            .1
            .to_string();
        (status, body)
    }

    /// Parses a metric value off the router's `/metrics` page.
    fn metric(&self, name: &str) -> Option<f64> {
        let (status, body) = self.get("/metrics");
        assert_eq!(status, 200);
        body.lines().find_map(|l| {
            l.strip_prefix(name)
                .and_then(|r| r.strip_prefix(' '))
                .and_then(|r| r.trim().parse().ok())
        })
    }
}

impl Drop for RouterProc {
    fn drop(&mut self) {
        // EOF on stdin asks for graceful shutdown (which also drains the
        // shard children); fall back to SIGKILL if it does not exit.
        drop(self.child.stdin.take());
        let deadline = Instant::now() + Duration::from_secs(10);
        while Instant::now() < deadline {
            if self.child.try_wait().unwrap().is_some() {
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn sigkilled_shard_is_failed_over_then_respawned_and_readmitted() {
    let dir = temp_dir("drill");
    let index = preprocess(&dir);
    let router = RouterProc::spawn(&index);
    assert_eq!(router.shard_pids.len(), 2, "both shards must report pids");

    // Warm-up: the fleet answers before the crash.
    let (status, _) = router.get("/query?seed=0&top=5&mode=auto");
    assert_eq!(status, 200);

    // Load loop with a SIGKILL in the middle. Every single request must
    // come back 200 — failover has to hide the crash completely.
    let victim = router.shard_pids[0];
    let mut failures = Vec::new();
    for i in 0..120 {
        if i == 30 {
            let killed = Command::new("kill")
                .args(["-9", &victim.to_string()])
                .status()
                .expect("run kill");
            assert!(killed.success(), "SIGKILL must be delivered");
        }
        let seed = (i * 7) % N;
        let (status, body) = router.get(&format!("/query?seed={seed}&top=5&mode=auto"));
        if status != 200 {
            failures.push((i, status, body));
        }
    }
    assert!(
        failures.is_empty(),
        "every mode=auto request must survive the shard kill: {failures:?}"
    );

    // The supervisor must detect the death, respawn the shard on a fresh
    // port, and re-admit it once `/version` answers at the expected
    // epoch: bepi_shard_healthy{shard="0"} returns to 1.
    let deadline = Instant::now() + Duration::from_secs(30);
    let healthy = loop {
        if router.metric("bepi_shard_healthy{shard=\"0\"}") == Some(1.0) {
            break true;
        }
        if Instant::now() >= deadline {
            break false;
        }
        std::thread::sleep(Duration::from_millis(100));
    };
    let (_, fleet) = router.get("/route/health");
    assert!(
        healthy,
        "killed shard must be respawned and re-admitted: {fleet}"
    );
    assert!(
        fleet.contains("\"generation\":1"),
        "respawn must bump the shard generation: {fleet}"
    );

    // The crash was visible to the fleet (shard errors counted, requests
    // failed over) but never to clients.
    assert_eq!(router.metric("bepi_route_errors_total"), Some(0.0));
    assert!(router.metric("bepi_route_failovers_total").unwrap_or(0.0) >= 1.0);

    // And the respawned shard serves real traffic again: its request
    // counter must move past the pre-kill baseline once it is healthy.
    let baseline = router
        .metric("bepi_route_shard_requests_total{shard=\"0\"}")
        .expect("shard 0 request counter");
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut served_by_restarted = false;
    while Instant::now() < deadline {
        for seed in 0..N {
            let (status, _) = router.get(&format!("/query?seed={seed}&top=5&mode=auto"));
            assert_eq!(status, 200);
        }
        let now = router
            .metric("bepi_route_shard_requests_total{shard=\"0\"}")
            .expect("shard 0 request counter");
        if now > baseline {
            served_by_restarted = true;
            break;
        }
    }
    assert!(
        served_by_restarted,
        "restarted shard must take traffic again"
    );
}
