//! Figure 5 — scalability in the number of edges: preprocessing time,
//! preprocessed memory, and query time on principal submatrices of the
//! WikiLink stand-in, with fitted log-log slopes (the paper reports
//! 1.01 / 0.99 / 1.1 for BePI).

use crate::fit::loglog_slope;
use crate::harness::{query_seeds, run_method, Budget, Method, Metric, Status};
use crate::table::Table;
use bepi_core::prelude::BePiVariant;
use bepi_graph::Dataset;
use std::fmt::Write as _;

/// Node fractions defining the principal submatrices.
pub const FRACTIONS: [f64; 5] = [1.0 / 16.0, 1.0 / 8.0, 1.0 / 4.0, 1.0 / 2.0, 1.0];

/// Runs the scalability sweep.
pub fn run() -> String {
    let mut out = String::new();
    let ds = Dataset::WikiLink;
    let spec = ds.spec();
    let full = ds.generate();
    let _ = writeln!(
        out,
        "Figure 5 — scalability on principal submatrices of {} (n = {}, m = {})\n",
        spec.name,
        full.n(),
        full.m()
    );
    let methods = [
        Method::BePi(BePiVariant::Full),
        Method::Bear,
        Method::Lu,
        Method::Power,
        Method::Gmres,
    ];
    let budget = Budget::default();
    let seeds_per = std::cmp::min(crate::harness::seed_count(), 10);

    let mut tables: Vec<Table> = vec![
        Table::new(vec!["edges", "BePI", "Bear", "LU"]),
        Table::new(vec!["edges", "BePI", "Bear", "LU"]),
        Table::new(vec!["edges", "BePI", "Bear", "LU", "Power", "GMRES"]),
    ];
    let mut bepi_points: Vec<(f64, f64, f64, f64)> = Vec::new(); // m, pre, bytes, query

    for &frac in &FRACTIONS {
        let k = ((full.n() as f64) * frac).round() as usize;
        let g = full.principal_subgraph(k).expect("prefix in range");
        if g.m() == 0 {
            continue;
        }
        eprintln!("[fig5] prefix n={} m={}", g.n(), g.m());
        let seeds = query_seeds(&g, seeds_per, 0xF165 ^ k as u64);
        let outcomes: Vec<(Method, Status)> = methods
            .iter()
            .map(|&m| (m, run_method(m, &g, spec.hub_ratio, &seeds, &budget)))
            .collect();
        let m_edges = g.m().to_string();
        // (a) preprocessing, (b) memory: preprocessing methods only.
        for (ti, metric) in [(0usize, Metric::Preprocess), (1, Metric::Memory)] {
            let mut cells = vec![m_edges.clone()];
            cells.extend(outcomes.iter().take(3).map(|(_, s)| s.cell(metric)));
            tables[ti].row(cells);
        }
        let mut cells = vec![m_edges.clone()];
        cells.extend(outcomes.iter().map(|(_, s)| s.cell(Metric::Query)));
        tables[2].row(cells);

        if let Status::Done {
            preprocess,
            bytes,
            query,
            ..
        } = &outcomes[0].1
        {
            bepi_points.push((
                g.m() as f64,
                preprocess.as_secs_f64(),
                *bytes as f64,
                query.as_secs_f64(),
            ));
        }
    }

    for (title, t) in [
        ("(a) Preprocessing time vs edges", &tables[0]),
        ("(b) Preprocessed memory vs edges", &tables[1]),
        ("(c) Query time vs edges", &tables[2]),
    ] {
        let _ = writeln!(out, "{title}");
        let _ = writeln!(out, "{}", t.render());
    }

    let pre_slope = loglog_slope(
        &bepi_points
            .iter()
            .map(|&(m, p, _, _)| (m, p))
            .collect::<Vec<_>>(),
    );
    let mem_slope = loglog_slope(
        &bepi_points
            .iter()
            .map(|&(m, _, b, _)| (m, b))
            .collect::<Vec<_>>(),
    );
    let query_slope = loglog_slope(
        &bepi_points
            .iter()
            .map(|&(m, _, _, q)| (m, q))
            .collect::<Vec<_>>(),
    );
    let _ = writeln!(
        out,
        "BePI fitted log-log slopes (paper: 1.01 / 0.99 / 1.1): preprocessing {}, memory {}, query {}",
        fmt_slope(pre_slope),
        fmt_slope(mem_slope),
        fmt_slope(query_slope)
    );
    out
}

fn fmt_slope(s: Option<f64>) -> String {
    s.map_or("n/a".to_string(), |v| format!("{v:.2}"))
}
