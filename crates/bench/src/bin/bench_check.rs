//! Schema validator for `bepi bench` artifacts.
//!
//! Usage: `bench_check [--min-precision X] BENCH_PR6.json [...]` — exits
//! non-zero with a diagnostic if any file is not a valid `bepi-bench/v1`
//! document, or (with `--min-precision`) if any dataset's approximate
//! lane scores below `X` precision@k. CI runs this on the smoke artifact
//! so neither the schema nor the approximate engines can silently drift.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut min_precision: Option<f64> = None;
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--min-precision" {
            let Some(v) = args.next().and_then(|v| v.parse::<f64>().ok()) else {
                eprintln!("--min-precision needs a numeric value");
                return ExitCode::from(2);
            };
            if !(0.0..=1.0).contains(&v) {
                eprintln!("--min-precision must be in [0, 1], got {v}");
                return ExitCode::from(2);
            }
            min_precision = Some(v);
        } else {
            paths.push(arg);
        }
    }
    if paths.is_empty() {
        eprintln!("usage: bench_check [--min-precision X] <BENCH_*.json>...");
        return ExitCode::from(2);
    }
    let mut failed = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: unreadable: {e}");
                failed = true;
                continue;
            }
        };
        let result = match min_precision {
            Some(min) => bepi_bench::perf::check_min_precision(&text, min),
            None => bepi_bench::perf::validate_json(&text),
        };
        match result {
            Ok(()) => match min_precision {
                Some(min) => println!(
                    "{path}: ok ({}, precision@k >= {min})",
                    bepi_bench::perf::SCHEMA
                ),
                None => println!("{path}: ok ({})", bepi_bench::perf::SCHEMA),
            },
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
