#!/usr/bin/env bash
# The one CI entry point, runnable locally: formatting, lints, release
# build, full test suite. CI (.github/workflows/ci.yml) calls exactly
# this script so the two can't drift.
set -euo pipefail
cd "$(dirname "$0")/.."

# The workspace vendors its dependencies in-tree (shims/), so every cargo
# invocation works offline; --offline makes that a hard guarantee.
CARGO_FLAGS=(--offline --workspace)

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy"
cargo clippy "${CARGO_FLAGS[@]}" --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build "${CARGO_FLAGS[@]}" --release

echo "==> cargo test"
cargo test "${CARGO_FLAGS[@]}" -q

# The WAL crash-recovery contract is load-bearing for the live-update
# subsystem, so CI exercises it explicitly (SIGKILL mid-stream + restart
# on the same --wal, and the corrupted-trailer fixture) even though it is
# part of the suite above — a name filter keeps a failure here loud and
# attributable.
echo "==> crash-recovery tests (bepi serve --wal)"
cargo test --offline -p bepi-cli --test live_recovery -q

echo "==> ci OK"
