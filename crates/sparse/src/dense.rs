//! Row-major dense matrices.
//!
//! Used where the paper itself goes dense: the exact `H^{-1}` reference on
//! the small Physicians-like graph (Appendix I), the Bear baseline's
//! explicit `S^{-1}`, and the small per-block factors of `H11`.

use crate::error::SparseError;
use crate::mem::MemBytes;
use crate::{Csr, Result};
use std::ops::{Index, IndexMut};

/// A dense matrix stored row-major in one contiguous `Vec<f64>`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl Dense {
    /// Creates an all-zero matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Creates the `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    pub fn from_vec(nrows: usize, ncols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != nrows * ncols {
            return Err(SparseError::VectorLength {
                expected: nrows * ncols,
                actual: data.len(),
            });
        }
        Ok(Self { nrows, ncols, data })
    }

    /// Builds from nested row slices (tests and examples).
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            if r.len() != ncols {
                return Err(SparseError::VectorLength {
                    expected: ncols,
                    actual: r.len(),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Self { nrows, ncols, data })
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `(nrows, ncols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// The underlying row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Mutable row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Dense `y = A x`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.ncols {
            return Err(SparseError::VectorLength {
                expected: self.ncols,
                actual: x.len(),
            });
        }
        Ok((0..self.nrows)
            .map(|i| self.row(i).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Dense matrix product `A * B`.
    pub fn mul(&self, other: &Dense) -> Result<Dense> {
        if self.ncols != other.nrows {
            return Err(SparseError::ShapeMismatch {
                left: self.shape(),
                right: other.shape(),
                op: "dense mul",
            });
        }
        let mut out = Dense::zeros(self.nrows, other.ncols);
        // i-k-j loop order: streams over other's rows, cache friendly.
        for i in 0..self.nrows {
            for k in 0..self.ncols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                let orow = out.row_mut(i);
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += aik * b;
                }
            }
        }
        Ok(out)
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Dense {
        let mut t = Dense::zeros(self.ncols, self.nrows);
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Converts to CSR, dropping exact zeros.
    pub fn to_csr(&self) -> Csr {
        let mut coo = crate::Coo::with_capacity(
            self.nrows,
            self.ncols,
            self.data.iter().filter(|v| **v != 0.0).count(),
        )
        .expect("dense shape fits sparse");
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                let v = self[(i, j)];
                if v != 0.0 {
                    coo.push(i, j, v).expect("in range");
                }
            }
        }
        coo.to_csr()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute difference to another matrix of identical shape.
    pub fn max_abs_diff(&self, other: &Dense) -> Result<f64> {
        if self.shape() != other.shape() {
            return Err(SparseError::ShapeMismatch {
                left: self.shape(),
                right: other.shape(),
                op: "max_abs_diff",
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max))
    }
}

impl Index<(usize, usize)> for Dense {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &self.data[i * self.ncols + j]
    }
}

impl IndexMut<(usize, usize)> for Dense {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &mut self.data[i * self.ncols + j]
    }
}

impl MemBytes for Dense {
    fn mem_bytes(&self) -> usize {
        self.data.mem_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_and_index() {
        let m = Dense::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let r = Dense::from_rows(&[&[1.0, 2.0], &[3.0]]);
        assert!(r.is_err());
    }

    #[test]
    fn mul_vec_basic() {
        let m = Dense::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m.mul_vec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
    }

    #[test]
    fn mul_identity_is_noop() {
        let m = Dense::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let i = Dense::identity(2);
        assert_eq!(m.mul(&i).unwrap(), m);
        assert_eq!(i.mul(&m).unwrap(), m);
    }

    #[test]
    fn mul_known_product() {
        let a = Dense::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Dense::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let p = a.mul(&b).unwrap();
        assert_eq!(p, Dense::from_rows(&[&[2.0, 1.0], &[4.0, 3.0]]).unwrap());
    }

    #[test]
    fn mul_shape_mismatch() {
        let a = Dense::zeros(2, 3);
        let b = Dense::zeros(2, 3);
        assert!(a.mul(&b).is_err());
    }

    #[test]
    fn transpose_involution() {
        let m = Dense::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn csr_roundtrip_drops_zeros() {
        let m = Dense::from_rows(&[&[0.0, 2.0], &[3.0, 0.0]]).unwrap();
        let s = m.to_csr();
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.to_dense(), m);
    }

    #[test]
    fn norms_and_diff() {
        let a = Dense::from_rows(&[&[3.0, 4.0]]).unwrap();
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        let b = Dense::from_rows(&[&[3.0, 5.5]]).unwrap();
        assert!((a.max_abs_diff(&b).unwrap() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn mem_bytes_exact() {
        assert_eq!(Dense::zeros(3, 4).mem_bytes(), 96);
    }
}
