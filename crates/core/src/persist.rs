//! Saving and loading preprocessed BePI instances.
//!
//! The economics of a preprocessing method (Section 2.3: "preprocessed
//! matrices need to be computed just once, and then can be reused") only
//! materialize if the preprocessed data survives the process. This module
//! serializes a [`BePi`] instance to a compact little-endian binary format
//! and restores it bit-for-bit.
//!
//! Format (v2): magic `BEPI`, a format version, the config scalars, then
//! each matrix as `(nrows, ncols, indptr, indices, values)`, and finally a
//! CRC-32 (IEEE, hand-rolled — no external crates) of every payload byte
//! between the version field and the trailer. Version 1 files (no
//! checksum trailer) are still readable.
//!
//! Format v3 ([`save_with_graph`]) appends the original adjacency matrix
//! after the preprocessed parts, inside the same CRC envelope. A v3 index
//! is *live-capable*: a daemon can re-preprocess after edge updates
//! because the graph itself survived the round trip. [`load`] reads all
//! three versions (discarding the graph); [`load_with_graph`] reports
//! whether one was embedded.
//!
//! Array lengths in the stream are untrusted: readers never preallocate
//! more than a fixed bound, so a corrupt length field fails with a clean
//! parse error instead of aborting on an absurd allocation.

use crate::bepi::{BePi, BePiConfig};
use crate::rwr::RwrSolver;
use bepi_graph::Graph;
use bepi_sparse::{Csr, Permutation, Result, SparseError};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"BEPI";
const VERSION: u32 = 4;
/// Format version for indexes with the adjacency matrix embedded.
const VERSION_WITH_GRAPH: u32 = 5;
/// Oldest format version `load` still understands.
const MIN_VERSION: u32 = 1;
/// Newest format version `load` understands.
const MAX_VERSION: u32 = 5;

/// Upper bound on speculative preallocation for length-prefixed arrays.
/// Legitimate arrays larger than this still load — the vector grows as
/// elements are actually read — but a bogus length field from a corrupt
/// file can no longer trigger a multi-terabyte `with_capacity`.
const MAX_PREALLOC_BYTES: usize = 1 << 24;

// --- CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) ---

const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// Incremental CRC-32 state. Public so sibling crates (the `bepi-live`
/// write-ahead log) can frame their files with the same checksum
/// convention without duplicating the table.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh checksum state.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let idx = ((self.state ^ b as u32) & 0xFF) as usize;
            self.state = CRC32_TABLE[idx] ^ (self.state >> 8);
        }
    }

    /// Final checksum value.
    pub fn finalize(self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// Computes the CRC-32 of a byte slice in one call.
#[cfg(test)]
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finalize()
}

/// A writer adapter that checksums everything flowing through it.
struct CrcWriter<W: Write> {
    inner: W,
    crc: Crc32,
}

impl<W: Write> CrcWriter<W> {
    fn new(inner: W) -> Self {
        Self {
            inner,
            crc: Crc32::new(),
        }
    }
}

impl<W: Write> Write for CrcWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.crc.update(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// A reader adapter that checksums everything flowing through it.
struct CrcReader<R: Read> {
    inner: R,
    crc: Crc32,
}

impl<R: Read> CrcReader<R> {
    fn new(inner: R) -> Self {
        Self {
            inner,
            crc: Crc32::new(),
        }
    }
}

impl<R: Read> Read for CrcReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.crc.update(&buf[..n]);
        Ok(n)
    }
}

/// Writes a preprocessed instance to a stream (format v4: payload —
/// including the per-phase preprocessing time breakdown — followed by a
/// CRC-32 trailer).
pub fn save<W: Write>(bepi: &BePi, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    write_u32(&mut w, VERSION)?;
    let mut cw = CrcWriter::new(w);
    bepi.write_parts(&mut cw, true)?;
    let checksum = cw.crc.finalize();
    let mut w = cw.inner;
    write_u32(&mut w, checksum)?;
    w.flush()?;
    Ok(())
}

/// Writes a *live-capable* instance (format v5): the preprocessed parts
/// followed by the original adjacency matrix, all inside the CRC-32
/// envelope. An index saved this way can be re-preprocessed after edge
/// updates (see `bepi-live`) because the graph itself is durable.
pub fn save_with_graph<W: Write>(bepi: &BePi, graph: &Graph, writer: W) -> Result<()> {
    if graph.n() != bepi.node_count() {
        return Err(SparseError::ShapeMismatch {
            left: (graph.n(), graph.n()),
            right: (bepi.node_count(), bepi.node_count()),
            op: "persist::save_with_graph (graph vs index node count)",
        });
    }
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    write_u32(&mut w, VERSION_WITH_GRAPH)?;
    let mut cw = CrcWriter::new(w);
    bepi.write_parts(&mut cw, true)?;
    write_csr(&mut cw, graph.adjacency())?;
    let checksum = cw.crc.finalize();
    let mut w = cw.inner;
    write_u32(&mut w, checksum)?;
    w.flush()?;
    Ok(())
}

/// Reads a preprocessed instance from a stream. Accepts every format
/// version back to v1: v4/v5 carry phase timings (v5 also embeds the
/// graph, discarded here — use [`load_with_graph`] to keep it), v2/v3 are
/// checksum-verified without timings, and legacy v1 has no trailer.
pub fn load<R: Read>(reader: R) -> Result<BePi> {
    load_with_graph(reader).map(|(bepi, _)| bepi)
}

/// Like [`load`], but also returns the embedded adjacency graph when the
/// file embeds one (v3/v5; `None` otherwise).
pub fn load_with_graph<R: Read>(reader: R) -> Result<(BePi, Option<Graph>)> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(SparseError::Parse(format!(
            "not a BePI file (magic {magic:?})"
        )));
    }
    let version = read_u32(&mut r)?;
    match version {
        1 => Ok((BePi::read_parts(&mut r, false)?, None)),
        2..=5 => {
            let with_phases = version >= 4;
            let with_graph = version == 3 || version == 5;
            let mut cr = CrcReader::new(r);
            let bepi = BePi::read_parts(&mut cr, with_phases)?;
            let graph = if with_graph {
                Some(Graph::from_adjacency(read_csr(&mut cr)?)?)
            } else {
                None
            };
            let computed = cr.crc.finalize();
            let mut r = cr.inner;
            let stored = read_u32(&mut r)?;
            if stored != computed {
                return Err(SparseError::Parse(format!(
                    "checksum mismatch: stored {stored:#010x}, computed {computed:#010x} \
                     (file is corrupt)"
                )));
            }
            Ok((bepi, graph))
        }
        v => Err(SparseError::Parse(format!(
            "unsupported BePI format version {v} (expected {MIN_VERSION}..={MAX_VERSION})"
        ))),
    }
}

/// Convenience: saves to a file path.
pub fn save_file<P: AsRef<Path>>(bepi: &BePi, path: P) -> Result<()> {
    save(bepi, std::fs::File::create(path)?)
}

/// Convenience: loads from a file path.
pub fn load_file<P: AsRef<Path>>(path: P) -> Result<BePi> {
    load(std::fs::File::open(path)?)
}

/// Convenience: saves a live-capable (v3) index to a file path.
pub fn save_file_with_graph<P: AsRef<Path>>(bepi: &BePi, graph: &Graph, path: P) -> Result<()> {
    save_with_graph(bepi, graph, std::fs::File::create(path)?)
}

/// Convenience: loads index + optional embedded graph from a file path.
pub fn load_file_with_graph<P: AsRef<Path>>(path: P) -> Result<(BePi, Option<Graph>)> {
    load_with_graph(std::fs::File::open(path)?)
}

// --- primitive readers/writers (little endian) ---

pub(crate) fn write_u32<W: Write>(w: &mut W, v: u32) -> Result<()> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

pub(crate) fn read_u32<R: Read>(r: &mut R) -> Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

pub(crate) fn write_u64<W: Write>(w: &mut W, v: u64) -> Result<()> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

pub(crate) fn read_u64<R: Read>(r: &mut R) -> Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

pub(crate) fn write_f64<W: Write>(w: &mut W, v: f64) -> Result<()> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

pub(crate) fn read_f64<R: Read>(r: &mut R) -> Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

pub(crate) fn write_usize_slice<W: Write>(w: &mut W, s: &[usize]) -> Result<()> {
    write_u64(w, s.len() as u64)?;
    for &v in s {
        write_u64(w, v as u64)?;
    }
    Ok(())
}

/// Caps speculative preallocation: trust `len` only up to
/// [`MAX_PREALLOC_BYTES`]; beyond that the vector grows as elements are
/// actually read, so a truncated stream errors before memory does.
fn bounded_capacity(len: usize, elem_size: usize) -> usize {
    len.min(MAX_PREALLOC_BYTES / elem_size.max(1))
}

pub(crate) fn read_usize_vec<R: Read>(r: &mut R) -> Result<Vec<usize>> {
    let len = read_u64(r)? as usize;
    let mut out = Vec::with_capacity(bounded_capacity(len, size_of::<usize>()));
    for _ in 0..len {
        out.push(read_u64(r)? as usize);
    }
    Ok(out)
}

pub(crate) fn write_u32_slice<W: Write>(w: &mut W, s: &[u32]) -> Result<()> {
    write_u64(w, s.len() as u64)?;
    for &v in s {
        write_u32(w, v)?;
    }
    Ok(())
}

pub(crate) fn read_u32_vec<R: Read>(r: &mut R) -> Result<Vec<u32>> {
    let len = read_u64(r)? as usize;
    let mut out = Vec::with_capacity(bounded_capacity(len, size_of::<u32>()));
    for _ in 0..len {
        out.push(read_u32(r)?);
    }
    Ok(out)
}

pub(crate) fn write_f64_slice<W: Write>(w: &mut W, s: &[f64]) -> Result<()> {
    write_u64(w, s.len() as u64)?;
    for &v in s {
        write_f64(w, v)?;
    }
    Ok(())
}

pub(crate) fn read_f64_vec<R: Read>(r: &mut R) -> Result<Vec<f64>> {
    let len = read_u64(r)? as usize;
    let mut out = Vec::with_capacity(bounded_capacity(len, size_of::<f64>()));
    for _ in 0..len {
        out.push(read_f64(r)?);
    }
    Ok(out)
}

pub(crate) fn write_csr<W: Write>(w: &mut W, m: &Csr) -> Result<()> {
    write_u64(w, m.nrows() as u64)?;
    write_u64(w, m.ncols() as u64)?;
    write_usize_slice(w, m.indptr())?;
    write_u32_slice(w, m.indices())?;
    write_f64_slice(w, m.values())
}

pub(crate) fn read_csr<R: Read>(r: &mut R) -> Result<Csr> {
    let nrows = read_u64(r)? as usize;
    let ncols = read_u64(r)? as usize;
    let indptr = read_usize_vec(r)?;
    // Validate array lengths against the header before reading further:
    // a CSR always has nrows + 1 row pointers, and the last pointer is
    // the nnz both remaining arrays must match.
    if indptr.len() != nrows + 1 {
        return Err(SparseError::Parse(format!(
            "corrupt CSR header: {nrows} rows but {} row pointers (expected {})",
            indptr.len(),
            nrows + 1
        )));
    }
    let nnz = *indptr.last().unwrap_or(&0);
    let indices = read_u32_vec(r)?;
    if indices.len() != nnz {
        return Err(SparseError::Parse(format!(
            "corrupt CSR: indptr declares {nnz} nonzeros but {} column indices follow",
            indices.len()
        )));
    }
    let values = read_f64_vec(r)?;
    if values.len() != nnz {
        return Err(SparseError::Parse(format!(
            "corrupt CSR: indptr declares {nnz} nonzeros but {} values follow",
            values.len()
        )));
    }
    Csr::from_parts(nrows, ncols, indptr, indices, values)
}

pub(crate) fn write_permutation<W: Write>(w: &mut W, p: &Permutation) -> Result<()> {
    write_u32_slice(w, p.new_of_old())
}

pub(crate) fn read_permutation<R: Read>(r: &mut R) -> Result<Permutation> {
    Permutation::from_new_of_old(read_u32_vec(r)?)
}

pub(crate) fn write_config<W: Write>(w: &mut W, c: &BePiConfig) -> Result<()> {
    use crate::bepi::{BePiVariant, InnerSolver, PrecondKind};
    write_u32(
        w,
        match c.variant {
            BePiVariant::Basic => 0,
            BePiVariant::Sparse => 1,
            BePiVariant::Full => 2,
        },
    )?;
    write_f64(w, c.c)?;
    write_f64(w, c.tol)?;
    write_f64(w, c.hub_ratio.unwrap_or(f64::NAN))?;
    write_u64(w, c.gmres_restart as u64)?;
    write_u64(w, c.max_iters as u64)?;
    write_u32(
        w,
        match c.inner {
            InnerSolver::Gmres => 0,
            InnerSolver::BiCgStab => 1,
        },
    )?;
    let (pk, order) = match c.precond {
        PrecondKind::Ilu0 => (0u32, 0u64),
        PrecondKind::Jacobi => (1, 0),
        PrecondKind::Neumann(t) => (2, t as u64),
    };
    write_u32(w, pk)?;
    write_u64(w, order)
}

pub(crate) fn read_config<R: Read>(r: &mut R) -> Result<BePiConfig> {
    use crate::bepi::{BePiVariant, InnerSolver, PrecondKind};
    let variant = match read_u32(r)? {
        0 => BePiVariant::Basic,
        1 => BePiVariant::Sparse,
        2 => BePiVariant::Full,
        v => return Err(SparseError::Parse(format!("bad variant tag {v}"))),
    };
    let c = read_f64(r)?;
    let tol = read_f64(r)?;
    let hub = read_f64(r)?;
    let gmres_restart = read_u64(r)? as usize;
    let max_iters = read_u64(r)? as usize;
    let inner = match read_u32(r)? {
        0 => InnerSolver::Gmres,
        1 => InnerSolver::BiCgStab,
        v => return Err(SparseError::Parse(format!("bad inner-solver tag {v}"))),
    };
    let precond = match (read_u32(r)?, read_u64(r)?) {
        (0, _) => PrecondKind::Ilu0,
        (1, _) => PrecondKind::Jacobi,
        (2, t) => PrecondKind::Neumann(t as usize),
        (v, _) => return Err(SparseError::Parse(format!("bad precond tag {v}"))),
    };
    Ok(BePiConfig {
        variant,
        c,
        tol,
        hub_ratio: if hub.is_nan() { None } else { Some(hub) },
        gmres_restart,
        max_iters,
        inner,
        precond,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use bepi_graph::generators;

    fn roundtrip(cfg: &BePiConfig) {
        let g = generators::rmat(7, 500, generators::RmatParams::default(), 61).unwrap();
        let original = BePi::preprocess(&g, cfg).unwrap();
        let mut buf = Vec::new();
        save(&original, &mut buf).unwrap();
        let restored = load(&buf[..]).unwrap();
        assert_eq!(restored.preprocessed_bytes(), original.preprocessed_bytes());
        assert_eq!(restored.schur(), original.schur());
        for seed in [0usize, 31, 100] {
            let a = original.query(seed).unwrap();
            let b = restored.query(seed).unwrap();
            assert_eq!(a.scores, b.scores, "queries must be bit-identical");
            assert_eq!(a.iterations, b.iterations);
        }
    }

    #[test]
    fn roundtrip_full_variant() {
        roundtrip(&BePiConfig::default());
    }

    #[test]
    fn roundtrip_basic_variant() {
        roundtrip(&BePiConfig::for_variant(BePiVariant::Basic));
    }

    #[test]
    fn roundtrip_jacobi_and_neumann_preconds() {
        roundtrip(&BePiConfig {
            precond: PrecondKind::Jacobi,
            ..BePiConfig::default()
        });
        roundtrip(&BePiConfig {
            precond: PrecondKind::Neumann(3),
            inner: InnerSolver::BiCgStab,
            ..BePiConfig::default()
        });
    }

    #[test]
    fn roundtrip_through_file() {
        let g = generators::erdos_renyi(100, 400, 5).unwrap();
        let original = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        let path = std::env::temp_dir().join("bepi_persist_test.bin");
        save_file(&original, &path).unwrap();
        let restored = load_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(
            original.query(3).unwrap().scores,
            restored.query(3).unwrap().scores
        );
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        assert!(load(&b"NOPE"[..]).is_err());
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        assert!(load(&buf[..]).is_err());
    }

    #[test]
    fn rejects_truncated_stream() {
        let g = generators::cycle(10);
        let original = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        let mut buf = Vec::new();
        save(&original, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(load(&buf[..]).is_err());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE 802.3 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Incremental updates must agree with the one-shot form.
        let mut c = Crc32::new();
        c.update(b"1234");
        c.update(b"56789");
        assert_eq!(c.finalize(), 0xCBF4_3926);
    }

    #[test]
    fn detects_single_byte_corruption() {
        let g = generators::cycle(10);
        let original = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        let mut buf = Vec::new();
        save(&original, &mut buf).unwrap();
        // Flip one bit in several payload positions. Every corruption must
        // be rejected — by a parse error or, where the mangled bytes still
        // parse, by the checksum trailer.
        let payload = 8..buf.len() - 4;
        for pos in [
            payload.start,
            payload.start + payload.len() / 3,
            payload.start + payload.len() / 2,
            payload.end - 1,
        ] {
            let mut bad = buf.clone();
            bad[pos] ^= 0x40;
            assert!(load(&bad[..]).is_err(), "corruption at byte {pos} accepted");
        }
    }

    #[test]
    fn v3_roundtrips_graph_and_queries() {
        let g = generators::erdos_renyi(80, 320, 23).unwrap();
        let original = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        let mut buf = Vec::new();
        save_with_graph(&original, &g, &mut buf).unwrap();
        let (restored, graph) = load_with_graph(&buf[..]).unwrap();
        assert_eq!(graph.as_ref().unwrap().adjacency(), g.adjacency());
        assert_eq!(
            original.query(5).unwrap().scores,
            restored.query(5).unwrap().scores
        );
        // Plain load must also accept v3 (ignoring the graph).
        let plain = load(&buf[..]).unwrap();
        assert_eq!(
            original.query(5).unwrap().scores,
            plain.query(5).unwrap().scores
        );
        // A v2 file reports no embedded graph.
        let mut v2 = Vec::new();
        save(&original, &mut v2).unwrap();
        assert!(load_with_graph(&v2[..]).unwrap().1.is_none());
    }

    #[test]
    fn v3_detects_corruption_in_graph_section() {
        let g = generators::cycle(12);
        let original = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        let mut buf = Vec::new();
        save_with_graph(&original, &g, &mut buf).unwrap();
        // Flip a bit near the end of the payload (inside the graph CSR).
        let pos = buf.len() - 12;
        buf[pos] ^= 0x01;
        assert!(load_with_graph(&buf[..]).is_err());
    }

    #[test]
    fn save_with_graph_rejects_node_count_mismatch() {
        let g = generators::cycle(10);
        let original = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        let other = generators::cycle(11);
        let mut buf = Vec::new();
        assert!(save_with_graph(&original, &other, &mut buf).is_err());
    }

    #[test]
    fn still_reads_v1_files_without_trailer() {
        let g = generators::cycle(10);
        let original = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        // Hand-assemble a legacy v1 file: magic, version 1, bare payload.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&1u32.to_le_bytes());
        original.write_parts(&mut buf, false).unwrap();
        let restored = load(&buf[..]).unwrap();
        assert_eq!(
            original.query(3).unwrap().scores,
            restored.query(3).unwrap().scores
        );
    }

    #[test]
    fn still_reads_v2_files_without_phase_timings() {
        let g = generators::cycle(10);
        let original = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        // Hand-assemble a v2 file: magic, version 2, CRC envelope, no
        // phase-timing section.
        let mut payload = Vec::new();
        original.write_parts(&mut payload, false).unwrap();
        let mut crc = Crc32::new();
        crc.update(&payload);
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&payload);
        buf.extend_from_slice(&crc.finalize().to_le_bytes());
        let restored = load(&buf[..]).unwrap();
        assert_eq!(
            original.query(3).unwrap().scores,
            restored.query(3).unwrap().scores
        );
        assert!(restored.stats().phases.is_empty());
    }

    #[test]
    fn phase_timings_survive_save_load_round_trip() {
        let g = generators::cycle(10);
        let original = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        assert_eq!(original.stats().phases.len(), 6);
        let mut buf = Vec::new();
        save(&original, &mut buf).unwrap();
        let restored = load(&buf[..]).unwrap();
        assert_eq!(restored.stats().phases, original.stats().phases);
        assert_eq!(restored.stats().elapsed, original.stats().elapsed);
        let names: Vec<&str> = restored
            .stats()
            .phases
            .iter()
            .map(|p| p.name.as_str())
            .collect();
        assert_eq!(
            names,
            [
                "deadend",
                "slashburn",
                "assemble",
                "block_lu",
                "schur",
                "precond"
            ]
        );
    }

    #[test]
    fn bogus_length_prefix_fails_cleanly() {
        // A length field claiming 2^60 elements must produce an error, not
        // an allocation abort.
        let mut buf = Vec::new();
        buf.extend_from_slice(&(1u64 << 60).to_le_bytes());
        assert!(read_f64_vec(&mut &buf[..]).is_err());
        assert!(read_u32_vec(&mut &buf[..]).is_err());
        assert!(read_usize_vec(&mut &buf[..]).is_err());
    }

    #[test]
    fn csr_header_mismatch_is_rejected() {
        let g = generators::cycle(10);
        let original = BePi::preprocess(&g, &BePiConfig::default()).unwrap();
        let mut buf = Vec::new();
        original.write_parts(&mut buf, false).unwrap();
        // Corrupt the very first CSR length field we can find by writing a
        // stream that declares 5 rows but carries 3 row pointers.
        let mut csr = Vec::new();
        write_u64(&mut csr, 5).unwrap(); // nrows
        write_u64(&mut csr, 5).unwrap(); // ncols
        write_usize_slice(&mut csr, &[0, 1, 2]).unwrap(); // wrong: needs 6
        let err = read_csr(&mut &csr[..]).unwrap_err();
        assert!(err.to_string().contains("row pointers"), "{err}");
    }
}
