//! Smoke tests: every experiment report generator runs end-to-end on the
//! smallest inputs and emits the expected table skeletons. Guarded by
//! env-var scoping to keep the run fast (debug builds).
//!
//! Env vars are process-global, so everything runs inside one test.

use bepi_bench::experiments as ex;

#[test]
fn fast_experiments_produce_reports() {
    // Shrink the suite to its smallest member and the seed count.
    std::env::set_var("BEPI_SUITE_MAX", "1");
    std::env::set_var("BEPI_SEEDS", "2");

    let table2 = ex::table2::run();
    assert!(table2.contains("slashdot-like"));
    assert!(table2.contains("n3"));
    // Exactly one dataset row: header + rule + 1 row + trailing text.
    assert_eq!(
        table2.matches("-like").count(),
        1,
        "BEPI_SUITE_MAX=1 must limit the suite:\n{table2}"
    );

    let fig3 = ex::fig3::run();
    for block in ["H11", "H12", "H21", "H22", "H31", "H32"] {
        assert!(fig3.contains(block), "missing {block} in:\n{fig3}");
    }
    assert!(fig3.contains("block diagonal"));

    let fig10 = ex::fig10::run();
    assert!(fig10.contains("Power iteration"));
    assert!(fig10.contains("BePI"));
    assert!(fig10.contains("GMRES"));
    assert!(fig10.contains("1e-12"));

    let t34 = ex::table34::run_table3();
    assert!(t34.contains("|S| BePI-B"));
    assert!(t34.contains("slashdot-like"));

    let fig6 = ex::fig6::run();
    assert!(fig6.contains("BePI-B"));
    assert!(fig6.contains("(c) Query time"));

    let fig1 = ex::fig1::run();
    assert!(fig1.contains("Bear"));
    assert!(fig1.contains("LU"));
    assert!(fig1.contains("Power"));
    assert!(fig1.contains("(b) Memory"));

    let fig12 = ex::fig12::run();
    assert!(fig12.contains("total running time"));
}

#[test]
fn table_and_fit_helpers_are_exercised_via_public_api() {
    let mut t = bepi_bench::Table::new(vec!["a", "b"]);
    t.row(vec!["x", "1"]);
    assert!(t.render().contains('x'));
    let slope = bepi_bench::fit::loglog_slope(&[(1.0, 2.0), (10.0, 20.0)]).unwrap();
    assert!((slope - 1.0).abs() < 1e-12);
}
