//! The `bepi bench --trace` driver: tracing-overhead measurement, with
//! a machine-readable `BENCH_PR8.json` artifact.
//!
//! The question the artifact answers is the one that decides whether
//! tracing can stay on in production: **what does `?trace=1` cost the
//! serve path?** One daemon is booted with a cache large enough to hold
//! the whole working set, the set is warmed (one plain pass and one
//! traced pass), and then plain and traced requests are strictly
//! interleaved over the same keys — A/B on the same connection pattern,
//! same seeds, same cache state, so drift in the machine hits both arms
//! equally. The gate is the traced arm's p50 staying within 5% of the
//! untraced arm's.
//!
//! Cache-hit requests are the deliberate worst case: a hit's serve path
//! is a lookup plus a write, so the traced arm's extra work (request-id
//! mint, seqlock ring record, trace-block splice) is the largest
//! *fraction* of total latency it can ever be. If the gate holds here
//! it holds everywhere.
//!
//! While measuring, every traced body is also checked for the trace
//! block and its request id, and the echoed `X-Request-Id` header must
//! match the id inside the body — `traced_ok` in the artifact is a
//! correctness gate, not a timing.

use bepi_graph::Dataset;
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::time::{Duration, Instant};

use crate::perf::json;
use crate::route::{preprocess, Proc};

/// Schema tag stamped into (and required from) every trace artifact.
pub const SCHEMA: &str = "bepi-trace-bench/v1";

/// The p50 overhead (percent) above which validation fails.
pub const MAX_OVERHEAD_PCT: f64 = 5.0;

/// Configuration for a [`run`].
#[derive(Debug, Clone)]
pub struct TraceBenchConfig {
    /// Anchor graphs to measure.
    pub datasets: Vec<Dataset>,
    /// Response-cache capacity; sized above the working set so the
    /// timed phase is all cache hits (the worst case for relative
    /// tracing overhead).
    pub cache_entries: usize,
    /// Distinct seeds in the working set.
    pub working_set: usize,
    /// Timed interleaved passes over the working set (after warm-up).
    pub passes: usize,
    /// `top` parameter of every query.
    pub top_k: usize,
    /// Marks the artifact as a reduced smoke run.
    pub quick: bool,
}

impl TraceBenchConfig {
    /// The CI smoke configuration: smallest anchor graph, enough
    /// samples per arm for a stable p50.
    pub fn quick() -> Self {
        Self {
            datasets: vec![Dataset::Slashdot],
            cache_entries: 256,
            working_set: 32,
            passes: 6,
            top_k: 20,
            quick: true,
        }
    }

    /// The full configuration: the Bear-feasible anchor graphs and
    /// several hundred samples per arm.
    pub fn full() -> Self {
        Self {
            datasets: Dataset::small().to_vec(),
            cache_entries: 256,
            working_set: 64,
            passes: 8,
            top_k: 20,
            quick: false,
        }
    }
}

/// One arm's latency distribution (plain or `?trace=1`).
#[derive(Debug, Clone)]
pub struct ArmRun {
    /// Requests in the timed phase.
    pub requests: usize,
    /// Median request latency, microseconds.
    pub p50_us: f64,
    /// 95th-percentile request latency, microseconds.
    pub p95_us: f64,
    /// Mean request latency, microseconds.
    pub mean_us: f64,
}

impl ArmRun {
    fn from_samples(mut us: Vec<f64>) -> ArmRun {
        us.sort_by(|a, b| a.total_cmp(b));
        let pick = |q: f64| us[((us.len() - 1) as f64 * q).round() as usize];
        ArmRun {
            requests: us.len(),
            p50_us: pick(0.5),
            p95_us: pick(0.95),
            mean_us: us.iter().sum::<f64>() / us.len() as f64,
        }
    }
}

/// Plain-vs-traced comparison on one dataset.
#[derive(Debug, Clone)]
pub struct TraceDatasetReport {
    /// Dataset name (the `*-like` anchor-graph label).
    pub dataset: String,
    /// Nodes in the generated graph.
    pub n: usize,
    /// Edges in the generated graph.
    pub m: usize,
    /// Whether every traced body carried a trace block whose request id
    /// matched the echoed `X-Request-Id` header.
    pub traced_ok: bool,
    /// The untraced arm.
    pub plain: ArmRun,
    /// The `?trace=1` arm.
    pub traced: ArmRun,
}

impl TraceDatasetReport {
    /// Traced p50 relative to plain p50, as a percentage (negative when
    /// the traced arm happened to be faster).
    pub fn overhead_pct(&self) -> f64 {
        if self.plain.p50_us > 0.0 {
            (self.traced.p50_us - self.plain.p50_us) / self.plain.p50_us * 100.0
        } else {
            0.0
        }
    }
}

/// A complete trace bench run.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// Whether this was the reduced smoke configuration.
    pub quick: bool,
    /// Cores visible to the process when the run started.
    pub available_parallelism: usize,
    /// Response-cache capacity of the measured daemon.
    pub cache_entries: usize,
    /// Distinct seeds in the working set.
    pub working_set: usize,
    /// Timed interleaved passes.
    pub passes: usize,
    /// `top` parameter of every query.
    pub top_k: usize,
    /// Per-dataset measurements.
    pub datasets: Vec<TraceDatasetReport>,
}

/// One `Connection: close` GET returning (status, header block, body).
/// The route bench's helper discards headers; this arm check needs the
/// echoed `X-Request-Id`.
fn http_get_full(addr: &str, target: &str) -> Result<(u16, String, String), String> {
    let mut s = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    s.set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| e.to_string())?;
    s.write_all(
        format!("GET {target} HTTP/1.1\r\nHost: b\r\nConnection: close\r\n\r\n").as_bytes(),
    )
    .map_err(|e| format!("send {target}: {e}"))?;
    let mut buf = String::new();
    s.read_to_string(&mut buf)
        .map_err(|e| format!("read {target}: {e}"))?;
    let status = buf
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line for {target}"))?;
    let (head, body) = buf
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("no header terminator for {target}"))?;
    Ok((status, head.to_string(), body.to_string()))
}

/// The hex request id echoed on a response's `X-Request-Id` header.
fn header_request_id(head: &str) -> Option<&str> {
    head.lines().find_map(|l| {
        let (name, value) = l.split_once(':')?;
        name.eq_ignore_ascii_case("x-request-id")
            .then(|| value.trim())
    })
}

/// A traced body's trace block must carry the same id the header echoes.
fn traced_body_consistent(head: &str, body: &str) -> bool {
    let Some(rid) = header_request_id(head) else {
        return false;
    };
    rid.len() == 32 && body.contains(&format!("\"trace\":{{\"request_id\":\"{rid}\""))
}

/// Runs the tracing-overhead workload. `bin` is the `bepi` binary used
/// to preprocess the index and spawn the daemon (the caller passes
/// `std::env::current_exe()`).
pub fn run(cfg: &TraceBenchConfig, bin: &Path) -> Result<TraceReport, String> {
    let tmp = std::env::temp_dir().join(format!("bepi_trace_bench_{}", std::process::id()));
    std::fs::remove_dir_all(&tmp).ok();
    std::fs::create_dir_all(&tmp).map_err(|e| format!("mkdir {}: {e}", tmp.display()))?;
    let result = run_in(cfg, bin, &tmp);
    std::fs::remove_dir_all(&tmp).ok();
    result
}

fn run_in(cfg: &TraceBenchConfig, bin: &Path, tmp: &Path) -> Result<TraceReport, String> {
    let mut datasets = Vec::with_capacity(cfg.datasets.len());
    for &ds in &cfg.datasets {
        let spec = ds.spec();
        let g = spec.generate();
        let index = preprocess(bin, &g, tmp, spec.name)?;
        let stride = (g.n() / cfg.working_set.max(1)).max(1);
        let seeds: Vec<usize> = (0..cfg.working_set).map(|i| (i * stride) % g.n()).collect();

        let daemon = Proc::spawn(
            bin,
            &[
                "serve".into(),
                index.display().to_string(),
                "--listen".into(),
                "127.0.0.1:0".into(),
                "--mmap".into(),
                "--cache-entries".into(),
                cfg.cache_entries.to_string(),
            ],
            false,
        )?;

        // Warm-up: fill the cache (plain) and fault every code path the
        // traced arm takes, untimed.
        for &seed in &seeds {
            for traced in [false, true] {
                let target = query_target(seed, cfg.top_k, traced);
                let (status, _, body) = http_get_full(&daemon.addr, &target)?;
                if status != 200 {
                    return Err(format!("warm-up GET {target} -> {status}: {body}"));
                }
            }
        }

        let mut plain_us = Vec::with_capacity(cfg.passes * seeds.len());
        let mut traced_us = Vec::with_capacity(cfg.passes * seeds.len());
        let mut traced_ok = true;
        for _ in 0..cfg.passes {
            for &seed in &seeds {
                // Strict interleave: each traced sample is bracketed by
                // plain samples of the same key, so slow drift cancels.
                for traced in [false, true] {
                    let target = query_target(seed, cfg.top_k, traced);
                    let start = Instant::now();
                    let (status, head, body) = http_get_full(&daemon.addr, &target)?;
                    let us = start.elapsed().as_secs_f64() * 1e6;
                    if status != 200 {
                        return Err(format!("GET {target} -> {status}: {body}"));
                    }
                    if traced {
                        traced_ok &= traced_body_consistent(&head, &body);
                        traced_us.push(us);
                    } else {
                        plain_us.push(us);
                    }
                }
            }
        }
        drop(daemon);

        datasets.push(TraceDatasetReport {
            dataset: spec.name.to_string(),
            n: g.n(),
            m: g.m(),
            traced_ok,
            plain: ArmRun::from_samples(plain_us),
            traced: ArmRun::from_samples(traced_us),
        });
    }
    Ok(TraceReport {
        quick: cfg.quick,
        available_parallelism: std::thread::available_parallelism().map_or(1, |p| p.get()),
        cache_entries: cfg.cache_entries,
        working_set: cfg.working_set,
        passes: cfg.passes,
        top_k: cfg.top_k,
        datasets,
    })
}

fn query_target(seed: usize, top: usize, traced: bool) -> String {
    if traced {
        format!("/query?seed={seed}&top={top}&trace=1")
    } else {
        format!("/query?seed={seed}&top={top}")
    }
}

/// Renders the human-readable comparison table.
pub fn render_table(report: &TraceReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "bepi bench --trace ({} cores visible, {}-entry cache, {} keys x {} passes, \
         top {}{})",
        report.available_parallelism,
        report.cache_entries,
        report.working_set,
        report.passes,
        report.top_k,
        if report.quick { ", quick" } else { "" }
    );
    for ds in &report.datasets {
        let _ = writeln!(
            out,
            "\n{} (n = {}, m = {}, traced-ok: {})",
            ds.dataset, ds.n, ds.m, ds.traced_ok
        );
        let mut table =
            crate::table::Table::new(vec!["arm", "requests", "p50", "p95", "mean", "overhead"]);
        for (arm, run) in [("plain", &ds.plain), ("traced", &ds.traced)] {
            table.row(vec![
                arm.to_string(),
                run.requests.to_string(),
                format!("{:.1}us", run.p50_us),
                format!("{:.1}us", run.p95_us),
                format!("{:.1}us", run.mean_us),
                if arm == "traced" {
                    format!("{:+.2}%", ds.overhead_pct())
                } else {
                    "-".to_string()
                },
            ]);
        }
        out.push_str(&table.render());
    }
    out
}

/// Serializes a report to the `bepi-trace-bench/v1` JSON document.
pub fn to_json(report: &TraceReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(out, "  \"quick\": {},", report.quick);
    let _ = writeln!(
        out,
        "  \"available_parallelism\": {},",
        report.available_parallelism
    );
    let _ = writeln!(out, "  \"cache_entries\": {},", report.cache_entries);
    let _ = writeln!(out, "  \"working_set\": {},", report.working_set);
    let _ = writeln!(out, "  \"passes\": {},", report.passes);
    let _ = writeln!(out, "  \"top_k\": {},", report.top_k);
    out.push_str("  \"datasets\": [\n");
    for (i, ds) in report.datasets.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"dataset\": \"{}\",", ds.dataset);
        let _ = writeln!(out, "      \"n\": {},", ds.n);
        let _ = writeln!(out, "      \"m\": {},", ds.m);
        let _ = writeln!(out, "      \"traced_ok\": {},", ds.traced_ok);
        for (arm, run) in [("plain", &ds.plain), ("traced", &ds.traced)] {
            let _ = writeln!(
                out,
                "      \"{arm}\": {{\"requests\": {}, \"p50_us\": {:.2}, \
                 \"p95_us\": {:.2}, \"mean_us\": {:.2}}},",
                run.requests, run.p50_us, run.p95_us, run.mean_us
            );
        }
        let _ = writeln!(out, "      \"overhead_pct\": {:.4}", ds.overhead_pct());
        out.push_str(if i + 1 < report.datasets.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Validates a `bepi-trace-bench/v1` document: well-formed JSON, correct
/// schema tag, sane parameters, non-empty datasets each with complete
/// `plain`/`traced` arms, `traced_ok: true`, and the headline gate —
/// `overhead_pct` below [`MAX_OVERHEAD_PCT`] on every dataset. Tracing
/// that the serve path cannot afford is a regression, not a measurement.
pub fn validate_json(text: &str) -> std::result::Result<(), String> {
    let value = json::parse(text)?;
    let obj = value.as_object().ok_or("top level must be an object")?;
    match json::get(obj, "schema").and_then(|v| v.as_str()) {
        Some(s) if s == SCHEMA => {}
        Some(s) => return Err(format!("unknown schema {s:?}, expected {SCHEMA:?}")),
        None => return Err("missing \"schema\" tag".into()),
    }
    json::get(obj, "quick")
        .and_then(|v| v.as_bool())
        .ok_or("missing boolean \"quick\"")?;
    for (key, min) in [
        ("available_parallelism", 1.0),
        ("cache_entries", 1.0),
        ("working_set", 1.0),
        ("passes", 1.0),
        ("top_k", 1.0),
    ] {
        let v = json::get(obj, key)
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("missing numeric \"{key}\""))?;
        if v < min {
            return Err(format!("\"{key}\" must be >= {min}"));
        }
    }
    let datasets = json::get(obj, "datasets")
        .and_then(|v| v.as_array())
        .ok_or("missing \"datasets\" array")?;
    if datasets.is_empty() {
        return Err("\"datasets\" must be non-empty".into());
    }
    for (i, ds) in datasets.iter().enumerate() {
        let ds = ds
            .as_object()
            .ok_or_else(|| format!("dataset {i} must be an object"))?;
        json::get(ds, "dataset")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("dataset {i}: missing \"dataset\" name"))?;
        for key in ["n", "m"] {
            json::get(ds, key)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("dataset {i}: missing numeric \"{key}\""))?;
        }
        if json::get(ds, "traced_ok").and_then(|v| v.as_bool()) != Some(true) {
            return Err(format!(
                "dataset {i}: \"traced_ok\" must be true (every traced body \
                 must carry the request id its X-Request-Id header echoes)"
            ));
        }
        for arm in ["plain", "traced"] {
            let a = json::get(ds, arm)
                .and_then(|v| v.as_object())
                .ok_or_else(|| format!("dataset {i}: missing \"{arm}\" object"))?;
            for key in ["requests", "p50_us", "p95_us", "mean_us"] {
                let v = json::get(a, key)
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| format!("dataset {i} {arm}: missing numeric \"{key}\""))?;
                if !v.is_finite() || v <= 0.0 {
                    return Err(format!(
                        "dataset {i} {arm}: \"{key}\" must be finite and positive"
                    ));
                }
            }
        }
        let v = json::get(ds, "overhead_pct")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("dataset {i}: missing \"overhead_pct\""))?;
        if !v.is_finite() || v >= MAX_OVERHEAD_PCT {
            return Err(format!(
                "dataset {i}: \"overhead_pct\" is {v:.2}, the gate is \
                 < {MAX_OVERHEAD_PCT}% traced-vs-untraced p50"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> TraceReport {
        TraceReport {
            quick: true,
            available_parallelism: 1,
            cache_entries: 256,
            working_set: 32,
            passes: 6,
            top_k: 20,
            datasets: vec![TraceDatasetReport {
                dataset: "slashdot-like".into(),
                n: 2048,
                m: 7220,
                traced_ok: true,
                plain: ArmRun {
                    requests: 192,
                    p50_us: 100.0,
                    p95_us: 180.0,
                    mean_us: 110.0,
                },
                traced: ArmRun {
                    requests: 192,
                    p50_us: 102.0,
                    p95_us: 185.0,
                    mean_us: 113.0,
                },
            }],
        }
    }

    #[test]
    fn json_round_trips_through_validation() {
        validate_json(&to_json(&tiny_report())).unwrap();
    }

    #[test]
    fn overhead_is_the_p50_ratio() {
        let ds = &tiny_report().datasets[0];
        assert!((ds.overhead_pct() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_come_from_sorted_samples() {
        let arm = ArmRun::from_samples(vec![5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(arm.requests, 5);
        assert!((arm.p50_us - 3.0).abs() < 1e-9);
        assert!((arm.p95_us - 5.0).abs() < 1e-9);
        assert!((arm.mean_us - 3.0).abs() < 1e-9);
    }

    #[test]
    fn tampered_documents_fail_validation() {
        assert!(validate_json("{}").is_err());
        assert!(validate_json("not json").is_err());
        let wrong_schema = to_json(&tiny_report()).replace(SCHEMA, "bepi-trace-bench/v999");
        assert!(validate_json(&wrong_schema).is_err());
        let not_ok = to_json(&tiny_report()).replace("\"traced_ok\": true", "\"traced_ok\": false");
        assert!(validate_json(&not_ok).is_err());
        let dropped = to_json(&tiny_report()).replace("\"p95_us\": 180.00, ", "");
        assert!(validate_json(&dropped).is_err());
        let over_gate =
            to_json(&tiny_report()).replace("\"overhead_pct\": 2.0000", "\"overhead_pct\": 7.5000");
        assert!(validate_json(&over_gate).is_err());
    }

    #[test]
    fn table_renders_both_arms() {
        let s = render_table(&tiny_report());
        assert!(s.contains("plain"), "{s}");
        assert!(s.contains("traced"), "{s}");
        assert!(s.contains("+2.00%"), "{s}");
        assert!(s.contains("traced-ok: true"), "{s}");
    }

    #[test]
    fn header_request_id_is_case_insensitive_and_trimmed() {
        let head = "HTTP/1.1 200 OK\r\nx-request-id:  00ff00ff00ff00ff00ff00ff00ff00ff\r\n";
        assert_eq!(
            header_request_id(head),
            Some("00ff00ff00ff00ff00ff00ff00ff00ff")
        );
        assert!(traced_body_consistent(
            head,
            "{\"trace\":{\"request_id\":\"00ff00ff00ff00ff00ff00ff00ff00ff\",\"queue_us\":1}}"
        ));
        assert!(!traced_body_consistent(head, "{\"seed\":1}"));
        assert!(!traced_body_consistent("HTTP/1.1 200 OK\r\n", "{}"));
    }
}
